//! # ztm — the IBM zEC12 Transactional Execution facility, reproduced in Rust
//!
//! This umbrella crate re-exports the whole ztm workspace, a
//! simulator-based reproduction of
//! *"Transactional Memory Architecture and Implementation for IBM System z"*
//! (Jacobi, Slegel, Greiner — MICRO-45, 2012).
//!
//! The workspace layers are re-exported under their short names:
//!
//! * [`mem`] — simulated physical memory and addressing.
//! * [`cache`] — the zEC12 cache hierarchy, coherence fabric with
//!   cross-interrogates (XIs), and the gathering store cache.
//! * [`core`] — the Transactional Execution facility itself: transaction
//!   state machine, constrained transactions, TDB, abort handling, millicode.
//! * [`isa`] — a z-flavored instruction set, assembler and CPU interpreter.
//! * [`sim`] — the multi-CPU discrete-event system simulator.
//! * [`trace`] — deterministic event tracing, metrics, trace digests, and
//!   the trace-replay invariant checker.
//! * [`workloads`] — the paper's microbenchmarks and lock implementations.
//!
//! # Quickstart
//!
//! ```
//! use ztm::sim::{System, SystemConfig};
//! use ztm::workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};
//!
//! // Two CPUs transactionally incrementing random variables from a pool.
//! let layout = PoolLayout::new(16, 1);
//! let wl = PoolWorkload::new(layout, SyncMethod::Tbegin, 7);
//! let mut system = System::new(SystemConfig::with_cpus(2));
//! let report = wl.run(&mut system, 200);
//! assert!(report.committed_ops() > 0);
//! ```

pub use ztm_cache as cache;
pub use ztm_core as core;
pub use ztm_isa as isa;
pub use ztm_mem as mem;
pub use ztm_sim as sim;
pub use ztm_stm as stm;
pub use ztm_trace as trace;
pub use ztm_workloads as workloads;
