//! Deterministic event tracing, metrics export, and trace-invariant checking
//! for the ztm simulator.
//!
//! The crate sits at the bottom of the workspace dependency stack (it depends
//! on nothing, every simulator layer depends on it), so events carry plain
//! integers rather than the typed addresses and CPU ids of the upper layers.
//!
//! Three pieces:
//!
//! * [`Tracer`] — a cheap cloneable handle threaded through the cache
//!   hierarchy, transaction engine, millicode ladder and fabric. When tracing
//!   is disabled (the default) an emission is a single `Option` check and the
//!   event-construction closure is never evaluated.
//! * [`Recorder`] — a bounded ring buffer of [`TracedEvent`]s that also folds
//!   every event (including ones later overwritten by ring wraparound) into a
//!   64-bit order- and content-sensitive digest and into incremental
//!   [`Metrics`]. Exports Chrome trace-event JSON (loadable in Perfetto /
//!   `chrome://tracing`) and machine-readable metrics JSON.
//! * [`check_invariants`] — a trace-replay checker asserting the isolation
//!   and coherence properties the zEC12 design promises: no commit after a
//!   conflicting exclusive XI was accepted inside the transaction window,
//!   tx-dirty lines are never observed by another CPU pre-commit, inclusive
//!   hierarchy containment, and constrained-retry ladder monotonicity.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// XI kind codes mirrored from `ztm_cache::XiKind` (which cannot be imported
/// here without inverting the dependency direction).
pub mod xi_kind {
    /// Exclusive (invalidating) cross-interrogate.
    pub const EXCLUSIVE: u8 = 0;
    /// Demote (exclusive → read-only) cross-interrogate.
    pub const DEMOTE: u8 = 1;
    /// Read-only-copy invalidation.
    pub const READ_ONLY: u8 = 2;
    /// LRU (capacity) eviction notice.
    pub const LRU: u8 = 3;

    /// Human-readable name for a kind code.
    pub fn name(kind: u8) -> &'static str {
        match kind {
            EXCLUSIVE => "exclusive",
            DEMOTE => "demote",
            READ_ONLY => "read-only",
            LRU => "lru",
            _ => "unknown",
        }
    }
}

/// Where an access was satisfied locally.
pub mod hit_level {
    /// Missed both private levels.
    pub const MISS: u8 = 0;
    /// Satisfied by the L1.
    pub const L1: u8 = 1;
    /// Satisfied by the L2 (L1 refill).
    pub const L2: u8 = 2;
}

/// One simulator event. Fields are plain integers; `line` is always a
/// [`LineAddr` index](https://docs.rs/), i.e. byte address / 256, and
/// `half` a 128-byte granule index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A data access presented to the private cache.
    Access {
        /// Line index.
        line: u64,
        /// Whether the access wants store (exclusive) rights.
        store: bool,
        /// [`hit_level`] code.
        hit: u8,
        /// Issued inside a transaction.
        tx: bool,
    },
    /// A line installed into the private hierarchy after a fetch.
    Install {
        /// Line index.
        line: u64,
        /// Installed with exclusive rights.
        excl: bool,
        /// Installed on behalf of a transaction.
        tx: bool,
    },
    /// A line evicted from a private cache level.
    Evict {
        /// Line index.
        line: u64,
        /// Cache level it left (1 or 2).
        level: u8,
        /// The line was transactionally read (L1 footprint).
        tx_read: bool,
        /// The line carried transactional store data (L2 footprint).
        tx_dirty: bool,
    },
    /// The fabric planned a cross-interrogate at a remote CPU.
    XiIssue {
        /// Target CPU.
        to: u16,
        /// Line index.
        line: u64,
        /// [`xi_kind`] code.
        kind: u8,
    },
    /// The receiving CPU accepted an XI.
    XiAccept {
        /// Line index.
        line: u64,
        /// [`xi_kind`] code.
        kind: u8,
        /// The XI compared against the receiver's transactional footprint.
        conflict: bool,
    },
    /// The receiving CPU stiff-armed (rejected) an XI.
    XiReject {
        /// Line index.
        line: u64,
        /// [`xi_kind`] code.
        kind: u8,
        /// Running per-requester reject count (§III.C).
        count: u32,
    },
    /// Reject threshold exceeded: the receiver aborts rather than hang the
    /// requester (§III.C).
    RejectHang {
        /// Line index.
        line: u64,
    },
    /// A store gathered into an existing open store-cache entry.
    StoreGather {
        /// Line index.
        line: u64,
        /// Transactional store.
        tx: bool,
        /// Non-Transactional Store instruction.
        ntstg: bool,
    },
    /// A store allocated a new store-cache entry.
    StoreNewEntry {
        /// Line index.
        line: u64,
        /// Transactional store.
        tx: bool,
        /// Non-Transactional Store instruction.
        ntstg: bool,
    },
    /// Outermost TBEGIN closed the pre-existing store-cache entries for
    /// gathering (§III.D).
    StoreClose {
        /// Entries dropped/closed at that point.
        entries: u16,
    },
    /// A gathered granule drained toward L2/L3 at commit (all bytes) or
    /// abort (NTSTG doublewords only).
    StoreDrain {
        /// 128-byte granule index.
        half: u64,
        /// Valid bytes carried.
        bytes: u16,
    },
    /// Store-footprint overflow: every entry belongs to the current
    /// transaction and the store matches none (§III.D).
    StoreOverflow {
        /// Line index of the store that could not be placed.
        line: u64,
    },
    /// TBEGIN / TBEGINC executed successfully.
    TxBegin {
        /// Constrained transaction (TBEGINC).
        constrained: bool,
        /// Nesting depth after the begin (1 = outermost).
        depth: u16,
    },
    /// Outermost TEND committed.
    TxCommit,
    /// Transaction aborted.
    TxAbort {
        /// Architected abort code.
        code: u16,
        /// Condition code delivered to the TBEGIN path.
        cc: u8,
        /// The aborted transaction was constrained.
        constrained: bool,
    },
    /// The constrained-retry millicode ladder produced its next action
    /// (§III.E).
    LadderStage {
        /// Consecutive abort count driving the ladder.
        attempt: u32,
        /// Random exponential-backoff delay in cycles.
        delay: u64,
        /// Speculative instruction fetch disabled for the retry.
        disable_spec: bool,
        /// Broadcast-stop (quiesce other CPUs) requested for the retry.
        broadcast_stop: bool,
    },
    /// A fabric channel transfer was serialized behind earlier traffic.
    FabricOccupy {
        /// Queueing delay in cycles added by channel occupancy.
        queued: u64,
    },
    /// The in-order pipeline window closed an issue group (emitted only
    /// when the issue width is above 1, so width-1 streams are unchanged).
    IssueGroup {
        /// Configured issue width.
        width: u8,
        /// Instructions that issued together in the closed cycle.
        size: u8,
    },
    /// An instruction's issue was delayed by a pipeline hazard.
    IssueStall {
        /// `ztm_isa::StallReason` code: 0 register, 1 condition code,
        /// 2 store ordering.
        reason: u8,
        /// Cycles waited beyond the hazard-free issue cycle.
        waited: u64,
    },
    /// The software-TM runtime acquired or released a stripe write-lock.
    StmLock {
        /// Acquired (true) or released (false).
        acquired: bool,
        /// Simulated byte address of the stripe lockword.
        addr: u64,
    },
    /// TL2 read-set validation outcome at STM commit.
    StmValidation {
        /// Validation passed.
        ok: bool,
        /// Read-set size on pass; offending lockword address on failure.
        info: u64,
    },
    /// The HTM retry ladder dropped into the STM fallback path.
    StmFallback {
        /// HTM attempt count at the transition.
        attempt: u32,
        /// Architected abort code of the final HTM attempt.
        code: u16,
    },
    /// Software-TM transaction phase marker.
    StmTx {
        /// 0 = begin, 1 = commit, 2 = abort-retry.
        phase: u8,
        /// Sampled read version (begin), write-set size (commit), or
        /// attempt count (abort-retry).
        info: u64,
    },
}

impl Event {
    /// Short stable name used as the Chrome trace-event `name` field.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::Access { .. } => "access",
            Event::Install { .. } => "install",
            Event::Evict { .. } => "evict",
            Event::XiIssue { .. } => "xi-issue",
            Event::XiAccept { .. } => "xi-accept",
            Event::XiReject { .. } => "xi-reject",
            Event::RejectHang { .. } => "reject-hang",
            Event::StoreGather { .. } => "store-gather",
            Event::StoreNewEntry { .. } => "store-new",
            Event::StoreClose { .. } => "store-close",
            Event::StoreDrain { .. } => "store-drain",
            Event::StoreOverflow { .. } => "store-overflow",
            Event::TxBegin { .. } => "tx",
            Event::TxCommit => "tx",
            Event::TxAbort { .. } => "tx",
            Event::LadderStage { .. } => "ladder",
            Event::FabricOccupy { .. } => "fabric",
            Event::IssueGroup { .. } => "issue-group",
            Event::IssueStall { .. } => "issue-stall",
            Event::StmLock { .. } => "stm-lock",
            Event::StmValidation { .. } => "stm-validate",
            Event::StmFallback { .. } => "stm-fallback",
            Event::StmTx { .. } => "stm-tx",
        }
    }

    /// Compact, stable, line-oriented encoding: a two-letter tag followed by
    /// `key=value` pairs. Feeds the trace digest and the `args.enc` field of
    /// the Chrome export, from which [`decode`](Event::decode) round-trips.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        self.encode_into(&mut s)
            .expect("writing to a String cannot fail");
        s
    }

    /// Streams the [`encode`](Event::encode) bytes into any [`fmt::Write`]
    /// without materializing a `String`. The digest path folds through this
    /// (see [`fold_digest`]), so digest bytes and `encode()` output are
    /// identical by construction.
    ///
    /// Every value in the encoding is an unsigned decimal integer, so the
    /// fields are written with [`write_dec`] rather than through
    /// `fmt::Arguments` — the `write!` interpreter cost per field was the
    /// dominant term of the digest fold on the hot path.
    pub fn encode_into<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        fn b(v: bool) -> &'static str {
            if v {
                "1"
            } else {
                "0"
            }
        }
        match *self {
            Event::Access {
                line,
                store,
                hit,
                tx,
            } => {
                out.write_str("AC l=")?;
                write_dec(out, line)?;
                out.write_str(" s=")?;
                out.write_str(b(store))?;
                out.write_str(" h=")?;
                write_dec(out, hit as u64)?;
                out.write_str(" t=")?;
                out.write_str(b(tx))
            }
            Event::Install { line, excl, tx } => {
                out.write_str("IN l=")?;
                write_dec(out, line)?;
                out.write_str(" e=")?;
                out.write_str(b(excl))?;
                out.write_str(" t=")?;
                out.write_str(b(tx))
            }
            Event::Evict {
                line,
                level,
                tx_read,
                tx_dirty,
            } => {
                out.write_str("EV l=")?;
                write_dec(out, line)?;
                out.write_str(" v=")?;
                write_dec(out, level as u64)?;
                out.write_str(" r=")?;
                out.write_str(b(tx_read))?;
                out.write_str(" d=")?;
                out.write_str(b(tx_dirty))
            }
            Event::XiIssue { to, line, kind } => {
                out.write_str("XI t=")?;
                write_dec(out, to as u64)?;
                out.write_str(" l=")?;
                write_dec(out, line)?;
                out.write_str(" k=")?;
                write_dec(out, kind as u64)
            }
            Event::XiAccept {
                line,
                kind,
                conflict,
            } => {
                out.write_str("XA l=")?;
                write_dec(out, line)?;
                out.write_str(" k=")?;
                write_dec(out, kind as u64)?;
                out.write_str(" c=")?;
                out.write_str(b(conflict))
            }
            Event::XiReject { line, kind, count } => {
                out.write_str("XR l=")?;
                write_dec(out, line)?;
                out.write_str(" k=")?;
                write_dec(out, kind as u64)?;
                out.write_str(" n=")?;
                write_dec(out, count as u64)
            }
            Event::RejectHang { line } => {
                out.write_str("RH l=")?;
                write_dec(out, line)
            }
            Event::StoreGather { line, tx, ntstg } => {
                out.write_str("SG l=")?;
                write_dec(out, line)?;
                out.write_str(" t=")?;
                out.write_str(b(tx))?;
                out.write_str(" n=")?;
                out.write_str(b(ntstg))
            }
            Event::StoreNewEntry { line, tx, ntstg } => {
                out.write_str("SN l=")?;
                write_dec(out, line)?;
                out.write_str(" t=")?;
                out.write_str(b(tx))?;
                out.write_str(" n=")?;
                out.write_str(b(ntstg))
            }
            Event::StoreClose { entries } => {
                out.write_str("SC e=")?;
                write_dec(out, entries as u64)
            }
            Event::StoreDrain { half, bytes } => {
                out.write_str("SD h=")?;
                write_dec(out, half)?;
                out.write_str(" b=")?;
                write_dec(out, bytes as u64)
            }
            Event::StoreOverflow { line } => {
                out.write_str("SO l=")?;
                write_dec(out, line)
            }
            Event::TxBegin { constrained, depth } => {
                out.write_str("TB c=")?;
                out.write_str(b(constrained))?;
                out.write_str(" d=")?;
                write_dec(out, depth as u64)
            }
            Event::TxCommit => out.write_str("TC"),
            Event::TxAbort {
                code,
                cc,
                constrained,
            } => {
                out.write_str("TA a=")?;
                write_dec(out, code as u64)?;
                out.write_str(" c=")?;
                write_dec(out, cc as u64)?;
                out.write_str(" n=")?;
                out.write_str(b(constrained))
            }
            Event::LadderStage {
                attempt,
                delay,
                disable_spec,
                broadcast_stop,
            } => {
                out.write_str("LS a=")?;
                write_dec(out, attempt as u64)?;
                out.write_str(" w=")?;
                write_dec(out, delay)?;
                out.write_str(" s=")?;
                out.write_str(b(disable_spec))?;
                out.write_str(" b=")?;
                out.write_str(b(broadcast_stop))
            }
            Event::FabricOccupy { queued } => {
                out.write_str("FO q=")?;
                write_dec(out, queued)
            }
            Event::IssueGroup { width, size } => {
                out.write_str("IG w=")?;
                write_dec(out, width as u64)?;
                out.write_str(" s=")?;
                write_dec(out, size as u64)
            }
            Event::IssueStall { reason, waited } => {
                out.write_str("IS r=")?;
                write_dec(out, reason as u64)?;
                out.write_str(" w=")?;
                write_dec(out, waited)
            }
            Event::StmLock { acquired, addr } => {
                out.write_str("SL a=")?;
                out.write_str(b(acquired))?;
                out.write_str(" d=")?;
                write_dec(out, addr)
            }
            Event::StmValidation { ok, info } => {
                out.write_str("SV o=")?;
                out.write_str(b(ok))?;
                out.write_str(" i=")?;
                write_dec(out, info)
            }
            Event::StmFallback { attempt, code } => {
                out.write_str("SF a=")?;
                write_dec(out, attempt as u64)?;
                out.write_str(" c=")?;
                write_dec(out, code as u64)
            }
            Event::StmTx { phase, info } => {
                out.write_str("SP p=")?;
                write_dec(out, phase as u64)?;
                out.write_str(" i=")?;
                write_dec(out, info)
            }
        }
    }

    /// Parses a string produced by [`encode`](Event::encode).
    pub fn decode(s: &str) -> Result<Event, String> {
        let mut parts = s.split_whitespace();
        let tag = parts.next().ok_or_else(|| "empty event".to_string())?;
        let mut fields: BTreeMap<&str, u64> = BTreeMap::new();
        for p in parts {
            let (k, v) = p
                .split_once('=')
                .ok_or_else(|| format!("malformed field {p:?} in {s:?}"))?;
            let v: u64 = v
                .parse()
                .map_err(|_| format!("non-numeric value {p:?} in {s:?}"))?;
            fields.insert(k, v);
        }
        let get = |k: &str| -> Result<u64, String> {
            fields
                .get(k)
                .copied()
                .ok_or_else(|| format!("missing field {k:?} in {s:?}"))
        };
        let ev = match tag {
            "AC" => Event::Access {
                line: get("l")?,
                store: get("s")? != 0,
                hit: get("h")? as u8,
                tx: get("t")? != 0,
            },
            "IN" => Event::Install {
                line: get("l")?,
                excl: get("e")? != 0,
                tx: get("t")? != 0,
            },
            "EV" => Event::Evict {
                line: get("l")?,
                level: get("v")? as u8,
                tx_read: get("r")? != 0,
                tx_dirty: get("d")? != 0,
            },
            "XI" => Event::XiIssue {
                to: get("t")? as u16,
                line: get("l")?,
                kind: get("k")? as u8,
            },
            "XA" => Event::XiAccept {
                line: get("l")?,
                kind: get("k")? as u8,
                conflict: get("c")? != 0,
            },
            "XR" => Event::XiReject {
                line: get("l")?,
                kind: get("k")? as u8,
                count: get("n")? as u32,
            },
            "RH" => Event::RejectHang { line: get("l")? },
            "SG" => Event::StoreGather {
                line: get("l")?,
                tx: get("t")? != 0,
                ntstg: get("n")? != 0,
            },
            "SN" => Event::StoreNewEntry {
                line: get("l")?,
                tx: get("t")? != 0,
                ntstg: get("n")? != 0,
            },
            "SC" => Event::StoreClose {
                entries: get("e")? as u16,
            },
            "SD" => Event::StoreDrain {
                half: get("h")?,
                bytes: get("b")? as u16,
            },
            "SO" => Event::StoreOverflow { line: get("l")? },
            "TB" => Event::TxBegin {
                constrained: get("c")? != 0,
                depth: get("d")? as u16,
            },
            "TC" => Event::TxCommit,
            "TA" => Event::TxAbort {
                code: get("a")? as u16,
                cc: get("c")? as u8,
                constrained: get("n")? != 0,
            },
            "LS" => Event::LadderStage {
                attempt: get("a")? as u32,
                delay: get("w")?,
                disable_spec: get("s")? != 0,
                broadcast_stop: get("b")? != 0,
            },
            "FO" => Event::FabricOccupy { queued: get("q")? },
            "IG" => Event::IssueGroup {
                width: get("w")? as u8,
                size: get("s")? as u8,
            },
            "IS" => Event::IssueStall {
                reason: get("r")? as u8,
                waited: get("w")?,
            },
            "SL" => Event::StmLock {
                acquired: get("a")? != 0,
                addr: get("d")?,
            },
            "SV" => Event::StmValidation {
                ok: get("o")? != 0,
                info: get("i")?,
            },
            "SF" => Event::StmFallback {
                attempt: get("a")? as u32,
                code: get("c")? as u16,
            },
            "SP" => Event::StmTx {
                phase: get("p")? as u8,
                info: get("i")?,
            },
            other => return Err(format!("unknown event tag {other:?}")),
        };
        Ok(ev)
    }
}

/// An event stamped with the emitting CPU and the simulated cycle clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedEvent {
    /// Simulated cycle at emission.
    pub clock: u64,
    /// Emitting (or attributed) CPU.
    pub cpu: u16,
    /// The event payload.
    pub event: Event,
}

/// Consumer of traced events. [`Recorder`] is the in-tree implementation;
/// tests substitute their own.
pub trait TraceSink {
    /// Receives one event.
    fn record(&mut self, clock: u64, cpu: u16, event: Event);
}

/// Cheap cloneable tracing handle.
///
/// A disabled tracer (the [`Default`]) makes [`emit`](Tracer::emit) a single
/// `Option` check; the event-construction closure is never run, so the
/// instrumented fast paths pay nothing when tracing is off.
///
/// All clones share the sink and the cycle clock; [`for_cpu`](Tracer::for_cpu)
/// derives a clone whose emissions are attributed to a given CPU.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Sink>,
    clock: Arc<AtomicU64>,
    cpu: u16,
}

/// The attached consumer: either a shared dynamic [`TraceSink`] (recorder,
/// per-shard event buffers, test sinks) or the allocation-free digest-only
/// fold. Dispatching on the variant in [`Tracer::emit`] keeps the
/// digest-only path free of the lock and virtual call the general sink
/// needs.
#[derive(Clone)]
enum Sink {
    Shared(Arc<Mutex<dyn TraceSink + Send>>),
    Digest(Arc<DigestSink>),
}

/// A digest-only sink: folds every stamped event straight into a streaming
/// FNV-1a state — no lock, no ring buffering, no event materialization. The
/// digest is bit-identical to what a [`Recorder`] fed the same stream
/// reports (both fold through the same byte stream);
/// [`events`](DigestSink::events) counts how many events were digested.
///
/// The state lives in relaxed atomics only so the handle is `Sync`; the
/// simulator feeds any single sink from one thread at a time (sharded runs
/// buffer per shard and replay through the sink on the coordinator), so the
/// non-atomic read-modify-write of `fold` never races.
#[derive(Debug)]
pub struct DigestSink {
    state: AtomicU64,
    events: AtomicU64,
}

impl DigestSink {
    /// An empty sink (digest of the empty stream).
    pub fn new() -> DigestSink {
        DigestSink {
            state: AtomicU64::new(FNV_OFFSET),
            events: AtomicU64::new(0),
        }
    }

    /// Folds one stamped event. Shared-reference so it is callable through
    /// the `Arc` the [`Tracer`] clones hold.
    #[inline]
    pub fn fold(&self, clock: u64, cpu: u16, event: &Event) {
        self.state.store(
            fold_digest(self.state.load(Ordering::Relaxed), clock, cpu, event),
            Ordering::Relaxed,
        );
        self.events
            .store(self.events.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// The running digest over everything folded so far.
    pub fn digest(&self) -> u64 {
        self.state.load(Ordering::Relaxed)
    }

    /// How many events have been folded.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }
}

impl Default for DigestSink {
    fn default() -> Self {
        DigestSink::new()
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .field("cpu", &self.cpu)
            .finish()
    }
}

impl Tracer {
    /// A tracer that drops everything (the default state of every component).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer feeding a fresh bounded [`Recorder`]; returns both.
    pub fn recording(capacity: usize) -> (Tracer, Arc<Mutex<Recorder>>) {
        let recorder = Arc::new(Mutex::new(Recorder::new(capacity)));
        let sink: Arc<Mutex<dyn TraceSink + Send>> = recorder.clone();
        (
            Tracer {
                sink: Some(Sink::Shared(sink)),
                clock: Arc::new(AtomicU64::new(0)),
                cpu: 0,
            },
            recorder,
        )
    }

    /// A tracer over an arbitrary sink.
    pub fn with_sink(sink: Arc<Mutex<dyn TraceSink + Send>>) -> Tracer {
        Tracer {
            sink: Some(Sink::Shared(sink)),
            clock: Arc::new(AtomicU64::new(0)),
            cpu: 0,
        }
    }

    /// A tracer that keeps only the running digest and an event count — the
    /// cheapest enabled sink, for callers (CI determinism checks, bench
    /// sweeps, differential tests) that never read events back. The digest
    /// is bit-identical to a [`Recorder`]'s for the same stream.
    pub fn digest_only() -> (Tracer, Arc<DigestSink>) {
        let sink = Arc::new(DigestSink::new());
        (
            Tracer {
                sink: Some(Sink::Digest(sink.clone())),
                clock: Arc::new(AtomicU64::new(0)),
                cpu: 0,
            },
            sink,
        )
    }

    /// A tracer feeding a fresh [`EventBuffer`] that stamps every event with
    /// a ticket drawn from `seq`; returns both. Sharded simulation gives
    /// each shard (and the coordinator) one of these sharing a single
    /// ticket counter, then merges the buffers deterministically and
    /// replays them into the real sink.
    pub fn buffering(seq: Arc<AtomicU64>) -> (Tracer, Arc<Mutex<EventBuffer>>) {
        let buffer = Arc::new(Mutex::new(EventBuffer::new(seq)));
        let sink: Arc<Mutex<dyn TraceSink + Send>> = buffer.clone();
        (
            Tracer {
                sink: Some(Sink::Shared(sink)),
                clock: Arc::new(AtomicU64::new(0)),
                cpu: 0,
            },
            buffer,
        )
    }

    /// Whether a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// A clone whose emissions are attributed to `cpu`.
    pub fn for_cpu(&self, cpu: u16) -> Tracer {
        Tracer {
            sink: self.sink.clone(),
            clock: self.clock.clone(),
            cpu,
        }
    }

    /// Advances the shared cycle clock (shared across all clones).
    pub fn set_clock(&self, now: u64) {
        self.clock.store(now, Ordering::Relaxed);
    }

    /// Current value of the shared cycle clock.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Emits an event attributed to this clone's CPU. `f` runs only when a
    /// sink is attached.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        match &self.sink {
            None => {}
            Some(Sink::Shared(sink)) => {
                sink.lock()
                    .expect("trace sink poisoned")
                    .record(self.clock(), self.cpu, f())
            }
            Some(Sink::Digest(sink)) => sink.fold(self.clock(), self.cpu, &f()),
        }
    }

    /// Emits an event attributed to an explicit CPU (used by the shared
    /// fabric, which acts on behalf of a requester).
    #[inline]
    pub fn emit_at(&self, cpu: u16, f: impl FnOnce() -> Event) {
        match &self.sink {
            None => {}
            Some(Sink::Shared(sink)) => {
                sink.lock()
                    .expect("trace sink poisoned")
                    .record(self.clock(), cpu, f())
            }
            Some(Sink::Digest(sink)) => sink.fold(self.clock(), cpu, &f()),
        }
    }
}

/// A [`TracedEvent`] stamped with a global emission ticket, as captured by
/// an [`EventBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqTracedEvent {
    /// Ticket drawn from the shared emission counter at record time. Within
    /// one serialized step the tickets reconstruct exact emission order even
    /// when the step's events landed in several buffers (requester vs XI
    /// targets).
    pub seq: u64,
    /// Simulated cycle at emission.
    pub clock: u64,
    /// Emitting (or attributed) CPU.
    pub cpu: u16,
    /// The event payload.
    pub event: Event,
}

/// A buffering [`TraceSink`] for sharded simulation: events are appended in
/// arrival order and stamped with tickets from a counter shared across all
/// buffers of one run, so the coordinator can merge multiple buffers back
/// into the exact serial emission order before replaying them into the real
/// sink.
#[derive(Debug)]
pub struct EventBuffer {
    seq: Arc<AtomicU64>,
    events: Vec<SeqTracedEvent>,
}

impl EventBuffer {
    /// An empty buffer drawing tickets from `seq`.
    pub fn new(seq: Arc<AtomicU64>) -> EventBuffer {
        EventBuffer {
            seq,
            events: Vec::new(),
        }
    }

    /// Takes every buffered event out, leaving the buffer empty.
    pub fn drain(&mut self) -> Vec<SeqTracedEvent> {
        std::mem::take(&mut self.events)
    }

    /// Whether nothing is currently buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for EventBuffer {
    fn record(&mut self, clock: u64, cpu: u16, event: Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.events.push(SeqTracedEvent {
            seq,
            clock,
            cpu,
            event,
        });
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Incremental FNV-1a over `fmt` output: every chunk the formatting
/// machinery produces folds straight into the digest state, so no per-event
/// line buffer is ever materialized.
struct FnvWrite(u64);

impl fmt::Write for FnvWrite {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0 = fnv1a(self.0, s.as_bytes());
        Ok(())
    }
}

/// Writes `v` in decimal — the same bytes `Display` would produce — without
/// the `fmt::Arguments` interpreter. Every value in the event encoding is an
/// unsigned integer, so this one helper covers the whole digest byte stream.
#[inline]
fn write_dec<W: fmt::Write>(out: &mut W, v: u64) -> fmt::Result {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.write_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"))
}

/// Folds one stamped event into a digest state. Order- and
/// content-sensitive; independent of recorder capacity because it is applied
/// at record time, before any ring wraparound. The folded bytes are exactly
/// `"{clock}|{cpu}|{encode()}\n"`, streamed through [`FnvWrite`] without
/// allocating.
fn fold_digest(state: u64, clock: u64, cpu: u16, event: &Event) -> u64 {
    use fmt::Write as _;
    let mut w = FnvWrite(state);
    let _ = write_dec(&mut w, clock);
    let _ = w.write_str("|");
    let _ = write_dec(&mut w, cpu as u64);
    let _ = w.write_str("|");
    let _ = event.encode_into(&mut w);
    let _ = w.write_str("\n");
    w.0
}

/// Digest of a complete event slice, matching what a [`Recorder`] fed the
/// same stream reports.
pub fn digest_of(events: &[TracedEvent]) -> u64 {
    events
        .iter()
        .fold(FNV_OFFSET, |d, e| fold_digest(d, e.clock, e.cpu, &e.event))
}

/// Aggregate counters and histograms, updated incrementally per event so they
/// cover the full stream even after ring wraparound discards old events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total events observed.
    pub events: u64,
    /// Data accesses by hit level: `[miss, l1, l2]`.
    pub accesses: [u64; 3],
    /// Accesses issued inside transactions.
    pub tx_accesses: u64,
    /// Lines installed.
    pub installs: u64,
    /// Evictions by level: `[_, l1, l2]` (index 0 unused).
    pub evictions: [u64; 3],
    /// XIs issued by the fabric, indexed by [`xi_kind`].
    pub xi_issued: [u64; 4],
    /// XIs accepted, indexed by [`xi_kind`].
    pub xi_accepted: [u64; 4],
    /// XIs rejected (stiff-armed), indexed by [`xi_kind`].
    pub xi_rejected: [u64; 4],
    /// Reject-threshold hangs (receiver aborts to unblock requester).
    pub reject_hangs: u64,
    /// Stores gathered into open entries.
    pub store_gathered: u64,
    /// Stores allocating new entries.
    pub store_new: u64,
    /// Store-footprint overflows.
    pub store_overflows: u64,
    /// Granules drained at commit/abort.
    pub store_drains: u64,
    /// Bytes drained at commit/abort.
    pub store_drain_bytes: u64,
    /// Outermost transaction begins.
    pub tx_begins: u64,
    /// Nested (interior) begins.
    pub tx_nested_begins: u64,
    /// Outermost commits.
    pub tx_commits: u64,
    /// Aborts.
    pub tx_aborts: u64,
    /// Aborts of constrained transactions.
    pub tx_aborts_constrained: u64,
    /// Abort-code histogram.
    pub abort_codes: BTreeMap<u16, u64>,
    /// Committed-transaction latency histogram; key is `floor(log2(cycles))`.
    pub commit_latency_log2: BTreeMap<u32, u64>,
    /// Aborted-transaction (begin → abort) latency histogram, same bucketing.
    pub abort_latency_log2: BTreeMap<u32, u64>,
    /// Retry-ladder stages entered.
    pub ladder_stages: u64,
    /// Deepest consecutive-abort count seen on the ladder.
    pub ladder_max_attempt: u32,
    /// Ladder stages that disabled speculation.
    pub ladder_disable_spec: u64,
    /// Ladder stages that requested broadcast-stop.
    pub ladder_broadcast_stop: u64,
    /// Fabric transfers delayed by channel occupancy.
    pub fabric_queued: u64,
    /// Total cycles of fabric queueing delay.
    pub fabric_queued_cycles: u64,
    /// Pipeline issue groups closed (width > 1 only).
    pub issue_groups: u64,
    /// Instructions issued across all closed groups.
    pub issue_group_instrs: u64,
    /// Issue-group size histogram (instructions issued in one cycle).
    pub issue_group_sizes: BTreeMap<u16, u64>,
    /// Pipeline hazard stalls observed at issue.
    pub issue_stalls: u64,
    /// Total cycles spent waiting on issue hazards.
    pub issue_stall_cycles: u64,
    /// Software-TM transaction attempts begun.
    pub stm_begins: u64,
    /// Software-TM commits.
    pub stm_commits: u64,
    /// Software-TM aborts (acquire/validation failures that retried).
    pub stm_aborts: u64,
    /// Stripe write-locks acquired.
    pub stm_lock_acquires: u64,
    /// Stripe write-locks released.
    pub stm_lock_releases: u64,
    /// TL2 read-set validations that passed.
    pub stm_validation_passes: u64,
    /// TL2 read-set validations that failed.
    pub stm_validation_failures: u64,
    /// HTM→STM fallback transitions.
    pub stm_fallbacks: u64,
    /// Abort code of the final HTM attempt at each fallback transition.
    pub stm_fallback_codes: BTreeMap<u16, u64>,
    /// Open outermost-begin clock per CPU (internal latency bookkeeping).
    open_begin: BTreeMap<u16, u64>,
}

fn log2_bucket(cycles: u64) -> u32 {
    63 - cycles.max(1).leading_zeros()
}

impl Metrics {
    /// Folds one stamped event into the aggregates.
    pub fn observe(&mut self, clock: u64, cpu: u16, event: &Event) {
        self.events += 1;
        match *event {
            Event::Access { hit, tx, .. } => {
                self.accesses[(hit as usize).min(2)] += 1;
                if tx {
                    self.tx_accesses += 1;
                }
            }
            Event::Install { .. } => self.installs += 1,
            Event::Evict { level, .. } => self.evictions[(level as usize).min(2)] += 1,
            Event::XiIssue { kind, .. } => self.xi_issued[(kind as usize).min(3)] += 1,
            Event::XiAccept { kind, .. } => self.xi_accepted[(kind as usize).min(3)] += 1,
            Event::XiReject { kind, .. } => self.xi_rejected[(kind as usize).min(3)] += 1,
            Event::RejectHang { .. } => self.reject_hangs += 1,
            Event::StoreGather { .. } => self.store_gathered += 1,
            Event::StoreNewEntry { .. } => self.store_new += 1,
            Event::StoreClose { .. } => {}
            Event::StoreDrain { bytes, .. } => {
                self.store_drains += 1;
                self.store_drain_bytes += bytes as u64;
            }
            Event::StoreOverflow { .. } => self.store_overflows += 1,
            Event::TxBegin { depth, .. } => {
                if depth == 1 {
                    self.tx_begins += 1;
                    self.open_begin.insert(cpu, clock);
                } else {
                    self.tx_nested_begins += 1;
                }
            }
            Event::TxCommit => {
                self.tx_commits += 1;
                if let Some(begin) = self.open_begin.remove(&cpu) {
                    *self
                        .commit_latency_log2
                        .entry(log2_bucket(clock.saturating_sub(begin)))
                        .or_insert(0) += 1;
                }
            }
            Event::TxAbort {
                code, constrained, ..
            } => {
                self.tx_aborts += 1;
                if constrained {
                    self.tx_aborts_constrained += 1;
                }
                *self.abort_codes.entry(code).or_insert(0) += 1;
                if let Some(begin) = self.open_begin.remove(&cpu) {
                    *self
                        .abort_latency_log2
                        .entry(log2_bucket(clock.saturating_sub(begin)))
                        .or_insert(0) += 1;
                }
            }
            Event::LadderStage {
                attempt,
                disable_spec,
                broadcast_stop,
                ..
            } => {
                self.ladder_stages += 1;
                self.ladder_max_attempt = self.ladder_max_attempt.max(attempt);
                if disable_spec {
                    self.ladder_disable_spec += 1;
                }
                if broadcast_stop {
                    self.ladder_broadcast_stop += 1;
                }
            }
            Event::FabricOccupy { queued } => {
                if queued > 0 {
                    self.fabric_queued += 1;
                    self.fabric_queued_cycles += queued;
                }
            }
            Event::IssueGroup { size, .. } => {
                self.issue_groups += 1;
                self.issue_group_instrs += size as u64;
                *self.issue_group_sizes.entry(size as u16).or_insert(0) += 1;
            }
            Event::IssueStall { waited, .. } => {
                self.issue_stalls += 1;
                self.issue_stall_cycles += waited;
            }
            Event::StmLock { acquired, .. } => {
                if acquired {
                    self.stm_lock_acquires += 1;
                } else {
                    self.stm_lock_releases += 1;
                }
            }
            Event::StmValidation { ok, .. } => {
                if ok {
                    self.stm_validation_passes += 1;
                } else {
                    self.stm_validation_failures += 1;
                }
            }
            Event::StmFallback { code, .. } => {
                self.stm_fallbacks += 1;
                *self.stm_fallback_codes.entry(code).or_insert(0) += 1;
            }
            Event::StmTx { phase, .. } => match phase {
                0 => self.stm_begins += 1,
                1 => self.stm_commits += 1,
                _ => self.stm_aborts += 1,
            },
        }
    }

    /// Aggregates a complete event slice (e.g. one re-parsed from a trace
    /// file by [`parse_chrome_trace`]).
    pub fn from_events(events: &[TracedEvent]) -> Metrics {
        let mut m = Metrics::default();
        for e in events {
            m.observe(e.clock, e.cpu, &e.event);
        }
        m
    }

    /// Renders the machine-readable metrics JSON document.
    ///
    /// `digest`/`dropped` come from the recorder; pass `0` when aggregating a
    /// re-parsed stream whose recorder state is unknown.
    pub fn to_json(&self, digest: u64, dropped: u64) -> String {
        fn hist<K: fmt::Display>(map: &BTreeMap<K, u64>) -> String {
            let body: Vec<String> = map.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
            format!("{{{}}}", body.join(", "))
        }
        fn arr(xs: &[u64]) -> String {
            let body: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
            format!("[{}]", body.join(", "))
        }
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"digest\": \"{digest:#018x}\",\n"));
        s.push_str(&format!("  \"events\": {},\n", self.events));
        s.push_str(&format!("  \"dropped\": {dropped},\n"));
        s.push_str(&format!(
            "  \"accesses\": {{\"miss\": {}, \"l1\": {}, \"l2\": {}, \"tx\": {}}},\n",
            self.accesses[0], self.accesses[1], self.accesses[2], self.tx_accesses
        ));
        s.push_str(&format!("  \"installs\": {},\n", self.installs));
        s.push_str(&format!(
            "  \"evictions\": {{\"l1\": {}, \"l2\": {}}},\n",
            self.evictions[1], self.evictions[2]
        ));
        s.push_str(&format!(
            "  \"xi\": {{\"issued\": {}, \"accepted\": {}, \"rejected\": {}, \"reject_hangs\": {}}},\n",
            arr(&self.xi_issued),
            arr(&self.xi_accepted),
            arr(&self.xi_rejected),
            self.reject_hangs
        ));
        s.push_str(&format!(
            "  \"store_cache\": {{\"gathered\": {}, \"new\": {}, \"overflows\": {}, \"drains\": {}, \"drain_bytes\": {}}},\n",
            self.store_gathered,
            self.store_new,
            self.store_overflows,
            self.store_drains,
            self.store_drain_bytes
        ));
        s.push_str(&format!(
            "  \"tx\": {{\"begins\": {}, \"nested_begins\": {}, \"commits\": {}, \"aborts\": {}, \"aborts_constrained\": {}}},\n",
            self.tx_begins,
            self.tx_nested_begins,
            self.tx_commits,
            self.tx_aborts,
            self.tx_aborts_constrained
        ));
        s.push_str(&format!(
            "  \"abort_codes\": {},\n",
            hist(&self.abort_codes)
        ));
        s.push_str(&format!(
            "  \"commit_latency_log2\": {},\n",
            hist(&self.commit_latency_log2)
        ));
        s.push_str(&format!(
            "  \"abort_latency_log2\": {},\n",
            hist(&self.abort_latency_log2)
        ));
        s.push_str(&format!(
            "  \"ladder\": {{\"stages\": {}, \"max_attempt\": {}, \"disable_spec\": {}, \"broadcast_stop\": {}}},\n",
            self.ladder_stages,
            self.ladder_max_attempt,
            self.ladder_disable_spec,
            self.ladder_broadcast_stop
        ));
        s.push_str(&format!(
            "  \"fabric\": {{\"queued_transfers\": {}, \"queued_cycles\": {}}},\n",
            self.fabric_queued, self.fabric_queued_cycles
        ));
        // The "stm" object appears only when STM events were observed, so
        // pre-existing (HTM-only) metrics documents stay byte-identical.
        let stm_active = self.stm_begins
            + self.stm_commits
            + self.stm_aborts
            + self.stm_lock_acquires
            + self.stm_lock_releases
            + self.stm_validation_passes
            + self.stm_validation_failures
            + self.stm_fallbacks
            > 0;
        s.push_str(&format!(
            "  \"pipeline\": {{\"issue_groups\": {}, \"issue_group_instrs\": {}, \"group_sizes\": {}, \"stalls\": {}, \"stall_cycles\": {}}}{}\n",
            self.issue_groups,
            self.issue_group_instrs,
            hist(&self.issue_group_sizes),
            self.issue_stalls,
            self.issue_stall_cycles,
            if stm_active { "," } else { "" }
        ));
        if stm_active {
            s.push_str(&format!(
                "  \"stm\": {{\"begins\": {}, \"commits\": {}, \"aborts\": {}, \"lock_acquires\": {}, \"lock_releases\": {}, \"validation_passes\": {}, \"validation_failures\": {}, \"fallbacks\": {}, \"fallback_codes\": {}}}\n",
                self.stm_begins,
                self.stm_commits,
                self.stm_aborts,
                self.stm_lock_acquires,
                self.stm_lock_releases,
                self.stm_validation_passes,
                self.stm_validation_failures,
                self.stm_fallbacks,
                hist(&self.stm_fallback_codes)
            ));
        }
        s.push_str("}\n");
        s
    }
}

/// Bounded ring-buffer sink with incremental digest and metrics.
///
/// The ring keeps the most recent `capacity` events for export; the digest
/// and [`Metrics`] are folded at record time and therefore describe the
/// *entire* stream, independent of capacity.
#[derive(Debug, Clone)]
pub struct Recorder {
    ring: VecDeque<TracedEvent>,
    capacity: usize,
    dropped: u64,
    digest: u64,
    metrics: Metrics,
}

impl Recorder {
    /// Default ring capacity: enough for the workloads in `tests/figures.rs`
    /// without wraparound.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a recorder keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Recorder {
        assert!(
            capacity > 0,
            "recorder needs capacity for at least one event"
        );
        Recorder {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            digest: FNV_OFFSET,
            metrics: Metrics::default(),
        }
    }

    /// Events currently held (after any wraparound).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events discarded by ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Order- and content-sensitive digest over the full stream.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Full-stream aggregates.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Copies the retained events out in arrival order.
    pub fn snapshot(&self) -> Vec<TracedEvent> {
        self.ring.iter().copied().collect()
    }

    /// Renders the metrics JSON document (counters, histograms, digest).
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json(self.digest, self.dropped)
    }

    /// Renders the retained events as Chrome trace-event JSON.
    ///
    /// Transactions appear as `B`/`E` duration spans on a per-CPU track
    /// (`tid` = CPU); everything else is an instant. Every real event carries
    /// its [`Event::encode`] string under `args.enc`, which
    /// [`parse_chrome_trace`] uses to reconstruct the stream losslessly.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.snapshot(), self.digest, self.dropped)
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, clock: u64, cpu: u16, event: Event) {
        self.digest = fold_digest(self.digest, clock, cpu, &event);
        self.metrics.observe(clock, cpu, &event);
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TracedEvent { clock, cpu, event });
    }
}

/// Renders an event slice as a Chrome trace-event JSON document (see
/// [`Recorder::chrome_trace_json`]).
pub fn chrome_trace_json(events: &[TracedEvent], digest: u64, dropped: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "\"otherData\": {{\"digest\": \"{digest:#018x}\", \"dropped\": {dropped}}},\n"
    ));
    out.push_str("\"traceEvents\": [\n");
    // CPUs with a currently-open "B" span, to pair commits/aborts correctly
    // even when ring wraparound cut the stream mid-transaction.
    let mut open: Vec<u16> = Vec::new();
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    for e in events {
        let (ph, extra) = match e.event {
            Event::TxBegin { depth: 1, .. } if !open.contains(&e.cpu) => {
                open.push(e.cpu);
                ("B", "")
            }
            Event::TxCommit | Event::TxAbort { .. } => {
                if let Some(i) = open.iter().position(|&c| c == e.cpu) {
                    open.swap_remove(i);
                    ("E", "")
                } else {
                    ("i", ", \"s\": \"t\"")
                }
            }
            _ => ("i", ", \"s\": \"t\""),
        };
        push(
            format!(
                "{{\"name\": \"{}\", \"ph\": \"{ph}\", \"ts\": {}, \"pid\": 0, \"tid\": {}{extra}, \"args\": {{\"enc\": \"{}\"}}}}",
                e.event.kind_name(),
                e.clock,
                e.cpu,
                e.event.encode()
            ),
            &mut first,
        );
    }
    // Close dangling spans so strict viewers render the tail; these carry no
    // "enc" and are skipped by the parser.
    let last_ts = events.last().map(|e| e.clock).unwrap_or(0);
    for cpu in open {
        push(
            format!(
                "{{\"name\": \"tx\", \"ph\": \"E\", \"ts\": {last_ts}, \"pid\": 0, \"tid\": {cpu}, \"args\": {{\"synthetic\": true}}}}"
            ),
            &mut first,
        );
    }
    out.push_str("\n]\n}\n");
    out
}

/// Extracts the `"key": <number>` field from a single-line JSON object.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the `"key": "<string>"` field from a single-line JSON object.
fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// Reconstructs the event stream from a Chrome trace JSON document produced
/// by [`chrome_trace_json`]. Objects without an `args.enc` payload (the
/// synthetic span closers) are skipped.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TracedEvent>, String> {
    let mut events = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"name\"") {
            continue;
        }
        let Some(enc) = json_str_field(line, "enc") else {
            continue;
        };
        let clock =
            json_u64_field(line, "ts").ok_or_else(|| format!("trace object without ts: {line}"))?;
        let cpu = json_u64_field(line, "tid")
            .ok_or_else(|| format!("trace object without tid: {line}"))? as u16;
        events.push(TracedEvent {
            clock,
            cpu,
            event: Event::decode(enc)?,
        });
    }
    Ok(events)
}

/// Extracts the digest recorded in a Chrome trace document's `otherData`.
pub fn parse_trace_digest(text: &str) -> Option<u64> {
    let line = text.lines().find(|l| l.contains("\"digest\""))?;
    let hex = json_str_field(line, "digest")?;
    u64::from_str_radix(hex.trim_start_matches("0x"), 16).ok()
}

#[derive(Debug, Default)]
struct CpuCheckState {
    /// Open outermost transaction window: (begin clock, doomed-by-accepted-
    /// conflicting-XI).
    window: Option<(u64, bool)>,
    /// Lines holding this CPU's uncommitted transactional store data.
    dirty: Vec<u64>,
    /// Observed presence per line: `Some(true)` installed, `Some(false)`
    /// evicted/surrendered; lines never observed stay unknown (ring
    /// truncation tolerance).
    present: BTreeMap<u64, bool>,
    /// Last retry-ladder stage seen: (attempt, disable_spec, broadcast_stop).
    ladder: Option<(u32, bool, bool)>,
}

/// Replays a trace and checks the architectural invariants the zEC12 design
/// promises. Returns all violations, each as a human-readable description.
///
/// The checker is tolerant of ring-truncated streams: windows whose begin was
/// not observed are skipped, and containment is only enforced for lines whose
/// install/evict history was observed.
///
/// Checked invariants:
///
/// 1. **Isolation at commit** — a transaction window in which a conflicting
///    exclusive/demote XI was *accepted* must not commit (the accept
///    surrendered footprint, so the hardware must abort).
/// 2. **Pre-commit isolation** — a line carrying a transaction's uncommitted
///    store data is never installed by another CPU while the owner still
///    holds it (an accepted XI first revokes the owner's copy).
/// 3. **Inclusive containment** — no L1/L2 hit on a line after its observed
///    L2 eviction or surrender without an intervening install.
/// 4. **Ladder monotonicity** — consecutive-abort counts grow by exactly one
///    within a streak (or reset to one), and the escalation flags never
///    de-escalate within a streak.
pub fn check_invariants(events: &[TracedEvent]) -> Result<(), Vec<String>> {
    let mut cpus: BTreeMap<u16, CpuCheckState> = BTreeMap::new();
    // line -> owning cpu, for lines currently holding uncommitted tx stores.
    let mut dirty_owner: BTreeMap<u64, u16> = BTreeMap::new();
    let mut violations = Vec::new();

    for e in events {
        let clock = e.clock;
        let cpu = e.cpu;
        match e.event {
            Event::TxBegin { depth: 1, .. } => {
                cpus.entry(cpu).or_default().window = Some((clock, false));
            }
            Event::TxBegin { .. } => {}
            Event::TxCommit => {
                let st = cpus.entry(cpu).or_default();
                if let Some((begin, doomed)) = st.window.take() {
                    if doomed {
                        violations.push(format!(
                            "cpu {cpu}: commit at cycle {clock} of the transaction begun at \
                             cycle {begin} after a conflicting XI was accepted inside the window"
                        ));
                    }
                }
                for line in st.dirty.drain(..) {
                    dirty_owner.remove(&line);
                }
                if let Some(l) = &mut st.ladder {
                    // Commit resets the consecutive-abort count.
                    *l = (0, false, false);
                }
            }
            Event::TxAbort { .. } => {
                let st = cpus.entry(cpu).or_default();
                st.window = None;
                for line in st.dirty.drain(..) {
                    dirty_owner.remove(&line);
                }
            }
            Event::StoreGather { line, tx: true, .. }
            | Event::StoreNewEntry { line, tx: true, .. } => {
                let st = cpus.entry(cpu).or_default();
                if !st.dirty.contains(&line) {
                    st.dirty.push(line);
                }
                dirty_owner.insert(line, cpu);
            }
            Event::XiAccept {
                line,
                kind,
                conflict,
            } => {
                let st = cpus.entry(cpu).or_default();
                if conflict {
                    if let Some(w) = &mut st.window {
                        w.1 = true;
                    }
                }
                // The accept surrenders the copy (demote keeps a read-only
                // copy but still revokes store rights and tx-dirty data).
                if let Some(i) = st.dirty.iter().position(|&l| l == line) {
                    st.dirty.swap_remove(i);
                    dirty_owner.remove(&line);
                }
                if kind != xi_kind::DEMOTE {
                    st.present.insert(line, false);
                }
            }
            Event::Install { line, .. } => {
                if let Some(&owner) = dirty_owner.get(&line) {
                    if owner != cpu {
                        violations.push(format!(
                            "cpu {cpu}: installed line {line:#x} at cycle {clock} while cpu \
                             {owner} still holds uncommitted transactional stores to it"
                        ));
                    }
                }
                cpus.entry(cpu).or_default().present.insert(line, true);
            }
            Event::Evict { line, level: 2, .. } => {
                cpus.entry(cpu).or_default().present.insert(line, false);
            }
            Event::Evict { .. } => {}
            Event::Access { line, hit, .. } if hit != hit_level::MISS => {
                let st = cpus.entry(cpu).or_default();
                if st.present.get(&line) == Some(&false) {
                    violations.push(format!(
                        "cpu {cpu}: {} hit on line {line:#x} at cycle {clock} after its \
                         observed eviction (inclusion violated)",
                        if hit == hit_level::L1 { "L1" } else { "L2" }
                    ));
                }
            }
            Event::LadderStage {
                attempt,
                disable_spec,
                broadcast_stop,
                ..
            } => {
                let st = cpus.entry(cpu).or_default();
                if let Some((prev, prev_spec, prev_stop)) = st.ladder {
                    let continues = attempt == prev + 1;
                    let resets = attempt == 1;
                    if !continues && !resets {
                        violations.push(format!(
                            "cpu {cpu}: retry ladder jumped from attempt {prev} to {attempt} \
                             at cycle {clock}"
                        ));
                    }
                    if continues && ((prev_spec && !disable_spec) || (prev_stop && !broadcast_stop))
                    {
                        violations.push(format!(
                            "cpu {cpu}: retry ladder de-escalated at attempt {attempt} \
                             (cycle {clock})"
                        ));
                    }
                }
                st.ladder = Some((attempt, disable_spec, broadcast_stop));
            }
            _ => {}
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn te(clock: u64, cpu: u16, event: Event) -> TracedEvent {
        TracedEvent { clock, cpu, event }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Access {
                line: 0x40,
                store: true,
                hit: hit_level::L2,
                tx: true,
            },
            Event::Install {
                line: 0x40,
                excl: true,
                tx: true,
            },
            Event::Evict {
                line: 0x41,
                level: 2,
                tx_read: false,
                tx_dirty: true,
            },
            Event::XiIssue {
                to: 3,
                line: 0x40,
                kind: xi_kind::EXCLUSIVE,
            },
            Event::XiAccept {
                line: 0x40,
                kind: xi_kind::DEMOTE,
                conflict: false,
            },
            Event::XiReject {
                line: 0x40,
                kind: xi_kind::EXCLUSIVE,
                count: 7,
            },
            Event::RejectHang { line: 0x40 },
            Event::StoreGather {
                line: 0x40,
                tx: true,
                ntstg: false,
            },
            Event::StoreNewEntry {
                line: 0x42,
                tx: false,
                ntstg: true,
            },
            Event::StoreClose { entries: 5 },
            Event::StoreDrain {
                half: 0x81,
                bytes: 96,
            },
            Event::StoreOverflow { line: 0x99 },
            Event::TxBegin {
                constrained: true,
                depth: 1,
            },
            Event::TxCommit,
            Event::TxAbort {
                code: 9,
                cc: 2,
                constrained: false,
            },
            Event::LadderStage {
                attempt: 4,
                delay: 96,
                disable_spec: true,
                broadcast_stop: false,
            },
            Event::FabricOccupy { queued: 12 },
            Event::IssueGroup { width: 3, size: 2 },
            Event::IssueStall {
                reason: 1,
                waited: 44,
            },
            Event::StmLock {
                acquired: true,
                addr: 0x6000_0040,
            },
            Event::StmValidation {
                ok: false,
                info: 0x6000_0048,
            },
            Event::StmFallback {
                attempt: 6,
                code: 8,
            },
            Event::StmTx { phase: 1, info: 12 },
        ]
    }

    #[test]
    fn encode_decode_round_trips_every_variant() {
        for ev in sample_events() {
            let enc = ev.encode();
            assert_eq!(Event::decode(&enc), Ok(ev), "through {enc:?}");
        }
    }

    #[test]
    fn decode_rejects_malformed_input() {
        assert!(Event::decode("").is_err());
        assert!(Event::decode("ZZ l=1").is_err());
        assert!(Event::decode("AC l=1").is_err(), "missing fields");
        assert!(Event::decode("AC l=x s=0 h=0 t=0").is_err());
    }

    #[test]
    fn disabled_tracer_never_builds_the_event() {
        let t = Tracer::disabled();
        t.emit(|| panic!("closure must not run with tracing disabled"));
        t.emit_at(7, || panic!("closure must not run with tracing disabled"));
        assert!(!t.is_enabled());
    }

    #[test]
    fn recorder_receives_attributed_events() {
        let (t, rec) = Tracer::recording(16);
        t.set_clock(100);
        t.for_cpu(2).emit(|| Event::TxCommit);
        t.emit_at(5, || Event::RejectHang { line: 1 });
        let events = rec.lock().unwrap().snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], te(100, 2, Event::TxCommit));
        assert_eq!(events[1], te(100, 5, Event::RejectHang { line: 1 }));
    }

    #[test]
    fn ring_wraparound_keeps_recent_drops_old() {
        let (t, rec) = Tracer::recording(4);
        for i in 0..10u64 {
            t.set_clock(i);
            t.emit(|| Event::FabricOccupy { queued: i });
        }
        let r = rec.lock().unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let clocks: Vec<u64> = r.snapshot().iter().map(|e| e.clock).collect();
        assert_eq!(clocks, vec![6, 7, 8, 9]);
        // Metrics cover the full stream, not just the retained window.
        assert_eq!(r.metrics().events, 10);
    }

    #[test]
    fn digest_is_capacity_independent() {
        let (small_t, small) = Tracer::recording(4);
        let (large_t, large) = Tracer::recording(1024);
        for i in 0..50u64 {
            small_t.set_clock(i);
            large_t.set_clock(i);
            small_t.emit(|| Event::FabricOccupy { queued: i });
            large_t.emit(|| Event::FabricOccupy { queued: i });
        }
        assert_eq!(
            small.lock().unwrap().digest(),
            large.lock().unwrap().digest()
        );
    }

    #[test]
    fn digest_only_sink_matches_recorder_bit_for_bit() {
        // Feed the identical stamped stream (every variant, varied clocks
        // and CPUs) into a full recorder and the digest-only sink: the
        // digests must agree exactly, and the event counts too.
        let (rec_t, rec) = Tracer::recording(8); // tiny ring: digest ignores wraparound
        let (dig_t, dig) = Tracer::digest_only();
        assert!(dig_t.is_enabled());
        for (i, ev) in sample_events().into_iter().enumerate() {
            let clock = 10 * i as u64 + 3;
            let cpu = (i % 5) as u16;
            rec_t.set_clock(clock);
            dig_t.set_clock(clock);
            rec_t.for_cpu(cpu).emit(|| ev);
            dig_t.for_cpu(cpu).emit(|| ev);
        }
        // Also exercise the explicit-CPU emission path on both sinks.
        rec_t.emit_at(17, || Event::TxCommit);
        dig_t.emit_at(17, || Event::TxCommit);
        let r = rec.lock().unwrap();
        assert_eq!(dig.digest(), r.digest());
        assert_eq!(dig.events(), r.metrics().events);
        assert_ne!(dig.digest(), FNV_OFFSET, "stream must have been folded");
    }

    #[test]
    fn encode_into_streams_the_same_bytes_as_encode() {
        for ev in sample_events() {
            let mut streamed = String::new();
            ev.encode_into(&mut streamed).unwrap();
            assert_eq!(streamed, ev.encode());
        }
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = [
            te(1, 0, Event::TxCommit),
            te(2, 0, Event::RejectHang { line: 9 }),
        ];
        let b = [
            te(2, 0, Event::RejectHang { line: 9 }),
            te(1, 0, Event::TxCommit),
        ];
        let c = [
            te(1, 0, Event::TxCommit),
            te(2, 0, Event::RejectHang { line: 8 }),
        ];
        assert_ne!(digest_of(&a), digest_of(&b));
        assert_ne!(digest_of(&a), digest_of(&c));
        assert_eq!(digest_of(&a), digest_of(a.as_ref()));
    }

    #[test]
    fn chrome_export_parses_back_losslessly() {
        let (t, rec) = Tracer::recording(64);
        let mut clock = 0;
        for (i, ev) in sample_events().into_iter().enumerate() {
            clock += 3;
            t.set_clock(clock);
            t.for_cpu((i % 3) as u16).emit(|| ev);
        }
        let r = rec.lock().unwrap();
        let json = r.chrome_trace_json();
        let parsed = parse_chrome_trace(&json).expect("parse back");
        assert_eq!(parsed, r.snapshot());
        assert_eq!(digest_of(&parsed), r.digest());
        assert_eq!(parse_trace_digest(&json), Some(r.digest()));
        // The dangling TxBegin of the sample stream gets a synthetic closer.
        assert!(json.contains("\"synthetic\": true"));
    }

    #[test]
    fn metrics_aggregate_histograms() {
        let mut m = Metrics::default();
        m.observe(
            10,
            0,
            &Event::TxBegin {
                constrained: false,
                depth: 1,
            },
        );
        m.observe(
            100,
            0,
            &Event::TxAbort {
                code: 9,
                cc: 2,
                constrained: false,
            },
        );
        m.observe(
            200,
            1,
            &Event::TxBegin {
                constrained: true,
                depth: 1,
            },
        );
        m.observe(264, 1, &Event::TxCommit);
        assert_eq!(m.tx_begins, 2);
        assert_eq!(m.abort_codes.get(&9), Some(&1));
        // 100 - 10 = 90 cycles -> bucket 6; 264 - 200 = 64 -> bucket 6.
        assert_eq!(m.abort_latency_log2.get(&6), Some(&1));
        assert_eq!(m.commit_latency_log2.get(&6), Some(&1));
        let json = m.to_json(0xabc, 3);
        assert!(json.contains("\"abort_codes\": {\"9\": 1}"));
        assert!(json.contains("\"dropped\": 3"));
    }

    #[test]
    fn checker_accepts_a_legal_window() {
        let events = vec![
            te(
                1,
                0,
                Event::TxBegin {
                    constrained: false,
                    depth: 1,
                },
            ),
            te(
                2,
                0,
                Event::Install {
                    line: 5,
                    excl: true,
                    tx: true,
                },
            ),
            te(
                3,
                0,
                Event::StoreNewEntry {
                    line: 5,
                    tx: true,
                    ntstg: false,
                },
            ),
            te(
                4,
                0,
                Event::Access {
                    line: 5,
                    store: false,
                    hit: hit_level::L1,
                    tx: true,
                },
            ),
            // A rejected XI does not doom the window.
            te(
                5,
                0,
                Event::XiReject {
                    line: 5,
                    kind: xi_kind::EXCLUSIVE,
                    count: 1,
                },
            ),
            te(6, 0, Event::TxCommit),
            // Post-commit the other CPU may take the line.
            te(
                7,
                1,
                Event::Install {
                    line: 5,
                    excl: true,
                    tx: false,
                },
            ),
        ];
        assert_eq!(check_invariants(&events), Ok(()));
    }

    #[test]
    fn checker_flags_commit_after_accepted_conflicting_xi() {
        let events = vec![
            te(
                1,
                0,
                Event::TxBegin {
                    constrained: false,
                    depth: 1,
                },
            ),
            te(
                2,
                0,
                Event::XiAccept {
                    line: 5,
                    kind: xi_kind::EXCLUSIVE,
                    conflict: true,
                },
            ),
            te(3, 0, Event::TxCommit),
        ];
        let err = check_invariants(&events).unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("conflicting XI was accepted"), "{err:?}");
    }

    #[test]
    fn checker_flags_observed_dirty_line() {
        let events = vec![
            te(
                1,
                0,
                Event::TxBegin {
                    constrained: false,
                    depth: 1,
                },
            ),
            te(
                2,
                0,
                Event::StoreNewEntry {
                    line: 7,
                    tx: true,
                    ntstg: false,
                },
            ),
            te(
                3,
                1,
                Event::Install {
                    line: 7,
                    excl: false,
                    tx: false,
                },
            ),
        ];
        let err = check_invariants(&events).unwrap_err();
        assert!(
            err[0].contains("uncommitted transactional stores"),
            "{err:?}"
        );
        // Once the owner surrendered the line via an accepted XI, the install
        // is legal (the tx is doomed instead).
        let events = vec![
            te(
                1,
                0,
                Event::TxBegin {
                    constrained: false,
                    depth: 1,
                },
            ),
            te(
                2,
                0,
                Event::StoreNewEntry {
                    line: 7,
                    tx: true,
                    ntstg: false,
                },
            ),
            te(
                3,
                0,
                Event::XiAccept {
                    line: 7,
                    kind: xi_kind::EXCLUSIVE,
                    conflict: true,
                },
            ),
            te(
                4,
                1,
                Event::Install {
                    line: 7,
                    excl: false,
                    tx: false,
                },
            ),
            te(
                5,
                0,
                Event::TxAbort {
                    code: 2,
                    cc: 2,
                    constrained: false,
                },
            ),
        ];
        assert_eq!(check_invariants(&events), Ok(()));
    }

    #[test]
    fn checker_flags_hit_after_eviction() {
        let events = vec![
            te(
                1,
                0,
                Event::Install {
                    line: 3,
                    excl: false,
                    tx: false,
                },
            ),
            te(
                2,
                0,
                Event::Evict {
                    line: 3,
                    level: 2,
                    tx_read: false,
                    tx_dirty: false,
                },
            ),
            te(
                3,
                0,
                Event::Access {
                    line: 3,
                    store: false,
                    hit: hit_level::L2,
                    tx: false,
                },
            ),
        ];
        let err = check_invariants(&events).unwrap_err();
        assert!(err[0].contains("inclusion violated"), "{err:?}");
        // A hit on a line with unobserved history is tolerated (truncation).
        let events = vec![te(
            3,
            0,
            Event::Access {
                line: 9,
                store: false,
                hit: hit_level::L1,
                tx: false,
            },
        )];
        assert_eq!(check_invariants(&events), Ok(()));
    }

    #[test]
    fn checker_flags_ladder_jump_and_deescalation() {
        let stage = |attempt, spec, stop| Event::LadderStage {
            attempt,
            delay: 0,
            disable_spec: spec,
            broadcast_stop: stop,
        };
        let jump = vec![
            te(1, 0, stage(1, false, false)),
            te(2, 0, stage(3, false, false)),
        ];
        assert!(check_invariants(&jump).unwrap_err()[0].contains("jumped"));
        let deescalate = vec![
            te(1, 0, stage(3, true, false)),
            te(2, 0, stage(4, false, false)),
        ];
        assert!(check_invariants(&deescalate).unwrap_err()[0].contains("de-escalated"));
        let legal = vec![
            te(1, 0, stage(2, false, false)), // truncated stream: starts mid-streak
            te(2, 0, stage(3, true, false)),
            te(3, 0, stage(4, true, true)),
            te(4, 0, stage(1, false, false)), // reset after OS interruption
        ];
        assert_eq!(check_invariants(&legal), Ok(()));
    }

    #[test]
    fn checker_tolerates_truncated_window() {
        // Commit with no observed begin: skipped, not flagged.
        let events = vec![
            te(
                1,
                0,
                Event::XiAccept {
                    line: 5,
                    kind: xi_kind::EXCLUSIVE,
                    conflict: true,
                },
            ),
            te(2, 0, Event::TxCommit),
        ];
        assert_eq!(check_invariants(&events), Ok(()));
    }
}
