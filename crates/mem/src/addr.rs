//! Strongly-typed addresses and zEC12 geometry constants.

use std::fmt;

/// Cache-line size in bytes (zEC12: 256-byte lines at every cache level).
pub const LINE_SIZE: u64 = 256;
/// Gathering-store-cache entry granule in bytes (zEC12: 128 bytes, §III.D).
pub const HALF_LINE_SIZE: u64 = 128;
/// Octoword size in bytes. Constrained transactions may touch at most 4
/// aligned octowords (§II.D).
pub const OCTOWORD_SIZE: u64 = 32;
/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// A byte address in the simulated physical memory.
///
/// `Address` is a transparent `u64` newtype; it exists so that byte addresses,
/// line addresses and page addresses cannot be confused (C-NEWTYPE).
///
/// # Examples
///
/// ```
/// use ztm_mem::Address;
/// let a = Address::new(0x12345);
/// assert_eq!(a.line().index(), 0x123);
/// assert_eq!(a.offset_in_line(), 0x45);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_SIZE)
    }

    /// The 128-byte store-cache granule containing this address.
    pub const fn half_line(self) -> HalfLineAddr {
        HalfLineAddr(self.0 / HALF_LINE_SIZE)
    }

    /// The aligned octoword containing this address.
    pub const fn octoword(self) -> Octoword {
        Octoword(self.0 / OCTOWORD_SIZE)
    }

    /// The page containing this address.
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_SIZE)
    }

    /// Byte offset of this address within its cache line.
    pub const fn offset_in_line(self) -> u64 {
        self.0 % LINE_SIZE
    }

    /// Byte offset of this address within its half line.
    pub const fn offset_in_half_line(self) -> u64 {
        self.0 % HALF_LINE_SIZE
    }

    /// Returns the address advanced by `bytes`.
    pub const fn add(self, bytes: u64) -> Self {
        Address(self.0 + bytes)
    }

    /// Whether an access of `len` bytes starting here stays within one cache
    /// line. The simulated ISA requires operands not to cross line boundaries
    /// (real z/Architecture allows it; the simplification is documented in
    /// DESIGN.md and does not affect any experiment, which all use aligned
    /// fields).
    pub const fn fits_in_line(self, len: u64) -> bool {
        self.0 / LINE_SIZE == (self.0 + len - 1) / LINE_SIZE
    }

    /// Whether the address is aligned to `align` bytes (`align` must be a
    /// power of two).
    pub const fn is_aligned(self, align: u64) -> bool {
        self.0 & (align - 1) == 0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<Address> for u64 {
    fn from(a: Address) -> Self {
        a.0
    }
}

/// A 256-byte cache-line address (byte address divided by [`LINE_SIZE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line index (not a byte address).
    pub const fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// The line index (byte address / 256).
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Byte address of the first byte of the line.
    pub const fn base(self) -> Address {
        Address(self.0 * LINE_SIZE)
    }

    /// Congruence class (set index) of this line in a cache with `sets` sets.
    ///
    /// Both the L1 (64 sets) and L2 (512 sets) of the zEC12 index by the low
    /// line-address bits; the paper's LRU-extension vector (§III.C) tracks
    /// the 64 L1 rows by exactly this function.
    pub const fn congruence_class(self, sets: usize) -> usize {
        (self.0 % sets as u64) as usize
    }

    /// The two half-line granules making up this line.
    pub const fn half_lines(self) -> [HalfLineAddr; 2] {
        [HalfLineAddr(self.0 * 2), HalfLineAddr(self.0 * 2 + 1)]
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// A 128-byte gathering-store-cache granule address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HalfLineAddr(u64);

impl HalfLineAddr {
    /// Creates a half-line address from a granule index.
    pub const fn new(index: u64) -> Self {
        HalfLineAddr(index)
    }

    /// The granule index (byte address / 128).
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Byte address of the first byte of the granule.
    pub const fn base(self) -> Address {
        Address(self.0 * HALF_LINE_SIZE)
    }

    /// The cache line containing this granule.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / 2)
    }
}

impl fmt::Display for HalfLineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "half:{:#x}", self.0)
    }
}

/// A 32-byte aligned octoword address, the footprint unit of constrained
/// transactions (§II.D: at most 4 octowords may be accessed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Octoword(u64);

impl Octoword {
    /// Creates an octoword address from an octoword index.
    pub const fn new(index: u64) -> Self {
        Octoword(index)
    }

    /// The octoword index (byte address / 32).
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Byte address of the first byte of the octoword.
    pub const fn base(self) -> Address {
        Address(self.0 * OCTOWORD_SIZE)
    }
}

impl fmt::Display for Octoword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oct:{:#x}", self.0)
    }
}

/// A 4 KiB page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from a page index.
    pub const fn new(index: u64) -> Self {
        PageAddr(index)
    }

    /// The page index (byte address / 4096).
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Byte address of the first byte of the page.
    pub const fn base(self) -> Address {
        Address(self.0 * PAGE_SIZE)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_decomposition() {
        let a = Address::new(0x1234);
        assert_eq!(a.line(), LineAddr::new(0x12));
        assert_eq!(a.offset_in_line(), 0x34);
        assert_eq!(a.half_line(), HalfLineAddr::new(0x24));
        assert_eq!(a.page(), PageAddr::new(0x1));
        assert_eq!(a.octoword(), Octoword::new(0x1234 / 32));
    }

    #[test]
    fn line_round_trip() {
        let l = LineAddr::new(7);
        assert_eq!(l.base().line(), l);
        assert_eq!(l.base().raw(), 7 * 256);
    }

    #[test]
    fn half_lines_of_line() {
        let l = LineAddr::new(3);
        let [a, b] = l.half_lines();
        assert_eq!(a.line(), l);
        assert_eq!(b.line(), l);
        assert_eq!(b.index(), a.index() + 1);
    }

    #[test]
    fn congruence_class_wraps() {
        assert_eq!(LineAddr::new(64).congruence_class(64), 0);
        assert_eq!(LineAddr::new(65).congruence_class(64), 1);
        assert_eq!(LineAddr::new(511).congruence_class(512), 511);
    }

    #[test]
    fn fits_in_line_boundaries() {
        assert!(Address::new(0).fits_in_line(256));
        assert!(!Address::new(1).fits_in_line(256));
        assert!(Address::new(248).fits_in_line(8));
        assert!(!Address::new(252).fits_in_line(8));
    }

    #[test]
    fn alignment() {
        assert!(Address::new(64).is_aligned(32));
        assert!(!Address::new(65).is_aligned(2));
        assert!(Address::new(0).is_aligned(4096));
    }

    #[test]
    fn display_formats_nonempty() {
        assert_eq!(Address::new(255).to_string(), "0xff");
        assert!(!LineAddr::new(0).to_string().is_empty());
        assert!(!PageAddr::new(0).to_string().is_empty());
        assert!(!Octoword::new(0).to_string().is_empty());
        assert!(!HalfLineAddr::new(0).to_string().is_empty());
    }

    #[test]
    fn conversions() {
        let a: Address = 10u64.into();
        let r: u64 = a.into();
        assert_eq!(r, 10);
    }
}
