//! Memory access fault types.

use crate::{Address, PageAddr};
use std::error::Error;
use std::fmt;

/// A fault raised by a simulated memory access.
///
/// Faults surface to the CPU model as program-exception conditions; inside a
/// transaction they first abort the transaction (§II.C of the paper) and are
/// then either filtered or presented to the simulated OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemFault {
    /// The page containing the access is not resident (z "page translation
    /// exception"); the OS model can resolve it by paging in.
    PageFault(PageAddr),
    /// The access crosses a cache-line boundary, which the simulated ISA does
    /// not support (documented simplification).
    CrossesLine(Address),
    /// The access is not naturally aligned for its width where alignment is
    /// required (e.g. NTSTG requires doubleword alignment).
    Unaligned(Address),
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::PageFault(p) => write!(f, "page fault on {p}"),
            MemFault::CrossesLine(a) => write!(f, "access at {a} crosses a cache line"),
            MemFault::Unaligned(a) => write!(f, "unaligned access at {a}"),
        }
    }
}

impl Error for MemFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            MemFault::PageFault(PageAddr::new(2)).to_string(),
            "page fault on page:0x2"
        );
        assert!(MemFault::CrossesLine(Address::new(1))
            .to_string()
            .contains("crosses"));
        assert!(MemFault::Unaligned(Address::new(3))
            .to_string()
            .contains("unaligned"));
    }

    #[test]
    fn is_error_and_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MemFault>();
    }
}
