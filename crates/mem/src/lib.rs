//! Simulated physical memory and addressing primitives for the ztm simulator.
//!
//! This crate is the lowest layer of the ztm workspace: it defines the
//! byte-addressable [`MainMemory`] image that the simulated SMP system operates
//! on, the strongly-typed address newtypes ([`Address`], [`LineAddr`],
//! [`HalfLineAddr`], [`PageAddr`], [`Octoword`]) used throughout the cache and
//! transaction layers, and a [`PageTable`] that models page residency so the
//! simulator can inject page faults into transactions (the paper's §II.C
//! interruption-filtering features depend on this).
//!
//! The geometry constants mirror the IBM zEC12 described in the paper:
//! 256-byte cache lines, 128-byte store-cache entries ("half lines"),
//! 32-byte octowords (the unit in which constrained transactions' footprints
//! are counted), and 4 KiB pages.
//!
//! # Examples
//!
//! ```
//! use ztm_mem::{Address, MainMemory};
//!
//! let mut mem = MainMemory::new();
//! mem.store_u64(Address::new(0x1000), 42);
//! assert_eq!(mem.load_u64(Address::new(0x1000)), 42);
//! ```

mod addr;
mod error;
mod memory;
mod page;

pub use addr::{Address, HalfLineAddr, LineAddr, Octoword, PageAddr};
pub use addr::{HALF_LINE_SIZE, LINE_SIZE, OCTOWORD_SIZE, PAGE_SIZE};
pub use error::MemFault;
pub use memory::{AddrHashBuilder, AddrHasher, MainMemory, SharedMem};
pub use page::PageTable;
