//! The committed architectural memory image.

use crate::{Address, LineAddr, LINE_SIZE};
use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A multiplicative hasher for the simulator's internal address-keyed maps.
///
/// Line/page indices are dense, low-entropy, and simulator-internal (never
/// attacker-controlled), so the DoS hardening of the default SipHash buys
/// nothing — and the line map is consulted on every simulated load/store.
/// A single Fibonacci multiply mixes the low bits of a line index into the
/// high bits that the hash table's control bytes are taken from.
#[derive(Debug, Clone, Copy, Default)]
pub struct AddrHasher(u64);

/// `BuildHasher` for [`AddrHasher`], usable with `HashMap::with_hasher`.
pub type AddrHashBuilder = BuildHasherDefault<AddrHasher>;

impl Hasher for AddrHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The committed (architecturally visible) memory of the simulated system.
///
/// Storage is sparse: lines are allocated on first touch and zero-filled, so a
/// benchmark can place data anywhere in the 64-bit space without cost.
///
/// `MainMemory` holds only *committed* state. Speculative transactional stores
/// live in each CPU's gathering store cache / L1 overlay (see `ztm-cache`) and
/// are merged in on commit; on abort they are simply discarded, which is how
/// the simulator realizes the all-or-nothing atomicity of §II.A.
///
/// # Examples
///
/// ```
/// use ztm_mem::{Address, MainMemory};
///
/// let mut mem = MainMemory::new();
/// assert_eq!(mem.load_u64(Address::new(0)), 0); // untouched memory reads 0
/// mem.store_u64(Address::new(8), 0xdead_beef);
/// assert_eq!(mem.load_u64(Address::new(8)), 0xdead_beef);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    /// Line index → arena slot. Lines are allocated on first store and never
    /// freed, so a slot number, once handed out, stays valid forever — that
    /// immutability is what makes the `front` cache safe.
    index: HashMap<LineAddr, u32, AddrHashBuilder>,
    /// Line payloads, contiguous. Dense storage beats one `Box` per line
    /// both on allocator traffic and on host-cache locality: lines populated
    /// together (a workload's table, a CPU's arena) end up adjacent.
    arena: Vec<[u8; LINE_SIZE as usize]>,
    /// Direct-mapped front cache over `index`: `front[line % N]` remembers
    /// `(line index, arena slot)`. Purely an accessor-side memo — slots never
    /// move or die — so it lives in `Cell`s and loads stay `&self`.
    front: Box<[Cell<(u64, u32)>]>,
}

/// Front-cache size; must be a power of two.
const FRONT_WAYS: usize = 512;
/// Sentinel line key meaning "empty front slot" (no real line maps to it:
/// a line index is an address shifted right by 8, so it is < 2^56).
const FRONT_EMPTY: u64 = u64::MAX;

impl MainMemory {
    /// Creates an empty (all-zero) memory image.
    pub fn new() -> Self {
        Self::default()
    }

    fn front(&self) -> &[Cell<(u64, u32)>] {
        // `Default` derives an empty box; materialize the table lazily is
        // not possible under `&self`, so treat "empty" as "all misses".
        &self.front
    }

    fn ensure_front(&mut self) {
        if self.front.is_empty() {
            self.front = (0..FRONT_WAYS)
                .map(|_| Cell::new((FRONT_EMPTY, 0)))
                .collect();
        }
    }

    /// Finds the arena slot for a line, if it has ever been stored to.
    #[inline]
    fn slot_of(&self, line: LineAddr) -> Option<u32> {
        let key = line.index();
        let front = self.front();
        if front.is_empty() {
            return self.index.get(&line).copied();
        }
        let way = &front[key as usize & (FRONT_WAYS - 1)];
        let (ck, cs) = way.get();
        if ck == key {
            return Some(cs);
        }
        let slot = self.index.get(&line).copied();
        if let Some(s) = slot {
            way.set((key, s));
        }
        slot
    }

    /// Number of lines that have been touched (allocated).
    pub fn resident_lines(&self) -> usize {
        self.index.len()
    }

    /// The arena slot backing `line`, if the line has ever been stored to.
    ///
    /// Slots are immutable once handed out — lines are never freed and the
    /// arena never reorders — so a cached slot stays valid for the lifetime
    /// of the memory image. The simulator's line-window coalescing caches
    /// one per core and serves repeat same-line loads through
    /// [`load_u64_at_slot`](Self::load_u64_at_slot) without re-probing the
    /// index.
    #[inline]
    pub fn line_slot(&self, line: LineAddr) -> Option<u32> {
        self.slot_of(line)
    }

    /// Reads a big-endian `u64` at `offset` inside the line backed by `slot`
    /// (a handle from [`line_slot`](Self::line_slot)). The read must not
    /// cross the line end (`offset + 8 <= LINE_SIZE`), which callers
    /// guarantee by checking the access fits in the line first.
    #[inline]
    pub fn load_u64_at_slot(&self, slot: u32, offset: usize) -> u64 {
        let line = &self.arena[slot as usize];
        u64::from_be_bytes(line[offset..offset + 8].try_into().expect("8-byte slice"))
    }

    /// Reads `buf.len()` bytes starting at `addr`. The access may span lines;
    /// each line touched costs one (cached) map lookup.
    pub fn load_bytes(&self, addr: Address, buf: &mut [u8]) {
        let mut i = 0;
        while i < buf.len() {
            let a = addr.add(i as u64);
            let off = a.offset_in_line() as usize;
            let n = (LINE_SIZE as usize - off).min(buf.len() - i);
            match self.slot_of(a.line()) {
                Some(slot) => {
                    buf[i..i + n].copy_from_slice(&self.arena[slot as usize][off..off + n])
                }
                None => buf[i..i + n].fill(0),
            }
            i += n;
        }
    }

    /// Writes `buf` starting at `addr`. The access may span lines; each line
    /// touched costs one (cached) map lookup.
    pub fn store_bytes(&mut self, addr: Address, buf: &[u8]) {
        let mut i = 0;
        while i < buf.len() {
            let a = addr.add(i as u64);
            let off = a.offset_in_line() as usize;
            let n = (LINE_SIZE as usize - off).min(buf.len() - i);
            let slot = match self.slot_of(a.line()) {
                Some(s) => s,
                None => {
                    self.ensure_front();
                    let s = u32::try_from(self.arena.len()).expect("arena slot overflow");
                    self.arena.push([0u8; LINE_SIZE as usize]);
                    self.index.insert(a.line(), s);
                    self.front()[a.line().index() as usize & (FRONT_WAYS - 1)]
                        .set((a.line().index(), s));
                    s
                }
            };
            self.arena[slot as usize][off..off + n].copy_from_slice(&buf[i..i + n]);
            i += n;
        }
    }

    /// Reads a big-endian `u64` (z/Architecture is big-endian).
    pub fn load_u64(&self, addr: Address) -> u64 {
        let off = addr.offset_in_line() as usize;
        if off + 8 <= LINE_SIZE as usize {
            // Within one line: a single slot lookup and a fixed-size read.
            return match self.slot_of(addr.line()) {
                Some(slot) => {
                    let line = &self.arena[slot as usize];
                    u64::from_be_bytes(line[off..off + 8].try_into().expect("8-byte slice"))
                }
                None => 0,
            };
        }
        let mut buf = [0u8; 8];
        self.load_bytes(addr, &mut buf);
        u64::from_be_bytes(buf)
    }

    /// Writes a big-endian `u64`.
    pub fn store_u64(&mut self, addr: Address, value: u64) {
        self.store_bytes(addr, &value.to_be_bytes());
    }

    /// Reads a big-endian `u32`.
    pub fn load_u32(&self, addr: Address) -> u32 {
        let mut buf = [0u8; 4];
        self.load_bytes(addr, &mut buf);
        u32::from_be_bytes(buf)
    }

    /// Writes a big-endian `u32`.
    pub fn store_u32(&mut self, addr: Address, value: u32) {
        self.store_bytes(addr, &value.to_be_bytes());
    }

    /// Returns a copy of the full line containing `addr` (zero-filled if
    /// untouched).
    pub fn line_contents(&self, line: LineAddr) -> [u8; LINE_SIZE as usize] {
        match self.slot_of(line) {
            Some(slot) => self.arena[slot as usize],
            None => [0u8; LINE_SIZE as usize],
        }
    }

    /// The arena slot for `line` without consulting or updating the front
    /// cache — safe to call concurrently from several threads (the front
    /// memo mutates `Cell`s under `&self` and is therefore single-thread
    /// only).
    #[inline]
    pub fn line_slot_nofront(&self, line: LineAddr) -> Option<u32> {
        self.index.get(&line).copied()
    }
}

/// A thread-shareable window onto a [`MainMemory`] for the sharded
/// simulator's parallel epoch phase.
///
/// The raw pointers are captured once, under an exclusive `&mut MainMemory`
/// borrow, so the base addresses are stable for the window's lifetime:
/// shard threads never allocate lines (any step that could is classified
/// global and serialized), so `index` is only read and `arena` never grows.
///
/// # Safety contract (upheld by the shard classifier)
///
/// * No line is allocated or freed while any `SharedMem` is live.
/// * Two threads never write the same line concurrently, and no thread
///   reads a line another is writing: MESI exclusivity makes a line's
///   writer the only CPU with a valid copy, and cross-CPU permission
///   transfer goes through the fabric, which parallel window steps are
///   denied.
#[derive(Clone, Copy, Debug)]
pub struct SharedMem {
    index: *const HashMap<LineAddr, u32, AddrHashBuilder>,
    arena: *mut [u8; LINE_SIZE as usize],
    arena_len: usize,
}

// SAFETY: see the struct-level contract; all aliasing is line-disjoint.
unsafe impl Send for SharedMem {}
// SAFETY: same contract; `&SharedMem` only exposes line-disjoint accesses.
unsafe impl Sync for SharedMem {}

impl SharedMem {
    /// Captures a shared window. The `&mut` borrow proves exclusive access
    /// at capture time; the caller promises the contract above for as long
    /// as any copy of the returned value is used.
    pub fn new(mem: &mut MainMemory) -> SharedMem {
        SharedMem {
            index: &mem.index,
            arena: mem.arena.as_mut_ptr(),
            arena_len: mem.arena.len(),
        }
    }

    #[inline]
    fn slot_of(&self, line: LineAddr) -> Option<u32> {
        // SAFETY: the index is never mutated while `self` is live.
        unsafe { (*self.index).get(&line).copied() }
    }

    #[inline]
    fn line(&self, slot: u32) -> &[u8; LINE_SIZE as usize] {
        assert!((slot as usize) < self.arena_len, "stale arena slot");
        // SAFETY: in-bounds, and no concurrent writer for a line being read.
        unsafe { &*self.arena.add(slot as usize) }
    }

    /// Whether `line` has a backing arena slot (i.e. has ever been stored
    /// to). Stores through a `SharedMem` require one.
    #[inline]
    pub fn has_line_slot(&self, line: LineAddr) -> bool {
        self.slot_of(line).is_some()
    }

    /// The arena slot backing `line`, if any (see
    /// [`MainMemory::line_slot`]).
    #[inline]
    pub fn line_slot(&self, line: LineAddr) -> Option<u32> {
        self.slot_of(line)
    }

    /// Reads a big-endian `u64` at `offset` inside the line backed by
    /// `slot`; mirror of [`MainMemory::load_u64_at_slot`].
    #[inline]
    pub fn load_u64_at_slot(&self, slot: u32, offset: usize) -> u64 {
        let line = self.line(slot);
        u64::from_be_bytes(line[offset..offset + 8].try_into().expect("8-byte slice"))
    }

    /// Reads `buf.len()` bytes starting at `addr`; mirror of
    /// [`MainMemory::load_bytes`] without the front-cache memo.
    pub fn load_bytes(&self, addr: Address, buf: &mut [u8]) {
        let mut i = 0;
        while i < buf.len() {
            let a = addr.add(i as u64);
            let off = a.offset_in_line() as usize;
            let n = (LINE_SIZE as usize - off).min(buf.len() - i);
            match self.slot_of(a.line()) {
                Some(slot) => buf[i..i + n].copy_from_slice(&self.line(slot)[off..off + n]),
                None => buf[i..i + n].fill(0),
            }
            i += n;
        }
    }

    /// Reads a big-endian `u64`; mirror of [`MainMemory::load_u64`].
    pub fn load_u64(&self, addr: Address) -> u64 {
        let off = addr.offset_in_line() as usize;
        if off + 8 <= LINE_SIZE as usize {
            return match self.slot_of(addr.line()) {
                Some(slot) => {
                    let line = self.line(slot);
                    u64::from_be_bytes(line[off..off + 8].try_into().expect("8-byte slice"))
                }
                None => 0,
            };
        }
        let mut buf = [0u8; 8];
        self.load_bytes(addr, &mut buf);
        u64::from_be_bytes(buf)
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if any touched line has no arena slot — allocating here would
    /// race the shared index, so the shard classifier keeps slotless stores
    /// out of parallel windows. A panic is therefore a classifier bug, not
    /// a recoverable condition.
    pub fn store_bytes(&self, addr: Address, buf: &[u8]) {
        let mut i = 0;
        while i < buf.len() {
            let a = addr.add(i as u64);
            let off = a.offset_in_line() as usize;
            let n = (LINE_SIZE as usize - off).min(buf.len() - i);
            let slot = self
                .slot_of(a.line())
                .expect("shared-mode store to a line without an arena slot (classifier bug)");
            assert!((slot as usize) < self.arena_len, "stale arena slot");
            // SAFETY: in-bounds; the contract makes this line's writes
            // exclusive to the current thread for the window's duration.
            let line = unsafe { &mut *self.arena.add(slot as usize) };
            line[off..off + n].copy_from_slice(&buf[i..i + n]);
            i += n;
        }
    }

    /// Writes a big-endian `u64`; see [`store_bytes`](Self::store_bytes)
    /// for the preallocation requirement.
    pub fn store_u64(&self, addr: Address, value: u64) {
        self.store_bytes(addr, &value.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let mem = MainMemory::new();
        assert_eq!(mem.load_u64(Address::new(0xdead_0000)), 0);
        assert_eq!(mem.resident_lines(), 0);
    }

    #[test]
    fn u64_round_trip_big_endian() {
        let mut mem = MainMemory::new();
        mem.store_u64(Address::new(16), 0x0102_0304_0506_0708);
        let mut b = [0u8; 8];
        mem.load_bytes(Address::new(16), &mut b);
        assert_eq!(b, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(mem.load_u64(Address::new(16)), 0x0102_0304_0506_0708);
    }

    #[test]
    fn u32_round_trip() {
        let mut mem = MainMemory::new();
        mem.store_u32(Address::new(100), 0xCAFE_F00D);
        assert_eq!(mem.load_u32(Address::new(100)), 0xCAFE_F00D);
    }

    #[test]
    fn cross_line_access() {
        let mut mem = MainMemory::new();
        // Write 8 bytes straddling the line boundary at 256.
        mem.store_u64(Address::new(252), u64::MAX);
        assert_eq!(mem.load_u64(Address::new(252)), u64::MAX);
        assert_eq!(mem.resident_lines(), 2);
    }

    #[test]
    fn line_contents_reflects_stores() {
        let mut mem = MainMemory::new();
        mem.store_u64(Address::new(256 + 8), 0x1122_3344_5566_7788);
        let line = mem.line_contents(LineAddr::new(1));
        assert_eq!(line[8], 0x11);
        assert_eq!(line[15], 0x88);
        assert_eq!(line[0], 0);
        // Untouched line is zero.
        assert_eq!(mem.line_contents(LineAddr::new(42)), [0u8; 256]);
    }

    #[test]
    fn overlapping_stores_last_wins() {
        let mut mem = MainMemory::new();
        mem.store_u64(Address::new(0), 1);
        mem.store_u64(Address::new(4), 2);
        assert_eq!(mem.load_u32(Address::new(0)), 0);
        assert_eq!(mem.load_u64(Address::new(4)), 2);
    }
}
