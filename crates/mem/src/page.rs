//! Page-residency model for page-fault injection.

use crate::{Address, MemFault, PageAddr};
use std::collections::HashSet;

/// Tracks which pages are resident, so the simulator can inject page faults.
///
/// The paper's interruption-filtering design (§II.C) hinges on page faults
/// occurring *inside* transactions: a filtered fault aborts the transaction
/// without trapping to the OS, and a program that never touches the page
/// non-transactionally will loop forever. The simulator reproduces exactly
/// that behavior; tests in `ztm-core` exercise it.
///
/// By default every page is resident ([`PageTable::all_resident`]), which is
/// what throughput benchmarks want. Tests evict specific pages with
/// [`PageTable::evict`].
///
/// # Examples
///
/// ```
/// use ztm_mem::{Address, PageTable};
///
/// let mut pt = PageTable::all_resident();
/// assert!(pt.check(Address::new(0x5000)).is_ok());
/// pt.evict(Address::new(0x5000).page());
/// assert!(pt.check(Address::new(0x5000)).is_err());
/// pt.page_in(Address::new(0x5000).page());
/// assert!(pt.check(Address::new(0x5000)).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    /// Pages explicitly marked non-resident. (Inverted set: the common case
    /// is "everything resident", so we track the exceptions.)
    evicted: HashSet<PageAddr>,
    /// Count of faults taken, for statistics.
    faults: u64,
    /// Bumped on every residency change ([`evict`](Self::evict) /
    /// [`page_in`](Self::page_in)). A cached "this address was resident"
    /// verdict stays valid exactly while the epoch is unchanged.
    epoch: u64,
}

impl PageTable {
    /// Creates a page table with every page resident.
    pub fn all_resident() -> Self {
        Self::default()
    }

    /// Checks residency of the page containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::PageFault`] if the page has been evicted.
    pub fn check(&self, addr: Address) -> Result<(), MemFault> {
        // Benchmarks never evict, so the common case is an empty set; skip
        // the hash entirely rather than paying SipHash on every access.
        if self.evicted.is_empty() {
            return Ok(());
        }
        let page = addr.page();
        if self.evicted.contains(&page) {
            Err(MemFault::PageFault(page))
        } else {
            Ok(())
        }
    }

    /// Like [`check`](Self::check) but also counts the fault if one occurs.
    pub fn access(&mut self, addr: Address) -> Result<(), MemFault> {
        let r = self.check(addr);
        if r.is_err() {
            self.faults += 1;
        }
        r
    }

    /// Marks a page non-resident.
    pub fn evict(&mut self, page: PageAddr) {
        self.evicted.insert(page);
        self.epoch += 1;
    }

    /// Marks a page resident (models the OS paging it in).
    pub fn page_in(&mut self, page: PageAddr) {
        self.evicted.remove(&page);
        self.epoch += 1;
    }

    /// The residency epoch (see the `epoch` field).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the given page is resident.
    pub fn is_resident(&self, page: PageAddr) -> bool {
        !self.evicted.contains(&page)
    }

    /// Total number of faults observed through [`access`](Self::access).
    pub fn fault_count(&self) -> u64 {
        self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_resident() {
        let pt = PageTable::all_resident();
        assert!(pt.check(Address::new(u64::MAX - 8)).is_ok());
        assert!(pt.is_resident(PageAddr::new(123)));
    }

    #[test]
    fn evict_and_page_in() {
        let mut pt = PageTable::all_resident();
        let page = Address::new(0x2000).page();
        pt.evict(page);
        assert_eq!(
            pt.check(Address::new(0x2fff)),
            Err(MemFault::PageFault(page))
        );
        // Neighboring page unaffected.
        assert!(pt.check(Address::new(0x3000)).is_ok());
        pt.page_in(page);
        assert!(pt.check(Address::new(0x2000)).is_ok());
    }

    #[test]
    fn access_counts_faults() {
        let mut pt = PageTable::all_resident();
        pt.evict(PageAddr::new(1));
        assert!(pt.access(Address::new(0x1000)).is_err());
        assert!(pt.access(Address::new(0x1008)).is_err());
        assert!(pt.access(Address::new(0x0008)).is_ok());
        assert_eq!(pt.fault_count(), 2);
    }
}
