//! Property tests: the sparse memory image behaves like a flat byte array.

use proptest::prelude::*;
use std::collections::HashMap;
use ztm_mem::{Address, MainMemory};

proptest! {
    /// Arbitrary interleavings of stores and loads agree with a reference
    /// byte map (zero-default).
    #[test]
    fn memory_matches_reference_model(
        ops in prop::collection::vec(
            (0u64..0x4000, prop::collection::vec(any::<u8>(), 1..16)),
            1..60
        )
    ) {
        let mut mem = MainMemory::new();
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for (addr, bytes) in &ops {
            mem.store_bytes(Address::new(*addr), bytes);
            for (i, b) in bytes.iter().enumerate() {
                reference.insert(addr + i as u64, *b);
            }
        }
        for (addr, bytes) in &ops {
            let mut buf = vec![0u8; bytes.len()];
            mem.load_bytes(Address::new(*addr), &mut buf);
            let expect: Vec<u8> = (0..bytes.len() as u64)
                .map(|i| reference.get(&(addr + i)).copied().unwrap_or(0))
                .collect();
            prop_assert_eq!(&buf, &expect);
        }
    }

    /// u64 round trips at any (possibly line-crossing) address.
    #[test]
    fn u64_round_trip(addr in 0u64..0x10000, value in any::<u64>()) {
        let mut mem = MainMemory::new();
        mem.store_u64(Address::new(addr), value);
        prop_assert_eq!(mem.load_u64(Address::new(addr)), value);
    }

    /// Address decomposition is consistent: reassembling the line base and
    /// in-line offset recovers the address, and containers nest.
    #[test]
    fn address_decomposition_consistent(raw in any::<u64>()) {
        let a = Address::new(raw & 0x000f_ffff_ffff_ffff); // avoid overflow at +255
        prop_assert_eq!(a.line().base().raw() + a.offset_in_line(), a.raw());
        prop_assert_eq!(a.half_line().line(), a.line());
        prop_assert_eq!(a.octoword().base().page(), a.octoword().base().page());
        prop_assert!(a.octoword().base().raw() <= a.raw());
        prop_assert!(a.page().base().raw() <= a.raw());
    }

    /// Congruence classes are stable under adding multiples of the set
    /// count.
    #[test]
    fn congruence_class_periodic(line in 0u64..1_000_000, k in 0u64..64, sets in 1usize..1024) {
        let l1 = ztm_mem::LineAddr::new(line);
        let l2 = ztm_mem::LineAddr::new(line + k * sets as u64);
        prop_assert_eq!(l1.congruence_class(sets), l2.congruence_class(sets));
    }
}
