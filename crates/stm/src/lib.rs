//! A TL2-style software transactional memory, emitted as programs on the
//! simulated ISA.
//!
//! Everything the STM does — version-clock reads, stripe-lock CSGs, read-set
//! validation, write-back — executes as ordinary instructions on the
//! simulated CPUs, so every cache miss, XI, and fabric transfer the
//! algorithm causes shows up in the deterministic trace digest exactly like
//! the hardware-TM experiments do. The design follows TL2 (Dice, Shalev,
//! Shavit, DISC 2006) adapted to the z ISA subset:
//!
//! * a striped table of versioned write-locks lives in simulated memory at
//!   [`StmLayout::lock_base`]; bit 63 of a stripe word is the lock bit, so a
//!   locked stripe is *negative* and `LTG`'s sign test (`JL`) detects it;
//! * a global version clock at [`StmLayout::clock_addr`] is advanced with
//!   `CSG` at commit (the serializing-drain semantics of `CSG` in the issue
//!   window keep the increment atomic under multi-issue, see DESIGN.md);
//! * each CPU keeps its transaction descriptor — read version, read set of
//!   stripe addresses, redo-log write set — in a private context block at
//!   [`StmLayout::ctx_addr`], addressed through [`CTX_REG`] (R11);
//! * reads post-validate (stripe unlocked, version ≤ rv, unchanged across
//!   the data load) and look the address up in the write set first, so
//!   read-after-write inside one transaction sees the transaction's own
//!   buffered store;
//! * commit acquires the write stripes with `CSG` (setting bit 63),
//!   fetch-and-increments the clock, validates the read set (skipped when
//!   `rv + 1 == wv`, i.e. no concurrent commit), writes the redo log back
//!   in append order, and releases the stripes with the new write version;
//! * aborts release any stripes already acquired (restoring their version),
//!   bump the attempt counter, back off through `PPA`, and retry.
//!
//! The hybrid path ([`Stm::emit_hybrid_tx`]) runs a TBEGIN fast path that
//! *subscribes* to the stripe of every STM-managed location (an `LTG` pulls
//! the stripe line into the transactional read set, so a software committer
//! locking it kills the hardware transaction) and publishes stripe versions
//! plus the clock transactionally before TEND; after `retry_limit` hardware
//! attempts (immediately on a persistent CC3 abort) it falls back to the
//! full software path instead of a global lock, so readers and
//! non-conflicting writers keep running concurrently.
//!
//! `STMNOTE` marker instructions (zero cycles, no architectural effect)
//! announce begins, commits, aborts, lock traffic, validation outcomes, and
//! fallback transitions to the simulator, which turns them into typed trace
//! events and per-CPU counters ([`ztm_sim::StmCounts`]).

use ztm_core::TbeginParams;
use ztm_isa::gr::*;
use ztm_isa::{cc_mask, stm_note, Assembler, MemOperand, Reg};
use ztm_sim::System;

/// The register holding the per-CPU STM context pointer. Chosen to stay
/// clear of the workload conventions (R6/R12–R15 measurement, R7–R10
/// workload inputs); the pool workload uses R11 as an address register and
/// therefore keeps its hardware-only sync methods.
pub const CTX_REG: Reg = R11;

/// `JNL` — branch when a preceding compare did not set CC1 (i.e. `>=`).
const NOT_LOW: u8 = cc_mask::ZERO | cc_mask::HIGH;

/// Byte offsets inside a per-CPU context block (addressed via [`CTX_REG`]).
pub mod ctx {
    /// Read version: the global clock sampled at transaction begin.
    pub const RV: i64 = 0;
    /// Read-set entry count.
    pub const RC: i64 = 8;
    /// Write-set entry count.
    pub const WC: i64 = 16;
    /// Write version claimed from the clock at commit.
    pub const WV: i64 = 24;
    /// Attempt counter (drives `PPA` backoff).
    pub const ATT: i64 = 32;
    /// Spill slots for live registers across a retry (8 × 8 bytes).
    pub const SPILL: i64 = 40;
    /// Read set: stripe-lock addresses, 8 bytes each (capacity 240 — not
    /// checked by emitted code, workload transactions are bounded far
    /// below it).
    pub const RSET: i64 = 128;
    /// Write set: 32-byte entries `{addr, value, stripe, acquired}`.
    /// `acquired` is zero from append until commit CSGs the stripe; it
    /// doubles as the duplicate-stripe and release marker.
    pub const WSET: i64 = 2048;
}

/// Simulated-memory placement of the STM metadata. All regions sit above
/// every workload's data (tables and arenas at 0x0100_0000–0x5fff_ffff) and
/// below the per-CPU prefix areas at 0xFFFF_0000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmLayout {
    /// Number of lock stripes (power of two). An address maps to stripe
    /// `(addr >> 3) & (stripes - 1)` — consecutive 8-byte words hit
    /// consecutive stripes.
    pub stripes: u64,
    /// Base of the stripe-lock table (8 bytes per stripe).
    pub lock_base: u64,
    /// Address of the global version clock.
    pub clock_addr: u64,
    /// Base of the per-CPU context blocks.
    pub ctx_base: u64,
    /// Stride between CPU context blocks (bounds the write set).
    pub ctx_stride: u64,
}

impl Default for StmLayout {
    fn default() -> Self {
        StmLayout {
            stripes: 1024,
            lock_base: 0x6000_0000,
            clock_addr: 0x6100_0000,
            ctx_base: 0x6200_0000,
            ctx_stride: 0x1_0000,
        }
    }
}

impl StmLayout {
    /// A layout with a different stripe count (tests shrink it to force
    /// stripe sharing and false conflicts).
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is not a power of two.
    pub fn with_stripes(stripes: u64) -> Self {
        assert!(stripes.is_power_of_two(), "stripes must be a power of two");
        StmLayout {
            stripes,
            ..StmLayout::default()
        }
    }

    /// Host-side stripe-lock address of `addr` (mirrors the emitted code).
    pub fn stripe_lock_addr(&self, addr: u64) -> u64 {
        self.lock_base + (((addr >> 3) & (self.stripes - 1)) << 3)
    }

    /// Context-block base of `cpu`.
    pub fn ctx_addr(&self, cpu: usize) -> u64 {
        self.ctx_base + cpu as u64 * self.ctx_stride
    }

    /// Points every CPU's [`CTX_REG`] at its context block. Call after
    /// `load_program_all` (which resets registers) and before running.
    pub fn install(&self, sys: &mut System) {
        for i in 0..sys.cpus() {
            sys.core_mut(i).set_gr(CTX_REG, self.ctx_addr(i));
        }
    }

    /// Host-side read of the global version clock (for tests).
    pub fn clock(&self, sys: &System) -> u64 {
        sys.mem().load_u64(ztm_mem::Address::new(self.clock_addr))
    }
}

/// The STM emitter: stamps TL2 transaction machinery into an [`Assembler`].
///
/// Register contract: [`CTX_REG`] (R11) holds the context pointer and is
/// never written; R0 and R1 are scratch inside every helper; the commit and
/// abort sequences additionally clobber R2–R5. Workload input registers the
/// body modifies must be listed in `spill` so a retry restores them.
#[derive(Debug, Clone, Default)]
pub struct Stm {
    /// Memory placement.
    pub layout: StmLayout,
}

impl Stm {
    /// Creates an emitter over the default layout.
    pub fn new() -> Self {
        Stm::default()
    }

    /// Creates an emitter over a specific layout.
    pub fn with_layout(layout: StmLayout) -> Self {
        Stm { layout }
    }

    /// Emits `stripe = &stripe_lock(addr)`. Clobbers R0.
    fn emit_stripe(&self, a: &mut Assembler, stripe: Reg, addr: Reg) {
        a.lgr(stripe, addr);
        a.srlg(stripe, stripe, 3);
        a.lghi(R0, (self.layout.stripes - 1) as i64);
        a.ngr(stripe, R0);
        a.sllg(stripe, stripe, 3);
        a.aghi(stripe, self.layout.lock_base as i64);
    }

    /// Emits a complete software transaction with label prefix `p`: begin
    /// (spill live registers, reset the read/write sets, sample the clock),
    /// the `body` (which records accesses through [`TxBody`]), and the TL2
    /// commit with its abort/retry path.
    ///
    /// `spill` lists the registers the body clobbers that must be restored
    /// when an abort rewinds to the retry label (at most 8; R0–R5 need not
    /// appear — they are scratch by contract).
    pub fn emit_tx<F>(&self, a: &mut Assembler, p: &str, spill: &[Reg], body: F)
    where
        F: FnOnce(&mut TxBody),
    {
        assert!(spill.len() <= 8, "at most 8 spill slots");
        let c = CTX_REG;
        a.lghi(R0, 0);
        a.stg(R0, MemOperand::based(c, ctx::ATT));
        for (i, &r) in spill.iter().enumerate() {
            a.stg(r, MemOperand::based(c, ctx::SPILL + 8 * i as i64));
        }
        a.label(&format!("{p}_stm_retry"));
        for (i, &r) in spill.iter().enumerate() {
            a.lg(r, MemOperand::based(c, ctx::SPILL + 8 * i as i64));
        }
        a.lghi(R0, 0);
        a.stg(R0, MemOperand::based(c, ctx::RC));
        a.stg(R0, MemOperand::based(c, ctx::WC));
        // rv := clock. An ordinary load: a concurrent committer bumping the
        // clock afterwards is caught by read validation, exactly as in TL2.
        a.lg(R0, MemOperand::absolute(self.layout.clock_addr));
        a.stg(R0, MemOperand::based(c, ctx::RV));
        a.stm_note(stm_note::BEGIN, R0);
        {
            let mut tx = TxBody {
                a,
                stm: self,
                p: p.to_string(),
                n: 0,
            };
            body(&mut tx);
        }
        self.emit_commit(a, p);
    }

    /// Emits the TL2 commit sequence plus the shared abort path
    /// (`{p}_stm_abort`, also the target of failed in-body reads) and the
    /// final `{p}_stm_done` label.
    fn emit_commit(&self, a: &mut Assembler, p: &str) {
        let c = CTX_REG;
        let clock = MemOperand::absolute(self.layout.clock_addr);

        // Read-only transactions commit immediately: every read was already
        // validated against rv when it happened.
        a.lg(R2, MemOperand::based(c, ctx::WC));
        a.cghi(R2, 0);
        a.jz(&format!("{p}_stm_commit"));

        // Phase 1: acquire the write stripes in append order (R3 = entry
        // index, R2 = entry count). A stripe an earlier entry already
        // acquired is skipped; its `acquired` word stays zero from append.
        a.lghi(R3, 0);
        a.label(&format!("{p}_stm_acq"));
        a.cgr(R3, R2);
        a.brc(NOT_LOW, &format!("{p}_stm_acqd"));
        a.lgr(R4, R3); // R4 = &entry[i]
        a.sllg(R4, R4, 5);
        a.agr(R4, c);
        a.aghi(R4, ctx::WSET);
        a.lg(R1, MemOperand::based(R4, 16)); // stripe address
        a.lghi(R5, 0); // duplicate scan over entries 0..i
        a.label(&format!("{p}_stm_dup"));
        a.cgr(R5, R3);
        a.brc(NOT_LOW, &format!("{p}_stm_dupd"));
        a.lgr(R0, R5);
        a.sllg(R0, R0, 5);
        a.cg(R1, MemOperand::indexed(c, R0, ctx::WSET + 16));
        a.jz(&format!("{p}_stm_acqn")); // duplicate: already ours
        a.aghi(R5, 1);
        a.j(&format!("{p}_stm_dup"));
        a.label(&format!("{p}_stm_dupd"));
        // CSG the lock bit on: expected = version (must be non-negative),
        // new = version + 2^63. A hit on someone else's lock aborts.
        a.ltg(R0, MemOperand::based(R1, 0));
        a.jl(&format!("{p}_stm_abort"));
        a.lghi(R5, 1);
        a.sllg(R5, R5, 63);
        a.agr(R5, R0);
        a.csg(R0, R5, MemOperand::based(R1, 0));
        a.jnz(&format!("{p}_stm_abort"));
        a.stg(R1, MemOperand::based(R4, 24)); // acquired marker
        a.stm_note(stm_note::LOCK_ACQ, R1);
        a.label(&format!("{p}_stm_acqn"));
        a.aghi(R3, 1);
        a.j(&format!("{p}_stm_acq"));
        a.label(&format!("{p}_stm_acqd"));

        // Phase 2: wv = ++clock (CSG retry loop; a failed CSG reloads the
        // current value into R0).
        a.lg(R0, clock);
        a.label(&format!("{p}_stm_clk"));
        a.lgr(R1, R0);
        a.aghi(R1, 1);
        a.csg(R0, R1, clock);
        a.jnz(&format!("{p}_stm_clk"));
        a.stg(R1, MemOperand::based(c, ctx::WV));

        // Phase 3: validate the read set — skipped when rv + 1 == wv, since
        // then no other transaction committed while we ran (TL2's fast
        // path). R3 = read-set byte offset, R2 = byte bound.
        a.lg(R0, MemOperand::based(c, ctx::RV));
        a.aghi(R0, 1);
        a.cgr(R0, R1);
        a.jz(&format!("{p}_stm_valok"));
        a.lg(R2, MemOperand::based(c, ctx::RC));
        a.sllg(R2, R2, 3);
        a.lghi(R3, 0);
        a.label(&format!("{p}_stm_val"));
        a.cgr(R3, R2);
        a.brc(NOT_LOW, &format!("{p}_stm_valok"));
        a.lg(R5, MemOperand::indexed(c, R3, ctx::RSET)); // stripe address
        a.ltg(R0, MemOperand::based(R5, 0));
        a.jl(&format!("{p}_stm_vlock"));
        a.cg(R0, MemOperand::based(c, ctx::RV)); // version ≤ rv?
        a.jh(&format!("{p}_stm_vfail"));
        a.j(&format!("{p}_stm_valn"));
        a.label(&format!("{p}_stm_vlock"));
        // Locked stripe: only valid if *we* hold it (a write to the same
        // stripe) — scan the write set's acquired markers (R1 = byte
        // offset, R4 = byte bound).
        a.lg(R4, MemOperand::based(c, ctx::WC));
        a.sllg(R4, R4, 5);
        a.lghi(R1, 0);
        a.label(&format!("{p}_stm_own"));
        a.cgr(R1, R4);
        a.brc(NOT_LOW, &format!("{p}_stm_vfail")); // not ours: conflict
        a.cg(R5, MemOperand::indexed(c, R1, ctx::WSET + 24));
        a.jz(&format!("{p}_stm_ownf"));
        a.aghi(R1, 32);
        a.j(&format!("{p}_stm_own"));
        a.label(&format!("{p}_stm_ownf"));
        // Ours: the pre-lock version is lockword − 2^63; check it ≤ rv.
        a.lghi(R1, 1);
        a.sllg(R1, R1, 63);
        a.sgr(R0, R1);
        a.cg(R0, MemOperand::based(c, ctx::RV));
        a.jh(&format!("{p}_stm_vfail"));
        a.label(&format!("{p}_stm_valn"));
        a.aghi(R3, 8);
        a.j(&format!("{p}_stm_val"));
        a.label(&format!("{p}_stm_vfail"));
        a.stm_note(stm_note::VAL_FAIL, R5);
        a.j(&format!("{p}_stm_abort"));
        a.label(&format!("{p}_stm_valok"));
        a.lg(R0, MemOperand::based(c, ctx::RC));
        a.stm_note(stm_note::VAL_PASS, R0);

        // Phase 4: write the redo log back in append order, so the newest
        // of duplicate writes to one address lands last.
        a.lg(R2, MemOperand::based(c, ctx::WC));
        a.sllg(R2, R2, 5);
        a.lghi(R3, 0);
        a.label(&format!("{p}_stm_wb"));
        a.cgr(R3, R2);
        a.brc(NOT_LOW, &format!("{p}_stm_wbd"));
        a.lg(R4, MemOperand::indexed(c, R3, ctx::WSET));
        a.lg(R5, MemOperand::indexed(c, R3, ctx::WSET + 8));
        a.stg(R5, MemOperand::based(R4, 0));
        a.aghi(R3, 32);
        a.j(&format!("{p}_stm_wb"));
        a.label(&format!("{p}_stm_wbd"));

        // Phase 5: release every acquired stripe with wv (clears the lock
        // bit and publishes the new version in one store).
        a.lg(R0, MemOperand::based(c, ctx::WV));
        a.lghi(R3, 0);
        a.label(&format!("{p}_stm_rel"));
        a.cgr(R3, R2);
        a.brc(NOT_LOW, &format!("{p}_stm_reld"));
        a.ltg(R4, MemOperand::indexed(c, R3, ctx::WSET + 24));
        a.jz(&format!("{p}_stm_reln"));
        a.stg(R0, MemOperand::based(R4, 0));
        a.stm_note(stm_note::LOCK_REL, R4);
        a.label(&format!("{p}_stm_reln"));
        a.aghi(R3, 32);
        a.j(&format!("{p}_stm_rel"));
        a.label(&format!("{p}_stm_reld"));

        a.label(&format!("{p}_stm_commit"));
        a.lg(R0, MemOperand::based(c, ctx::WC));
        a.stm_note(stm_note::COMMIT, R0);
        a.j(&format!("{p}_stm_done"));

        // Abort path: restore the version of every stripe acquired this
        // attempt (lockword − 2^63), note the abort, back off, retry.
        a.label(&format!("{p}_stm_abort"));
        a.lg(R2, MemOperand::based(c, ctx::WC));
        a.sllg(R2, R2, 5);
        a.lghi(R3, 0);
        a.lghi(R5, 1);
        a.sllg(R5, R5, 63);
        a.label(&format!("{p}_stm_ab"));
        a.cgr(R3, R2);
        a.brc(NOT_LOW, &format!("{p}_stm_abd"));
        a.ltg(R4, MemOperand::indexed(c, R3, ctx::WSET + 24));
        a.jz(&format!("{p}_stm_abn"));
        a.lg(R0, MemOperand::based(R4, 0));
        a.sgr(R0, R5);
        a.stg(R0, MemOperand::based(R4, 0));
        a.stm_note(stm_note::LOCK_REL, R4);
        a.label(&format!("{p}_stm_abn"));
        a.aghi(R3, 32);
        a.j(&format!("{p}_stm_ab"));
        a.label(&format!("{p}_stm_abd"));
        a.lg(R0, MemOperand::based(c, ctx::ATT));
        a.aghi(R0, 1);
        a.stg(R0, MemOperand::based(c, ctx::ATT));
        a.stm_note(stm_note::ABORT, R0);
        a.ppa(R0);
        a.j(&format!("{p}_stm_retry"));
        a.label(&format!("{p}_stm_done"));
    }

    /// Emits a hybrid transaction: a TBEGIN fast path whose STM-managed
    /// accesses go through [`HtmBody`] (subscribing to stripe locks and
    /// publishing stripe versions + the clock transactionally), falling back
    /// to the full software path ([`Self::emit_tx`]) after `retry_limit`
    /// transient aborts or immediately on a persistent one.
    ///
    /// `clk` is a register free across the hardware body; it carries the
    /// new clock value (0 until the first write, so read-only fast paths
    /// never touch — and never subscribe to — the clock line). The fallback
    /// transition is marked with a `FALLBACK` note whose simulator-side
    /// counter records the hardware abort code that forced it.
    #[allow(clippy::too_many_arguments)]
    pub fn emit_hybrid_tx<H, S>(
        &self,
        a: &mut Assembler,
        p: &str,
        clk: Reg,
        retry_limit: i64,
        spill: &[Reg],
        htm_body: H,
        stm_body: S,
    ) where
        H: FnOnce(&mut HtmBody),
        S: FnOnce(&mut TxBody),
    {
        assert!(
            clk != R0 && clk != R1 && clk != CTX_REG,
            "clk must avoid the scratch registers and the context pointer"
        );
        a.lghi(R0, 0);
        a.label(&format!("{p}_hretry"));
        a.lghi(clk, 0);
        a.tbegin(TbeginParams::new());
        a.jnz(&format!("{p}_habort"));
        {
            let mut h = HtmBody {
                a,
                stm: self,
                p: p.to_string(),
                n: 0,
                clk,
            };
            htm_body(&mut h);
        }
        // Publish the new clock value if anything was written; read-only
        // fast paths leave the clock line untouched.
        a.cghi(clk, 0);
        a.jz(&format!("{p}_hro"));
        a.stg(clk, MemOperand::absolute(self.layout.clock_addr));
        a.label(&format!("{p}_hro"));
        a.tend();
        a.j(&format!("{p}_hdone"));
        // A stripe the software path holds locked: transient — the lock is
        // released in bounded time, so retry (code 257 distinguishes it
        // from the elision ladder's lock-busy 256 in the abort statistics).
        a.label(&format!("{p}_hbusy"));
        a.tabort(257);
        a.label(&format!("{p}_habort"));
        a.jo(&format!("{p}_hfall"));
        a.aghi(R0, 1);
        a.cgij_ge(R0, retry_limit, &format!("{p}_hfall"));
        a.ppa(R0);
        a.j(&format!("{p}_hretry"));
        a.label(&format!("{p}_hfall"));
        a.stm_note(stm_note::FALLBACK, R0);
        self.emit_tx(a, p, spill, stm_body);
        a.label(&format!("{p}_hdone"));
    }
}

/// Access recorder handed to the body of [`Stm::emit_tx`]: `read` and
/// `write` emit the instrumented TL2 sequences; plain (transaction-private)
/// instructions go through [`TxBody::asm`].
pub struct TxBody<'a, 'b> {
    a: &'a mut Assembler,
    stm: &'b Stm,
    p: String,
    n: u32,
}

impl TxBody<'_, '_> {
    /// The underlying assembler, for uninstrumented instructions.
    pub fn asm(&mut self) -> &mut Assembler {
        self.a
    }

    /// The shared abort label (`{p}_stm_abort`), for bodies that bail out
    /// manually.
    pub fn abort_label(&self) -> String {
        format!("{}_stm_abort", self.p)
    }

    /// Emits a transactional 8-byte read: `dst = *addr`, validated TL2
    /// style. Checks the write set first (newest entry wins), so a
    /// transaction reads its own pending writes. Clobbers R0 and R1; `dst`
    /// must avoid R0, R1, and [`CTX_REG`] (`dst == addr` is fine — the
    /// address is consumed before the result lands).
    pub fn read(&mut self, dst: Reg, addr: Reg) {
        assert!(
            dst != R0 && dst != R1 && dst != CTX_REG,
            "dst {dst} is reserved"
        );
        assert!(
            addr != R0 && addr != R1 && addr != CTX_REG,
            "addr {addr} is reserved"
        );
        let c = CTX_REG;
        let u = format!("{}_r{}", self.p, self.n);
        self.n += 1;
        let a = &mut *self.a;
        // Write-set lookup, newest to oldest (R0 = byte offset).
        a.lg(R0, MemOperand::based(c, ctx::WC));
        a.sllg(R0, R0, 5);
        a.label(&format!("{u}_ws"));
        a.cghi(R0, 0);
        a.jz(&format!("{u}_rd"));
        a.aghi(R0, -32);
        a.cg(addr, MemOperand::indexed(c, R0, ctx::WSET));
        a.jnz(&format!("{u}_ws"));
        a.lg(dst, MemOperand::indexed(c, R0, ctx::WSET + 8)); // forwarded
        a.j(&format!("{u}_ok"));
        a.label(&format!("{u}_rd"));
        // TL2 read: v1 (unlocked, ≤ rv), data, stripe unchanged.
        self.stm.emit_stripe(a, R1, addr);
        a.ltg(R0, MemOperand::based(R1, 0));
        a.jl(&format!("{}_stm_abort", self.p));
        a.lg(dst, MemOperand::based(addr, 0));
        a.cg(R0, MemOperand::based(R1, 0));
        a.jnz(&format!("{}_stm_abort", self.p));
        a.cg(R0, MemOperand::based(c, ctx::RV));
        a.jh(&format!("{}_stm_abort", self.p));
        // Append the stripe address to the read set.
        a.lg(R0, MemOperand::based(c, ctx::RC));
        a.sllg(R0, R0, 3);
        a.stg(R1, MemOperand::indexed(c, R0, ctx::RSET));
        a.srlg(R0, R0, 3);
        a.aghi(R0, 1);
        a.stg(R0, MemOperand::based(c, ctx::RC));
        a.label(&format!("{u}_ok"));
    }

    /// Emits a transactional 8-byte write: appends `{addr, src, stripe, 0}`
    /// to the redo log (the store reaches memory at commit). Clobbers R0
    /// and R1; `src`/`addr` must avoid R0, R1, and [`CTX_REG`].
    pub fn write(&mut self, src: Reg, addr: Reg) {
        assert!(
            src != R0 && src != R1 && src != CTX_REG,
            "src {src} is reserved"
        );
        assert!(
            addr != R0 && addr != R1 && addr != CTX_REG,
            "addr {addr} is reserved"
        );
        let c = CTX_REG;
        let a = &mut *self.a;
        self.stm.emit_stripe(a, R1, addr);
        a.lg(R0, MemOperand::based(c, ctx::WC));
        a.sllg(R0, R0, 5);
        a.stg(addr, MemOperand::indexed(c, R0, ctx::WSET));
        a.stg(src, MemOperand::indexed(c, R0, ctx::WSET + 8));
        a.stg(R1, MemOperand::indexed(c, R0, ctx::WSET + 16));
        a.lghi(R1, 0);
        a.stg(R1, MemOperand::indexed(c, R0, ctx::WSET + 24));
        a.srlg(R0, R0, 5);
        a.aghi(R0, 1);
        a.stg(R0, MemOperand::based(c, ctx::WC));
    }
}

/// Access recorder for the hardware fast path of [`Stm::emit_hybrid_tx`]:
/// every STM-managed access tests (and thereby subscribes to) its stripe
/// lock, and writes publish the new stripe version so concurrent software
/// transactions validate correctly against hardware commits.
pub struct HtmBody<'a, 'b> {
    a: &'a mut Assembler,
    stm: &'b Stm,
    p: String,
    n: u32,
    clk: Reg,
}

impl HtmBody<'_, '_> {
    /// The underlying assembler, for transaction-private instructions.
    pub fn asm(&mut self) -> &mut Assembler {
        self.a
    }

    /// The label that aborts the hardware attempt with code 257 (stripe
    /// held by a software committer).
    pub fn busy_label(&self) -> String {
        format!("{}_hbusy", self.p)
    }

    /// Emits a fast-path read: subscribe to the stripe (abort if a software
    /// transaction holds it), then load. Clobbers R0 and R1.
    pub fn read(&mut self, dst: Reg, addr: Reg) {
        assert!(
            dst != R0 && dst != R1 && dst != CTX_REG,
            "dst {dst} is reserved"
        );
        let busy = self.busy_label();
        let a = &mut *self.a;
        self.stm.emit_stripe(a, R1, addr);
        a.ltg(R0, MemOperand::based(R1, 0));
        a.jl(&busy);
        a.lg(dst, MemOperand::based(addr, 0));
    }

    /// Emits a fast-path write: lazily claim the next clock value on the
    /// first write (subscribing to the clock line only in writer
    /// transactions), publish it as the stripe's version, then store the
    /// data. Clobbers R0 and R1.
    pub fn write(&mut self, src: Reg, addr: Reg) {
        assert!(
            src != R0 && src != R1 && src != CTX_REG,
            "src {src} is reserved"
        );
        assert!(
            src != self.clk && addr != self.clk,
            "clk register collides with operands"
        );
        let busy = self.busy_label();
        let u = format!("{}_hw{}", self.p, self.n);
        self.n += 1;
        let clk = self.clk;
        let a = &mut *self.a;
        a.cghi(clk, 0);
        a.jnz(&format!("{u}_have"));
        a.lg(clk, MemOperand::absolute(self.stm.layout.clock_addr));
        a.aghi(clk, 1);
        a.label(&format!("{u}_have"));
        self.stm.emit_stripe(a, R1, addr);
        a.ltg(R0, MemOperand::based(R1, 0));
        a.jl(&busy);
        a.stg(clk, MemOperand::based(R1, 0));
        a.stg(src, MemOperand::based(addr, 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ztm_mem::Address;
    use ztm_sim::SystemConfig;

    const VAR: u64 = 0x0100_0000;

    /// Emits `ops` STM increments of the word at `addr` per CPU.
    fn increment_program(stm: &Stm, addr: u64, ops: u64) -> ztm_isa::Program {
        let mut a = Assembler::new(0);
        a.lghi(R6, ops as i64);
        a.label("loop");
        a.lghi(R8, addr as i64);
        stm.emit_tx(&mut a, "inc", &[], |tx| {
            tx.read(R2, R8);
            tx.asm().aghi(R2, 1);
            tx.write(R2, R8);
        });
        a.brctg(R6, "loop");
        a.halt();
        a.assemble().expect("stm increment program assembles")
    }

    fn run_increments(cpus: usize, ops: u64, stripes: u64) -> (System, Stm) {
        let stm = Stm::with_layout(StmLayout::with_stripes(stripes));
        let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(7));
        let prog = increment_program(&stm, VAR, ops);
        sys.load_program_all(&prog);
        stm.layout.install(&mut sys);
        sys.run_until_halt(2_000_000_000);
        (sys, stm)
    }

    #[test]
    fn single_cpu_increments_commit() {
        let (sys, stm) = run_increments(1, 25, 1024);
        assert_eq!(sys.mem().load_u64(Address::new(VAR)), 25);
        let r = sys.report();
        assert_eq!(r.stm.commits, 25);
        assert_eq!(r.stm.aborts, 0, "uncontended transactions never abort");
        // Every commit locked exactly one stripe and bumped the clock once.
        assert_eq!(r.stm.lock_acquires, 25);
        assert_eq!(stm.layout.clock(&sys), 25);
    }

    #[test]
    fn contended_increments_are_atomic() {
        let (sys, stm) = run_increments(4, 25, 1024);
        assert_eq!(
            sys.mem().load_u64(Address::new(VAR)),
            100,
            "no increment may be lost"
        );
        let r = sys.report();
        assert_eq!(r.stm.commits, 100);
        assert!(r.stm.begins >= 100);
        assert_eq!(stm.layout.clock(&sys), 100);
        // The stripe the shared word maps to ends unlocked at version ≤ clock.
        let lock = stm.layout.stripe_lock_addr(VAR);
        let word = sys.mem().load_u64(Address::new(lock));
        assert!(word as i64 >= 0, "stripe left locked");
        assert!(word <= 100);
    }

    #[test]
    fn tiny_stripe_table_forces_conflicts_but_stays_atomic() {
        // Two stripes: every address collides with half the others; false
        // conflicts galore, yet atomicity must hold.
        let stm = Stm::with_layout(StmLayout::with_stripes(2));
        let mut sys = System::new(SystemConfig::with_cpus(6).seed(11));
        let mut a = Assembler::new(0);
        a.lghi(R6, 20);
        a.label("loop");
        a.rand_mod(R8, ztm_isa::RegOrImm::Imm(4));
        a.sllg(R8, R8, 8);
        a.aghi(R8, VAR as i64);
        stm.emit_tx(&mut a, "inc", &[], |tx| {
            tx.read(R2, R8);
            tx.asm().aghi(R2, 1);
            tx.write(R2, R8);
        });
        a.brctg(R6, "loop");
        a.halt();
        let prog = a.assemble().unwrap();
        sys.load_program_all(&prog);
        stm.layout.install(&mut sys);
        sys.run_until_halt(2_000_000_000);
        let sum: u64 = (0..4)
            .map(|i| sys.mem().load_u64(Address::new(VAR + i * 256)))
            .sum();
        assert_eq!(sum, 6 * 20, "increments survive stripe aliasing");
        assert_eq!(sys.report().stm.commits, 6 * 20);
    }

    #[test]
    fn read_after_write_sees_own_store() {
        // Transfer from an account to itself: the second read must observe
        // the first buffered write or money is created from nothing.
        let stm = Stm::new();
        let mut sys = System::new(SystemConfig::with_cpus(1));
        sys.mem_mut().store_u64(Address::new(VAR), 500);
        let mut a = Assembler::new(0);
        a.lghi(R8, VAR as i64);
        a.lghi(R9, VAR as i64);
        stm.emit_tx(&mut a, "xfer", &[], |tx| {
            tx.read(R2, R8);
            tx.asm().aghi(R2, -70);
            tx.write(R2, R8);
            tx.read(R2, R9);
            tx.asm().aghi(R2, 70);
            tx.write(R2, R9);
        });
        a.halt();
        let prog = a.assemble().unwrap();
        sys.load_program_all(&prog);
        stm.layout.install(&mut sys);
        sys.run_until_halt(1_000_000);
        assert_eq!(
            sys.mem().load_u64(Address::new(VAR)),
            500,
            "self-transfer must net to zero"
        );
    }

    #[test]
    fn read_only_transaction_takes_no_locks() {
        let stm = Stm::new();
        let mut sys = System::new(SystemConfig::with_cpus(1));
        sys.mem_mut().store_u64(Address::new(VAR), 42);
        let mut a = Assembler::new(0);
        a.lghi(R8, VAR as i64);
        stm.emit_tx(&mut a, "ro", &[], |tx| {
            tx.read(R2, R8);
            tx.asm().lgr(R9, R2); // commit clobbers R2–R5; park the result
        });
        a.halt();
        let prog = a.assemble().unwrap();
        sys.load_program_all(&prog);
        stm.layout.install(&mut sys);
        sys.run_until_halt(1_000_000);
        assert_eq!(sys.core(0).gr(R9), 42);
        let r = sys.report();
        assert_eq!(r.stm.commits, 1);
        assert_eq!(r.stm.lock_acquires, 0);
        assert_eq!(
            stm.layout.clock(&sys),
            0,
            "read-only commits skip the clock"
        );
    }

    #[test]
    fn hybrid_increments_are_atomic_and_use_the_fast_path() {
        let stm = Stm::new();
        let mut sys = System::new(SystemConfig::with_cpus(4).seed(3));
        let mut a = Assembler::new(0);
        a.lghi(R6, 25);
        a.label("loop");
        a.lghi(R8, VAR as i64);
        stm.emit_hybrid_tx(
            &mut a,
            "inc",
            R5,
            6,
            &[],
            |h| {
                h.read(R2, R8);
                h.asm().aghi(R2, 1);
                h.write(R2, R8);
            },
            |tx| {
                tx.read(R2, R8);
                tx.asm().aghi(R2, 1);
                tx.write(R2, R8);
            },
        );
        a.brctg(R6, "loop");
        a.halt();
        let prog = a.assemble().unwrap();
        sys.load_program_all(&prog);
        stm.layout.install(&mut sys);
        sys.run_until_halt(2_000_000_000);
        assert_eq!(sys.mem().load_u64(Address::new(VAR)), 100);
        let r = sys.report();
        assert!(r.tx.commits > 0, "hardware fast path must commit");
        assert_eq!(
            r.tx.commits + r.stm.commits,
            100,
            "every op commits exactly once, in hardware or software"
        );
        // Hardware commits publish the clock; software commits CSG it; the
        // final clock equals the number of writer commits either way.
        assert_eq!(stm.layout.clock(&sys), 100);
    }

    #[test]
    fn capacity_abort_escalates_to_software_fallback() {
        // 80 distinct cache lines overflow the 64-entry gathering store
        // cache: the hardware attempt dies with StoreOverflow (code 8,
        // CC3 = permanent), the ladder must skip its transient retries and
        // fall straight back to the software path, which has no footprint
        // limit and commits.
        const BASE: u64 = 0x7000_0000;
        const LINES: i64 = 80;
        let stm = Stm::new();
        let mut sys = System::new(SystemConfig::with_cpus(1).seed(11));
        let mut a = Assembler::new(0);
        stm.emit_hybrid_tx(
            &mut a,
            "cap",
            R9,
            6,
            &[],
            |h| {
                h.asm().lghi(R7, LINES);
                h.asm().lghi(R8, BASE as i64);
                h.asm().lghi(R2, 1);
                h.asm().label("cap_hloop");
                h.write(R2, R8);
                h.asm().aghi(R8, 256);
                h.asm().brctg(R7, "cap_hloop");
            },
            |tx| {
                tx.asm().lghi(R7, LINES);
                tx.asm().lghi(R8, BASE as i64);
                tx.asm().lghi(R2, 1);
                tx.asm().label("cap_sloop");
                tx.write(R2, R8);
                tx.asm().aghi(R8, 256);
                tx.asm().brctg(R7, "cap_sloop");
            },
        );
        a.halt();
        let prog = a.assemble().unwrap();
        sys.load_program_all(&prog);
        stm.layout.install(&mut sys);
        sys.run_until_halt(2_000_000_000);
        let r = sys.report();
        assert_eq!(r.tx.commits, 0, "the hardware attempt cannot fit");
        assert_eq!(r.stm.fallbacks, 1, "one escalation to software");
        assert_eq!(
            r.stm.fallback_codes.get(&8).copied(),
            Some(1),
            "the fallback is attributed to StoreOverflow (abort code 8)"
        );
        assert_eq!(r.stm.commits, 1, "the software path commits");
        for i in 0..LINES as u64 {
            assert_eq!(
                sys.mem().load_u64(Address::new(BASE + i * 256)),
                1,
                "line {i} written by the software commit"
            );
        }
    }

    #[test]
    fn stripe_mapping_matches_emitted_arithmetic() {
        let l = StmLayout::default();
        assert_eq!(l.stripe_lock_addr(0), l.lock_base);
        assert_eq!(l.stripe_lock_addr(8), l.lock_base + 8);
        assert_eq!(l.stripe_lock_addr(8 * 1024), l.lock_base);
        let small = StmLayout::with_stripes(2);
        assert_eq!(small.stripe_lock_addr(24), small.lock_base + 8);
    }
}
