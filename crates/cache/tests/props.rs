//! Property tests for the cache substrate: the gathering store cache against
//! a reference byte model, LRU behavior of the set-associative directory,
//! and coherence-fabric invariants.

use proptest::prelude::*;
use std::collections::HashMap;
use ztm_cache::{CpuId, Fabric, FetchKind, SetAssoc, StoreCache, StoreOutcome, Topology, XiKind};
use ztm_mem::{Address, LineAddr, MainMemory};

/// One generated store: offset, 1–8 bytes, and whether it is an NTSTG.
/// Normal stores live in bytes 0..512 and NTSTG stores in 512..1024 — the
/// architecture leaves overlap between the two unpredictable (§II.A), so
/// the generator keeps them disjoint.
fn store_strategy() -> impl Strategy<Value = (u64, Vec<u8>, bool)> {
    (
        0u64..512,
        prop::collection::vec(any::<u8>(), 1..9),
        any::<bool>(),
    )
        .prop_map(|(off, bytes, ntstg)| {
            if ntstg {
                (512 + (off & !7), bytes, true)
            } else {
                // Keep the store inside one 128-byte granule.
                let off = off.min(512 - bytes.len() as u64);
                let adjusted = off - (off % 128 + bytes.len() as u64).saturating_sub(128);
                (adjusted, bytes, false)
            }
        })
}

proptest! {
    /// Committing a transaction applies exactly the transactional bytes;
    /// aborting applies exactly the NTSTG-marked doublewords. Compared
    /// against a reference byte map.
    #[test]
    fn store_cache_commit_matches_reference(
        stores in prop::collection::vec(store_strategy(), 1..40),
        commit in any::<bool>(),
    ) {
        let mut sc = StoreCache::new(64);
        let mut mem = MainMemory::new();
        let mut reference: HashMap<u64, u8> = HashMap::new();
        sc.begin_tx();
        for (off, bytes, ntstg) in &stores {
            // NTSTG must be doubleword-aligned 8-byte stores; emulate that.
            let (addr, data, nt) = if *ntstg {
                let a = off & !7;
                (a, vec![0xAB; 8], true)
            } else {
                (*off, bytes.clone(), false)
            };
            let out = sc.store(Address::new(addr), &data, true, nt);
            prop_assert_ne!(out, StoreOutcome::Overflow, "64 entries cover 1KB");
            if commit || nt {
                for (i, b) in data.iter().enumerate() {
                    reference.insert(addr + i as u64, *b);
                }
            }
        }
        let writes = if commit { sc.commit_tx() } else { sc.abort_tx() };
        for w in writes {
            w.apply_to(&mut mem);
        }
        for a in 0u64..1024 {
            let mut buf = [0u8; 1];
            mem.load_bytes(Address::new(a), &mut buf);
            let expect = reference.get(&a).copied().unwrap_or(0);
            prop_assert_eq!(buf[0], expect, "byte {}", a);
        }
    }

    /// The store cache never reports more entries than its capacity, and
    /// overflow is reported exactly when all entries are transactional and
    /// a new granule is needed.
    #[test]
    fn store_cache_capacity_invariant(
        granules in prop::collection::vec(0u64..96, 1..96),
    ) {
        let mut sc = StoreCache::new(16);
        sc.begin_tx();
        let mut distinct: Vec<u64> = Vec::new();
        for g in granules {
            let out = sc.store(Address::new(g * 128), &[1], true, false);
            let is_new = !distinct.contains(&g);
            if is_new && distinct.len() == 16 {
                prop_assert_eq!(out, StoreOutcome::Overflow);
            } else {
                prop_assert_ne!(out, StoreOutcome::Overflow);
                if is_new {
                    distinct.push(g);
                }
            }
            prop_assert!(sc.len() <= 16);
        }
    }

    /// SetAssoc with uniform priority implements true LRU per class:
    /// a line inserted and re-touched more recently than `ways` other
    /// same-class lines is still present.
    #[test]
    fn set_assoc_keeps_recently_used(
        touches in prop::collection::vec(0u64..32, 1..100),
    ) {
        let sets = 4usize;
        let ways = 3usize;
        let mut dir: SetAssoc<u64> = SetAssoc::new(sets, ways);
        // Reference: per-class recency list.
        let mut recency: HashMap<usize, Vec<u64>> = HashMap::new();
        for t in touches {
            let line = LineAddr::new(t);
            let class = line.congruence_class(sets);
            if dir.get(line).is_none() {
                dir.insert(line, t, |_, _| 0);
            }
            let list = recency.entry(class).or_default();
            list.retain(|&x| x != t);
            list.push(t);
            if list.len() > ways {
                list.remove(0);
            }
        }
        for (class, list) in &recency {
            for &t in list {
                prop_assert!(
                    dir.contains(LineAddr::new(t)),
                    "line {} of class {} should still be resident",
                    t,
                    class
                );
            }
        }
    }

    /// Fabric invariant: after any sequence of fetches with fully accepted
    /// XIs, each line has either one exclusive owner and no sharers, or no
    /// owner — and the owner is always the most recent exclusive requester.
    #[test]
    fn fabric_ownership_invariants(
        reqs in prop::collection::vec((0usize..6, 0u64..8, any::<bool>()), 1..80),
    ) {
        let mut fabric = Fabric::new(Topology::zec12(6));
        let mut last_excl: HashMap<u64, usize> = HashMap::new();
        for (cpu, line_idx, excl) in reqs {
            let line = LineAddr::new(line_idx);
            let kind = if excl { FetchKind::Exclusive } else { FetchKind::Shared };
            let plan = fabric.plan_fetch(CpuId(cpu), line, kind);
            for (target, xikind) in plan.xis {
                prop_assert_ne!(target, CpuId(cpu), "never XI yourself");
                fabric.apply_xi_result(target, line, xikind, true);
            }
            let _ = fabric.grant(CpuId(cpu), line, kind);
            if excl {
                last_excl.insert(line_idx, cpu);
            } else {
                last_excl.remove(&line_idx);
            }
            let (owner, sharers) = fabric.holders(line);
            if let Some(o) = owner {
                prop_assert!(sharers.is_empty(), "owner excludes sharers");
                if excl {
                    prop_assert_eq!(o, CpuId(cpu));
                }
            }
            // No duplicate sharers.
            let mut s = sharers.clone();
            s.sort();
            s.dedup();
            prop_assert_eq!(s.len(), sharers.len());
        }
    }

    /// Rejectability is the architecture's: only exclusive and demote XIs
    /// can be stiff-armed.
    #[test]
    fn xi_rejectability_total(kind in prop::sample::select(vec![
        XiKind::Exclusive, XiKind::Demote, XiKind::ReadOnly, XiKind::Lru
    ])) {
        let expected = matches!(kind, XiKind::Exclusive | XiKind::Demote);
        prop_assert_eq!(kind.rejectable(), expected);
    }

    /// [`LatencyModel::min_cross_boundary_latency`] is a true lower bound:
    /// for *any* latency values, any topology, and any fetch whose data
    /// source sits beyond a shard boundary (another MCM, or another chip of
    /// the same MCM when the machine is a single book), the planned fetch
    /// cost is at least the advertised boundary minimum. This is the bound
    /// the sharded simulator's determinism argument cites: no cross-shard
    /// install can complete earlier than `access clock + this latency`.
    #[test]
    fn cross_boundary_fetch_never_undercuts_the_minimum(
        l3 in 1u64..10_000,
        l4 in 1u64..10_000,
        cross in 1u64..10_000,
        memory in 1u64..10_000,
        intervention in 0u64..1_000,
        cpus in 2usize..64,
        per_chip in 1usize..8,
        chips_per_mcm in 1usize..5,
        req_pick in any::<usize>(),
        src_pick in any::<usize>(),
        src_kind in 0u8..4,
    ) {
        let mut lat = ztm_cache::LatencyModel::zec12();
        lat.l3_hit = l3;
        lat.l4_hit = l4;
        lat.cross_mcm = cross;
        lat.memory = memory;
        lat.intervention = intervention;
        // The topology supports at most 8 MCMs.
        let cpus = cpus.min(per_chip * chips_per_mcm * 8);
        let topo = Topology::new(cpus, per_chip, chips_per_mcm);
        let req = CpuId(req_pick % cpus);
        let other = CpuId(src_pick % cpus);
        let source = match src_kind {
            0 => ztm_cache::Source::Cpu(other),
            1 => ztm_cache::Source::L3(topo.chip_of(other)),
            2 => ztm_cache::Source::L4(topo.mcm_of(other)),
            _ => ztm_cache::Source::Memory,
        };
        // Which boundary (if any) the source sits beyond.
        let crosses_book = match source {
            ztm_cache::Source::Cpu(o) => topo.mcm_of(req) != topo.mcm_of(o),
            ztm_cache::Source::L3(c) => topo.mcm_of(req) != topo.mcm_of_chip(c),
            ztm_cache::Source::L4(m) => topo.mcm_of(req) != m,
            ztm_cache::Source::Memory => true,
        };
        let crosses_chip = match source {
            ztm_cache::Source::Cpu(o) => topo.chip_of(req) != topo.chip_of(o),
            ztm_cache::Source::L3(c) => topo.chip_of(req) != c,
            ztm_cache::Source::L4(_) => true,
            ztm_cache::Source::Memory => true,
        };
        let cost = lat.fetch(&topo, req, source);
        if crosses_book {
            prop_assert!(cost >= lat.min_cross_boundary_latency(false),
                "cross-book fetch {cost} under floor");
        } else if crosses_chip {
            // The chip-level boundary is the shard boundary of a
            // single-book machine, where every crossing stays on-MCM.
            prop_assert!(cost >= lat.min_cross_boundary_latency(true),
                "cross-chip fetch {cost} under floor");
        }
    }
}
