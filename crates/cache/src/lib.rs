//! zEC12 cache hierarchy, coherence fabric, and gathering store cache.
//!
//! This crate is the memory-system substrate on which the ztm Transactional
//! Execution facility is built. It models, structurally, the machine described
//! in §III.A/§III.C/§III.D of the paper:
//!
//! * **Topology** ([`Topology`]): up to 144 cores — 6 cores per CP chip
//!   sharing an L3, 6 chips per multi-chip module (MCM) sharing an L4, up to
//!   4 MCMs in one coherent SMP.
//! * **Private cache unit** ([`PrivateCache`]): the per-CPU L1 (96 KB,
//!   6-way, 256-byte lines, 64 rows) and L2 (1 MB, 8-way, 512 rows), both
//!   store-through and inclusive. Each L1 directory entry carries the paper's
//!   **tx-read** and **tx-dirty** bits; a 64-row **LRU-extension vector**
//!   extends the transactional read footprint to L2 capacity (§III.C).
//! * **Gathering store cache** ([`StoreCache`]): 64 entries × 128 bytes with
//!   byte-precise valid bits; buffers transactional stores until commit, marks
//!   NTSTG doublewords so they survive aborts, and rejects XIs that compare to
//!   active transactional entries (§III.D).
//! * **Coherence fabric** ([`Fabric`]): a MESI-variant directory issuing
//!   cross-interrogates (XIs — exclusive, demote, read-only, LRU) with
//!   support for XI *reject* ("stiff-arming") and the reject-counter hang
//!   avoidance of §III.C.
//! * **Latency model** ([`LatencyModel`]): the cycle costs of hits and
//!   cache-to-cache transfers at every distance, parameterized from the
//!   paper's published L1/L2 numbers.
//!
//! The crate knows nothing about instructions or transactions as such — it
//! exposes footprint events ([`FootprintEvent`]) that the `ztm-core`
//! transaction engine converts into architected aborts.

mod fabric;
mod geometry;
mod latency;
mod private;
mod set_assoc;
mod store_cache;
mod topology;
mod xi;

pub use fabric::{Fabric, FetchKind, FetchPlan, Source};
pub use geometry::CacheGeometry;
pub use latency::LatencyModel;
pub use private::{AccessClass, CohState, InstallOutcome, LocalHit, PrivateCache, XiOutcome};
pub use set_assoc::SetAssoc;
pub use store_cache::{DrainWrite, StoreCache, StoreOutcome};
pub use topology::{ChipId, CpuId, Distance, McmId, Topology};
pub use xi::{FootprintEvent, Xi, XiKind, XiResponse};
