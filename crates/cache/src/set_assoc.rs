//! A generic set-associative directory with true-LRU replacement.

use ztm_mem::LineAddr;

#[derive(Debug, Clone)]
struct Slot<E> {
    line: LineAddr,
    lru: u64,
    entry: E,
}

/// A journaled copy of one congruence class's slot row.
type PreImageRow<E> = Box<[Option<Slot<E>>]>;

/// First-touch undo journal for speculative execution (the sharded
/// simulator's epoch windows). While armed, the first mutation of each
/// congruence class records the class's pre-image row; rollback restores
/// the recorded rows in reverse order plus the scalar LRU state captured at
/// arm time. Rows are epoch-stamped in `seen` so re-arming never scans or
/// reallocates the per-class table.
#[derive(Debug, Clone)]
struct UndoLog<E> {
    armed: bool,
    /// Current arm generation; a class whose `seen` stamp matches has
    /// already been journaled this epoch.
    epoch: u64,
    seen: Vec<u64>,
    /// `(class, pre-image row)` in first-touch order.
    rows: Vec<(u32, PreImageRow<E>)>,
    stamp: u64,
    hot: Option<(LineAddr, usize)>,
}

/// A set-associative directory keyed by [`LineAddr`].
///
/// Used for both the L1 and L2 directories. Replacement is true LRU within a
/// congruence class, refined by an eviction-priority function supplied at
/// insert time: the victim is the slot with the *lowest* priority, ties
/// broken by least-recent use. This is how the private cache prefers to evict
/// non-transactional lines before transactional ones (§III.D requires
/// tx-dirty lines to stay L2-resident).
///
/// # Examples
///
/// ```
/// use ztm_cache::SetAssoc;
/// use ztm_mem::LineAddr;
///
/// let mut dir: SetAssoc<u32> = SetAssoc::new(4, 2);
/// assert!(dir.insert(LineAddr::new(0), 10, |_, _| 0).is_none());
/// assert!(dir.insert(LineAddr::new(4), 20, |_, _| 0).is_none());
/// // Third line in the same class evicts the LRU entry (line 0).
/// let evicted = dir.insert(LineAddr::new(8), 30, |_, _| 0);
/// assert_eq!(evicted, Some((LineAddr::new(0), 10)));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssoc<E> {
    /// Flat `sets × ways` slot storage: row `c` occupies
    /// `slots[c*ways .. (c+1)*ways]`. One contiguous allocation — a lookup
    /// touches a single row instead of chasing a per-set `Vec` — with the
    /// invariant that each row's occupied slots form a compacted prefix
    /// (every `Some` precedes every `None`), so scans stop at the first
    /// empty slot. Slot order within a row reproduces the push/swap-remove
    /// order a per-set `Vec` would have.
    slots: Vec<Option<Slot<E>>>,
    sets: usize,
    ways: usize,
    /// `sets - 1` when `sets` is a power of two (the common geometries); the
    /// class is then a mask instead of a `u64` modulo on every access.
    pow2_mask: Option<u64>,
    stamp: u64,
    /// Most-recently-touched slot `(line, flat slot index)` — the O(1) fast
    /// path for the repeated same-line lookups of spin loops. Invariant:
    /// when set, that slot holds `line` AND `line` carries the
    /// directory-wide maximum LRU stamp (it was set by the most recent
    /// `get`/`insert`), so serving a repeat `get` from it without
    /// re-stamping cannot change any row's relative LRU order. Any
    /// remove or slot move invalidates it.
    hot: Option<(LineAddr, usize)>,
    /// Allocated lazily on the first [`undo_arm`](Self::undo_arm); `None`
    /// costs nothing on directories that never speculate (the disarmed
    /// check on every mutator is a single branch).
    undo: Option<Box<UndoLog<E>>>,
}

impl<E> SetAssoc<E> {
    /// Creates a directory with `sets` congruence classes of `ways` slots.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "geometry must be non-zero");
        SetAssoc {
            slots: (0..sets * ways).map(|_| None).collect(),
            sets,
            ways,
            pow2_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            stamp: 0,
            hot: None,
            undo: None,
        }
    }

    /// Number of congruence classes.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The congruence class of a line in this directory.
    pub fn class_of(&self, line: LineAddr) -> usize {
        match self.pow2_mask {
            Some(mask) => (line.index() & mask) as usize,
            None => line.congruence_class(self.sets),
        }
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    fn row(&self, class: usize) -> &[Option<Slot<E>>] {
        &self.slots[class * self.ways..(class + 1) * self.ways]
    }

    fn row_mut(&mut self, class: usize) -> &mut [Option<Slot<E>>] {
        let ways = self.ways;
        &mut self.slots[class * ways..(class + 1) * ways]
    }

    /// Looks up a line without touching LRU state.
    pub fn peek(&self, line: LineAddr) -> Option<&E> {
        if let Some((hot_line, idx)) = self.hot {
            if hot_line == line {
                return self.slots[idx].as_ref().map(|s| &s.entry);
            }
        }
        self.row(self.class_of(line))
            .iter()
            .map_while(|s| s.as_ref())
            .find(|s| s.line == line)
            .map(|s| &s.entry)
    }

    /// Looks up a line, marking it most-recently-used.
    pub fn get(&mut self, line: LineAddr) -> Option<&mut E>
    where
        E: Clone,
    {
        let at = self.get_index(line)?;
        self.slots[at].as_mut().map(|s| &mut s.entry)
    }

    /// [`get`](Self::get) by flat slot index: identical LRU/stamp effects
    /// (a stamp is consumed even on a miss, matching `get`), but returns the
    /// slot position so callers that need the entry *and* other fields of
    /// their own struct can split the borrows.
    pub fn get_index(&mut self, line: LineAddr) -> Option<usize>
    where
        E: Clone,
    {
        if let Some((hot_line, idx)) = self.hot {
            if hot_line == line {
                // Already the directory-wide MRU (see `hot`): re-stamping
                // would not change any relative order, so skip it.
                return Some(idx);
            }
        }
        let stamp = self.next_stamp();
        let class = self.class_of(line);
        let ways = self.ways;
        let base = class * ways;
        let mut found = None;
        for at in base..base + ways {
            match self.slots[at].as_ref() {
                Some(slot) if slot.line == line => {
                    found = Some(at);
                    break;
                }
                Some(_) => {}
                None => break,
            }
        }
        let at = found?;
        self.undo_mark(class);
        let slot = self.slots[at].as_mut().expect("found slot is occupied");
        slot.lru = stamp;
        self.hot = Some((line, at));
        Some(at)
    }

    /// Locates a line without touching LRU state, returning its flat slot
    /// index (the no-stamp analogue of [`get_index`](Self::get_index)).
    pub fn find(&self, line: LineAddr) -> Option<usize> {
        if let Some((hot_line, idx)) = self.hot {
            if hot_line == line {
                return Some(idx);
            }
        }
        let class = self.class_of(line);
        let ways = self.ways;
        let base = class * ways;
        for at in base..base + ways {
            match self.slots[at].as_ref() {
                Some(slot) if slot.line == line => return Some(at),
                Some(_) => {}
                None => break,
            }
        }
        None
    }

    /// Marks the slot found by [`find`](Self::find) most-recently-used —
    /// exactly the effect `get` would have had on a hit (hot-slot repeats
    /// skip the stamp, as in `get`).
    ///
    /// # Panics
    ///
    /// Panics if `at` does not hold an occupied slot.
    pub fn touch_index(&mut self, at: usize)
    where
        E: Clone,
    {
        let line = self.slots[at]
            .as_ref()
            .expect("touched slot is occupied")
            .line;
        if self.hot == Some((line, at)) {
            return;
        }
        let stamp = self.next_stamp();
        self.undo_mark(at / self.ways);
        let slot = self.slots[at].as_mut().expect("touched slot is occupied");
        slot.lru = stamp;
        self.hot = Some((line, at));
    }

    /// The entry at a flat slot index returned by
    /// [`find`](Self::find)/[`get_index`](Self::get_index).
    ///
    /// # Panics
    ///
    /// Panics if `at` does not hold an occupied slot.
    pub fn entry_at(&self, at: usize) -> &E {
        &self.slots[at]
            .as_ref()
            .expect("indexed slot is occupied")
            .entry
    }

    /// Mutable access to the entry at a flat slot index.
    ///
    /// # Panics
    ///
    /// Panics if `at` does not hold an occupied slot.
    pub fn entry_at_mut(&mut self, at: usize) -> &mut E
    where
        E: Clone,
    {
        self.undo_mark(at / self.ways);
        &mut self.slots[at]
            .as_mut()
            .expect("indexed slot is occupied")
            .entry
    }

    /// Mutable lookup without touching LRU state.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut E>
    where
        E: Clone,
    {
        if let Some((hot_line, idx)) = self.hot {
            if hot_line == line {
                // The caller receives `&mut`: journal even the hot row.
                self.undo_mark(idx / self.ways);
                return self.slots[idx].as_mut().map(|s| &mut s.entry);
            }
        }
        let class = self.class_of(line);
        if self.undo_armed() && self.find(line).is_some() {
            self.undo_mark(class);
        }
        self.row_mut(class)
            .iter_mut()
            .map_while(|s| s.as_mut())
            .find(|s| s.line == line)
            .map(|s| &mut s.entry)
    }

    /// Whether the line is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Whether `line` occupies the hot (directory-wide most-recently-used)
    /// slot. A repeat lookup of the hot line re-stamps nothing, so a walk of
    /// it can be elided without perturbing LRU order — the precondition the
    /// line-window coalescing in `ztm-sim` checks before arming.
    pub fn is_hot(&self, line: LineAddr) -> bool {
        matches!(self.hot, Some((hot_line, _)) if hot_line == line)
    }

    /// Inserts a line, returning the evicted `(line, entry)` if the class was
    /// full. The victim is the present slot with the lowest
    /// `evict_priority(line, entry)`, ties broken by LRU.
    ///
    /// # Panics
    ///
    /// Panics if the line is already present (callers must use
    /// [`get`](Self::get)/[`peek_mut`](Self::peek_mut) to update entries).
    pub fn insert(
        &mut self,
        line: LineAddr,
        entry: E,
        evict_priority: impl Fn(LineAddr, &E) -> u8,
    ) -> Option<(LineAddr, E)>
    where
        E: Clone,
    {
        assert!(
            !self.contains(line),
            "line {line} already present in directory"
        );
        let stamp = self.next_stamp();
        let class = self.class_of(line);
        self.undo_mark(class);
        // Slots may move below and a victim may leave; the new line becomes
        // the MRU either way.
        self.hot = None;
        let row = self.row_mut(class);
        let filled = row.iter().take_while(|s| s.is_some()).count();
        let (evicted, at) = if filled == row.len() {
            let victim = row
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| {
                    let s = s.as_ref().expect("full row has no empty slots");
                    (evict_priority(s.line, &s.entry), s.lru)
                })
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            let slot = row[victim].take().expect("victim slot is occupied");
            // Compact like `Vec::swap_remove`: the last slot fills the hole.
            if victim != filled - 1 {
                row[victim] = row[filled - 1].take();
            }
            (Some((slot.line, slot.entry)), filled - 1)
        } else {
            (None, filled)
        };
        row[at] = Some(Slot {
            line,
            lru: stamp,
            entry,
        });
        self.hot = Some((line, class * self.ways + at));
        evicted
    }

    /// Previews the line [`insert`](Self::insert) would evict for `line`
    /// under the same priority function, touching nothing: `None` when the
    /// line is already present or its class still has a free way. The shard
    /// classifier uses it to enumerate which CPUs an L3 insert could send
    /// LRU XIs to before admitting a step into a speculative epoch.
    pub fn peek_victim(
        &self,
        line: LineAddr,
        evict_priority: impl Fn(LineAddr, &E) -> u8,
    ) -> Option<LineAddr> {
        if self.contains(line) {
            return None;
        }
        let row = self.row(self.class_of(line));
        if row.iter().any(|s| s.is_none()) {
            return None;
        }
        row.iter()
            .min_by_key(|s| {
                let s = s.as_ref().expect("full row has no empty slots");
                (evict_priority(s.line, &s.entry), s.lru)
            })
            .map(|s| s.as_ref().expect("full row has no empty slots").line)
    }

    /// Removes a line, returning its entry.
    pub fn remove(&mut self, line: LineAddr) -> Option<E>
    where
        E: Clone,
    {
        self.hot = None;
        let class = self.class_of(line);
        if self.undo_armed() && self.find(line).is_some() {
            self.undo_mark(class);
        }
        let row = self.row_mut(class);
        let filled = row.iter().take_while(|s| s.is_some()).count();
        let idx = row[..filled]
            .iter()
            .position(|s| s.as_ref().expect("prefix slot is occupied").line == line)?;
        let slot = row[idx].take().expect("found slot is occupied");
        // Compact like `Vec::swap_remove`.
        if idx != filled - 1 {
            row[idx] = row[filled - 1].take();
        }
        Some(slot.entry)
    }

    /// Iterates over `(line, entry)` pairs of one congruence class.
    pub fn iter_class(&self, class: usize) -> impl Iterator<Item = (LineAddr, &E)> {
        self.row(class)
            .iter()
            .map_while(|s| s.as_ref())
            .map(|s| (s.line, &s.entry))
    }

    /// Iterates over all `(line, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &E)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref())
            .map(|s| (s.line, &s.entry))
    }

    /// Mutable iteration over all `(line, entry)` pairs. Not undo-journaled:
    /// callers must not use it while an undo epoch is armed.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut E)> {
        debug_assert!(!self.undo_armed(), "iter_mut bypasses the undo journal");
        self.slots
            .iter_mut()
            .filter_map(|s| s.as_mut())
            .map(|s| (s.line, &mut s.entry))
    }

    // ------------------------------------------------------------------
    // Speculative-epoch undo journal
    // ------------------------------------------------------------------

    fn undo_armed(&self) -> bool {
        self.undo.as_ref().is_some_and(|u| u.armed)
    }

    /// Journals the pre-image of `class` on its first mutation of the
    /// current epoch. A no-op while disarmed (one branch).
    #[inline]
    fn undo_mark(&mut self, class: usize)
    where
        E: Clone,
    {
        let Some(u) = self.undo.as_deref_mut() else {
            return;
        };
        if !u.armed || u.seen[class] == u.epoch {
            return;
        }
        u.seen[class] = u.epoch;
        let base = class * self.ways;
        let row: PreImageRow<E> = self.slots[base..base + self.ways].into();
        u.rows.push((class as u32, row));
    }

    /// Starts an undo epoch: scalar LRU state is captured now and each
    /// congruence class's pre-image row on its first mutation, until
    /// [`undo_rollback`](Self::undo_rollback) or
    /// [`undo_discard`](Self::undo_discard) closes the epoch.
    ///
    /// # Panics
    ///
    /// Panics if an epoch is already armed.
    pub fn undo_arm(&mut self) {
        let sets = self.sets;
        let stamp = self.stamp;
        let hot = self.hot;
        let u = self.undo.get_or_insert_with(|| {
            Box::new(UndoLog {
                armed: false,
                epoch: 0,
                seen: vec![0; sets],
                rows: Vec::new(),
                stamp: 0,
                hot: None,
            })
        });
        assert!(!u.armed, "undo_arm while an epoch is armed");
        u.armed = true;
        u.epoch += 1;
        u.stamp = stamp;
        u.hot = hot;
        debug_assert!(u.rows.is_empty());
    }

    /// Restores every journaled row (in reverse first-touch order) and the
    /// scalar LRU state captured at arm time, closing the epoch.
    ///
    /// # Panics
    ///
    /// Panics if no epoch is armed.
    pub fn undo_rollback(&mut self) {
        let u = self
            .undo
            .as_deref_mut()
            .expect("undo_rollback while disarmed");
        assert!(u.armed, "undo_rollback while disarmed");
        u.armed = false;
        for (class, row) in u.rows.drain(..).rev() {
            let base = class as usize * self.ways;
            for (i, s) in row.into_vec().into_iter().enumerate() {
                self.slots[base + i] = s;
            }
        }
        self.stamp = u.stamp;
        self.hot = u.hot;
    }

    /// Drops the journal without restoring anything (the speculation
    /// committed), closing the epoch. Row capacity is retained for re-arm.
    ///
    /// # Panics
    ///
    /// Panics if no epoch is armed.
    pub fn undo_discard(&mut self) {
        let u = self
            .undo
            .as_deref_mut()
            .expect("undo_discard while disarmed");
        assert!(u.armed, "undo_discard while disarmed");
        u.armed = false;
        u.rows.clear();
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the directory holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(_: LineAddr, _: &u32) -> u8 {
        0
    }

    #[test]
    fn insert_and_lookup() {
        let mut d: SetAssoc<u32> = SetAssoc::new(8, 2);
        d.insert(LineAddr::new(1), 11, flat);
        assert_eq!(d.peek(LineAddr::new(1)), Some(&11));
        assert!(d.contains(LineAddr::new(1)));
        assert!(!d.contains(LineAddr::new(9)));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut d: SetAssoc<u32> = SetAssoc::new(1, 2);
        d.insert(LineAddr::new(0), 0, flat);
        d.insert(LineAddr::new(1), 1, flat);
        // Touch line 0 so line 1 becomes LRU.
        d.get(LineAddr::new(0));
        let ev = d.insert(LineAddr::new(2), 2, flat);
        assert_eq!(ev, Some((LineAddr::new(1), 1)));
    }

    #[test]
    fn eviction_priority_overrides_lru() {
        let mut d: SetAssoc<u32> = SetAssoc::new(1, 2);
        d.insert(LineAddr::new(0), 0, flat);
        d.insert(LineAddr::new(1), 1, flat);
        d.get(LineAddr::new(0)); // line 1 is LRU...
                                 // ...but priority protects it (entry==1 gets high priority).
        let ev = d.insert(LineAddr::new(2), 2, |_, e| if *e == 1 { 9 } else { 0 });
        assert_eq!(ev, Some((LineAddr::new(0), 0)));
    }

    #[test]
    fn remove_returns_entry() {
        let mut d: SetAssoc<u32> = SetAssoc::new(4, 2);
        d.insert(LineAddr::new(5), 55, flat);
        assert_eq!(d.remove(LineAddr::new(5)), Some(55));
        assert_eq!(d.remove(LineAddr::new(5)), None);
        assert!(d.is_empty());
    }

    #[test]
    fn classes_are_independent() {
        let mut d: SetAssoc<u32> = SetAssoc::new(2, 1);
        d.insert(LineAddr::new(0), 0, flat);
        // Line 1 maps to class 1; no eviction of line 0.
        assert!(d.insert(LineAddr::new(1), 1, flat).is_none());
        assert_eq!(d.len(), 2);
        let ev = d.insert(LineAddr::new(2), 2, flat); // class 0 again
        assert_eq!(ev, Some((LineAddr::new(0), 0)));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_insert_panics() {
        let mut d: SetAssoc<u32> = SetAssoc::new(2, 1);
        d.insert(LineAddr::new(0), 0, flat);
        d.insert(LineAddr::new(0), 1, flat);
    }

    #[test]
    fn undo_rollback_restores_rows_and_lru_order() {
        let mut d: SetAssoc<u32> = SetAssoc::new(2, 2);
        d.insert(LineAddr::new(0), 0, flat);
        d.insert(LineAddr::new(2), 2, flat);
        d.get(LineAddr::new(0)); // line 2 becomes LRU in class 0
        d.undo_arm();
        *d.get(LineAddr::new(2)).unwrap() = 99; // re-stamps: line 0 now LRU
        d.insert(LineAddr::new(4), 4, flat); // evicts line 0
        d.insert(LineAddr::new(1), 1, flat); // untouched class 1... journaled too
        d.remove(LineAddr::new(1));
        d.undo_rollback();
        assert_eq!(d.peek(LineAddr::new(0)), Some(&0));
        assert_eq!(d.peek(LineAddr::new(2)), Some(&2), "entry edit undone");
        assert!(!d.contains(LineAddr::new(4)));
        assert!(!d.contains(LineAddr::new(1)));
        // LRU order restored: inserting now evicts line 2 again, not line 0.
        let ev = d.insert(LineAddr::new(4), 4, flat);
        assert_eq!(ev, Some((LineAddr::new(2), 2)));
    }

    #[test]
    fn undo_discard_keeps_mutations() {
        let mut d: SetAssoc<u32> = SetAssoc::new(2, 2);
        d.undo_arm();
        d.insert(LineAddr::new(0), 7, flat);
        d.undo_discard();
        assert_eq!(d.peek(LineAddr::new(0)), Some(&7));
        // Re-arm after a closed epoch works and journals fresh pre-images.
        d.undo_arm();
        d.remove(LineAddr::new(0));
        d.undo_rollback();
        assert_eq!(d.peek(LineAddr::new(0)), Some(&7));
    }

    #[test]
    fn peek_victim_matches_insert() {
        let mut d: SetAssoc<u32> = SetAssoc::new(1, 2);
        d.insert(LineAddr::new(0), 0, flat);
        assert_eq!(d.peek_victim(LineAddr::new(1), flat), None, "free way");
        d.insert(LineAddr::new(1), 1, flat);
        assert_eq!(d.peek_victim(LineAddr::new(1), flat), None, "present");
        let predicted = d.peek_victim(LineAddr::new(2), flat);
        let ev = d.insert(LineAddr::new(2), 2, flat);
        assert_eq!(predicted, ev.map(|(l, _)| l));
    }

    #[test]
    fn iter_class_scoped() {
        let mut d: SetAssoc<u32> = SetAssoc::new(2, 2);
        d.insert(LineAddr::new(0), 0, flat);
        d.insert(LineAddr::new(1), 1, flat);
        d.insert(LineAddr::new(2), 2, flat);
        let class0: Vec<_> = d.iter_class(0).map(|(l, _)| l.index()).collect();
        assert_eq!(class0.len(), 2);
        assert!(class0.contains(&0) && class0.contains(&2));
    }
}
