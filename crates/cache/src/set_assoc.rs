//! A generic set-associative directory with true-LRU replacement.

use ztm_mem::LineAddr;

#[derive(Debug, Clone)]
struct Slot<E> {
    line: LineAddr,
    lru: u64,
    entry: E,
}

/// A set-associative directory keyed by [`LineAddr`].
///
/// Used for both the L1 and L2 directories. Replacement is true LRU within a
/// congruence class, refined by an eviction-priority function supplied at
/// insert time: the victim is the slot with the *lowest* priority, ties
/// broken by least-recent use. This is how the private cache prefers to evict
/// non-transactional lines before transactional ones (§III.D requires
/// tx-dirty lines to stay L2-resident).
///
/// # Examples
///
/// ```
/// use ztm_cache::SetAssoc;
/// use ztm_mem::LineAddr;
///
/// let mut dir: SetAssoc<u32> = SetAssoc::new(4, 2);
/// assert!(dir.insert(LineAddr::new(0), 10, |_, _| 0).is_none());
/// assert!(dir.insert(LineAddr::new(4), 20, |_, _| 0).is_none());
/// // Third line in the same class evicts the LRU entry (line 0).
/// let evicted = dir.insert(LineAddr::new(8), 30, |_, _| 0);
/// assert_eq!(evicted, Some((LineAddr::new(0), 10)));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssoc<E> {
    sets: Vec<Vec<Slot<E>>>,
    ways: usize,
    stamp: u64,
}

impl<E> SetAssoc<E> {
    /// Creates a directory with `sets` congruence classes of `ways` slots.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "geometry must be non-zero");
        SetAssoc {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            stamp: 0,
        }
    }

    /// Number of congruence classes.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The congruence class of a line in this directory.
    pub fn class_of(&self, line: LineAddr) -> usize {
        line.congruence_class(self.sets.len())
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Looks up a line without touching LRU state.
    pub fn peek(&self, line: LineAddr) -> Option<&E> {
        self.sets[self.class_of(line)]
            .iter()
            .find(|s| s.line == line)
            .map(|s| &s.entry)
    }

    /// Looks up a line, marking it most-recently-used.
    pub fn get(&mut self, line: LineAddr) -> Option<&mut E> {
        let stamp = self.next_stamp();
        let class = self.class_of(line);
        let slot = self.sets[class].iter_mut().find(|s| s.line == line)?;
        slot.lru = stamp;
        Some(&mut slot.entry)
    }

    /// Mutable lookup without touching LRU state.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut E> {
        let class = self.class_of(line);
        self.sets[class]
            .iter_mut()
            .find(|s| s.line == line)
            .map(|s| &mut s.entry)
    }

    /// Whether the line is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts a line, returning the evicted `(line, entry)` if the class was
    /// full. The victim is the present slot with the lowest
    /// `evict_priority(line, entry)`, ties broken by LRU.
    ///
    /// # Panics
    ///
    /// Panics if the line is already present (callers must use
    /// [`get`](Self::get)/[`peek_mut`](Self::peek_mut) to update entries).
    pub fn insert(
        &mut self,
        line: LineAddr,
        entry: E,
        evict_priority: impl Fn(LineAddr, &E) -> u8,
    ) -> Option<(LineAddr, E)> {
        assert!(
            !self.contains(line),
            "line {line} already present in directory"
        );
        let stamp = self.next_stamp();
        let class = self.class_of(line);
        let set = &mut self.sets[class];
        let evicted = if set.len() == self.ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (evict_priority(s.line, &s.entry), s.lru))
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            let slot = set.swap_remove(victim);
            Some((slot.line, slot.entry))
        } else {
            None
        };
        set.push(Slot {
            line,
            lru: stamp,
            entry,
        });
        evicted
    }

    /// Removes a line, returning its entry.
    pub fn remove(&mut self, line: LineAddr) -> Option<E> {
        let class = self.class_of(line);
        let set = &mut self.sets[class];
        let idx = set.iter().position(|s| s.line == line)?;
        Some(set.swap_remove(idx).entry)
    }

    /// Iterates over `(line, entry)` pairs of one congruence class.
    pub fn iter_class(&self, class: usize) -> impl Iterator<Item = (LineAddr, &E)> {
        self.sets[class].iter().map(|s| (s.line, &s.entry))
    }

    /// Iterates over all `(line, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &E)> {
        self.sets.iter().flatten().map(|s| (s.line, &s.entry))
    }

    /// Mutable iteration over all `(line, entry)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut E)> {
        self.sets
            .iter_mut()
            .flatten()
            .map(|s| (s.line, &mut s.entry))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the directory holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(_: LineAddr, _: &u32) -> u8 {
        0
    }

    #[test]
    fn insert_and_lookup() {
        let mut d: SetAssoc<u32> = SetAssoc::new(8, 2);
        d.insert(LineAddr::new(1), 11, flat);
        assert_eq!(d.peek(LineAddr::new(1)), Some(&11));
        assert!(d.contains(LineAddr::new(1)));
        assert!(!d.contains(LineAddr::new(9)));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut d: SetAssoc<u32> = SetAssoc::new(1, 2);
        d.insert(LineAddr::new(0), 0, flat);
        d.insert(LineAddr::new(1), 1, flat);
        // Touch line 0 so line 1 becomes LRU.
        d.get(LineAddr::new(0));
        let ev = d.insert(LineAddr::new(2), 2, flat);
        assert_eq!(ev, Some((LineAddr::new(1), 1)));
    }

    #[test]
    fn eviction_priority_overrides_lru() {
        let mut d: SetAssoc<u32> = SetAssoc::new(1, 2);
        d.insert(LineAddr::new(0), 0, flat);
        d.insert(LineAddr::new(1), 1, flat);
        d.get(LineAddr::new(0)); // line 1 is LRU...
                                 // ...but priority protects it (entry==1 gets high priority).
        let ev = d.insert(LineAddr::new(2), 2, |_, e| if *e == 1 { 9 } else { 0 });
        assert_eq!(ev, Some((LineAddr::new(0), 0)));
    }

    #[test]
    fn remove_returns_entry() {
        let mut d: SetAssoc<u32> = SetAssoc::new(4, 2);
        d.insert(LineAddr::new(5), 55, flat);
        assert_eq!(d.remove(LineAddr::new(5)), Some(55));
        assert_eq!(d.remove(LineAddr::new(5)), None);
        assert!(d.is_empty());
    }

    #[test]
    fn classes_are_independent() {
        let mut d: SetAssoc<u32> = SetAssoc::new(2, 1);
        d.insert(LineAddr::new(0), 0, flat);
        // Line 1 maps to class 1; no eviction of line 0.
        assert!(d.insert(LineAddr::new(1), 1, flat).is_none());
        assert_eq!(d.len(), 2);
        let ev = d.insert(LineAddr::new(2), 2, flat); // class 0 again
        assert_eq!(ev, Some((LineAddr::new(0), 0)));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_insert_panics() {
        let mut d: SetAssoc<u32> = SetAssoc::new(2, 1);
        d.insert(LineAddr::new(0), 0, flat);
        d.insert(LineAddr::new(0), 1, flat);
    }

    #[test]
    fn iter_class_scoped() {
        let mut d: SetAssoc<u32> = SetAssoc::new(2, 2);
        d.insert(LineAddr::new(0), 0, flat);
        d.insert(LineAddr::new(1), 1, flat);
        d.insert(LineAddr::new(2), 2, flat);
        let class0: Vec<_> = d.iter_class(0).map(|(l, _)| l.index()).collect();
        assert_eq!(class0.len(), 2);
        assert!(class0.contains(&0) && class0.contains(&2));
    }
}
