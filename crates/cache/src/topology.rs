//! SMP topology: cores, CP chips, and multi-chip modules.

use std::fmt;

/// Identifies one CPU (core) in the simulated SMP system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CpuId(pub usize);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Identifies one CP chip (six cores sharing an L3 on the zEC12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChipId(pub usize);

impl fmt::Display for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chip{}", self.0)
    }
}

/// Identifies one multi-chip module (six CP chips sharing an L4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct McmId(pub usize);

impl fmt::Display for McmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mcm{}", self.0)
    }
}

/// Relative distance between two CPUs, which determines cache-to-cache
/// transfer latency. The step functions in the paper's Figure 5(a)/(b) come
/// from CPU counts crossing these boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Distance {
    /// The same core (L1/L2 local).
    SameCpu,
    /// Another core on the same CP chip — transfer through the shared L3.
    SameChip,
    /// Another chip on the same MCM — transfer through the shared L4.
    SameMcm,
    /// A chip on a different MCM — transfer across the SMP fabric.
    CrossMcm,
}

/// The physical arrangement of cores into chips and MCMs.
///
/// The zEC12 defaults are 6 cores per chip, 6 chips per MCM, up to 4 MCMs
/// (144 cores). Constructors validate that the requested CPU count fits.
///
/// # Examples
///
/// ```
/// use ztm_cache::{CpuId, Distance, Topology};
///
/// let t = Topology::zec12(100);
/// assert_eq!(t.cpus(), 100);
/// assert_eq!(t.distance(CpuId(0), CpuId(5)), Distance::SameChip);
/// assert_eq!(t.distance(CpuId(0), CpuId(6)), Distance::SameMcm);
/// assert_eq!(t.distance(CpuId(0), CpuId(36)), Distance::CrossMcm);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    cpus: usize,
    cores_per_chip: usize,
    chips_per_mcm: usize,
}

impl Topology {
    /// Maximum CPUs in a zEC12 SMP (4 MCMs × 6 chips × 6 cores).
    pub const ZEC12_MAX_CPUS: usize = 144;

    /// Creates the zEC12 topology with `cpus` cores (6 per chip, 36 per MCM).
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is 0 or exceeds [`Self::ZEC12_MAX_CPUS`].
    pub fn zec12(cpus: usize) -> Self {
        assert!(
            cpus <= Self::ZEC12_MAX_CPUS,
            "zEC12 has at most {} cores",
            Self::ZEC12_MAX_CPUS
        );
        Self::new(cpus, 6, 6)
    }

    /// Creates a custom topology.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is 0, or `cores_per_chip`/`chips_per_mcm` is 0, or
    /// more than 8 MCMs would be needed (directory bitmask width).
    pub fn new(cpus: usize, cores_per_chip: usize, chips_per_mcm: usize) -> Self {
        assert!(cpus > 0, "topology needs at least one CPU");
        assert!(cores_per_chip > 0 && chips_per_mcm > 0);
        assert!(
            cpus <= 8 * chips_per_mcm * cores_per_chip,
            "at most 8 MCMs are supported ({} CPUs requested, {} fit)",
            cpus,
            8 * chips_per_mcm * cores_per_chip
        );
        Topology {
            cpus,
            cores_per_chip,
            chips_per_mcm,
        }
    }

    /// Number of CPUs in the system.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Cores sharing one L3.
    pub fn cores_per_chip(&self) -> usize {
        self.cores_per_chip
    }

    /// Chips sharing one L4.
    pub fn chips_per_mcm(&self) -> usize {
        self.chips_per_mcm
    }

    /// Cores sharing one L4 (one MCM node). On the zEC12 this is 36; the
    /// paper's Fig 5(b) notes throughput grows "up to 24 CPUs (the size of
    /// the MCM node in the tested system)" — the tested machine had fewer
    /// active cores per MCM, which [`Topology::new`] can model.
    pub fn cores_per_mcm(&self) -> usize {
        self.cores_per_chip * self.chips_per_mcm
    }

    /// The chip a CPU lives on.
    pub fn chip_of(&self, cpu: CpuId) -> ChipId {
        ChipId(cpu.0 / self.cores_per_chip)
    }

    /// The MCM a CPU lives on.
    pub fn mcm_of(&self, cpu: CpuId) -> McmId {
        McmId(cpu.0 / self.cores_per_mcm())
    }

    /// The MCM a chip lives on.
    pub fn mcm_of_chip(&self, chip: ChipId) -> McmId {
        McmId(chip.0 / self.chips_per_mcm)
    }

    /// Number of chips actually populated by the configured CPUs.
    pub fn chip_count(&self) -> usize {
        self.cpus.div_ceil(self.cores_per_chip)
    }

    /// Number of MCMs actually populated.
    pub fn mcm_count(&self) -> usize {
        self.cpus.div_ceil(self.cores_per_mcm())
    }

    /// Relative distance between two CPUs.
    pub fn distance(&self, a: CpuId, b: CpuId) -> Distance {
        if a == b {
            Distance::SameCpu
        } else if self.chip_of(a) == self.chip_of(b) {
            Distance::SameChip
        } else if self.mcm_of(a) == self.mcm_of(b) {
            Distance::SameMcm
        } else {
            Distance::CrossMcm
        }
    }

    /// Distance from a CPU to a chip's L3.
    pub fn distance_to_chip(&self, cpu: CpuId, chip: ChipId) -> Distance {
        if self.chip_of(cpu) == chip {
            Distance::SameChip
        } else if self.mcm_of(cpu) == self.mcm_of_chip(chip) {
            Distance::SameMcm
        } else {
            Distance::CrossMcm
        }
    }

    /// Iterates over all CPU ids in the system.
    pub fn iter(&self) -> impl Iterator<Item = CpuId> {
        (0..self.cpus).map(CpuId)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::zec12(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zec12_structure() {
        let t = Topology::zec12(144);
        assert_eq!(t.cores_per_mcm(), 36);
        assert_eq!(t.chip_count(), 24);
        assert_eq!(t.mcm_count(), 4);
        assert_eq!(t.chip_of(CpuId(35)), ChipId(5));
        assert_eq!(t.mcm_of(CpuId(35)), McmId(0));
        assert_eq!(t.mcm_of(CpuId(36)), McmId(1));
    }

    #[test]
    fn distances() {
        let t = Topology::zec12(144);
        assert_eq!(t.distance(CpuId(3), CpuId(3)), Distance::SameCpu);
        assert_eq!(t.distance(CpuId(0), CpuId(5)), Distance::SameChip);
        assert_eq!(t.distance(CpuId(5), CpuId(6)), Distance::SameMcm);
        assert_eq!(t.distance(CpuId(35), CpuId(36)), Distance::CrossMcm);
        assert_eq!(t.distance_to_chip(CpuId(0), ChipId(0)), Distance::SameChip);
        assert_eq!(t.distance_to_chip(CpuId(0), ChipId(5)), Distance::SameMcm);
        assert_eq!(t.distance_to_chip(CpuId(0), ChipId(6)), Distance::CrossMcm);
    }

    #[test]
    fn partial_chips() {
        let t = Topology::zec12(7);
        assert_eq!(t.chip_count(), 2);
        assert_eq!(t.mcm_count(), 1);
    }

    #[test]
    #[should_panic(expected = "zEC12 has at most 144 cores")]
    fn too_many_cpus_panics() {
        let _ = Topology::zec12(145);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_panics() {
        let _ = Topology::zec12(0);
    }

    #[test]
    fn iter_covers_all() {
        let t = Topology::zec12(10);
        let ids: Vec<_> = t.iter().collect();
        assert_eq!(ids.len(), 10);
        assert_eq!(ids[9], CpuId(9));
    }

    #[test]
    fn custom_mcm_size_matches_paper_testbed() {
        // The paper's tested system saturates an MCM node at 24 CPUs.
        let t = Topology::new(100, 6, 4);
        assert_eq!(t.cores_per_mcm(), 24);
        assert_eq!(t.distance(CpuId(23), CpuId(24)), Distance::CrossMcm);
    }
}
