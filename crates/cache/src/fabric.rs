//! The SMP coherence fabric: a directory of line ownership issuing
//! hierarchical cross-interrogates (§III.A).

use crate::{ChipId, CpuId, Distance, McmId, SetAssoc, Topology, XiKind};
use std::collections::HashMap;
use ztm_mem::{AddrHashBuilder, LineAddr};
use ztm_trace::{Event, Tracer};

/// zEC12 L3 geometry: 48 MB / 256-byte lines / 12 ways = 16384 sets.
const L3_SETS: usize = 16_384;
/// zEC12 L3 associativity.
const L3_WAYS: usize = 12;

/// What kind of ownership a fetch requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchKind {
    /// Read-only (shared) ownership.
    Shared,
    /// Exclusive ownership (required before storing).
    Exclusive,
}

/// Where a fetch is sourced from, for latency purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Intervention: transferred from another CPU's private cache.
    Cpu(CpuId),
    /// A chip's shared L3.
    L3(ChipId),
    /// An MCM's shared L4.
    L4(McmId),
    /// Main memory.
    Memory,
}

/// The XIs that must be delivered (and accepted) before a fetch can be
/// granted, plus the planned data source.
#[derive(Debug, Clone)]
pub struct FetchPlan {
    /// Targets and XI kinds, in delivery order.
    pub xis: Vec<(CpuId, XiKind)>,
    /// Where the data will come from.
    pub source: Source,
}

/// Per-line directory state: at most one exclusive owner, or any number of
/// read-only sharers (the store-through hierarchy holds no dirty lines).
#[derive(Debug, Clone, Default)]
struct LineState {
    owner: Option<CpuId>,
    sharers: Vec<CpuId>,
}

/// The coherence directory for the whole SMP.
///
/// Tracks, per line: which private cache units hold it (exclusive or
/// read-only), which chips' L3s and which MCMs' L4s have a copy (for latency
/// source selection). L3/L4 presence is modeled as monotone within a run —
/// the 48 MB / 384 MB shared caches are far larger than any benchmark's
/// working set, so shared-cache capacity evictions are not simulated (see
/// DESIGN.md).
///
/// # Examples
///
/// ```
/// use ztm_cache::{CpuId, Fabric, FetchKind, Source, Topology, XiKind};
/// use ztm_mem::LineAddr;
///
/// let mut fabric = Fabric::new(Topology::zec12(12));
/// let line = LineAddr::new(5);
/// // First fetch comes from memory.
/// let plan = fabric.plan_fetch(CpuId(0), line, FetchKind::Exclusive);
/// assert!(plan.xis.is_empty());
/// assert_eq!(plan.source, Source::Memory);
/// let lru_xis = fabric.grant(CpuId(0), line, FetchKind::Exclusive);
/// assert!(lru_xis.is_empty()); // 48 MB L3: no capacity eviction here
/// // A second CPU reading the line demotes the owner.
/// let plan = fabric.plan_fetch(CpuId(1), line, FetchKind::Shared);
/// assert_eq!(plan.xis, vec![(CpuId(0), XiKind::Demote)]);
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    topology: Topology,
    // Address-keyed and never iterated, so the cheap [`AddrHashBuilder`]
    // multiply-hash is unobservable (lookups are on the coherence hot path).
    lines: HashMap<LineAddr, LineState, AddrHashBuilder>,
    /// Chips whose L3 has a copy (bit per chip).
    l3_presence: HashMap<LineAddr, u64, AddrHashBuilder>,
    /// MCMs whose L4 has a copy (bit per MCM).
    l4_presence: HashMap<LineAddr, u8, AddrHashBuilder>,
    /// Per-chip L3 directories (capacity modeling): an associativity
    /// overflow here evicts the line from the chip and — by the inclusivity
    /// rule — sends LRU XIs to the private caches below (§III.A).
    l3: Vec<SetAssoc<()>>,
    /// Count of XIs sent, by kind, for statistics.
    xi_counts: [u64; 4],
    /// Shared (CPU-agnostic) tracer; emissions are attributed to the
    /// requesting CPU explicitly.
    tracer: Tracer,
}

impl Fabric {
    /// Creates a fabric for the given topology, with zEC12-sized (48 MB,
    /// 12-way) per-chip L3 directories.
    pub fn new(topology: Topology) -> Self {
        Self::with_l3_geometry(topology, L3_SETS, L3_WAYS)
    }

    /// Creates a fabric with custom L3 geometry (tests shrink it to force
    /// LRU XIs cheaply).
    pub fn with_l3_geometry(topology: Topology, l3_sets: usize, l3_ways: usize) -> Self {
        let chips = topology.chip_count();
        Fabric {
            topology,
            lines: HashMap::default(),
            l3_presence: HashMap::default(),
            l4_presence: HashMap::default(),
            l3: (0..chips)
                .map(|_| SetAssoc::new(l3_sets, l3_ways))
                .collect(),
            xi_counts: [0; 4],
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer; XI-issue events are attributed to the requester.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The system topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Plans a fetch: which XIs must be delivered and where data will come
    /// from. Does not change directory state.
    pub fn plan_fetch(&self, requester: CpuId, line: LineAddr, kind: FetchKind) -> FetchPlan {
        let state = self.lines.get(&line);
        let mut xis = Vec::new();
        let mut intervention: Option<CpuId> = None;

        if let Some(s) = state {
            match kind {
                FetchKind::Exclusive => {
                    if let Some(owner) = s.owner {
                        if owner != requester {
                            xis.push((owner, XiKind::Exclusive));
                            intervention = Some(owner);
                        }
                    }
                    for &sh in &s.sharers {
                        if sh != requester {
                            xis.push((sh, XiKind::ReadOnly));
                        }
                    }
                }
                FetchKind::Shared => {
                    if let Some(owner) = s.owner {
                        if owner != requester {
                            xis.push((owner, XiKind::Demote));
                            intervention = Some(owner);
                        }
                    }
                }
            }
        }

        for &(to, kind) in &xis {
            self.tracer.emit_at(requester.0 as u16, || Event::XiIssue {
                to: to.0 as u16,
                line: line.index(),
                kind: kind.code(),
            });
        }
        let source = match intervention {
            Some(owner) => Source::Cpu(owner),
            None => self.nearest_source(requester, line),
        };
        FetchPlan { xis, source }
    }

    /// Selects the nearest non-intervention source for a line.
    fn nearest_source(&self, requester: CpuId, line: LineAddr) -> Source {
        if let Some(&chips) = self.l3_presence.get(&line) {
            if chips != 0 {
                let best = (0..64)
                    .filter(|c| chips >> c & 1 == 1)
                    .map(ChipId)
                    .min_by_key(|&c| match self.topology.distance_to_chip(requester, c) {
                        Distance::SameCpu | Distance::SameChip => 0,
                        Distance::SameMcm => 1,
                        Distance::CrossMcm => 2,
                    })
                    .expect("non-zero mask has a chip");
                return Source::L3(best);
            }
        }
        if let Some(&mcms) = self.l4_presence.get(&line) {
            if mcms != 0 {
                let me = self.topology.mcm_of(requester);
                let best = (0..8)
                    .filter(|m| mcms >> m & 1 == 1)
                    .map(McmId)
                    .min_by_key(|&m| usize::from(m != me))
                    .expect("non-zero mask has an MCM");
                return Source::L4(best);
            }
        }
        Source::Memory
    }

    /// Records the outcome of one delivered XI. Accepted XIs update the
    /// directory; rejected ones leave it unchanged (the sender will repeat).
    pub fn apply_xi_result(&mut self, target: CpuId, line: LineAddr, kind: XiKind, accepted: bool) {
        self.xi_counts[kind.code() as usize] += 1;
        if !accepted {
            return;
        }
        let state = self.lines.entry(line).or_default();
        match kind {
            XiKind::Exclusive | XiKind::ReadOnly | XiKind::Lru => {
                if state.owner == Some(target) {
                    state.owner = None;
                }
                state.sharers.retain(|&c| c != target);
            }
            XiKind::Demote => {
                if state.owner == Some(target) {
                    state.owner = None;
                    state.sharers.push(target);
                }
            }
        }
    }

    /// Grants the line to the requester after all planned XIs were accepted.
    ///
    /// Returns LRU XIs that the caller must deliver to private caches: when
    /// installing the line overflows the requester chip's L3 set, the
    /// evicted victim is forced out of every private cache under that L3
    /// (the inclusivity rule, §III.A — "we call those XIs LRU XIs").
    ///
    /// # Panics
    ///
    /// Panics (debug) if conflicting holders remain — the caller must deliver
    /// all planned XIs first.
    #[must_use = "deliver the returned LRU XIs to the victims' private caches"]
    pub fn grant(
        &mut self,
        requester: CpuId,
        line: LineAddr,
        kind: FetchKind,
    ) -> Vec<(CpuId, LineAddr)> {
        let state = self.lines.entry(line).or_default();
        match kind {
            FetchKind::Exclusive => {
                debug_assert!(
                    state.owner.is_none() || state.owner == Some(requester),
                    "exclusive grant with a live owner"
                );
                debug_assert!(
                    state.sharers.iter().all(|&c| c == requester),
                    "exclusive grant with live sharers"
                );
                state.owner = Some(requester);
                state.sharers.clear();
            }
            FetchKind::Shared => {
                debug_assert!(
                    state.owner.is_none() || state.owner == Some(requester),
                    "shared grant with a live foreign owner"
                );
                if state.owner != Some(requester) && !state.sharers.contains(&requester) {
                    state.sharers.push(requester);
                }
            }
        }
        let chip = self.topology.chip_of(requester);
        let mcm = self.topology.mcm_of(requester);
        *self.l3_presence.entry(line).or_default() |= 1 << chip.0;
        *self.l4_presence.entry(line).or_default() |= 1 << mcm.0;

        // Install into the chip's L3; an associativity overflow evicts the
        // victim from the chip and from every private cache below it.
        let mut lru_xis = Vec::new();
        if !self.l3[chip.0].contains(line) {
            if let Some((victim, ())) = self.l3[chip.0].insert(line, (), |_, _| 0) {
                if let Some(p) = self.l3_presence.get_mut(&victim) {
                    *p &= !(1 << chip.0);
                }
                if let Some(state) = self.lines.get(&victim) {
                    let holders = state.owner.into_iter().chain(state.sharers.iter().copied());
                    for cpu in holders {
                        if self.topology.chip_of(cpu) == chip {
                            lru_xis.push((cpu, victim));
                        }
                    }
                }
            }
        } else {
            self.l3[chip.0].get(line); // touch LRU
        }
        lru_xis
    }

    /// Removes a CPU from a line's holder set (L2 capacity eviction).
    pub fn drop_holder(&mut self, cpu: CpuId, line: LineAddr) {
        if let Some(state) = self.lines.get_mut(&line) {
            if state.owner == Some(cpu) {
                state.owner = None;
            }
            state.sharers.retain(|&c| c != cpu);
        }
    }

    /// Collects every CPU (other than the requester) whose private state a
    /// fetch of `line` by `requester` could mutate: current holders of the
    /// line (they receive coherence XIs), plus — when the line is absent
    /// from the requester chip's L3 — same-chip holders of every line in the
    /// L3 congruence class the install lands in, since the install may evict
    /// any of them and send LRU XIs. The class is a superset of the single
    /// victim [`Fabric::grant`] will actually pick; over-approximation only
    /// ever costs the sharded simulator an unnecessary rollback, never
    /// correctness. With `prefetch` set, the next sequential line is
    /// included the same way (the speculative-prefetch path may install it);
    /// when both lines map to the same L3 class the shared class walk covers
    /// both installs' victims.
    pub fn fetch_touch(
        &self,
        requester: CpuId,
        line: LineAddr,
        prefetch: bool,
        touched: &mut Vec<CpuId>,
    ) {
        let chip = self.topology.chip_of(requester);
        let l3 = &self.l3[chip.0];
        let mut classes_seen = [usize::MAX; 2];
        let lines = if prefetch {
            &[line, LineAddr::new(line.index() + 1)][..]
        } else {
            &[line][..]
        };
        for (slot, &l) in lines.iter().enumerate() {
            if let Some(state) = self.lines.get(&l) {
                let holders = state.owner.iter().chain(state.sharers.iter());
                for &cpu in holders {
                    if cpu != requester {
                        touched.push(cpu);
                    }
                }
            }
            if l3.contains(l) {
                continue; // install only touches the LRU stamp; no eviction
            }
            let class = l3.class_of(l);
            if slot == 1 && classes_seen[0] == class {
                continue; // same congruence class: the first walk covered it
            }
            classes_seen[slot] = class;
            for (victim, _) in l3.iter_class(class) {
                if let Some(state) = self.lines.get(&victim) {
                    let holders = state.owner.iter().chain(state.sharers.iter());
                    for &cpu in holders {
                        if cpu != requester && self.topology.chip_of(cpu) == chip {
                            touched.push(cpu);
                        }
                    }
                }
            }
        }
    }

    /// Current holders of a line: `(exclusive owner, read-only sharers)`.
    pub fn holders(&self, line: LineAddr) -> (Option<CpuId>, Vec<CpuId>) {
        match self.lines.get(&line) {
            Some(s) => (s.owner, s.sharers.clone()),
            None => (None, Vec::new()),
        }
    }

    /// Total XIs recorded, by kind: `[exclusive, demote, read-only, lru]`.
    pub fn xi_counts(&self) -> [u64; 4] {
        self.xi_counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        Fabric::new(Topology::zec12(72))
    }

    fn line(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn cold_fetch_from_memory() {
        let f = fabric();
        let plan = f.plan_fetch(CpuId(0), line(1), FetchKind::Shared);
        assert!(plan.xis.is_empty());
        assert_eq!(plan.source, Source::Memory);
    }

    #[test]
    fn read_sharing_needs_no_xis() {
        let mut f = fabric();
        let _ = f.grant(CpuId(0), line(1), FetchKind::Shared);
        let plan = f.plan_fetch(CpuId(1), line(1), FetchKind::Shared);
        assert!(plan.xis.is_empty());
        assert_eq!(plan.source, Source::L3(ChipId(0)));
        let _ = f.grant(CpuId(1), line(1), FetchKind::Shared);
        let (owner, sharers) = f.holders(line(1));
        assert_eq!(owner, None);
        assert_eq!(sharers.len(), 2);
    }

    #[test]
    fn exclusive_fetch_invalidates_sharers() {
        let mut f = fabric();
        let _ = f.grant(CpuId(0), line(1), FetchKind::Shared);
        let _ = f.grant(CpuId(1), line(1), FetchKind::Shared);
        let plan = f.plan_fetch(CpuId(2), line(1), FetchKind::Exclusive);
        assert_eq!(plan.xis.len(), 2);
        assert!(plan.xis.iter().all(|&(_, k)| k == XiKind::ReadOnly));
        for &(t, k) in &plan.xis {
            f.apply_xi_result(t, line(1), k, true);
        }
        let _ = f.grant(CpuId(2), line(1), FetchKind::Exclusive);
        assert_eq!(f.holders(line(1)), (Some(CpuId(2)), vec![]));
    }

    #[test]
    fn shared_fetch_demotes_owner() {
        let mut f = fabric();
        let _ = f.grant(CpuId(0), line(1), FetchKind::Exclusive);
        let plan = f.plan_fetch(CpuId(1), line(1), FetchKind::Shared);
        assert_eq!(plan.xis, vec![(CpuId(0), XiKind::Demote)]);
        assert_eq!(plan.source, Source::Cpu(CpuId(0)));
        f.apply_xi_result(CpuId(0), line(1), XiKind::Demote, true);
        let _ = f.grant(CpuId(1), line(1), FetchKind::Shared);
        let (owner, sharers) = f.holders(line(1));
        assert_eq!(owner, None);
        assert!(sharers.contains(&CpuId(0)) && sharers.contains(&CpuId(1)));
    }

    #[test]
    fn rejected_xi_keeps_state() {
        let mut f = fabric();
        let _ = f.grant(CpuId(0), line(1), FetchKind::Exclusive);
        f.apply_xi_result(CpuId(0), line(1), XiKind::Exclusive, false);
        assert_eq!(f.holders(line(1)).0, Some(CpuId(0)));
        // The retry plans the same XI again.
        let plan = f.plan_fetch(CpuId(1), line(1), FetchKind::Exclusive);
        assert_eq!(plan.xis, vec![(CpuId(0), XiKind::Exclusive)]);
    }

    #[test]
    fn upgrade_from_shared() {
        let mut f = fabric();
        let _ = f.grant(CpuId(0), line(1), FetchKind::Shared);
        let _ = f.grant(CpuId(1), line(1), FetchKind::Shared);
        let plan = f.plan_fetch(CpuId(0), line(1), FetchKind::Exclusive);
        assert_eq!(plan.xis, vec![(CpuId(1), XiKind::ReadOnly)]);
        f.apply_xi_result(CpuId(1), line(1), XiKind::ReadOnly, true);
        let _ = f.grant(CpuId(0), line(1), FetchKind::Exclusive);
        assert_eq!(f.holders(line(1)), (Some(CpuId(0)), vec![]));
    }

    #[test]
    fn source_prefers_nearest_l3() {
        let mut f = fabric();
        // CPU 40 is on MCM 1; CPU 0 on MCM 0 chip 0.
        let _ = f.grant(CpuId(40), line(1), FetchKind::Shared);
        f.apply_xi_result(CpuId(40), line(1), XiKind::ReadOnly, true);
        f.drop_holder(CpuId(40), line(1));
        // No CPU holds it; L3 of chip 6 (MCM 1) has it.
        let plan = f.plan_fetch(CpuId(0), line(1), FetchKind::Shared);
        assert_eq!(plan.source, Source::L3(ChipId(6)));
        // Once CPU 0's chip also has it, prefer the local chip.
        let _ = f.grant(CpuId(0), line(1), FetchKind::Shared);
        f.drop_holder(CpuId(0), line(1));
        let plan = f.plan_fetch(CpuId(1), line(1), FetchKind::Shared);
        assert_eq!(plan.source, Source::L3(ChipId(0)));
    }

    #[test]
    fn drop_holder_releases_ownership() {
        let mut f = fabric();
        let _ = f.grant(CpuId(3), line(1), FetchKind::Exclusive);
        f.drop_holder(CpuId(3), line(1));
        assert_eq!(f.holders(line(1)), (None, vec![]));
        let plan = f.plan_fetch(CpuId(4), line(1), FetchKind::Exclusive);
        assert!(plan.xis.is_empty());
        assert!(matches!(plan.source, Source::L3(_)));
    }

    #[test]
    fn l3_overflow_returns_lru_xis_for_same_chip_holders() {
        // Tiny L3: 1 set × 2 ways. Three lines through one chip overflow it.
        let mut f = Fabric::with_l3_geometry(Topology::zec12(12), 1, 2);
        let _ = f.grant(CpuId(0), line(1), FetchKind::Shared);
        let _ = f.grant(CpuId(1), line(2), FetchKind::Shared);
        // CPU 6 is on chip 1: its traffic must not evict chip 0's lines.
        let lru = f.grant(CpuId(6), line(3), FetchKind::Shared);
        assert!(lru.is_empty(), "different chip, different L3");
        // Third line through chip 0 evicts the LRU victim (line 1).
        let lru = f.grant(CpuId(2), line(3), FetchKind::Shared);
        assert_eq!(lru, vec![(CpuId(0), line(1))]);
        // After the caller applies the XI, the holder is gone.
        f.apply_xi_result(CpuId(0), line(1), XiKind::Lru, true);
        assert_eq!(f.holders(line(1)), (None, vec![]));
        // The evicted line is no longer sourced from chip 0's L3.
        let plan = f.plan_fetch(CpuId(3), line(1), FetchKind::Shared);
        assert_ne!(plan.source, Source::L3(ChipId(0)));
    }

    #[test]
    fn xi_counts_accumulate() {
        let mut f = fabric();
        let _ = f.grant(CpuId(0), line(1), FetchKind::Exclusive);
        f.apply_xi_result(CpuId(0), line(1), XiKind::Exclusive, false);
        f.apply_xi_result(CpuId(0), line(1), XiKind::Exclusive, true);
        assert_eq!(f.xi_counts()[0], 2);
    }
}
