//! Cache geometry and transactional-tracking configuration knobs.

/// Geometry and policy knobs of one CPU's private cache unit.
///
/// Defaults reproduce the zEC12 (§III.A): L1 96 KB = 64 sets × 6 ways ×
/// 256-byte lines; L2 1 MB = 512 sets × 8 ways; gathering store cache of 64
/// entries × 128 bytes. The booleans are the ablation knobs called out in
/// DESIGN.md.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheGeometry {
    /// L1 congruence classes ("rows"). zEC12: 64.
    pub l1_sets: usize,
    /// L1 associativity. zEC12: 6.
    pub l1_ways: usize,
    /// L2 congruence classes. zEC12: 512.
    pub l2_sets: usize,
    /// L2 associativity. zEC12: 8.
    pub l2_ways: usize,
    /// Gathering store cache entries (each 128 bytes). zEC12: 64.
    pub store_cache_entries: usize,
    /// Whether the L1 LRU-extension vector is present (§III.C). When false,
    /// evicting a tx-read line from the L1 is an immediate fetch-overflow
    /// abort — the "No LRU extension: 64x6way" curve of Fig 5(f).
    pub lru_extension: bool,
    /// Whether the LSU/store-cache rejects conflicting XIs ("stiff-arming",
    /// §III.C) instead of aborting on first conflict.
    pub stiff_arm: bool,
    /// Consecutive XI rejects (without completing an instruction) after which
    /// the transaction aborts to avoid cross-CPU hangs.
    pub xi_reject_threshold: u32,
}

impl CacheGeometry {
    /// The zEC12 geometry with both transactional-tracking features enabled.
    pub fn zec12() -> Self {
        CacheGeometry {
            l1_sets: 64,
            l1_ways: 6,
            l2_sets: 512,
            l2_ways: 8,
            store_cache_entries: 64,
            lru_extension: true,
            stiff_arm: true,
            xi_reject_threshold: 16,
        }
    }

    /// L1 capacity in bytes.
    pub fn l1_bytes(&self) -> usize {
        self.l1_sets * self.l1_ways * ztm_mem::LINE_SIZE as usize
    }

    /// L2 capacity in bytes.
    pub fn l2_bytes(&self) -> usize {
        self.l2_sets * self.l2_ways * ztm_mem::LINE_SIZE as usize
    }

    /// Maximum transactional store footprint in bytes (store cache bound,
    /// §III.D: 64 × 128 bytes = 8 KB on the zEC12).
    pub fn max_store_footprint_bytes(&self) -> usize {
        self.store_cache_entries * ztm_mem::HALF_LINE_SIZE as usize
    }
}

impl Default for CacheGeometry {
    fn default() -> Self {
        CacheGeometry::zec12()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zec12_capacities_match_paper() {
        let g = CacheGeometry::zec12();
        assert_eq!(g.l1_bytes(), 96 * 1024);
        assert_eq!(g.l2_bytes(), 1024 * 1024);
        assert_eq!(g.max_store_footprint_bytes(), 8 * 1024);
    }

    #[test]
    fn default_enables_tracking_features() {
        let g = CacheGeometry::default();
        assert!(g.lru_extension);
        assert!(g.stiff_arm);
        assert!(g.xi_reject_threshold > 0);
    }
}
