//! Cycle-cost model for the memory hierarchy.

use crate::{Distance, Source, Topology};

/// Cycle latencies of the simulated memory system.
///
/// The L1 and L2 values are published in the paper (§III.A: 4-cycle L1 use
/// latency, 7 additional cycles for an L1 miss that hits the L2). The deeper
/// levels are not published for the zEC12; the defaults are plausible values
/// for a 48 MB on-chip eDRAM L3, an off-chip 384 MB L4 on the same
/// glass-ceramic MCM, and cross-MCM transfers — see DESIGN.md. All fields are
/// public so experiments can sweep them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyModel {
    /// Effective L1 hit cost. The zEC12 L1 has a 4-cycle use latency
    /// (§III.A), but the out-of-order core overlaps it with surrounding
    /// work; the default charges the marginal 1 cycle.
    pub l1_hit: u64,
    /// L1 miss, L2 hit.
    pub l2_hit: u64,
    /// L2 miss sourced from the local chip's L3.
    pub l3_hit: u64,
    /// Sourced from the MCM's L4 or another chip's L3 on the same MCM.
    pub l4_hit: u64,
    /// Sourced from a different MCM.
    pub cross_mcm: u64,
    /// Sourced from main memory.
    pub memory: u64,
    /// Extra cycles for an intervention (cache-to-cache transfer requiring an
    /// XI round to the current owner) on top of the distance cost.
    pub intervention: u64,
    /// Delay before a requester repeats an access whose XI was rejected
    /// ("stiff-armed") by the owning CPU.
    pub xi_reject_retry: u64,
    /// Memory operations the LSU can issue per cycle. The zEC12 core has
    /// two load/store pipes (§II.B); the pipeline window
    /// (`ztm_isa::IssueWindow`) caps overlap with it. An access *issues*
    /// against a port for one cycle while its completion (the latencies
    /// above) proceeds in flight — issue and completion are decoupled.
    pub lsu_ports: u64,
}

impl LatencyModel {
    /// The zEC12-flavored default latency model.
    pub fn zec12() -> Self {
        LatencyModel {
            l1_hit: 1,
            l2_hit: 11,
            l3_hit: 45,
            l4_hit: 180,
            cross_mcm: 350,
            memory: 600,
            intervention: 15,
            xi_reject_retry: 40,
            lsu_ports: 2,
        }
    }

    /// The minimum number of cycles any fetch crossing a shard boundary
    /// takes to complete at the requester: the cheapest source on the far
    /// side of the boundary. `same_mcm` selects a chip-level boundary
    /// (shards are chips of one MCM); otherwise the boundary is the MCM
    /// (book) itself.
    ///
    /// The sharded simulator uses this bound as its default speculation
    /// window: a CPU may run ahead this many cycles past the round minimum
    /// before any *cross-boundary* fetch issued at the frontier could
    /// complete and perturb it. Steps inside the window are still executed
    /// under undo journals — same-shard interactions and the rare cheaper
    /// global step are caught by rollback, so the width is a performance
    /// dial, never a correctness assumption.
    pub fn min_cross_boundary_latency(&self, same_mcm: bool) -> u64 {
        if same_mcm {
            self.l4_hit.min(self.memory)
        } else {
            self.cross_mcm.min(self.memory)
        }
    }

    /// Latency of a cache-to-cache transfer from a holder at `distance`.
    pub fn transfer(&self, distance: Distance) -> u64 {
        let base = match distance {
            Distance::SameCpu => self.l2_hit,
            Distance::SameChip => self.l3_hit,
            Distance::SameMcm => self.l4_hit,
            Distance::CrossMcm => self.cross_mcm,
        };
        base + self.intervention
    }

    /// Latency of a fetch served from `source`, as planned by the fabric,
    /// seen by `requester`.
    pub fn fetch(&self, topology: &Topology, requester: crate::CpuId, source: Source) -> u64 {
        match source {
            Source::Cpu(owner) => self.transfer(topology.distance(requester, owner)),
            Source::L3(chip) => match topology.distance_to_chip(requester, chip) {
                Distance::SameCpu | Distance::SameChip => self.l3_hit,
                Distance::SameMcm => self.l4_hit,
                Distance::CrossMcm => self.cross_mcm,
            },
            Source::L4(mcm) => {
                if topology.mcm_of(requester) == mcm {
                    self.l4_hit
                } else {
                    self.cross_mcm
                }
            }
            Source::Memory => self.memory,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::zec12()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChipId, CpuId, McmId};

    #[test]
    fn defaults_match_paper_l1_l2() {
        let m = LatencyModel::zec12();
        assert_eq!(m.l1_hit, 1); // 4-cycle use latency hidden by the OoO core
        assert_eq!(m.l2_hit, 11); // 4 + 7-cycle penalty
    }

    #[test]
    fn transfer_grows_with_distance() {
        let m = LatencyModel::zec12();
        assert!(m.transfer(Distance::SameChip) < m.transfer(Distance::SameMcm));
        assert!(m.transfer(Distance::SameMcm) < m.transfer(Distance::CrossMcm));
    }

    #[test]
    fn fetch_from_sources() {
        let m = LatencyModel::zec12();
        let t = Topology::zec12(144);
        let me = CpuId(0);
        assert_eq!(m.fetch(&t, me, Source::Memory), m.memory);
        assert_eq!(m.fetch(&t, me, Source::L3(ChipId(0))), m.l3_hit);
        assert_eq!(m.fetch(&t, me, Source::L3(ChipId(1))), m.l4_hit);
        assert_eq!(m.fetch(&t, me, Source::L3(ChipId(6))), m.cross_mcm);
        assert_eq!(m.fetch(&t, me, Source::L4(McmId(0))), m.l4_hit);
        assert_eq!(m.fetch(&t, me, Source::L4(McmId(1))), m.cross_mcm);
        // Transfer from a neighboring core costs more than plain L3 hit.
        assert!(m.fetch(&t, me, Source::Cpu(CpuId(1))) > m.l3_hit);
    }
}
