//! The gathering store cache (§III.D).

use ztm_mem::{Address, HalfLineAddr, LineAddr, MainMemory, HALF_LINE_SIZE};
use ztm_trace::{Event, Tracer};

/// One 128-byte gathering entry.
#[derive(Debug, Clone)]
struct Entry {
    half_line: HalfLineAddr,
    data: [u8; HALF_LINE_SIZE as usize],
    /// Byte-precise valid bits (bit *i* covers byte *i* of the granule).
    valid: u128,
    /// Per-doubleword NTSTG marks (bit *i* covers bytes `8i..8i+8`); these
    /// doublewords survive transaction aborts (§II.A, §III.D).
    ntstg: u16,
    /// Written by the (still pending) transaction.
    tx: bool,
    /// Closed for gathering (set on all pre-existing entries when a new
    /// outermost transaction begins).
    closed: bool,
    /// Age for FIFO ordering of the circular queue.
    age: u64,
}

/// A write drained from the store cache toward the L2/L3 and memory.
///
/// Produced when entries are evicted, when a transaction commits (all
/// transactional bytes), or when it aborts (only NTSTG doublewords).
#[derive(Debug, Clone)]
pub struct DrainWrite {
    half_line: HalfLineAddr,
    data: [u8; HALF_LINE_SIZE as usize],
    valid: u128,
}

impl DrainWrite {
    /// The granule this write targets.
    pub fn half_line(&self) -> HalfLineAddr {
        self.half_line
    }

    /// Number of valid bytes carried.
    pub fn byte_count(&self) -> u32 {
        self.valid.count_ones()
    }

    /// Applies the valid bytes to the committed memory image.
    pub fn apply_to(&self, mem: &mut MainMemory) {
        let base = self.half_line.base();
        for i in 0..HALF_LINE_SIZE as usize {
            if self.valid >> i & 1 == 1 {
                mem.store_bytes(base.add(i as u64), &self.data[i..=i]);
            }
        }
    }

    /// Applies the valid bytes through a [`ztm_mem::SharedMem`] view — the
    /// sharded simulator's commit path for transactions whose every store
    /// line already has a committed-arena slot (the shard classifier proves
    /// that before letting the TEND run inside a parallel epoch window).
    ///
    /// # Panics
    ///
    /// Panics if the target line has no arena slot (a classifier bug).
    pub fn apply_to_shared(&self, mem: &ztm_mem::SharedMem) {
        let base = self.half_line.base();
        for i in 0..HALF_LINE_SIZE as usize {
            if self.valid >> i & 1 == 1 {
                mem.store_bytes(base.add(i as u64), &self.data[i..=i]);
            }
        }
    }

    /// Calls `f` with the address of every byte this write will store. The
    /// sharded simulator's undo journal uses this to capture pre-images
    /// before a speculative commit drains into the shared arena (the valid
    /// mask is private, so the journal cannot enumerate the bytes itself).
    pub fn for_each_byte(&self, mut f: impl FnMut(Address)) {
        let base = self.half_line.base();
        for i in 0..HALF_LINE_SIZE as usize {
            if self.valid >> i & 1 == 1 {
                f(base.add(i as u64));
            }
        }
    }
}

/// Outcome of presenting a store to the store cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The store gathered into an existing open entry.
    Gathered,
    /// A new entry was allocated.
    NewEntry,
    /// The store cache is entirely filled with entries of the current
    /// transaction and the store matches none of them: the transaction must
    /// abort with a store-overflow condition (§III.D).
    Overflow,
    /// An NTSTG store overlapped bytes written by normal transactional
    /// stores; the architecture requires software to keep them disjoint
    /// (§II.A), so the simulator reports it for diagnostics.
    NtstgOverlap,
}

/// The gathering store cache: a circular queue of 64 × 128-byte entries with
/// byte-precise valid bits (§III.D).
///
/// Responsibilities modeled from the paper:
///
/// * gather neighboring stores before sending them to L2/L3 (store-bandwidth
///   relief — here it matters because entry count bounds the transactional
///   store footprint);
/// * buffer transactional stores until the transaction ends, blocking their
///   write-back;
/// * mark pre-existing entries *closed* when a new outermost transaction
///   begins;
/// * keep NTSTG doubleword marks so those bytes commit even on abort;
/// * answer "does this XI compare to an active transactional entry?" for XI
///   rejection;
/// * detect store-footprint overflow.
///
/// Functional note: in this simulator, *non-transactional* stores update the
/// committed memory image immediately at execution (the L1/L2 are
/// store-through, so their visibility latency is not architecturally
/// observable); non-transactional entries therefore carry redundant data and
/// exist to model gathering and occupancy. Transactional entries hold the
/// *only* copy of speculative data, which realizes isolation: no other CPU
/// can observe it before commit.
#[derive(Debug, Clone)]
pub struct StoreCache {
    entries: Vec<Entry>,
    capacity: usize,
    next_age: u64,
    /// Sorted, deduplicated cache of the lines carried by active
    /// transactional entries. Maintained incrementally (allocation on new
    /// tx entries, wholesale clear on commit/abort) so the per-XI conflict
    /// probe is a binary search instead of rebuilding a `Vec` per XI.
    tx_line_cache: Vec<LineAddr>,
    tracer: Tracer,
}

impl StoreCache {
    /// Creates a store cache with `capacity` entries (zEC12: 64).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store cache needs at least one entry");
        StoreCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            next_age: 0,
            tx_line_cache: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer for gather/close/drain/overflow events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries holding current-transaction data.
    pub fn tx_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.tx).count()
    }

    /// Presents a store of `bytes` at `addr` to the cache.
    ///
    /// `tx` marks transactional stores; `ntstg` marks the Non-Transactional
    /// Store instruction (only meaningful with `tx == true`).
    ///
    /// # Panics
    ///
    /// Panics if the store crosses a 128-byte granule boundary (callers split
    /// such stores) or is empty.
    pub fn store(&mut self, addr: Address, bytes: &[u8], tx: bool, ntstg: bool) -> StoreOutcome {
        assert!(!bytes.is_empty(), "empty store");
        let half = addr.half_line();
        let end = addr.add(bytes.len() as u64 - 1);
        assert_eq!(half, end.half_line(), "store crosses a 128-byte granule");

        let offset = addr.offset_in_half_line() as usize;
        let mask = Self::byte_mask(offset, bytes.len());

        // Gather into an existing open entry of the same transactional epoch.
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.half_line == half && !e.closed && e.tx == tx)
        {
            let overlap_plain = ntstg && e.valid & !Self::ntstg_byte_mask(e.ntstg) & mask != 0;
            let overlap_ntstg = !ntstg && Self::ntstg_byte_mask(e.ntstg) & mask != 0;
            e.data[offset..offset + bytes.len()].copy_from_slice(bytes);
            e.valid |= mask;
            if ntstg {
                e.ntstg |= Self::dw_mask(offset, bytes.len());
            }
            self.tracer.emit(|| Event::StoreGather {
                line: half.line().index(),
                tx,
                ntstg,
            });
            if overlap_plain || overlap_ntstg {
                return StoreOutcome::NtstgOverlap;
            }
            return StoreOutcome::Gathered;
        }

        // Need a new entry; make room if the queue is full.
        if self.entries.len() == self.capacity {
            // Evict the oldest non-transactional entry. If every entry
            // belongs to the current transaction, this is a store-footprint
            // overflow (§III.D).
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.tx)
                .min_by_key(|(_, e)| e.age)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    // Non-tx data is already in memory; just drop the entry.
                    self.entries.swap_remove(i);
                }
                None => {
                    self.tracer.emit(|| Event::StoreOverflow {
                        line: half.line().index(),
                    });
                    return StoreOutcome::Overflow;
                }
            }
        }

        let mut e = Entry {
            half_line: half,
            data: [0; HALF_LINE_SIZE as usize],
            valid: mask,
            ntstg: if ntstg {
                Self::dw_mask(offset, bytes.len())
            } else {
                0
            },
            tx,
            closed: false,
            age: self.next_age,
        };
        self.next_age += 1;
        e.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        if tx {
            let line = half.line();
            if let Err(at) = self.tx_line_cache.binary_search(&line) {
                self.tx_line_cache.insert(at, line);
            }
        }
        self.entries.push(e);
        self.tracer.emit(|| Event::StoreNewEntry {
            line: half.line().index(),
            tx,
            ntstg,
        });
        StoreOutcome::NewEntry
    }

    /// Called at a new outermost transaction begin: closes all existing
    /// entries so no new stores gather into them and (in this model) drains
    /// the non-transactional ones immediately.
    pub fn begin_tx(&mut self) {
        let closing = self.entries.len();
        self.tracer.emit(|| Event::StoreClose {
            entries: closing as u16,
        });
        // Non-tx entry data already lives in memory; dropping models the
        // started eviction to L2/L3.
        self.entries.retain(|e| e.tx);
        for e in &mut self.entries {
            e.closed = true;
        }
    }

    /// Commits the transaction: returns the buffered transactional writes for
    /// application to memory and converts the entries into normal (post-
    /// transaction) entries that later stores may gather into.
    pub fn commit_tx(&mut self) -> Vec<DrainWrite> {
        let mut writes = Vec::new();
        for e in &mut self.entries {
            if e.tx {
                writes.push(DrainWrite {
                    half_line: e.half_line,
                    data: e.data,
                    valid: e.valid,
                });
                e.tx = false;
                e.ntstg = 0;
                e.closed = false;
            }
        }
        for w in &writes {
            self.tracer.emit(|| Event::StoreDrain {
                half: w.half_line.index(),
                bytes: w.byte_count() as u16,
            });
        }
        self.tx_line_cache.clear();
        writes
    }

    /// Aborts the transaction: transactional entries are invalidated, except
    /// that NTSTG-marked doublewords are returned as writes to be committed
    /// anyway (§II.A "breadcrumb debugging").
    pub fn abort_tx(&mut self) -> Vec<DrainWrite> {
        let mut writes = Vec::new();
        for e in &self.entries {
            if e.tx && e.ntstg != 0 {
                let keep = Self::ntstg_byte_mask(e.ntstg) & e.valid;
                if keep != 0 {
                    writes.push(DrainWrite {
                        half_line: e.half_line,
                        data: e.data,
                        valid: keep,
                    });
                }
            }
        }
        self.entries.retain(|e| !e.tx);
        for w in &writes {
            self.tracer.emit(|| Event::StoreDrain {
                half: w.half_line.index(),
                bytes: w.byte_count() as u16,
            });
        }
        self.tx_line_cache.clear();
        writes
    }

    /// Whether an exclusive or demote XI for `line` compares against an
    /// active transactional entry (and must therefore be rejected, §III.D).
    /// A binary search over the maintained tx-line cache — the hot probe on
    /// every delivered XI.
    pub fn xi_conflicts(&self, line: LineAddr) -> bool {
        self.tx_line_cache.binary_search(&line).is_ok()
    }

    /// Drains (drops) non-transactional entries for `line`. Called when the
    /// line leaves the private cache — an accepted XI or an L2 eviction
    /// forces pending stores out to the L3 before ownership transfers; in
    /// this model their data is already in committed memory, so the entries
    /// simply vanish. Keeping them would forward stale bytes over data
    /// another CPU has since modified.
    pub fn drain_line(&mut self, line: LineAddr) {
        self.entries.retain(|e| e.tx || e.half_line.line() != line);
    }

    /// Distinct cache lines carrying transactional store data, sorted. These
    /// must stay L2-resident for the duration of the transaction (§III.D).
    pub fn tx_lines(&self) -> Vec<LineAddr> {
        self.tx_line_cache.clone()
    }

    /// Overlays buffered store data onto `buf` for a load of `buf.len()`
    /// bytes at `addr` (store forwarding). Only transactional entries can
    /// differ from committed memory, but all valid bytes are applied.
    pub fn forward(&self, addr: Address, buf: &mut [u8]) {
        let start = addr.raw();
        let end = start + buf.len() as u64;
        // One pass in age order (later, younger entries win), applying each
        // entry's overlap with the load — O(entries + len) rather than
        // O(entries × len).
        for e in &self.entries {
            let base = e.half_line.base().raw();
            if base >= end || base + HALF_LINE_SIZE <= start {
                continue;
            }
            let lo = start.max(base);
            let hi = end.min(base + HALF_LINE_SIZE);
            for a in lo..hi {
                let off = (a - base) as usize;
                if e.valid >> off & 1 == 1 {
                    buf[(a - start) as usize] = e.data[off];
                }
            }
        }
    }

    fn byte_mask(offset: usize, len: usize) -> u128 {
        debug_assert!(offset + len <= 128);
        if len == 128 {
            u128::MAX
        } else {
            ((1u128 << len) - 1) << offset
        }
    }

    /// Expands a per-doubleword mark mask into a per-byte mask.
    fn ntstg_byte_mask(dw: u16) -> u128 {
        let mut m = 0u128;
        for i in 0..16 {
            if dw >> i & 1 == 1 {
                m |= 0xffu128 << (8 * i);
            }
        }
        m
    }

    /// Doubleword marks covering a byte range.
    fn dw_mask(offset: usize, len: usize) -> u16 {
        let first = offset / 8;
        let last = (offset + len - 1) / 8;
        let mut m = 0u16;
        for i in first..=last {
            m |= 1 << i;
        }
        m
    }
}

impl Default for StoreCache {
    fn default() -> Self {
        StoreCache::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(a: u64) -> Address {
        Address::new(a)
    }

    #[test]
    fn gathering_into_same_granule() {
        let mut sc = StoreCache::new(4);
        assert_eq!(
            sc.store(addr(0), &[1; 8], false, false),
            StoreOutcome::NewEntry
        );
        assert_eq!(
            sc.store(addr(8), &[2; 8], false, false),
            StoreOutcome::Gathered
        );
        assert_eq!(sc.len(), 1);
        // A store to the next 128-byte granule allocates a second entry.
        assert_eq!(
            sc.store(addr(128), &[3; 8], false, false),
            StoreOutcome::NewEntry
        );
        assert_eq!(sc.len(), 2);
    }

    #[test]
    fn tx_overflow_when_all_entries_transactional() {
        let mut sc = StoreCache::new(2);
        assert_eq!(sc.store(addr(0), &[1], true, false), StoreOutcome::NewEntry);
        assert_eq!(
            sc.store(addr(128), &[1], true, false),
            StoreOutcome::NewEntry
        );
        assert_eq!(
            sc.store(addr(256), &[1], true, false),
            StoreOutcome::Overflow
        );
        // Gathering into an existing tx granule still works at capacity.
        assert_eq!(sc.store(addr(1), &[2], true, false), StoreOutcome::Gathered);
    }

    #[test]
    fn non_tx_eviction_frees_room() {
        let mut sc = StoreCache::new(2);
        sc.store(addr(0), &[1], false, false);
        sc.store(addr(128), &[1], true, false);
        // Full, but the non-tx entry can be evicted.
        assert_eq!(
            sc.store(addr(256), &[1], true, false),
            StoreOutcome::NewEntry
        );
        assert_eq!(sc.len(), 2);
        assert_eq!(sc.tx_entries(), 2);
    }

    #[test]
    fn begin_tx_closes_and_drops_non_tx() {
        let mut sc = StoreCache::new(4);
        sc.store(addr(0), &[1; 8], false, false);
        sc.begin_tx();
        assert!(sc.is_empty());
        // New tx store allocates fresh entry rather than gathering.
        assert_eq!(
            sc.store(addr(0), &[2; 8], true, false),
            StoreOutcome::NewEntry
        );
    }

    #[test]
    fn commit_returns_tx_bytes_and_reopens() {
        let mut mem = MainMemory::new();
        let mut sc = StoreCache::new(4);
        sc.store(addr(8), &0xdeadbeefu32.to_be_bytes(), true, false);
        let writes = sc.commit_tx();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].byte_count(), 4);
        for w in &writes {
            w.apply_to(&mut mem);
        }
        assert_eq!(mem.load_u32(addr(8)), 0xdeadbeef);
        // Post-commit stores gather into the (now normal) entry.
        assert_eq!(
            sc.store(addr(12), &[1], false, false),
            StoreOutcome::Gathered
        );
        assert_eq!(sc.tx_entries(), 0);
    }

    #[test]
    fn abort_discards_all_but_ntstg() {
        let mut mem = MainMemory::new();
        mem.store_u64(addr(0), 7); // pre-tx value
        let mut sc = StoreCache::new(4);
        sc.store(addr(0), &42u64.to_be_bytes(), true, false);
        sc.store(addr(16), &99u64.to_be_bytes(), true, true); // NTSTG
        let writes = sc.abort_tx();
        for w in &writes {
            w.apply_to(&mut mem);
        }
        assert_eq!(mem.load_u64(addr(0)), 7, "speculative store discarded");
        assert_eq!(mem.load_u64(addr(16)), 99, "NTSTG survives abort");
        assert!(sc.is_empty());
    }

    #[test]
    fn ntstg_overlap_detected() {
        let mut sc = StoreCache::new(4);
        sc.store(addr(0), &[1; 8], true, false);
        assert_eq!(
            sc.store(addr(0), &[2; 8], true, true),
            StoreOutcome::NtstgOverlap
        );
        let mut sc2 = StoreCache::new(4);
        sc2.store(addr(0), &[1; 8], true, true);
        assert_eq!(
            sc2.store(addr(0), &[2; 8], true, false),
            StoreOutcome::NtstgOverlap
        );
    }

    #[test]
    fn xi_conflict_only_for_tx_lines() {
        let mut sc = StoreCache::new(4);
        sc.store(addr(0), &[1], false, false);
        assert!(!sc.xi_conflicts(addr(0).line()));
        sc.store(addr(300), &[1], true, false);
        assert!(sc.xi_conflicts(addr(300).line()));
        assert!(!sc.xi_conflicts(addr(600).line()));
    }

    #[test]
    fn forwarding_returns_youngest_data() {
        let mut sc = StoreCache::new(4);
        sc.store(addr(0), &[1, 1, 1, 1], true, false);
        let mut buf = [0u8; 8];
        sc.forward(addr(0), &mut buf);
        assert_eq!(&buf[..4], &[1, 1, 1, 1]);
        assert_eq!(&buf[4..], &[0, 0, 0, 0], "invalid bytes untouched");
    }

    #[test]
    fn tx_lines_deduplicates() {
        let mut sc = StoreCache::new(4);
        sc.store(addr(0), &[1], true, false); // half 0, line 0
        sc.store(addr(128), &[1], true, false); // half 1, line 0
        sc.store(addr(256), &[1], true, false); // line 1
        assert_eq!(sc.tx_lines().len(), 2);
    }

    #[test]
    fn store_footprint_is_8kb_at_zec12_geometry() {
        let mut sc = StoreCache::default();
        for i in 0..64u64 {
            assert_eq!(
                sc.store(addr(i * 128), &[1], true, false),
                StoreOutcome::NewEntry
            );
        }
        assert_eq!(
            sc.store(addr(64 * 128), &[1], true, false),
            StoreOutcome::Overflow
        );
    }

    #[test]
    #[should_panic(expected = "crosses a 128-byte granule")]
    fn cross_granule_store_panics() {
        let mut sc = StoreCache::new(4);
        sc.store(addr(124), &[0; 8], false, false);
    }
}
