//! The per-CPU private cache unit: L1 + L2 directories with transactional
//! footprint tracking (§III.C), the LRU-extension vector, and XI handling
//! with stiff-arming.

use crate::store_cache::{DrainWrite, StoreCache, StoreOutcome};
use crate::{CacheGeometry, CpuId, FootprintEvent, SetAssoc, Xi, XiKind, XiResponse};
use ztm_mem::{Address, LineAddr};
use ztm_trace::{hit_level, Event, Tracer};

/// Coherence state of a line in the private cache unit (MESI variant of the
/// paper: lines are owned read-only/shared or exclusive; the store-through
/// L1/L2 never hold dirty data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CohState {
    /// Owned read-only (shared).
    ReadOnly,
    /// Owned exclusive.
    Exclusive,
}

/// L1 directory entry: the paper moved the valid bits into latches and added
/// the tx-read / tx-dirty bits (§III.C). Presence in the [`SetAssoc`] is the
/// valid bit.
#[derive(Debug, Clone, Copy, Default)]
struct L1Entry {
    tx_read: bool,
    tx_dirty: bool,
}

/// L2 directory entry; the unit's coherence state lives here (the L1 is
/// inclusive in the L2 and shares the state).
#[derive(Debug, Clone, Copy)]
struct L2Entry {
    state: CohState,
}

/// What a local lookup found, before going to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalHit {
    /// Present in the L1 with sufficient ownership.
    L1,
    /// Present in the L2 with sufficient ownership (L1 install needed).
    L2,
    /// Not present, or present read-only when exclusive is needed: the
    /// coherence fabric must be consulted. `held_read_only` reports whether
    /// this is an ownership upgrade.
    Miss {
        /// The unit already holds the line read-only (upgrade request).
        held_read_only: bool,
    },
}

/// The class of a CPU memory access, as seen by the cache unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// An instruction or operand fetch (read).
    Fetch,
    /// An operand store (needs exclusive ownership).
    Store,
}

/// Result of installing a fabric-granted line, or completing an access:
/// footprint events for the transaction engine plus lines this unit lost
/// (which the caller must report to the fabric).
#[derive(Debug, Clone, Default)]
pub struct InstallOutcome {
    /// Transactional footprint consequences (overflows, LRU-XI hits).
    pub events: Vec<FootprintEvent>,
    /// Lines evicted from the L2 (and thus from the whole unit).
    pub lost_lines: Vec<LineAddr>,
}

/// Result of delivering an XI to this unit.
#[derive(Debug, Clone)]
pub struct XiOutcome {
    /// Accept or reject (stiff-arm).
    pub response: XiResponse,
    /// Footprint events (conflict aborts) triggered by an accepted XI.
    pub events: Vec<FootprintEvent>,
}

/// One CPU's private cache unit: store-through L1 and L2 directories
/// (inclusive), the 64-row LRU-extension vector, the gathering store cache,
/// and the XI-reject counter.
///
/// The unit tracks *which* lines are cached and their transactional marking;
/// line *data* lives in the committed [`ztm_mem::MainMemory`] image overlaid
/// by this unit's [`StoreCache`] (speculative bytes), which is how isolation
/// falls out: speculative data is physically unreachable from other CPUs.
#[derive(Debug, Clone)]
pub struct PrivateCache {
    geom: CacheGeometry,
    l1: SetAssoc<L1Entry>,
    l2: SetAssoc<L2Entry>,
    /// One bit per L1 row: a tx-read line was evicted from this row (§III.C).
    lru_ext: Vec<bool>,
    store_cache: StoreCache,
    in_tx: bool,
    /// XI rejects per interrogating CPU since this CPU last completed an
    /// instruction. The hang-avoidance threshold (§III.C) counts repeated
    /// denial of the *same* requester: a CPU that merely has a long fetch
    /// in flight rejects many different requesters once or twice each,
    /// which is not a hang. Flat per-CPU slots (indexed by CPU id, grown on
    /// demand) validated by an epoch so that "reset all counters" — which
    /// happens once per completed instruction — is O(1) instead of a hash
    /// map clear.
    reject_counts: Vec<RejectSlot>,
    reject_epoch: u64,
    /// Journal of lines marked tx-read during the current transaction, in
    /// marking order (duplicates possible when a line is evicted and
    /// re-marked). Together with `tx_dirty_marks` this bounds every
    /// transaction-lifecycle operation by the *footprint* size instead of
    /// the full L1/L2 directory size: the tx bits of exactly these lines
    /// need clearing at begin/commit/abort, and only these lines can be
    /// L2-protected. Invariant: every L1 entry with `tx_read` set appears
    /// in this journal (and likewise for `tx_dirty`); entries whose line
    /// left the L1 or lost its bit are stale and filtered on use.
    tx_read_marks: Vec<LineAddr>,
    /// Journal of lines marked tx-dirty during the current transaction.
    tx_dirty_marks: Vec<LineAddr>,
    /// Bumped whenever directory state changes *outside* this CPU's own
    /// access path: an incoming XI (including internal LRU XIs) or a
    /// transaction boundary. A caller that caches "my last access to line L
    /// hit the L1" can keep trusting that verdict exactly while this counter
    /// stands still (its own later accesses replace the cached verdict, so
    /// they need no bump).
    gen: u64,
    tracer: Tracer,
    /// Armed speculative-epoch snapshot, `None` outside epochs.
    undo: Option<Box<CacheUndo>>,
}

/// One per-requester XI-reject counter, valid only for a matching epoch.
#[derive(Debug, Clone, Copy, Default)]
struct RejectSlot {
    epoch: u64,
    count: u32,
}

/// Arm-time snapshot of the unit's non-directory state for one speculative
/// epoch (the sharded simulator's rollback windows). The directories
/// journal first-touch pre-images inside [`SetAssoc`]; everything else is
/// small enough — footprint-sized journals, 64 extension bits, the store
/// cache's occupied entries — that an eager clone beats lazy capture
/// plumbing. `reject_counts` needs no snapshot: it is only written on the
/// XI path, which never runs inside a speculative epoch (XIs are
/// coordinator-serialized global steps).
#[derive(Debug, Clone)]
struct CacheUndo {
    in_tx: bool,
    gen: u64,
    reject_epoch: u64,
    lru_ext: Vec<bool>,
    tx_read_marks: Vec<LineAddr>,
    tx_dirty_marks: Vec<LineAddr>,
    store_cache: StoreCache,
}

impl PrivateCache {
    /// Creates a private cache unit with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        PrivateCache {
            l1: SetAssoc::new(geom.l1_sets, geom.l1_ways),
            l2: SetAssoc::new(geom.l2_sets, geom.l2_ways),
            lru_ext: vec![false; geom.l1_sets],
            store_cache: StoreCache::new(geom.store_cache_entries),
            geom,
            in_tx: false,
            reject_counts: Vec::new(),
            reject_epoch: 0,
            tx_read_marks: Vec::new(),
            tx_dirty_marks: Vec::new(),
            gen: 0,
            tracer: Tracer::disabled(),
            undo: None,
        }
    }

    /// Arms a speculative-epoch undo snapshot covering every mutation the
    /// unit's *local* access path can make (directory rows first-touch
    /// journaled, the rest eagerly captured). Closed by
    /// [`undo_rollback`](Self::undo_rollback) or
    /// [`undo_discard`](Self::undo_discard).
    ///
    /// # Panics
    ///
    /// Panics if an epoch is already armed.
    pub fn undo_arm(&mut self) {
        assert!(self.undo.is_none(), "undo_arm while an epoch is armed");
        self.l1.undo_arm();
        self.l2.undo_arm();
        self.undo = Some(Box::new(CacheUndo {
            in_tx: self.in_tx,
            gen: self.gen,
            reject_epoch: self.reject_epoch,
            lru_ext: self.lru_ext.clone(),
            tx_read_marks: self.tx_read_marks.clone(),
            tx_dirty_marks: self.tx_dirty_marks.clone(),
            store_cache: self.store_cache.clone(),
        }));
    }

    /// Restores the unit to its arm-time state, closing the epoch.
    ///
    /// # Panics
    ///
    /// Panics if no epoch is armed.
    pub fn undo_rollback(&mut self) {
        let u = *self.undo.take().expect("undo_rollback while disarmed");
        self.l1.undo_rollback();
        self.l2.undo_rollback();
        self.in_tx = u.in_tx;
        self.gen = u.gen;
        self.reject_epoch = u.reject_epoch;
        self.lru_ext = u.lru_ext;
        self.tx_read_marks = u.tx_read_marks;
        self.tx_dirty_marks = u.tx_dirty_marks;
        self.store_cache = u.store_cache;
    }

    /// Drops the snapshot without restoring (the speculation committed),
    /// closing the epoch.
    ///
    /// # Panics
    ///
    /// Panics if no epoch is armed.
    pub fn undo_discard(&mut self) {
        self.undo.take().expect("undo_discard while disarmed");
        self.l1.undo_discard();
        self.l2.undo_discard();
    }

    /// The external-mutation generation (see the `gen` field).
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Whether `line` holds the hot (directory-wide MRU) slot of *both* the
    /// L1 and the L2. When it does, a full repeat walk of the line would
    /// re-stamp nothing at either level, so eliding the walk is LRU-pure —
    /// the arming precondition for `ztm-sim`'s line-window coalescing.
    pub fn line_is_hot(&self, line: LineAddr) -> bool {
        self.l1.is_hot(line) && self.l2.is_hot(line)
    }

    /// The tx-read / tx-dirty marks of `line`'s L1 entry, or `None` when the
    /// line is not L1-resident. A pure probe (no LRU effect); the line-window
    /// fast path uses it to prove an elided in-tx walk would journal nothing.
    pub fn l1_tx_marks(&self, line: LineAddr) -> Option<(bool, bool)> {
        self.l1.peek(line).map(|e| (e.tx_read, e.tx_dirty))
    }

    /// Re-emits the `Access` event a repeated L1-hit lookup of `line` would
    /// have produced, for callers that elide the directory walk itself.
    pub fn emit_repeat_access(&self, line: LineAddr, store: bool) {
        self.tracer.emit(|| Event::Access {
            line: line.index(),
            store,
            hit: hit_level::L1,
            tx: self.in_tx,
        });
    }

    /// Creates a private cache unit with the XI-reject table pre-sized for
    /// `cpus` requesters (avoids growth on the XI path; any id beyond the
    /// pre-size still grows the table on demand).
    pub fn with_cpu_count(geom: CacheGeometry, cpus: usize) -> Self {
        let mut unit = Self::new(geom);
        unit.reject_counts = vec![RejectSlot::default(); cpus];
        unit
    }

    /// Attaches a tracer (also cloned into the gathering store cache, so its
    /// events carry the same CPU attribution).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.store_cache.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The unit's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Whether the unit is currently tracking a transaction footprint.
    pub fn in_tx(&self) -> bool {
        self.in_tx
    }

    /// Read access to the gathering store cache (for statistics).
    pub fn store_cache(&self) -> &StoreCache {
        &self.store_cache
    }

    /// Current coherence state of a line in this unit.
    pub fn state_of(&self, line: LineAddr) -> Option<CohState> {
        self.l2.peek(line).map(|e| e.state)
    }

    /// Pure (stamp-free) preview of what [`access_local`](Self::access_local)
    /// would return for a `need_excl` access to `line`: `Some(level)` with a
    /// [`hit_level`] code when the access hits locally, `None` when it would
    /// need the fabric. The shard classifier uses it to prove a step never
    /// leaves its node before letting the step run inside a parallel epoch
    /// window.
    pub fn probe_local(&self, line: LineAddr, need_excl: bool) -> Option<u8> {
        match self.l2.peek(line).map(|e| e.state) {
            None => None,
            Some(state) => {
                if need_excl && state == CohState::ReadOnly {
                    None
                } else if self.l1.peek(line).is_some() {
                    Some(hit_level::L1)
                } else {
                    Some(hit_level::L2)
                }
            }
        }
    }

    /// Number of L1 rows with the LRU-extension bit set.
    pub fn lru_ext_rows(&self) -> usize {
        self.lru_ext.iter().filter(|b| **b).count()
    }

    /// Number of L1 lines currently marked tx-read: the journal filtered by
    /// the live L1 bits (marked lines may have been evicted since), deduped.
    pub fn tx_read_lines(&self) -> usize {
        let mut lines: Vec<LineAddr> = self
            .tx_read_marks
            .iter()
            .copied()
            .filter(|&l| self.l1.peek(l).map(|e| e.tx_read).unwrap_or(false))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }

    // ------------------------------------------------------------------
    // Access path
    // ------------------------------------------------------------------

    /// Local lookup for an access; decides whether the fabric is needed.
    pub fn lookup(&mut self, line: LineAddr, class: AccessClass) -> LocalHit {
        let need_excl = class == AccessClass::Store;
        let hit = match self.l2.peek(line).map(|e| e.state) {
            Some(state) => {
                if need_excl && state == CohState::ReadOnly {
                    LocalHit::Miss {
                        held_read_only: true,
                    }
                } else if self.l1.get(line).is_some() {
                    // `get` doubles as the presence test and the LRU touch.
                    self.l2.get(line);
                    LocalHit::L1
                } else {
                    LocalHit::L2
                }
            }
            None => LocalHit::Miss {
                held_read_only: false,
            },
        };
        self.tracer.emit(|| Event::Access {
            line: line.index(),
            store: need_excl,
            hit: match hit {
                LocalHit::L1 => hit_level::L1,
                LocalHit::L2 => hit_level::L2,
                LocalHit::Miss { .. } => hit_level::MISS,
            },
            tx: self.in_tx,
        });
        hit
    }

    /// Installs a line granted by the fabric (or upgrades it), placing it in
    /// both the L2 and L1 and applying the transactional marking for the
    /// access that triggered the fetch.
    pub fn install(
        &mut self,
        line: LineAddr,
        state: CohState,
        class: AccessClass,
        tx: bool,
    ) -> InstallOutcome {
        let mut out = InstallOutcome::default();
        self.tracer.emit(|| Event::Install {
            line: line.index(),
            excl: state == CohState::Exclusive,
            tx,
        });
        match self.l2.get(line) {
            Some(e) => e.state = state,
            None => {
                let protected = self.l2_protected_lines();
                let evicted = self.l2.insert(line, L2Entry { state }, |l, _| {
                    u8::from(protected.binary_search(&l).is_ok())
                });
                if let Some((vline, _)) = evicted {
                    self.lru_evict_from_l2(vline, &mut out);
                }
            }
        }
        self.install_l1(line, &mut out);
        self.mark(line, class, tx);
        out
    }

    /// Completes an access that hit locally ([`LocalHit::L1`]/[`LocalHit::L2`]):
    /// installs into the L1 if needed and applies transactional marking.
    pub fn complete_local(
        &mut self,
        line: LineAddr,
        class: AccessClass,
        tx: bool,
    ) -> InstallOutcome {
        let mut out = InstallOutcome::default();
        debug_assert!(self.l2.contains(line), "local completion without L2 line");
        // Fast path: L1-resident — one directory scan doubling as the
        // presence test and the mark target (same transitions as `mark`).
        if let Some(e) = self.l1.peek_mut(line) {
            if tx {
                match class {
                    AccessClass::Fetch => {
                        if !e.tx_read {
                            e.tx_read = true;
                            self.tx_read_marks.push(line);
                        }
                    }
                    AccessClass::Store => {
                        if !e.tx_dirty {
                            e.tx_dirty = true;
                            self.tx_dirty_marks.push(line);
                        }
                    }
                }
            }
            return out;
        }
        self.install_l1(line, &mut out);
        self.mark(line, class, tx);
        out
    }

    /// Fused [`lookup`](Self::lookup) + [`complete_local`](Self::complete_local):
    /// one pass over each directory instead of two.
    ///
    /// Equivalence with the split pair is stamp-exact: the L2 is scanned once
    /// (state check first, stamp applied only on the hit path, as
    /// `peek`-then-`get` would), the L1 `get_index` consumes a stamp even on
    /// a miss exactly like `get`, and the tx-marking transitions and journal
    /// pushes are the ones `complete_local` performs. `need_excl` is the
    /// lookup's exclusivity requirement (a store, or fetch with intent to
    /// update); `class` is the access class used for tx marking.
    pub fn access_local(
        &mut self,
        line: LineAddr,
        class: AccessClass,
        need_excl: bool,
        tx: bool,
    ) -> (LocalHit, InstallOutcome) {
        // Phase 1: the lookup — scans and LRU stamps only, no completion
        // side effects, so the `Access` event precedes any `Evict` the
        // completion emits (same event order as the split pair).
        let (hit, l1_at) = match self.l2.find(line) {
            None => (
                LocalHit::Miss {
                    held_read_only: false,
                },
                None,
            ),
            Some(l2_at) => {
                if need_excl && self.l2.entry_at(l2_at).state == CohState::ReadOnly {
                    (
                        LocalHit::Miss {
                            held_read_only: true,
                        },
                        None,
                    )
                } else {
                    let l1_at = self.l1.get_index(line);
                    self.l2.touch_index(l2_at);
                    match l1_at {
                        Some(at) => (LocalHit::L1, Some(at)),
                        None => (LocalHit::L2, None),
                    }
                }
            }
        };
        self.tracer.emit(|| Event::Access {
            line: line.index(),
            store: need_excl,
            hit: match hit {
                LocalHit::L1 => hit_level::L1,
                LocalHit::L2 => hit_level::L2,
                LocalHit::Miss { .. } => hit_level::MISS,
            },
            tx: self.in_tx,
        });
        // Phase 2: completion — tx marking (and L1 install for L2 hits).
        let mut out = InstallOutcome::default();
        match hit {
            LocalHit::L1 => {
                if tx {
                    let e = self
                        .l1
                        .entry_at_mut(l1_at.expect("L1 hit carries its slot index"));
                    match class {
                        AccessClass::Fetch => {
                            if !e.tx_read {
                                e.tx_read = true;
                                self.tx_read_marks.push(line);
                            }
                        }
                        AccessClass::Store => {
                            if !e.tx_dirty {
                                e.tx_dirty = true;
                                self.tx_dirty_marks.push(line);
                            }
                        }
                    }
                }
            }
            LocalHit::L2 => {
                self.install_l1(line, &mut out);
                self.mark(line, class, tx);
            }
            LocalHit::Miss { .. } => {}
        }
        (hit, out)
    }

    fn install_l1(&mut self, line: LineAddr, out: &mut InstallOutcome) {
        if self.l1.contains(line) {
            return;
        }
        let evicted = self.l1.insert(line, L1Entry::default(), |_, e| {
            if e.tx_read {
                2
            } else if e.tx_dirty {
                1
            } else {
                0
            }
        });
        if let Some((vline, ventry)) = evicted {
            self.tracer.emit(|| Event::Evict {
                line: vline.index(),
                level: 1,
                tx_read: ventry.tx_read,
                tx_dirty: ventry.tx_dirty,
            });
            // tx-dirty lines may leave the L1 (data is safe in the store
            // cache and the line stays in the L2, §III.C). tx-read lines
            // set the LRU-extension bit, or abort without the extension.
            if ventry.tx_read {
                if self.geom.lru_extension {
                    let row = vline.congruence_class(self.geom.l1_sets);
                    self.lru_ext[row] = true;
                } else {
                    out.events
                        .push(FootprintEvent::FetchOverflow { line: vline });
                }
            }
        }
    }

    /// Applies tx-read / tx-dirty marking for a completed access. A bit's
    /// false→true transition is journaled so transaction-end processing can
    /// visit exactly the marked lines.
    fn mark(&mut self, line: LineAddr, class: AccessClass, tx: bool) {
        if !tx {
            return;
        }
        let Some(e) = self.l1.peek_mut(line) else {
            return;
        };
        match class {
            AccessClass::Fetch => {
                if !e.tx_read {
                    e.tx_read = true;
                    self.tx_read_marks.push(line);
                }
            }
            AccessClass::Store => {
                if !e.tx_dirty {
                    e.tx_dirty = true;
                    self.tx_dirty_marks.push(line);
                }
            }
        }
    }

    /// Sorted list of lines the L2 should prefer to keep: transactional store
    /// lines (must stay resident, §III.D) and L1 tx-read/tx-dirty lines.
    /// Built from the mark journals — O(footprint), not O(L1 directory) —
    /// filtering out journal entries whose line has since left the L1 or
    /// lost its bit (those lines are no longer protected).
    fn l2_protected_lines(&self) -> Vec<LineAddr> {
        let mut lines = self.store_cache.tx_lines();
        lines.extend(
            self.tx_read_marks
                .iter()
                .copied()
                .filter(|&l| self.l1.peek(l).map(|e| e.tx_read).unwrap_or(false)),
        );
        lines.extend(
            self.tx_dirty_marks
                .iter()
                .copied()
                .filter(|&l| self.l1.peek(l).map(|e| e.tx_dirty).unwrap_or(false)),
        );
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Handles an L2 eviction: the inclusivity rule forces the line out of
    /// the L1 too (an internal LRU XI), with transactional consequences.
    fn lru_evict_from_l2(&mut self, vline: LineAddr, out: &mut InstallOutcome) {
        out.lost_lines.push(vline);
        self.store_cache.drain_line(vline);
        let row = vline.congruence_class(self.geom.l1_sets);
        let l1_entry = self.l1.peek(vline).copied();
        self.tracer.emit(|| Event::Evict {
            line: vline.index(),
            level: 2,
            tx_read: l1_entry.map(|e| e.tx_read).unwrap_or(false),
            tx_dirty: l1_entry.map(|e| e.tx_dirty).unwrap_or(false),
        });
        if let Some(e) = self.l1.remove(vline) {
            if e.tx_dirty {
                // A transactionally dirty line must stay in the L2 (§III.D).
                out.events
                    .push(FootprintEvent::StoreOverflow { line: Some(vline) });
            } else if e.tx_read {
                out.events
                    .push(FootprintEvent::FetchOverflow { line: vline });
            }
        } else if self.in_tx && self.lru_ext[row] {
            // The internal LRU XI hits a valid extension row: tracking for
            // some tx-read line in this row may have been lost (§III.C).
            out.events
                .push(FootprintEvent::FetchOverflow { line: vline });
        }
        if self.store_cache.xi_conflicts(vline) {
            // Store-cache data for this line can no longer stay L2-resident.
            out.events
                .push(FootprintEvent::StoreOverflow { line: Some(vline) });
        }
    }

    /// Presents store data to the gathering store cache.
    ///
    /// Callers must have established exclusive ownership first. The store
    /// must not cross a 128-byte granule (the ISA layer splits such stores).
    pub fn buffer_store(
        &mut self,
        addr: Address,
        bytes: &[u8],
        tx: bool,
        ntstg: bool,
    ) -> StoreOutcome {
        let outcome = self.store_cache.store(addr, bytes, tx, ntstg);
        if outcome != StoreOutcome::Overflow && tx {
            self.mark(addr.line(), AccessClass::Store, true);
        }
        outcome
    }

    /// Store-forwards buffered bytes over a load (see [`StoreCache::forward`]).
    pub fn forward(&self, addr: Address, buf: &mut [u8]) {
        self.store_cache.forward(addr, buf);
    }

    // ------------------------------------------------------------------
    // XI handling (§III.C)
    // ------------------------------------------------------------------

    /// Delivers a cross-interrogate to this unit.
    pub fn handle_xi(&mut self, xi: Xi) -> XiOutcome {
        let line = xi.line;
        let l1_entry = self.l1.peek(line).copied();
        let footprint_store =
            l1_entry.map(|e| e.tx_dirty).unwrap_or(false) || self.store_cache.xi_conflicts(line);
        let footprint_fetch = l1_entry.map(|e| e.tx_read).unwrap_or(false);
        let row = line.congruence_class(self.geom.l1_sets);
        let ext_hit = self.in_tx && l1_entry.is_none() && self.lru_ext[row];
        let footprint_hit = footprint_store || footprint_fetch || ext_hit;

        // Only CPU-originated XIs can be stiff-armed; XIs from the I/O
        // subsystem or internal LRU processing carry no requester and are
        // always honored.
        if footprint_hit && xi.kind.rejectable() && self.geom.stiff_arm {
            if let Some(from) = xi.from {
                let count = self.bump_reject_count(from);
                if count <= self.geom.xi_reject_threshold {
                    self.tracer.emit(|| Event::XiReject {
                        line: line.index(),
                        kind: xi.kind.code(),
                        count,
                    });
                    return XiOutcome {
                        response: XiResponse::Reject,
                        events: Vec::new(),
                    };
                }
                // Reject budget exhausted without completing instructions:
                // accept the XI and abort to avoid a hang (§III.C).
                self.tracer.emit(|| Event::XiAccept {
                    line: line.index(),
                    kind: xi.kind.code(),
                    conflict: true,
                });
                self.tracer
                    .emit(|| Event::RejectHang { line: line.index() });
                let mut out = self.apply_xi_transition(xi);
                out.events.push(FootprintEvent::RejectHang { line });
                return out;
            }
        }

        self.tracer.emit(|| Event::XiAccept {
            line: line.index(),
            kind: xi.kind.code(),
            conflict: footprint_hit,
        });
        let mut out = self.apply_xi_transition(xi);
        if footprint_hit {
            out.events.push(FootprintEvent::Conflict {
                line,
                from: xi.from,
                store: footprint_store,
            });
        }
        out
    }

    fn apply_xi_transition(&mut self, xi: Xi) -> XiOutcome {
        self.gen += 1;
        // Losing (or downgrading) the line forces pending non-transactional
        // stores for it out of the gathering store cache first.
        self.store_cache.drain_line(xi.line);
        match xi.kind {
            XiKind::Exclusive | XiKind::ReadOnly | XiKind::Lru => {
                self.l1.remove(xi.line);
                self.l2.remove(xi.line);
            }
            XiKind::Demote => {
                if let Some(e) = self.l2.peek_mut(xi.line) {
                    e.state = CohState::ReadOnly;
                }
            }
        }
        XiOutcome {
            response: XiResponse::Accept,
            events: Vec::new(),
        }
    }

    /// Increments and returns the reject count charged to `from`.
    fn bump_reject_count(&mut self, from: CpuId) -> u32 {
        if from.0 >= self.reject_counts.len() {
            self.reject_counts.resize(from.0 + 1, RejectSlot::default());
        }
        let slot = &mut self.reject_counts[from.0];
        if slot.epoch != self.reject_epoch {
            *slot = RejectSlot {
                epoch: self.reject_epoch,
                count: 0,
            };
        }
        slot.count += 1;
        slot.count
    }

    /// Resets the XI-reject counters; called whenever the CPU completes an
    /// instruction (a progressing CPU may keep stiff-arming, §III.C).
    /// O(1): bumping the epoch invalidates every slot at once.
    pub fn note_instruction_complete(&mut self) {
        self.reject_epoch += 1;
    }

    /// Highest per-requester reject count (for statistics/tests).
    pub fn reject_count(&self) -> u32 {
        self.reject_counts
            .iter()
            .filter(|s| s.epoch == self.reject_epoch)
            .map(|s| s.count)
            .max()
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Transaction lifecycle
    // ------------------------------------------------------------------

    /// Clears the tx bits of every journaled line still holding one and
    /// empties both journals — O(footprint) instead of an L1 sweep.
    fn clear_tx_marks(&mut self) {
        for i in 0..self.tx_read_marks.len() {
            if let Some(e) = self.l1.peek_mut(self.tx_read_marks[i]) {
                e.tx_read = false;
            }
        }
        for i in 0..self.tx_dirty_marks.len() {
            if let Some(e) = self.l1.peek_mut(self.tx_dirty_marks[i]) {
                e.tx_dirty = false;
            }
        }
        self.tx_read_marks.clear();
        self.tx_dirty_marks.clear();
    }

    /// Starts footprint tracking for a new outermost transaction: resets the
    /// tx bits and the LRU-extension vector, and closes pre-existing store
    /// cache entries (§III.B/§III.D).
    pub fn begin_outermost_tx(&mut self) {
        self.in_tx = true;
        self.gen += 1;
        self.reject_epoch += 1;
        self.clear_tx_marks();
        self.lru_ext.fill(false);
        self.store_cache.begin_tx();
    }

    /// Commits the transaction: clears all transactional marking and returns
    /// the buffered stores for application to committed memory.
    pub fn commit_tx(&mut self) -> Vec<DrainWrite> {
        self.in_tx = false;
        self.gen += 1;
        self.clear_tx_marks();
        self.lru_ext.fill(false);
        self.store_cache.commit_tx()
    }

    /// Aborts the transaction: invalidates tx-dirty L1 lines (they remain
    /// L2-resident with the pre-transaction data, §III.C), discards buffered
    /// stores, and returns the NTSTG writes that must still be committed.
    pub fn abort_tx(&mut self) -> Vec<DrainWrite> {
        self.in_tx = false;
        self.gen += 1;
        for i in 0..self.tx_dirty_marks.len() {
            let line = self.tx_dirty_marks[i];
            // Journal entries can be stale: only remove lines whose live L1
            // entry still carries the dirty bit.
            if self.l1.peek(line).map(|e| e.tx_dirty).unwrap_or(false) {
                self.l1.remove(line);
            }
        }
        self.tx_dirty_marks.clear();
        for i in 0..self.tx_read_marks.len() {
            if let Some(e) = self.l1.peek_mut(self.tx_read_marks[i]) {
                e.tx_read = false;
            }
        }
        self.tx_read_marks.clear();
        self.lru_ext.fill(false);
        self.store_cache.abort_tx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpuId;

    fn unit() -> PrivateCache {
        PrivateCache::new(CacheGeometry::zec12())
    }

    fn small_unit() -> PrivateCache {
        PrivateCache::new(CacheGeometry {
            l1_sets: 2,
            l1_ways: 2,
            l2_sets: 4,
            l2_ways: 2,
            store_cache_entries: 4,
            ..CacheGeometry::zec12()
        })
    }

    fn line(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    fn xi(kind: XiKind, l: LineAddr) -> Xi {
        Xi {
            kind,
            line: l,
            from: Some(CpuId(9)),
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut u = unit();
        assert_eq!(
            u.lookup(line(1), AccessClass::Fetch),
            LocalHit::Miss {
                held_read_only: false
            }
        );
        u.install(line(1), CohState::ReadOnly, AccessClass::Fetch, false);
        assert_eq!(u.lookup(line(1), AccessClass::Fetch), LocalHit::L1);
    }

    #[test]
    fn store_needs_exclusive() {
        let mut u = unit();
        u.install(line(1), CohState::ReadOnly, AccessClass::Fetch, false);
        assert_eq!(
            u.lookup(line(1), AccessClass::Store),
            LocalHit::Miss {
                held_read_only: true
            }
        );
        u.install(line(1), CohState::Exclusive, AccessClass::Store, false);
        assert_eq!(u.lookup(line(1), AccessClass::Store), LocalHit::L1);
    }

    #[test]
    fn tx_read_marking_and_conflict() {
        let mut u = unit();
        u.begin_outermost_tx();
        u.install(line(1), CohState::ReadOnly, AccessClass::Fetch, true);
        assert_eq!(u.tx_read_lines(), 1);
        // A read-only XI (not rejectable) hits the footprint: conflict.
        let out = u.handle_xi(xi(XiKind::ReadOnly, line(1)));
        assert_eq!(out.response, XiResponse::Accept);
        assert!(matches!(
            out.events.as_slice(),
            [FootprintEvent::Conflict { store: false, .. }]
        ));
        assert_eq!(u.state_of(line(1)), None, "line invalidated");
    }

    #[test]
    fn exclusive_xi_stiff_armed_until_threshold() {
        let mut u = unit();
        u.begin_outermost_tx();
        u.install(line(1), CohState::Exclusive, AccessClass::Store, true);
        u.buffer_store(line(1).base(), &[1], true, false);
        let threshold = u.geometry().xi_reject_threshold;
        for _ in 0..threshold {
            let out = u.handle_xi(xi(XiKind::Exclusive, line(1)));
            assert_eq!(out.response, XiResponse::Reject);
        }
        // Threshold reached: accepted with a hang-avoidance abort.
        let out = u.handle_xi(xi(XiKind::Exclusive, line(1)));
        assert_eq!(out.response, XiResponse::Accept);
        assert!(matches!(
            out.events.as_slice(),
            [FootprintEvent::RejectHang { .. }]
        ));
    }

    #[test]
    fn instruction_completion_resets_reject_budget() {
        let mut u = unit();
        u.begin_outermost_tx();
        u.install(line(1), CohState::Exclusive, AccessClass::Fetch, true);
        for _ in 0..u.geometry().xi_reject_threshold {
            assert_eq!(
                u.handle_xi(xi(XiKind::Demote, line(1))).response,
                XiResponse::Reject
            );
        }
        u.note_instruction_complete();
        assert_eq!(
            u.handle_xi(xi(XiKind::Demote, line(1))).response,
            XiResponse::Reject,
            "budget replenished by forward progress"
        );
    }

    #[test]
    fn no_stiff_arm_knob_aborts_immediately() {
        let mut u = PrivateCache::new(CacheGeometry {
            stiff_arm: false,
            ..CacheGeometry::zec12()
        });
        u.begin_outermost_tx();
        u.install(line(1), CohState::Exclusive, AccessClass::Fetch, true);
        let out = u.handle_xi(xi(XiKind::Exclusive, line(1)));
        assert_eq!(out.response, XiResponse::Accept);
        assert!(matches!(
            out.events.as_slice(),
            [FootprintEvent::Conflict { .. }]
        ));
    }

    #[test]
    fn non_tx_xi_has_no_events() {
        let mut u = unit();
        u.install(line(1), CohState::Exclusive, AccessClass::Fetch, false);
        let out = u.handle_xi(xi(XiKind::Exclusive, line(1)));
        assert_eq!(out.response, XiResponse::Accept);
        assert!(out.events.is_empty());
        assert_eq!(u.state_of(line(1)), None);
    }

    #[test]
    fn demote_keeps_line_read_only() {
        let mut u = unit();
        u.install(line(1), CohState::Exclusive, AccessClass::Fetch, false);
        let out = u.handle_xi(xi(XiKind::Demote, line(1)));
        assert_eq!(out.response, XiResponse::Accept);
        assert_eq!(u.state_of(line(1)), Some(CohState::ReadOnly));
    }

    #[test]
    fn l1_eviction_of_tx_read_sets_lru_extension() {
        let mut u = small_unit(); // L1: 2 sets × 2 ways
        u.begin_outermost_tx();
        // Three tx-read lines in L1 row 0 (lines 0, 2, 4 → class 0 of 2 sets).
        u.install(line(0), CohState::ReadOnly, AccessClass::Fetch, true);
        u.install(line(2), CohState::ReadOnly, AccessClass::Fetch, true);
        let out = u.install(line(4), CohState::ReadOnly, AccessClass::Fetch, true);
        assert!(out.events.is_empty(), "extension absorbs the eviction");
        assert_eq!(u.lru_ext_rows(), 1);
        // Any XI to a missing line in that row now aborts.
        let out = u.handle_xi(xi(XiKind::ReadOnly, line(6)));
        assert!(matches!(
            out.events.as_slice(),
            [FootprintEvent::Conflict { .. }]
        ));
    }

    #[test]
    fn without_extension_l1_eviction_overflows() {
        let mut u = PrivateCache::new(CacheGeometry {
            l1_sets: 2,
            l1_ways: 2,
            l2_sets: 4,
            l2_ways: 2,
            store_cache_entries: 4,
            lru_extension: false,
            ..CacheGeometry::zec12()
        });
        u.begin_outermost_tx();
        u.install(line(0), CohState::ReadOnly, AccessClass::Fetch, true);
        u.install(line(2), CohState::ReadOnly, AccessClass::Fetch, true);
        let out = u.install(line(4), CohState::ReadOnly, AccessClass::Fetch, true);
        assert!(matches!(
            out.events.as_slice(),
            [FootprintEvent::FetchOverflow { .. }]
        ));
    }

    #[test]
    fn l2_eviction_of_tx_line_overflows() {
        let mut u = small_unit(); // L2: 4 sets × 2 ways
        u.begin_outermost_tx();
        // Fill L2 set 0 (lines 0, 4 → class 0 of 4 sets) with tx-read lines.
        u.install(line(0), CohState::ReadOnly, AccessClass::Fetch, true);
        u.install(line(4), CohState::ReadOnly, AccessClass::Fetch, true);
        // Third line in the same L2 set must evict a protected tx line.
        let out = u.install(line(8), CohState::ReadOnly, AccessClass::Fetch, true);
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, FootprintEvent::FetchOverflow { .. })));
        assert_eq!(out.lost_lines.len(), 1);
    }

    #[test]
    fn l2_prefers_evicting_non_tx_lines() {
        let mut u = small_unit();
        u.begin_outermost_tx();
        u.install(line(0), CohState::ReadOnly, AccessClass::Fetch, false); // non-tx
        u.install(line(4), CohState::ReadOnly, AccessClass::Fetch, true); // tx
        let out = u.install(line(8), CohState::ReadOnly, AccessClass::Fetch, true);
        assert!(out.events.is_empty());
        assert_eq!(out.lost_lines, vec![line(0)]);
        assert!(u.state_of(line(4)).is_some(), "tx line kept");
    }

    #[test]
    fn commit_clears_marking_and_returns_writes() {
        let mut u = unit();
        u.begin_outermost_tx();
        u.install(line(1), CohState::Exclusive, AccessClass::Store, true);
        u.buffer_store(line(1).base(), &[7; 8], true, false);
        let writes = u.commit_tx();
        assert_eq!(writes.len(), 1);
        assert!(!u.in_tx());
        assert_eq!(u.tx_read_lines(), 0);
        // Line is still cached after commit.
        assert_eq!(u.state_of(line(1)), Some(CohState::Exclusive));
    }

    #[test]
    fn abort_invalidates_tx_dirty_l1_lines() {
        let mut u = unit();
        u.begin_outermost_tx();
        u.install(line(1), CohState::Exclusive, AccessClass::Store, true);
        u.buffer_store(line(1).base(), &[7; 8], true, false);
        assert_eq!(u.lookup(line(1), AccessClass::Fetch), LocalHit::L1);
        let writes = u.abort_tx();
        assert!(writes.is_empty(), "no NTSTG data");
        // tx-dirty line left the L1 but stays in the L2 (7-cycle refill).
        assert_eq!(u.lookup(line(1), AccessClass::Fetch), LocalHit::L2);
    }

    #[test]
    fn store_forwarding_within_tx() {
        let mut u = unit();
        u.begin_outermost_tx();
        u.install(line(0), CohState::Exclusive, AccessClass::Store, true);
        u.buffer_store(Address::new(8), &[9; 4], true, false);
        let mut buf = [0u8; 8];
        u.forward(Address::new(8), &mut buf);
        assert_eq!(buf, [9, 9, 9, 9, 0, 0, 0, 0]);
    }

    #[test]
    fn undo_rollback_restores_tx_footprint_and_stores() {
        let mut u = unit();
        u.begin_outermost_tx();
        u.install(line(1), CohState::Exclusive, AccessClass::Store, true);
        u.buffer_store(line(1).base(), &[7; 8], true, false);
        u.undo_arm();
        // Speculative work: a new tx fetch, a store, and an L1-touching hit.
        u.install(line(2), CohState::ReadOnly, AccessClass::Fetch, true);
        u.buffer_store(line(1).base().add(8), &[9; 8], true, false);
        assert_eq!(u.lookup(line(2), AccessClass::Fetch), LocalHit::L1);
        let gen_speculated = u.generation();
        u.undo_rollback();
        assert_eq!(u.state_of(line(2)), None, "speculative install undone");
        assert_eq!(u.tx_read_lines(), 0);
        assert!(u.generation() <= gen_speculated);
        let mut buf = [0u8; 16];
        u.forward(line(1).base(), &mut buf);
        assert_eq!(&buf[..8], &[7; 8], "pre-epoch store survives");
        assert_eq!(&buf[8..], &[0; 8], "speculative store gone");
        // Commit still drains exactly the pre-epoch bytes.
        let writes = u.commit_tx();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].byte_count(), 8);
    }

    #[test]
    fn undo_discard_is_free_of_side_effects() {
        let mut u = unit();
        u.undo_arm();
        u.install(line(3), CohState::ReadOnly, AccessClass::Fetch, false);
        u.undo_discard();
        assert_eq!(u.state_of(line(3)), Some(CohState::ReadOnly));
    }

    #[test]
    fn begin_tx_resets_prior_marking() {
        let mut u = unit();
        u.begin_outermost_tx();
        u.install(line(1), CohState::ReadOnly, AccessClass::Fetch, true);
        u.commit_tx();
        u.begin_outermost_tx();
        assert_eq!(u.tx_read_lines(), 0);
        assert_eq!(u.lru_ext_rows(), 0);
    }
}
