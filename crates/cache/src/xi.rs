//! Cross-interrogates (XIs) and transactional footprint events.

use crate::CpuId;
use ztm_mem::LineAddr;

/// The kind of a cross-interrogate, per §III.A of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XiKind {
    /// Transition exclusive → invalid (another CPU wants the line exclusive).
    /// May be rejected by the target.
    Exclusive,
    /// Transition exclusive → read-only (another CPU wants to read).
    /// May be rejected by the target.
    Demote,
    /// Invalidate a read-only copy (another CPU wants the line exclusive).
    /// Cannot be rejected.
    ReadOnly,
    /// Eviction forced by an associativity overflow at a higher cache level
    /// (inclusivity rule). Cannot be rejected.
    Lru,
}

impl XiKind {
    /// Whether a target may reject (stiff-arm) this XI kind.
    pub fn rejectable(self) -> bool {
        matches!(self, XiKind::Exclusive | XiKind::Demote)
    }

    /// Stable numeric code, matching [`ztm_trace::xi_kind`] and the order of
    /// the fabric's per-kind counters.
    pub fn code(self) -> u8 {
        match self {
            XiKind::Exclusive => 0,
            XiKind::Demote => 1,
            XiKind::ReadOnly => 2,
            XiKind::Lru => 3,
        }
    }
}

/// A cross-interrogate delivered to a private cache unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xi {
    /// What transition the XI demands.
    pub kind: XiKind,
    /// The line being interrogated.
    pub line: LineAddr,
    /// The requesting CPU (for diagnostics; `None` for internal LRU XIs).
    pub from: Option<CpuId>,
}

/// The target's answer to an XI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XiResponse {
    /// The XI was accepted and the directory state updated.
    Accept,
    /// The XI was rejected (stiff-armed); the sender must repeat it.
    Reject,
}

/// A transactional footprint event produced by the cache layer.
///
/// The cache layer detects these conditions; the `ztm-core` transaction
/// engine converts them into architected abort codes (conflict, fetch
/// overflow, store overflow — §II.A lists the abort reasons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FootprintEvent {
    /// A non-rejected XI hit the transactional read or write set — a conflict
    /// with another CPU. Carries the conflicting line (the TDB "conflict
    /// token", §II.E.1) and the interrogating CPU when known.
    Conflict {
        /// The line on which the conflict was detected.
        line: LineAddr,
        /// The CPU whose request caused the conflict, if known.
        from: Option<CpuId>,
        /// Whether the conflicted local access was a store (write-set hit).
        store: bool,
    },
    /// The transactional read footprint exceeded what the CPU can track
    /// (tx-read line lost from the L1 without LRU extension, or from the L2).
    FetchOverflow {
        /// The line whose tracking was lost.
        line: LineAddr,
    },
    /// The transactional store footprint exceeded the store cache or the L2
    /// associativity (§III.D).
    StoreOverflow {
        /// The line that could not be accommodated, when identifiable.
        line: Option<LineAddr>,
    },
    /// The CPU rejected XIs for too long without completing instructions;
    /// the reject-counter threshold aborts the transaction to avoid hangs
    /// (§III.C).
    RejectHang {
        /// The line whose XI finally had to be accepted.
        line: LineAddr,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejectability_matches_paper() {
        assert!(XiKind::Exclusive.rejectable());
        assert!(XiKind::Demote.rejectable());
        assert!(!XiKind::ReadOnly.rejectable());
        assert!(!XiKind::Lru.rejectable());
    }

    #[test]
    fn footprint_event_carries_conflict_token() {
        let e = FootprintEvent::Conflict {
            line: LineAddr::new(7),
            from: Some(CpuId(3)),
            store: false,
        };
        match e {
            FootprintEvent::Conflict { line, from, .. } => {
                assert_eq!(line, LineAddr::new(7));
                assert_eq!(from, Some(CpuId(3)));
            }
            _ => unreachable!(),
        }
    }
}
