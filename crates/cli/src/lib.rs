//! Argument parsing and run logic for the `ztm-run` command-line driver.
//!
//! Kept in a library so the parsing and report formatting are unit-testable;
//! the `ztm-run` binary is a thin wrapper.

use std::fmt::Write as _;
use ztm_core::DiagnosticControl;
use ztm_sim::{System, SystemConfig};
use ztm_trace::{Metrics, Recorder, Tracer};
use ztm_workloads::bank::{Bank, BankMethod};
use ztm_workloads::dlist::{DoublyLinkedList, ListMethod};
use ztm_workloads::hashtable::{HashTable, TableMethod};
use ztm_workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};
use ztm_workloads::queue::{ConcurrentQueue, QueueMethod};
use ztm_workloads::rwlock::{ReadMethod, ReadWorkload};
use ztm_workloads::WorkloadReport;

/// Which benchmark to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Variable-pool updates (Fig 5a–c).
    Pool,
    /// Read-only pool (Fig 5d).
    Read,
    /// Lock-elided hashtable (Fig 5e).
    Hashtable,
    /// Concurrent queue (E2).
    Queue,
    /// Doubly-linked list (§II.D).
    Dlist,
    /// Bank transfers (conservation invariant).
    Bank,
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Benchmark selection.
    pub workload: Workload,
    /// Synchronization method name (validated per workload).
    pub method: String,
    /// CPU count.
    pub cpus: usize,
    /// Operations per CPU.
    pub ops: u64,
    /// Pool/table size.
    pub pool: u64,
    /// Variables per operation (pool workload).
    pub vars: usize,
    /// RNG seed.
    pub seed: u64,
    /// Disable speculative prefetch modeling.
    pub no_prefetch: bool,
    /// Disable XI stiff-arming.
    pub no_stiff_arm: bool,
    /// Diagnostic control: None, or `random`/`always`.
    pub tdc: Option<String>,
    /// Print the execution trace of this CPU afterwards.
    pub trace_cpu: Option<usize>,
    /// Write a Chrome trace-event JSON document here.
    pub trace_out: Option<String>,
    /// Write a metrics JSON document here.
    pub metrics_out: Option<String>,
    /// Trace with the digest-only sink (no ring, no metrics): print the
    /// stream digest and event count only.
    pub digest_only: bool,
    /// Print a per-CPU measurement table.
    pub per_cpu: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workload: Workload::Pool,
            method: "tbegin".into(),
            cpus: 4,
            ops: 200,
            pool: 64,
            vars: 1,
            seed: 42,
            no_prefetch: false,
            no_stiff_arm: false,
            tdc: None,
            trace_cpu: None,
            trace_out: None,
            metrics_out: None,
            digest_only: false,
            per_cpu: false,
        }
    }
}

/// The `--help` text.
pub fn usage() -> String {
    "\
ztm-run — zEC12 transactional-memory simulator driver

USAGE:
    ztm-run [OPTIONS]
    ztm-run summarize-trace <path>    summarize a recorded trace file:
                                      metrics, digest check, invariant check

OPTIONS:
    --workload <pool|read|hashtable|queue|dlist|bank>   (default pool)
    --method <name>     pool: lock|fine|tbegin|tbeginc|none (default tbegin)
                        read: rwlock|tbeginc    dlist: lock|tbeginc
                        hashtable: lock|elision|purestm|hybrid
                        queue: lock|tbeginc|elision|purestm|hybrid
                        bank: lock|tbegin|tbeginc|purestm|hybrid
                        (purestm = TL2 software transactions; hybrid =
                        TBEGIN fast path with software fallback)
    --cpus <n>          CPUs to simulate (default 4, max 144)
    --ops <n>           operations per CPU (default 200)
    --pool <n>          pool/table size (default 64)
    --vars <1..4>       variables per operation (default 1)
    --seed <n>          RNG seed (default 42; runs are deterministic)
    --tdc <random|always>  force random aborts (§II.E.3)
    --no-prefetch       disable speculative-fetch modeling
    --no-stiff-arm      disable XI rejection (E3 ablation)
    --trace-cpu <cpu>   print the execution trace of one CPU
    --trace <path>      record events and write a Chrome trace-event JSON
                        (load in Perfetto / chrome://tracing)
    --metrics <path>    write machine-readable metrics JSON (counters,
                        abort-code and latency histograms, trace digest)
    --digest-only       trace with the digest-only sink: report the stream
                        digest + event count, skip ring buffer and metrics
                        (conflicts with --trace/--metrics)
    --per-cpu           print a per-CPU measurement table
    -h, --help          this help
"
    .into()
}

/// Parses arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values, or
/// out-of-range numbers.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--workload" => {
                o.workload = match value()?.as_str() {
                    "pool" => Workload::Pool,
                    "read" => Workload::Read,
                    "hashtable" => Workload::Hashtable,
                    "queue" => Workload::Queue,
                    "dlist" => Workload::Dlist,
                    "bank" => Workload::Bank,
                    w => return Err(format!("unknown workload `{w}`")),
                }
            }
            "--method" => o.method = value()?,
            "--cpus" => {
                o.cpus = value()?
                    .parse()
                    .map_err(|_| "cpus must be a number".to_string())?;
                if o.cpus == 0 || o.cpus > 144 {
                    return Err("cpus must be 1..=144".into());
                }
            }
            "--ops" => o.ops = value()?.parse().map_err(|_| "ops must be a number")?,
            "--pool" => o.pool = value()?.parse().map_err(|_| "pool must be a number")?,
            "--vars" => {
                o.vars = value()?.parse().map_err(|_| "vars must be a number")?;
                if !(1..=4).contains(&o.vars) {
                    return Err("vars must be 1..=4".into());
                }
            }
            "--seed" => o.seed = value()?.parse().map_err(|_| "seed must be a number")?,
            "--tdc" => o.tdc = Some(value()?),
            "--per-cpu" => o.per_cpu = true,
            "--no-prefetch" => o.no_prefetch = true,
            "--no-stiff-arm" => o.no_stiff_arm = true,
            "--trace-cpu" => {
                o.trace_cpu = Some(
                    value()?
                        .parse()
                        .map_err(|_| "trace-cpu needs a CPU index")?,
                )
            }
            "--trace" => o.trace_out = Some(value()?),
            "--metrics" => o.metrics_out = Some(value()?),
            "--digest-only" => o.digest_only = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if o.digest_only && (o.trace_out.is_some() || o.metrics_out.is_some()) {
        return Err(
            "--digest-only conflicts with --trace/--metrics (those need the recorder)".into(),
        );
    }
    Ok(o)
}

fn build_system(o: &Options) -> Result<System, String> {
    let mut cfg = SystemConfig::with_cpus(o.cpus).seed(o.seed);
    cfg.speculative_prefetch = !o.no_prefetch;
    cfg.geometry.stiff_arm = !o.no_stiff_arm;
    match o.tdc.as_deref() {
        None => {}
        Some("random") => cfg.engine.diagnostic = DiagnosticControl::Random { denominator: 16 },
        Some("always") => cfg.engine.diagnostic = DiagnosticControl::AlwaysAbort { max_point: 50 },
        Some(other) => return Err(format!("unknown tdc mode `{other}`")),
    }
    Ok(System::new(cfg))
}

/// Runs the selected workload and returns the formatted report.
///
/// # Errors
///
/// Returns a message when the method name does not fit the workload.
pub fn execute(o: &Options) -> Result<String, String> {
    let mut sys = build_system(o)?;
    if let Some(cpu) = o.trace_cpu {
        if cpu >= o.cpus {
            return Err(format!("--trace-cpu {cpu} but only {} CPUs", o.cpus));
        }
        sys.set_trace(cpu, true);
    }
    let recorder = if o.trace_out.is_some() || o.metrics_out.is_some() {
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        Some(recorder)
    } else {
        None
    };
    let digest_sink = if o.digest_only {
        let (tracer, sink) = Tracer::digest_only();
        sys.set_tracer(tracer);
        Some(sink)
    } else {
        None
    };
    let rep: WorkloadReport = match o.workload {
        Workload::Pool => {
            let method = match o.method.as_str() {
                "lock" => SyncMethod::CoarseLock,
                "fine" => SyncMethod::FineLock,
                "tbegin" => SyncMethod::Tbegin,
                "tbeginc" => SyncMethod::Tbeginc,
                "none" => SyncMethod::None,
                m => return Err(format!("pool does not know method `{m}`")),
            };
            let wl = PoolWorkload::new(PoolLayout::new(o.pool, o.vars), method, o.seed);
            wl.run(&mut sys, o.ops)
        }
        Workload::Read => {
            let method = match o.method.as_str() {
                "rwlock" => ReadMethod::RwLock,
                "tbeginc" => ReadMethod::Tbeginc,
                m => return Err(format!("read does not know method `{m}`")),
            };
            ReadWorkload::new(o.pool, method).run(&mut sys, o.ops)
        }
        Workload::Hashtable => {
            let method = match o.method.as_str() {
                "lock" => TableMethod::GlobalLock,
                "elision" | "tbegin" => TableMethod::Elision,
                "purestm" => TableMethod::PureStm,
                "hybrid" => TableMethod::HtmStmFallback,
                m => return Err(format!("hashtable does not know method `{m}`")),
            };
            let buckets = o.pool.next_power_of_two().max(16);
            let t = HashTable::new(buckets, buckets * 4, 20, method);
            t.populate(&mut sys, &(0..buckets * 2).collect::<Vec<_>>());
            t.run(&mut sys, o.ops)
        }
        Workload::Queue => {
            let method = match o.method.as_str() {
                "lock" => QueueMethod::Lock,
                "tbeginc" => QueueMethod::Tbeginc,
                "elision" | "tbegin" => QueueMethod::Elision,
                "purestm" => QueueMethod::PureStm,
                "hybrid" => QueueMethod::HtmStmFallback,
                m => return Err(format!("queue does not know method `{m}`")),
            };
            let q = ConcurrentQueue::new(method);
            q.seed(&mut sys, o.pool.max(1));
            q.run(&mut sys, o.ops)
        }
        Workload::Dlist => {
            let method = match o.method.as_str() {
                "lock" => ListMethod::Lock,
                "tbeginc" => ListMethod::Tbeginc,
                m => return Err(format!("dlist does not know method `{m}`")),
            };
            let l = DoublyLinkedList::new(method);
            l.seed(&mut sys, o.pool.max(1));
            l.run(&mut sys, o.ops)
        }
        Workload::Bank => {
            let method = match o.method.as_str() {
                "lock" => BankMethod::Lock,
                "tbegin" => BankMethod::Tbegin,
                "tbeginc" => BankMethod::Tbeginc,
                "purestm" => BankMethod::PureStm,
                "hybrid" => BankMethod::HtmStmFallback,
                m => return Err(format!("bank does not know method `{m}`")),
            };
            let b = Bank::new(o.pool.max(1), method);
            b.open(&mut sys, 10_000);
            b.run(&mut sys, o.ops)
        }
    };

    let mut out = String::new();
    let r = &rep.system;
    let _ = writeln!(out, "workload          : {:?} / {}", o.workload, o.method);
    let _ = writeln!(out, "cpus x ops        : {} x {}", o.cpus, o.ops);
    let _ = writeln!(out, "committed ops     : {}", rep.committed_ops());
    let _ = writeln!(out, "cycles/op (avg)   : {:.1}", rep.avg_op_cycles());
    let _ = writeln!(out, "throughput        : {:.6} ops/cycle", rep.throughput());
    let _ = writeln!(out, "elapsed cycles    : {}", r.elapsed_cycles);
    let _ = writeln!(out, "instructions      : {}", r.total_instructions);
    let _ = writeln!(
        out,
        "tx commits/aborts : {} / {} (abort rate {:.2}%)",
        r.tx.commits,
        r.tx.aborts,
        100.0 * r.tx.abort_rate()
    );
    if !r.tx.aborts_by_code.is_empty() {
        let _ = writeln!(out, "abort codes       : {:?}", r.tx.aborts_by_code);
    }
    if r.stm.begins > 0 {
        let _ = writeln!(
            out,
            "stm commits/aborts: {} / {} ({} validation failures)",
            r.stm.commits, r.stm.aborts, r.stm.validation_failures
        );
    }
    if r.stm.fallbacks > 0 {
        let _ = writeln!(
            out,
            "stm fallbacks     : {} (by abort code {:?})",
            r.stm.fallbacks, r.stm.fallback_codes
        );
    }
    let _ = writeln!(out, "xi [ex,dm,ro,lru] : {:?}", r.xi_counts);
    let _ = writeln!(out, "stall retries     : {}", r.stalls);
    let _ = writeln!(out, "coalesced accesses: {}", r.coalesced_accesses);
    if r.sharding.rounds > 0 {
        let s = &r.sharding;
        let _ = writeln!(
            out,
            "shard rounds      : {} (mean {:.1} steps, max {}, chain {}, {} rollbacks / {} replayed)",
            s.rounds,
            s.mean_round_steps(),
            s.round_steps_max,
            s.chain_max,
            s.rollbacks,
            s.replayed
        );
        if s.rollbacks > 0 {
            let _ = writeln!(
                out,
                "shard rollbacks   : {} tx / {} fabric / {} quiesce",
                s.rollbacks_tx, s.rollbacks_fabric, s.rollbacks_quiesce
            );
        }
        if s.window_cpus > 0 {
            let _ = writeln!(
                out,
                "shard windows     : min {} / mean {:.1} / max {} cycles ({} of {} CPUs clamped)",
                s.window_min,
                s.mean_window(),
                s.window_max,
                s.window_clamped,
                s.window_cpus
            );
        }
    }
    if r.tx.broadcast_stops > 0 {
        let _ = writeln!(out, "broadcast stops   : {}", r.tx.broadcast_stops);
    }
    if o.per_cpu {
        let _ = writeln!(
            out,
            "\n{:>6} {:>10} {:>14} {:>10} {:>10}",
            "cpu", "ops", "cycles/op", "commits", "aborts"
        );
        for (i, m) in rep.per_cpu.iter().enumerate() {
            let st = sys.tx_stats(i);
            let avg = if m.ops > 0 {
                m.op_cycles as f64 / m.ops as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{i:>6} {:>10} {avg:>14.1} {:>10} {:>10}",
                m.ops, st.commits, st.aborts
            );
        }
    }
    if let Some(sink) = &digest_sink {
        let _ = writeln!(
            out,
            "trace digest      : {:#018x} ({} events digested)",
            sink.digest(),
            sink.events()
        );
    }
    if let Some(rec) = &recorder {
        let rec = rec.lock().unwrap();
        let _ = writeln!(
            out,
            "trace events      : {} recorded, {} dropped, digest {:#018x}",
            rec.len(),
            rec.dropped(),
            rec.digest()
        );
        if let Some(path) = &o.trace_out {
            std::fs::write(path, rec.chrome_trace_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
            let _ = writeln!(out, "trace written     : {path}");
        }
        if let Some(path) = &o.metrics_out {
            std::fs::write(path, rec.metrics_json()).map_err(|e| format!("writing {path}: {e}"))?;
            let _ = writeln!(out, "metrics written   : {path}");
        }
    }
    if let Some(cpu) = o.trace_cpu {
        let _ = writeln!(out, "\n--- trace of cpu{cpu} (most recent steps) ---");
        out.push_str(&sys.trace_listing());
    }
    Ok(out)
}

/// Summarizes a recorded Chrome trace-event document: event counts, digest
/// verification, aggregated metrics, and the invariant-check verdict.
///
/// # Errors
///
/// Returns a message when the document cannot be parsed back into an event
/// stream.
pub fn summarize_trace(text: &str) -> Result<String, String> {
    let events = ztm_trace::parse_chrome_trace(text)?;
    let mut out = String::new();
    let _ = writeln!(out, "events            : {}", events.len());
    let digest = ztm_trace::digest_of(&events);
    match ztm_trace::parse_trace_digest(text) {
        Some(stored) if stored == digest => {
            let _ = writeln!(out, "digest            : {digest:#018x} (verified)");
        }
        Some(stored) => {
            // A mismatch is expected when the recorder dropped events (the
            // digest covers the full stream, the file only the retained tail).
            let _ = writeln!(
                out,
                "digest            : {digest:#018x} (file header says {stored:#018x} — \
                 stream truncated or corrupted)"
            );
        }
        None => {
            let _ = writeln!(out, "digest            : {digest:#018x} (no header digest)");
        }
    }
    if let Some((first, last)) = events.first().zip(events.last()) {
        let _ = writeln!(out, "clock span        : {} .. {}", first.clock, last.clock);
    }
    let m = Metrics::from_events(&events);
    let _ = writeln!(
        out,
        "tx begins         : {} outermost, {} nested",
        m.tx_begins, m.tx_nested_begins
    );
    let _ = writeln!(
        out,
        "tx commits/aborts : {} / {} ({} constrained aborts)",
        m.tx_commits, m.tx_aborts, m.tx_aborts_constrained
    );
    if !m.abort_codes.is_empty() {
        let _ = writeln!(out, "abort codes       : {:?}", m.abort_codes);
    }
    let _ = writeln!(
        out,
        "accesses          : {} miss / {} L1 / {} L2 ({} in tx)",
        m.accesses[0], m.accesses[1], m.accesses[2], m.tx_accesses
    );
    let _ = writeln!(
        out,
        "xi issued         : {:?} accepted {:?} rejected {:?} hangs {}",
        m.xi_issued, m.xi_accepted, m.xi_rejected, m.reject_hangs
    );
    let _ = writeln!(
        out,
        "store cache       : {} new / {} gathered / {} overflows / {} drains ({} B)",
        m.store_new, m.store_gathered, m.store_overflows, m.store_drains, m.store_drain_bytes
    );
    if m.ladder_stages > 0 {
        let _ = writeln!(
            out,
            "retry ladder      : {} stages, max attempt {}, {} no-spec, {} broadcast-stop",
            m.ladder_stages, m.ladder_max_attempt, m.ladder_disable_spec, m.ladder_broadcast_stop
        );
    }
    if m.fabric_queued > 0 {
        let _ = writeln!(
            out,
            "fabric queueing   : {} delayed transfers, {} cycles total",
            m.fabric_queued, m.fabric_queued_cycles
        );
    }
    if !m.commit_latency_log2.is_empty() {
        let _ = writeln!(out, "commit log2 lat   : {:?}", m.commit_latency_log2);
    }
    if !m.abort_latency_log2.is_empty() {
        let _ = writeln!(out, "abort log2 lat    : {:?}", m.abort_latency_log2);
    }
    match ztm_trace::check_invariants(&events) {
        Ok(()) => {
            let _ = writeln!(out, "invariants        : ok");
        }
        Err(violations) => {
            let _ = writeln!(out, "invariants        : {} VIOLATED", violations.len());
            for v in &violations {
                let _ = writeln!(out, "  - {v}");
            }
        }
    }
    Ok(out)
}

/// Runs and prints, mapping errors to stderr (used by the binary).
pub fn run(o: &Options) {
    match execute(o) {
        Ok(report) => print!("{report}"),
        Err(e) => eprintln!("error: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_parse() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.cpus, 4);
        assert_eq!(o.workload, Workload::Pool);
    }

    #[test]
    fn full_flag_set_parses() {
        let o = parse_args(&args(
            "--workload bank --method tbeginc --cpus 6 --ops 10 --pool 8 --vars 2 \
             --seed 7 --tdc random --no-prefetch --no-stiff-arm --trace-cpu 1 \
             --trace t.json --metrics m.json",
        ))
        .unwrap();
        assert_eq!(o.workload, Workload::Bank);
        assert_eq!(o.method, "tbeginc");
        assert_eq!(o.cpus, 6);
        assert_eq!(o.ops, 10);
        assert_eq!(o.pool, 8);
        assert_eq!(o.vars, 2);
        assert_eq!(o.seed, 7);
        assert_eq!(o.tdc.as_deref(), Some("random"));
        assert!(o.no_prefetch && o.no_stiff_arm);
        assert_eq!(o.trace_cpu, Some(1));
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args("--cpus 0")).is_err());
        assert!(parse_args(&args("--cpus 145")).is_err());
        assert!(parse_args(&args("--vars 5")).is_err());
        assert!(parse_args(&args("--workload nope")).is_err());
        assert!(parse_args(&args("--bogus 1")).is_err());
        assert!(parse_args(&args("--cpus")).is_err());
    }

    #[test]
    fn executes_every_workload() {
        for (wl, method) in [
            ("pool", "tbegin"),
            ("pool", "tbeginc"),
            ("pool", "lock"),
            ("read", "rwlock"),
            ("read", "tbeginc"),
            ("hashtable", "elision"),
            ("hashtable", "purestm"),
            ("hashtable", "hybrid"),
            ("queue", "tbeginc"),
            ("queue", "elision"),
            ("queue", "purestm"),
            ("queue", "hybrid"),
            ("dlist", "tbeginc"),
            ("bank", "tbegin"),
            ("bank", "purestm"),
            ("bank", "hybrid"),
        ] {
            let o = parse_args(&args(&format!(
                "--workload {wl} --method {method} --cpus 2 --ops 10 --pool 8"
            )))
            .unwrap();
            let report = execute(&o).unwrap_or_else(|e| panic!("{wl}/{method}: {e}"));
            assert!(report.contains("committed ops     : 20"), "{wl}: {report}");
        }
    }

    #[test]
    fn method_validation_is_per_workload() {
        let o = parse_args(&args("--workload queue --method fine")).unwrap();
        assert!(execute(&o).is_err());
    }

    #[test]
    fn trace_output_included() {
        let o = parse_args(&args("--cpus 2 --ops 3 --trace-cpu 0")).unwrap();
        let report = execute(&o).unwrap();
        assert!(report.contains("trace of cpu0"));
        assert!(report.contains("TBEGIN"));
    }

    #[test]
    fn tdc_always_forces_fallback() {
        let o = parse_args(&args(
            "--workload pool --method tbegin --cpus 2 --ops 20 --tdc always",
        ))
        .unwrap();
        let report = execute(&o).unwrap();
        assert!(report.contains("tx commits/aborts : 0 /"), "{report}");
    }

    #[test]
    fn per_cpu_table_lists_every_cpu() {
        let o = parse_args(&args("--cpus 3 --ops 5 --per-cpu")).unwrap();
        let report = execute(&o).unwrap();
        for cpu in 0..3 {
            assert!(report.contains(&format!("\n     {cpu} ")), "{report}");
        }
    }

    #[test]
    fn usage_mentions_every_flag() {
        let u = usage();
        for flag in [
            "--per-cpu",
            "--workload",
            "--method",
            "--cpus",
            "--ops",
            "--pool",
            "--vars",
            "--seed",
            "--tdc",
            "--no-prefetch",
            "--no-stiff-arm",
            "--trace-cpu",
            "--trace",
            "--metrics",
            "--digest-only",
            "summarize-trace",
        ] {
            assert!(u.contains(flag), "usage missing {flag}");
        }
    }

    #[test]
    fn trace_and_metrics_files_round_trip() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("ztm-cli-test-trace.json");
        let metrics_path = dir.join("ztm-cli-test-metrics.json");
        let o = parse_args(&args(&format!(
            "--cpus 4 --ops 30 --pool 2 --trace {} --metrics {}",
            trace_path.display(),
            metrics_path.display()
        )))
        .unwrap();
        let report = execute(&o).unwrap();
        assert!(report.contains("trace events"), "{report}");

        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        let summary = summarize_trace(&trace).unwrap();
        assert!(summary.contains("(verified)"), "{summary}");
        assert!(summary.contains("invariants        : ok"), "{summary}");

        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("\"commits\""), "{metrics}");
        assert!(metrics.contains("\"abort_codes\""), "{metrics}");
        let _ = std::fs::remove_file(&trace_path);
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn digest_only_reports_the_recorder_digest() {
        // The same run through the digest-only sink and through a full
        // recorder must print the identical digest.
        let dir = std::env::temp_dir();
        let metrics_path = dir.join("ztm-cli-test-digest-only-metrics.json");
        let base = "--cpus 4 --ops 30 --pool 2";
        let d = parse_args(&args(&format!("{base} --digest-only"))).unwrap();
        let digest_report = execute(&d).unwrap();
        assert!(digest_report.contains("events digested"), "{digest_report}");
        let r = parse_args(&args(&format!(
            "{base} --metrics {}",
            metrics_path.display()
        )))
        .unwrap();
        let recorder_report = execute(&r).unwrap();
        let digest_of = |report: &str| {
            report
                .lines()
                .find_map(|l| l.split("digest").nth(1))
                .and_then(|tail| tail.split_whitespace().find(|w| w.starts_with("0x")))
                .map(str::to_string)
                .unwrap_or_else(|| panic!("no digest in {report}"))
        };
        assert_eq!(digest_of(&digest_report), digest_of(&recorder_report));
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn digest_only_conflicts_with_recorder_outputs() {
        assert!(parse_args(&args("--digest-only --trace t.json")).is_err());
        assert!(parse_args(&args("--digest-only --metrics m.json")).is_err());
    }

    #[test]
    fn summarize_rejects_garbage() {
        // A document with a malformed enc payload must error.
        let bad = "{\"traceEvents\": [\n{\"name\": \"x\", \"ph\": \"i\", \"ts\": 1, \
                   \"pid\": 1, \"tid\": 0, \"args\": {\"enc\": \"ZZ x=1\"}}\n]}";
        assert!(summarize_trace(bad).is_err());
    }
}
