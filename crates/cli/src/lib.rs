//! Argument parsing and run logic for the `ztm-run` command-line driver.
//!
//! Kept in a library so the parsing and report formatting are unit-testable;
//! the `ztm-run` binary is a thin wrapper.

use std::fmt::Write as _;
use ztm_core::DiagnosticControl;
use ztm_sim::{System, SystemConfig};
use ztm_workloads::bank::{Bank, BankMethod};
use ztm_workloads::dlist::{DoublyLinkedList, ListMethod};
use ztm_workloads::hashtable::{HashTable, TableMethod};
use ztm_workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};
use ztm_workloads::queue::{ConcurrentQueue, QueueMethod};
use ztm_workloads::rwlock::{ReadMethod, ReadWorkload};
use ztm_workloads::WorkloadReport;

/// Which benchmark to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Variable-pool updates (Fig 5a–c).
    Pool,
    /// Read-only pool (Fig 5d).
    Read,
    /// Lock-elided hashtable (Fig 5e).
    Hashtable,
    /// Concurrent queue (E2).
    Queue,
    /// Doubly-linked list (§II.D).
    Dlist,
    /// Bank transfers (conservation invariant).
    Bank,
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Benchmark selection.
    pub workload: Workload,
    /// Synchronization method name (validated per workload).
    pub method: String,
    /// CPU count.
    pub cpus: usize,
    /// Operations per CPU.
    pub ops: u64,
    /// Pool/table size.
    pub pool: u64,
    /// Variables per operation (pool workload).
    pub vars: usize,
    /// RNG seed.
    pub seed: u64,
    /// Disable speculative prefetch modeling.
    pub no_prefetch: bool,
    /// Disable XI stiff-arming.
    pub no_stiff_arm: bool,
    /// Diagnostic control: None, or `random`/`always`.
    pub tdc: Option<String>,
    /// Print the execution trace of this CPU afterwards.
    pub trace_cpu: Option<usize>,
    /// Print a per-CPU measurement table.
    pub per_cpu: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workload: Workload::Pool,
            method: "tbegin".into(),
            cpus: 4,
            ops: 200,
            pool: 64,
            vars: 1,
            seed: 42,
            no_prefetch: false,
            no_stiff_arm: false,
            tdc: None,
            trace_cpu: None,
            per_cpu: false,
        }
    }
}

/// The `--help` text.
pub fn usage() -> String {
    "\
ztm-run — zEC12 transactional-memory simulator driver

USAGE:
    ztm-run [OPTIONS]

OPTIONS:
    --workload <pool|read|hashtable|queue|dlist|bank>   (default pool)
    --method <name>     pool: lock|fine|tbegin|tbeginc|none (default tbegin)
                        read: rwlock|tbeginc    hashtable: lock|elision
                        queue/dlist/bank: lock|tbeginc (+ tbegin for bank)
    --cpus <n>          CPUs to simulate (default 4, max 144)
    --ops <n>           operations per CPU (default 200)
    --pool <n>          pool/table size (default 64)
    --vars <1..4>       variables per operation (default 1)
    --seed <n>          RNG seed (default 42; runs are deterministic)
    --tdc <random|always>  force random aborts (§II.E.3)
    --no-prefetch       disable speculative-fetch modeling
    --no-stiff-arm      disable XI rejection (E3 ablation)
    --trace <cpu>       print the execution trace of one CPU
    --per-cpu           print a per-CPU measurement table
    -h, --help          this help
"
    .into()
}

/// Parses arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values, or
/// out-of-range numbers.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--workload" => {
                o.workload = match value()?.as_str() {
                    "pool" => Workload::Pool,
                    "read" => Workload::Read,
                    "hashtable" => Workload::Hashtable,
                    "queue" => Workload::Queue,
                    "dlist" => Workload::Dlist,
                    "bank" => Workload::Bank,
                    w => return Err(format!("unknown workload `{w}`")),
                }
            }
            "--method" => o.method = value()?,
            "--cpus" => {
                o.cpus = value()?
                    .parse()
                    .map_err(|_| "cpus must be a number".to_string())?;
                if o.cpus == 0 || o.cpus > 144 {
                    return Err("cpus must be 1..=144".into());
                }
            }
            "--ops" => o.ops = value()?.parse().map_err(|_| "ops must be a number")?,
            "--pool" => o.pool = value()?.parse().map_err(|_| "pool must be a number")?,
            "--vars" => {
                o.vars = value()?.parse().map_err(|_| "vars must be a number")?;
                if !(1..=4).contains(&o.vars) {
                    return Err("vars must be 1..=4".into());
                }
            }
            "--seed" => o.seed = value()?.parse().map_err(|_| "seed must be a number")?,
            "--tdc" => o.tdc = Some(value()?),
            "--per-cpu" => o.per_cpu = true,
            "--no-prefetch" => o.no_prefetch = true,
            "--no-stiff-arm" => o.no_stiff_arm = true,
            "--trace" => {
                o.trace_cpu = Some(value()?.parse().map_err(|_| "trace needs a CPU index")?)
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(o)
}

fn build_system(o: &Options) -> Result<System, String> {
    let mut cfg = SystemConfig::with_cpus(o.cpus).seed(o.seed);
    cfg.speculative_prefetch = !o.no_prefetch;
    cfg.geometry.stiff_arm = !o.no_stiff_arm;
    match o.tdc.as_deref() {
        None => {}
        Some("random") => cfg.engine.diagnostic = DiagnosticControl::Random { denominator: 16 },
        Some("always") => cfg.engine.diagnostic = DiagnosticControl::AlwaysAbort { max_point: 50 },
        Some(other) => return Err(format!("unknown tdc mode `{other}`")),
    }
    Ok(System::new(cfg))
}

/// Runs the selected workload and returns the formatted report.
///
/// # Errors
///
/// Returns a message when the method name does not fit the workload.
pub fn execute(o: &Options) -> Result<String, String> {
    let mut sys = build_system(o)?;
    if let Some(cpu) = o.trace_cpu {
        if cpu >= o.cpus {
            return Err(format!("--trace {cpu} but only {} CPUs", o.cpus));
        }
        sys.set_trace(cpu, true);
    }
    let rep: WorkloadReport = match o.workload {
        Workload::Pool => {
            let method = match o.method.as_str() {
                "lock" => SyncMethod::CoarseLock,
                "fine" => SyncMethod::FineLock,
                "tbegin" => SyncMethod::Tbegin,
                "tbeginc" => SyncMethod::Tbeginc,
                "none" => SyncMethod::None,
                m => return Err(format!("pool does not know method `{m}`")),
            };
            let wl = PoolWorkload::new(PoolLayout::new(o.pool, o.vars), method, o.seed);
            wl.run(&mut sys, o.ops)
        }
        Workload::Read => {
            let method = match o.method.as_str() {
                "rwlock" => ReadMethod::RwLock,
                "tbeginc" => ReadMethod::Tbeginc,
                m => return Err(format!("read does not know method `{m}`")),
            };
            ReadWorkload::new(o.pool, method).run(&mut sys, o.ops)
        }
        Workload::Hashtable => {
            let method = match o.method.as_str() {
                "lock" => TableMethod::GlobalLock,
                "elision" | "tbegin" => TableMethod::Elision,
                m => return Err(format!("hashtable does not know method `{m}`")),
            };
            let buckets = o.pool.next_power_of_two().max(16);
            let t = HashTable::new(buckets, buckets * 4, 20, method);
            t.populate(&mut sys, &(0..buckets * 2).collect::<Vec<_>>());
            t.run(&mut sys, o.ops)
        }
        Workload::Queue => {
            let method = match o.method.as_str() {
                "lock" => QueueMethod::Lock,
                "tbeginc" => QueueMethod::Tbeginc,
                m => return Err(format!("queue does not know method `{m}`")),
            };
            let q = ConcurrentQueue::new(method);
            q.seed(&mut sys, o.pool.max(1));
            q.run(&mut sys, o.ops)
        }
        Workload::Dlist => {
            let method = match o.method.as_str() {
                "lock" => ListMethod::Lock,
                "tbeginc" => ListMethod::Tbeginc,
                m => return Err(format!("dlist does not know method `{m}`")),
            };
            let l = DoublyLinkedList::new(method);
            l.seed(&mut sys, o.pool.max(1));
            l.run(&mut sys, o.ops)
        }
        Workload::Bank => {
            let method = match o.method.as_str() {
                "lock" => BankMethod::Lock,
                "tbegin" => BankMethod::Tbegin,
                "tbeginc" => BankMethod::Tbeginc,
                m => return Err(format!("bank does not know method `{m}`")),
            };
            let b = Bank::new(o.pool.max(1), method);
            b.open(&mut sys, 10_000);
            b.run(&mut sys, o.ops)
        }
    };

    let mut out = String::new();
    let r = &rep.system;
    let _ = writeln!(out, "workload          : {:?} / {}", o.workload, o.method);
    let _ = writeln!(out, "cpus x ops        : {} x {}", o.cpus, o.ops);
    let _ = writeln!(out, "committed ops     : {}", rep.committed_ops());
    let _ = writeln!(out, "cycles/op (avg)   : {:.1}", rep.avg_op_cycles());
    let _ = writeln!(out, "throughput        : {:.6} ops/cycle", rep.throughput());
    let _ = writeln!(out, "elapsed cycles    : {}", r.elapsed_cycles);
    let _ = writeln!(out, "instructions      : {}", r.total_instructions);
    let _ = writeln!(
        out,
        "tx commits/aborts : {} / {} (abort rate {:.2}%)",
        r.tx.commits,
        r.tx.aborts,
        100.0 * r.tx.abort_rate()
    );
    if !r.tx.aborts_by_code.is_empty() {
        let _ = writeln!(out, "abort codes       : {:?}", r.tx.aborts_by_code);
    }
    let _ = writeln!(out, "xi [ex,dm,ro,lru] : {:?}", r.xi_counts);
    let _ = writeln!(out, "stall retries     : {}", r.stalls);
    if r.tx.broadcast_stops > 0 {
        let _ = writeln!(out, "broadcast stops   : {}", r.tx.broadcast_stops);
    }
    if o.per_cpu {
        let _ = writeln!(
            out,
            "\n{:>6} {:>10} {:>14} {:>10} {:>10}",
            "cpu", "ops", "cycles/op", "commits", "aborts"
        );
        for (i, m) in rep.per_cpu.iter().enumerate() {
            let st = sys.tx_stats(i);
            let avg = if m.ops > 0 {
                m.op_cycles as f64 / m.ops as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{i:>6} {:>10} {avg:>14.1} {:>10} {:>10}",
                m.ops, st.commits, st.aborts
            );
        }
    }
    if let Some(cpu) = o.trace_cpu {
        let _ = writeln!(out, "\n--- trace of cpu{cpu} (most recent steps) ---");
        out.push_str(&sys.trace_listing());
    }
    Ok(out)
}

/// Runs and prints, mapping errors to stderr (used by the binary).
pub fn run(o: &Options) {
    match execute(o) {
        Ok(report) => print!("{report}"),
        Err(e) => eprintln!("error: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_parse() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.cpus, 4);
        assert_eq!(o.workload, Workload::Pool);
    }

    #[test]
    fn full_flag_set_parses() {
        let o = parse_args(&args(
            "--workload bank --method tbeginc --cpus 6 --ops 10 --pool 8 --vars 2 \
             --seed 7 --tdc random --no-prefetch --no-stiff-arm --trace 1",
        ))
        .unwrap();
        assert_eq!(o.workload, Workload::Bank);
        assert_eq!(o.method, "tbeginc");
        assert_eq!(o.cpus, 6);
        assert_eq!(o.ops, 10);
        assert_eq!(o.pool, 8);
        assert_eq!(o.vars, 2);
        assert_eq!(o.seed, 7);
        assert_eq!(o.tdc.as_deref(), Some("random"));
        assert!(o.no_prefetch && o.no_stiff_arm);
        assert_eq!(o.trace_cpu, Some(1));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args("--cpus 0")).is_err());
        assert!(parse_args(&args("--cpus 145")).is_err());
        assert!(parse_args(&args("--vars 5")).is_err());
        assert!(parse_args(&args("--workload nope")).is_err());
        assert!(parse_args(&args("--bogus 1")).is_err());
        assert!(parse_args(&args("--cpus")).is_err());
    }

    #[test]
    fn executes_every_workload() {
        for (wl, method) in [
            ("pool", "tbegin"),
            ("pool", "tbeginc"),
            ("pool", "lock"),
            ("read", "rwlock"),
            ("read", "tbeginc"),
            ("hashtable", "elision"),
            ("queue", "tbeginc"),
            ("dlist", "tbeginc"),
            ("bank", "tbegin"),
        ] {
            let o = parse_args(&args(&format!(
                "--workload {wl} --method {method} --cpus 2 --ops 10 --pool 8"
            )))
            .unwrap();
            let report = execute(&o).unwrap_or_else(|e| panic!("{wl}/{method}: {e}"));
            assert!(report.contains("committed ops     : 20"), "{wl}: {report}");
        }
    }

    #[test]
    fn method_validation_is_per_workload() {
        let o = parse_args(&args("--workload queue --method fine")).unwrap();
        assert!(execute(&o).is_err());
    }

    #[test]
    fn trace_output_included() {
        let o = parse_args(&args("--cpus 2 --ops 3 --trace 0")).unwrap();
        let report = execute(&o).unwrap();
        assert!(report.contains("trace of cpu0"));
        assert!(report.contains("TBEGIN"));
    }

    #[test]
    fn tdc_always_forces_fallback() {
        let o = parse_args(&args(
            "--workload pool --method tbegin --cpus 2 --ops 20 --tdc always",
        ))
        .unwrap();
        let report = execute(&o).unwrap();
        assert!(report.contains("tx commits/aborts : 0 /"), "{report}");
    }

    #[test]
    fn per_cpu_table_lists_every_cpu() {
        let o = parse_args(&args("--cpus 3 --ops 5 --per-cpu")).unwrap();
        let report = execute(&o).unwrap();
        for cpu in 0..3 {
            assert!(report.contains(&format!("\n     {cpu} ")), "{report}");
        }
    }

    #[test]
    fn usage_mentions_every_flag() {
        let u = usage();
        for flag in [
            "--per-cpu",
            "--workload",
            "--method",
            "--cpus",
            "--ops",
            "--pool",
            "--vars",
            "--seed",
            "--tdc",
            "--no-prefetch",
            "--no-stiff-arm",
            "--trace",
        ] {
            assert!(u.contains(flag), "usage missing {flag}");
        }
    }
}
