//! `ztm-run` — command-line driver for the zEC12 transactional-memory simulator.
//!
//! ```text
//! ztm-run --workload pool --method tbegin --cpus 8 --pool 100 --vars 4 --ops 500
//! ```

use std::process::ExitCode;
use ztm_cli::{parse_args, run, usage};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    match parse_args(&args) {
        Ok(opts) => {
            run(&opts);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
