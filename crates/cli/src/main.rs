//! `ztm-run` — command-line driver for the zEC12 transactional-memory simulator.
//!
//! ```text
//! ztm-run --workload pool --method tbegin --cpus 8 --pool 100 --vars 4 --ops 500
//! ztm-run --cpus 8 --trace run.json --metrics run-metrics.json
//! ztm-run summarize-trace run.json
//! ```

use std::process::ExitCode;
use ztm_cli::{parse_args, run, summarize_trace, usage};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("summarize-trace") {
        let Some(path) = args.get(1) else {
            eprintln!("error: summarize-trace needs a trace file path");
            return ExitCode::FAILURE;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match summarize_trace(&text) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match parse_args(&args) {
        Ok(opts) => {
            run(&opts);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
