//! The multi-CPU system simulator: wires CPU cores, private caches, the
//! coherence fabric, and per-CPU transaction engines into one deterministic
//! discrete-event machine.

use crate::config::SystemConfig;
use crate::report::SystemReport;
use crate::shard::{safe_set, split_mut, Candidate, EgMin, ShardPlan};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use ztm_cache::{
    AccessClass, CohState, CpuId, Fabric, FetchKind, FootprintEvent, LocalHit, PrivateCache, Xi,
    XiKind, XiResponse,
};
use ztm_core::{
    AbortCause, InstrClass, ProgramException, TbeginParams, TendOutcome, TxEngine, TxStats,
};
use ztm_isa::{
    decoded::{Op, FLAG_FOR_UPDATE},
    effective_address_decoded, finish_abort, AbortApply, AccessResult, CasResult, CpuCore,
    DecodedInstr, EndResult, ExceptionDisposition, Machine, Program, StepEvent, StepOutcome,
};
use ztm_mem::{Address, LineAddr, MainMemory, PageTable, SharedMem, HALF_LINE_SIZE};
use ztm_trace::{Event, EventBuffer, SeqTracedEvent, Tracer};

/// Per-CPU memory-side state.
#[derive(Debug)]
struct Node {
    cache: PrivateCache,
    /// Instruction cache directory (zEC12: separate 64 KB L1-I; modeled as
    /// 64 sets × 4 ways of text lines, misses served by the L2-I at the
    /// L2 latency). Instruction lines never join the transactional
    /// footprint — tx-read tracking is an L1-D mechanism (§III.C).
    icache: ztm_cache::SetAssoc<()>,
    engine: TxEngine,
    rng: SmallRng,
    prefix_area: Address,
    last_timer: u64,
    /// XI-stall retries observed (statistics).
    stalls: u64,
    /// Same-line ifetch fast path: the text line the previous instruction
    /// fetched from, valid while the install counter and page-residency
    /// epoch below still match. Instruction lines receive no XIs (the
    /// i-cache is outside the coherence protocol), and the i-cache is only
    /// mutated by this CPU's own fetch misses — which reset this snapshot —
    /// so a match means the directory walk would return the identical hit.
    last_ifetch: Option<LineAddr>,
    /// I-cache installs performed (fetch misses).
    icache_installs: u64,
    /// Value of `icache_installs` observed at the `last_ifetch` fetch.
    last_ifetch_installs: u64,
    /// Page-residency epoch observed at the `last_ifetch` fetch.
    last_ifetch_page_epoch: u64,
    /// The line window armed by the last completed full data-access walk,
    /// feeding the same-line coalescing fast path in `View::prepare` (see
    /// there for the validity argument).
    last_data: Option<LineWindow>,
    /// Data accesses served by the line window without a directory walk.
    coalesced: u64,
    /// Software-TM statistics observed via `STMNOTE` markers.
    stm: crate::report::StmCounts,
    /// Open speculative epoch (slack-width sharded rounds only): the undo
    /// journal that lets the coordinator rewind this CPU past an
    /// earlier-keyed global step and replay. `None` outside the sharded
    /// driver and whenever the CPU's speculation is resolved.
    spec: Option<Box<SpecEpoch>>,
    /// The most recently retired epoch, kept for reuse: arming recycles its
    /// boxed core/engine snapshots and journal buffers instead of
    /// reallocating them every round — epochs open and close millions of
    /// times per run, and the snapshots dominate their cost.
    spec_pool: Option<Box<SpecEpoch>>,
}

/// The undo journal of one CPU's speculative epoch. Armed when a widened
/// (slack-width) round first runs the CPU ahead of the provable 1-cycle
/// slack; every shard-local step it executes afterwards is journaled until
/// the coordinator either *finalizes* the epoch (the serial frontier passed
/// all its keys — discard the journal) or *rolls it back* past a global
/// step's `(clock, cpu)` key: restore the snapshots, undo the arena bytes
/// in reverse, then replay the kept prefix. See `run_sharded_upto`.
#[derive(Debug)]
struct SpecEpoch {
    /// Pre-step clock of every step executed in this epoch, in execution
    /// order (ascending; zero-cycle chains repeat a clock). Key *i* of this
    /// CPU is `(keys[i], cpu)`.
    keys: Vec<u64>,
    /// Architectural core state at epoch start.
    core: Box<CpuCore>,
    /// Transaction engine at epoch start.
    engine: Box<TxEngine>,
    /// RNG stream at epoch start.
    rng: SmallRng,
    /// Node scalar snapshots at epoch start (`stalls`, `last_timer` and
    /// `prefix_area` are deliberately absent: no shard-local step can
    /// stall, tick the timer, or store to the prefix area).
    last_ifetch: Option<LineAddr>,
    icache_installs: u64,
    last_ifetch_installs: u64,
    last_ifetch_page_epoch: u64,
    last_data: Option<LineWindow>,
    coalesced: u64,
    stm: crate::report::StmCounts,
    /// Pre-image bytes of every committed-arena store this epoch performed
    /// (non-transactional write-through and commit drains), in write order;
    /// rollback restores them newest-first. Full-epoch granularity: a
    /// rollback always rewinds to the epoch start before replaying, so the
    /// journal needs no per-step keying.
    mem_journal: Vec<(Address, u8)>,
}

/// Arms a speculative epoch on `node`: snapshots everything a chain of
/// provably node-local steps can mutate and arms the cache undo journals.
fn arm_epoch(node: &mut Node, core: &CpuCore) {
    debug_assert!(node.spec.is_none(), "epoch already armed");
    let mut ep = match node.spec_pool.take() {
        // Recycle the retired epoch: the boxes and the key/journal vector
        // capacities survive, only the snapshot contents are refreshed.
        Some(mut ep) => {
            ep.keys.clear();
            ep.mem_journal.clear();
            (*ep.core).clone_from(core);
            (*ep.engine).clone_from(&node.engine);
            ep.rng.clone_from(&node.rng);
            ep.stm.clone_from(&node.stm);
            ep
        }
        None => Box::new(SpecEpoch {
            keys: Vec::new(),
            core: Box::new(core.clone()),
            engine: Box::new(node.engine.clone()),
            rng: node.rng.clone(),
            last_ifetch: None,
            icache_installs: 0,
            last_ifetch_installs: 0,
            last_ifetch_page_epoch: 0,
            last_data: None,
            coalesced: 0,
            stm: node.stm.clone(),
            mem_journal: Vec::new(),
        }),
    };
    ep.last_ifetch = node.last_ifetch;
    ep.icache_installs = node.icache_installs;
    ep.last_ifetch_installs = node.last_ifetch_installs;
    ep.last_ifetch_page_epoch = node.last_ifetch_page_epoch;
    ep.last_data = node.last_data;
    ep.coalesced = node.coalesced;
    node.spec = Some(ep);
    node.cache.undo_arm();
    node.icache.undo_arm();
}

/// A per-core *line window*: the data line the previous full directory walk
/// resolved, plus the snapshots that keep its "an access to this line would
/// hit the L1 with nothing to re-stamp" verdict valid. Armed only when the
/// line ended the walk as the hot (MRU) slot of both private directories;
/// any offset or length within the line is then served without walking.
#[derive(Debug, Clone, Copy)]
struct LineWindow {
    line: LineAddr,
    /// Ownership level the arming walk established: an exclusive window
    /// (`true`) serves stores and fetches, a shared one only fetches.
    excl: bool,
    /// [`PrivateCache::generation`] observed when the walk completed.
    gen: u64,
    /// [`PageTable::epoch`] observed when the walk completed.
    page_epoch: u64,
    /// [`MainMemory::line_slot`] of the window line, resolved lazily on the
    /// first window hit (`None` = not looked up yet) so arming a window
    /// that never gets hit costs no memory index probe. Slots are immutable
    /// once allocated, so the resolved handle needs no revalidation: a
    /// full-width load served by the window reads straight from the
    /// committed arena. `Some(None)` means the line had never been stored
    /// to at resolution time — such reads keep the normal zero-fill path,
    /// which also stays correct if the line is allocated later.
    slot: Option<Option<u32>>,
}

/// One record of the per-CPU execution trace (see [`System::set_trace`]).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// The CPU that stepped.
    pub cpu: usize,
    /// The CPU's clock before the step.
    pub clock: u64,
    /// Byte address of the instruction.
    pub ia: u64,
    /// Disassembled instruction text.
    pub text: String,
    /// What the step did (executed, stalled, committed, aborted).
    pub event: StepEvent,
    /// Cycles the step consumed.
    pub cycles: u64,
}

/// One entry of the lightweight step log (see [`System::set_step_log`]):
/// which CPU stepped at which pre-step clock, what the step did, and how
/// many cycles it took. The sharded and serial engines must produce
/// identical logs — the lockstep differential in `tests/sharded.rs` pins
/// that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepLogEntry {
    /// The CPU's local clock before the step.
    pub clock: u64,
    /// The CPU that stepped.
    pub cpu: usize,
    /// What the step did.
    pub event: StepEvent,
    /// Cycles the step consumed.
    pub cycles: u64,
}

/// The full simulated SMP system.
///
/// Owns everything: committed memory, the page table, the coherence fabric,
/// and per CPU a [`CpuCore`] (architectural registers), a
/// [`PrivateCache`] (L1/L2/store cache) and a [`TxEngine`].
///
/// Simulation is deterministic: a single thread steps the CPU with the
/// smallest local clock, one instruction at a time; cross-interrogates are
/// delivered synchronously at instruction boundaries, which realizes the
/// paper's rule that instruction completion stalls while XIs are pending
/// (§III.C).
///
/// # Examples
///
/// ```
/// use ztm_sim::{System, SystemConfig};
/// use ztm_isa::{Assembler, MemOperand, gr::*};
///
/// let mut sys = System::new(SystemConfig::with_cpus(2));
/// let mut a = Assembler::new(0);
/// a.lghi(R1, 1);
/// a.stg(R1, MemOperand::absolute(0x100));
/// a.halt();
/// let prog = a.assemble()?;
/// sys.load_program_all(&prog);
/// sys.run_until_halt(10_000);
/// assert_eq!(sys.mem().load_u64(ztm_mem::Address::new(0x100)), 1);
/// # Ok::<(), ztm_isa::AsmError>(())
/// ```
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    mem: MainMemory,
    pages: PageTable,
    fabric: Fabric,
    nodes: Vec<Node>,
    cores: Vec<CpuCore>,
    /// Node-major mirror of each core's clock — the scheduler reads clocks
    /// on every step, and a [`CpuCore`] is several hundred bytes (registers,
    /// PER state), so striding across `Vec<CpuCore>` costs one host cache
    /// line per CPU touched. The hot fields live contiguously here instead;
    /// the cold architectural state stays in `cores`.
    hot_clock: Vec<u64>,
    /// Node-major mirror of each core's running/halted tag (same rationale).
    hot_running: Vec<bool>,
    /// Set when [`core_mut`](Self::core_mut) hands out direct mutable access
    /// to a core (tests poke clocks and states); the next scheduling
    /// decision resynchronizes the mirrors first.
    hot_dirty: bool,
    /// Route steps through [`ztm_isa::step_legacy`] (the original
    /// `Instr`-enum walk) instead of the predecoded dispatch — the
    /// differential determinism tests run both.
    use_legacy_interpreter: bool,
    programs: Vec<Option<Arc<Program>>>,
    /// CPU currently holding the broadcast-stop quiesce (§III.E).
    quiesce: Option<usize>,
    /// Lazy scheduling heap of `(clock, cpu)` candidates. Invariant: every
    /// CPU that is running, has a program, and is not the quiesce holder has
    /// at least one entry carrying its *current* clock; entries whose clock
    /// no longer matches the CPU (or whose CPU halted) are stale and are
    /// skipped on pop. This makes picking the next CPU O(log n) instead of
    /// the former O(n) scan per instruction. Entries are `(clock, cpu)`
    /// packed into one `u64` (see [`Self::pack_entry`]) so heap sifts
    /// compare single words.
    ready: BinaryHeap<Reverse<u64>>,
    /// Per-MCM fabric channel: the virtual time until which it is busy.
    fabric_busy: Vec<u64>,
    /// CPUs whose steps are being traced.
    traced: Vec<bool>,
    /// Bounded execution trace (most recent `trace_capacity` records).
    trace: std::collections::VecDeque<TraceRecord>,
    trace_capacity: usize,
    /// Event tracer ([`ztm_trace`]); disabled by default.
    tracer: Tracer,
    steps: u64,
    /// Per-core in-order issue windows. `None` (the default) routes steps
    /// through the scalar retirement path; engaged by `ZTM_ISSUE_WIDTH` > 1
    /// or [`set_issue_width`](Self::set_issue_width). Functional execution
    /// is identical either way — the window only re-times retirement
    /// (see `ztm_isa::step_pipelined`).
    pipeline: Option<PipelineState>,
    /// Same-line access coalescing (the line-window fast path in
    /// `View::prepare`). On by default; `ZTM_NO_COALESCE=1` or
    /// [`set_coalescing`](Self::set_coalescing) forces every data access
    /// through the full directory walk. Results are identical either way —
    /// only host speed differs (pinned by `tests/coalesce.rs`).
    coalesce: bool,
    /// Superblock stepping (the straight-line batched fast path in
    /// [`exec_block`](Self::exec_block)). On by default; `ZTM_NO_SUPERBLOCK=1`
    /// or [`set_superblocks`](Self::set_superblocks) forces every instruction
    /// through the scalar [`exec_step`](Self::exec_step) path. Results are
    /// identical either way — only host speed differs (pinned by
    /// `tests/superblock.rs`).
    superblocks: bool,
    /// Steps retired through the superblock fast path (host-speed
    /// statistics only — the differential tests use it to prove the fast
    /// path actually engaged).
    superblock_steps: u64,
    /// Per-CPU scalar-path cooldown for superblock probing. When a block
    /// breaks after a single step (tightly interleaved clocks: another
    /// CPU's heap entry bounds every block to one instruction, as in the
    /// contended 36-CPU brackets), the pop + push heap maintenance costs
    /// more than the scalar path's in-place top refresh — so the next
    /// [`SB_COOLDOWN`] eligible picks step scalar before the fast path is
    /// probed again. Purely a host-speed heuristic; the executed schedule
    /// is identical either way.
    sb_cooldown: Vec<u32>,
    /// Host threads for the sharded run path (`ZTM_SIM_THREADS` /
    /// [`set_sim_threads`](Self::set_sim_threads)). `1` (the default) keeps
    /// the serial scheduler; above `1` the run methods route through the
    /// round-based sharded driver, which executes provably node-local steps
    /// of different shards concurrently. Simulation results are
    /// byte-identical for any value.
    sim_threads: usize,
    /// Optional full step log ([`set_step_log`](Self::set_step_log)) — the
    /// differential-test hook proving the sharded engine replays the serial
    /// step order exactly.
    step_log: Option<Vec<StepLogEntry>>,
    /// Steps the sharded driver executed inside parallel (shard-local)
    /// rounds, as opposed to serialized coordinator steps. Pure statistics —
    /// measures how much of a run actually parallelizes.
    sharded_local_steps: u64,
    /// Minimum shard-local steps a round needs before it is dispatched on
    /// scoped threads instead of inline (`ZTM_SHARD_ROUND_MIN` /
    /// [`set_shard_round_min`](Self::set_shard_round_min)). A host-speed
    /// dial only: both dispatch modes run the identical shard-step code,
    /// so results never depend on it.
    par_round_min: usize,
    /// Step-log entries executed by shard run-ahead whose serial position
    /// is not yet final: an entry is released into `step_log` only once the
    /// global key frontier (the smallest next `(clock, cpu)` key of any
    /// runnable CPU) passes it — no later step can then precede it. Kept
    /// key-sorted; survives `step_many` budget boundaries.
    pending_log: Vec<StepLogEntry>,
    /// Event blocks awaiting the same frontier, replayed into the real
    /// tracer in serial key order (see [`pending_log`](Self::pending_log)).
    pending_blocks: Vec<(u64, u16, Vec<SeqTracedEvent>)>,
    /// Speculation window in cycles for the sharded driver
    /// (`ZTM_SHARD_WINDOW` / [`set_shard_window`](Self::set_shard_window)).
    /// `None` derives the topology's cross-boundary latency bound
    /// ([`LatencyModel::min_cross_boundary_latency`]); `1` pins the
    /// conservative provable-slack admission — no speculation, no journals.
    ///
    /// [`LatencyModel::min_cross_boundary_latency`]:
    /// ztm_cache::LatencyModel::min_cross_boundary_latency
    shard_window: Option<usize>,
    /// Per-chain run-ahead ceiling (`ZTM_SHARD_RUN_AHEAD` /
    /// [`set_shard_run_ahead`](Self::set_shard_run_ahead)).
    run_ahead_cap: u64,
    /// Parallel (shard-local) rounds dispatched.
    shard_rounds: u64,
    /// Largest single round, in shard-local steps.
    shard_round_max: u64,
    /// Longest single run-ahead chain, in steps.
    shard_chain_max: u64,
    /// Speculative epochs rolled back past a global step's key.
    shard_rollbacks: u64,
    /// Steps re-executed by rollback replays.
    shard_replayed: u64,
    /// Rollbacks by cause bucket: tx-side (abort/TDB naming), fabric-side
    /// (data-fetch naming), and resolve-everyone events (timer, quiesce,
    /// OS, budget frontiers). Sums to `shard_rollbacks`.
    shard_rb_tx: u64,
    shard_rb_fabric: u64,
    shard_rb_quiesce: u64,
    /// Contention-adaptive admission windows (`ZTM_SHARD_ADAPT`, default
    /// on): with no pinned `ZTM_SHARD_WINDOW`, every CPU starts at the
    /// structural cross-boundary bound and then earns its width — a
    /// rollback shrinks its window multiplicatively, a finalized-clean
    /// epoch grows it additively, and CPUs the [`GlobalTouch`] classifier
    /// keeps naming clamp to the conservative 1-cycle slack. All state
    /// here is a pure function of the deterministic step/rollback history,
    /// never of the host thread count, so simulated output stays
    /// byte-identical for any `ZTM_SIM_THREADS`.
    shard_adapt: bool,
    /// Per-CPU adaptive window in cycles (`1..=adapt_max`); empty until
    /// the first adaptive round engages.
    adapt_win: Vec<u64>,
    /// Per-CPU `GlobalTouch` naming pressure, bumped each time a bounded
    /// touch set names the CPU *and cuts one of its open epochs*, decayed
    /// once per sweep. At [`ADAPT_CLAMP_AT`] and above the CPU is clamped
    /// to window 1.
    adapt_touch: Vec<u32>,
    /// Coordinator-serial global steps executed in adaptive rounds — the
    /// deterministic clock that paces decay/regrowth sweeps.
    adapt_ticks: u64,
    /// Whether the current (or latest) sharded run adapts windows, and the
    /// structural ceiling it adapts toward. Set by `run_sharded_upto`.
    adapt_active: bool,
    adapt_max: u64,
}

/// Multiplicative window shrink on rollback: halving converges on the
/// workload's survivable width in a few rollbacks without overshooting
/// all the way to the conservative slack on one unlucky cut.
const ADAPT_SHRINK_DIV: u64 = 2;
/// Shrink floor, in cycles. Below roughly the on-chip latency slack a
/// rollback cuts almost nothing (the cut lands at the epoch head and
/// replays no prefix), so speculation is nearly free — shrinking further
/// would shed round candidacy without saving any replay work. Only the
/// [`ADAPT_CLAMP_AT`] clamp, which needs *sustained* naming pressure,
/// pushes a CPU below this to the conservative window.
const ADAPT_FLOOR: u64 = 16;
/// Additive window growth per finalized-clean epoch, in cycles.
const ADAPT_GROW: u64 = 6;
/// Adaptive growth ceiling, in cycles. Width far beyond the floor stops
/// buying admission and starts costing it: run-ahead desynchronizes the
/// CPUs' clocks by up to a window, so a wide-window CPU races hundreds
/// of cycles ahead while narrow ones drop out of candidacy around the
/// serial minimum — rounds *shrink* as windows grow past a few times
/// the floor, and each rollback cuts a much deeper epoch (at 144 CPUs,
/// a `[16, 48]` band replays 3.5× the steps of fixed width 16 for
/// *smaller* rounds). Adaptive windows therefore live in the tight
/// `[ADAPT_FLOOR, ADAPT_CAP]` band (clamped CPUs aside); an explicit
/// `ZTM_SHARD_WINDOW` still pins any width up to the structural bound.
const ADAPT_CAP: u64 = 24;
/// Naming pressure at which a CPU clamps to the conservative window.
/// A clamped CPU crawls one provable cycle per round, and the round
/// minimum cannot advance past it — so a clamp throttles the *whole
/// machine* to the crawler's pace, a price only worth paying for a CPU
/// whose epochs are damaged on nearly every serialized step. With
/// pressure halving every sweep, a sustained rate of `r` damaging cuts
/// per sweep equilibrates the score at `2r` — so a clamp engages only
/// for a CPU damaged on better than one in four serialized steps
/// ([`ADAPT_SWEEP`]/4 cuts per sweep), a true pathology. The margin
/// matters: the hottest CPUs of a symmetric workload (fig 5(e) at 144
/// CPUs sustains ~25 damaging cuts per sweep) must equilibrate *well*
/// below this, or they oscillate across the threshold and the machine
/// is throttled by ever-changing crawlers; the multiplicative shrink
/// alone prices that benign regime.
const ADAPT_CLAMP_AT: u32 = 128;
/// Naming-pressure ceiling: bounds how long a clamp outlives the
/// contention that caused it (pressure halves every sweep).
const ADAPT_SCORE_MAX: u32 = 256;
/// Global steps between adaptation sweeps (pressure decay + regrowth
/// probes for CPUs too narrow to speculate their way back up).
const ADAPT_SWEEP: u64 = 256;

/// The issue windows plus the width they were built with (cached for trace
/// emission without re-asking each window).
#[derive(Debug)]
struct PipelineState {
    width: u64,
    windows: Vec<ztm_isa::IssueWindow>,
}

impl PipelineState {
    fn new(width: u64, cpus: usize, lsu_ports: u64) -> PipelineState {
        PipelineState {
            width,
            windows: (0..cpus)
                .map(|_| ztm_isa::IssueWindow::new(width, lsu_ports))
                .collect(),
        }
    }
}

impl System {
    /// Builds a system from a configuration.
    pub fn new(config: SystemConfig) -> Self {
        let cpus = config.topology.cpus();
        let nodes = (0..cpus)
            .map(|i| Node {
                cache: PrivateCache::with_cpu_count(config.geometry.clone(), cpus),
                icache: ztm_cache::SetAssoc::new(64, 4),
                engine: TxEngine::new(config.engine.clone()),
                rng: SmallRng::seed_from_u64(
                    config.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1),
                ),
                prefix_area: Address::new(0xFFFF_0000 + (i as u64) * 4096),
                last_timer: 0,
                stalls: 0,
                last_ifetch: None,
                icache_installs: 0,
                last_ifetch_installs: 0,
                last_ifetch_page_epoch: 0,
                last_data: None,
                coalesced: 0,
                stm: crate::report::StmCounts::default(),
                spec: None,
                spec_pool: None,
            })
            .collect();
        let fabric = match config.l3_geometry {
            Some((sets, ways)) => Fabric::with_l3_geometry(config.topology.clone(), sets, ways),
            None => Fabric::new(config.topology.clone()),
        };
        System {
            fabric,
            mem: MainMemory::new(),
            pages: PageTable::all_resident(),
            nodes,
            cores: (0..cpus).map(|_| CpuCore::new()).collect(),
            hot_clock: vec![0; cpus],
            hot_running: vec![true; cpus],
            hot_dirty: false,
            // Debug lever: `ZTM_LEGACY_INTERP=1` routes every system through
            // the legacy walk (results are identical, only speed differs).
            use_legacy_interpreter: crate::env_flag("ZTM_LEGACY_INTERP"),
            programs: vec![None; cpus],
            quiesce: None,
            ready: BinaryHeap::with_capacity(cpus + 1),
            fabric_busy: vec![0; config.topology.mcm_count().max(1)],
            traced: vec![false; cpus],
            trace: std::collections::VecDeque::new(),
            trace_capacity: 10_000,
            tracer: Tracer::disabled(),
            steps: 0,
            pipeline: Self::issue_width_from_env()
                .map(|w| PipelineState::new(w, cpus, config.latency.lsu_ports)),
            // Escape hatch: `ZTM_NO_COALESCE=1` disables the line-window
            // fast path.
            coalesce: !crate::env_flag("ZTM_NO_COALESCE"),
            // Escape hatch: `ZTM_NO_SUPERBLOCK=1` disables superblock
            // stepping (every instruction is its own scheduler event).
            superblocks: !crate::env_flag("ZTM_NO_SUPERBLOCK"),
            superblock_steps: 0,
            sb_cooldown: vec![0; cpus],
            sim_threads: crate::env_usize("ZTM_SIM_THREADS").unwrap_or(1),
            step_log: None,
            sharded_local_steps: 0,
            par_round_min: crate::env_usize("ZTM_SHARD_ROUND_MIN").unwrap_or(96),
            pending_log: Vec::new(),
            pending_blocks: Vec::new(),
            shard_window: crate::env_usize("ZTM_SHARD_WINDOW"),
            run_ahead_cap: crate::env_usize("ZTM_SHARD_RUN_AHEAD")
                .map_or(RUN_AHEAD_CAP, |c| c as u64),
            shard_rounds: 0,
            shard_round_max: 0,
            shard_chain_max: 0,
            shard_rollbacks: 0,
            shard_replayed: 0,
            shard_rb_tx: 0,
            shard_rb_fabric: 0,
            shard_rb_quiesce: 0,
            shard_adapt: crate::env_flag_on("ZTM_SHARD_ADAPT"),
            adapt_win: Vec::new(),
            adapt_touch: Vec::new(),
            adapt_ticks: 0,
            adapt_active: false,
            adapt_max: 1,
            config,
        }
    }

    /// Reads `ZTM_ISSUE_WIDTH`. Absent or `1` → `None` (the scalar path is
    /// already exactly width 1); `> 1` → engage the pipeline window; anything
    /// else is a configuration error worth failing loudly on.
    fn issue_width_from_env() -> Option<u64> {
        let v = std::env::var("ZTM_ISSUE_WIDTH").ok()?;
        match v.trim().parse::<u64>() {
            Ok(1) => None,
            Ok(w) if w > 1 => Some(w),
            _ => panic!("ZTM_ISSUE_WIDTH: expected a positive issue width, got {v:?}"),
        }
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.cores.len()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Committed memory (read).
    pub fn mem(&self) -> &MainMemory {
        &self.mem
    }

    /// Committed memory (write — for workload setup).
    pub fn mem_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// The page table (evict pages to inject faults).
    pub fn pages_mut(&mut self) -> &mut PageTable {
        &mut self.pages
    }

    /// A CPU's architectural core state.
    pub fn core(&self, cpu: usize) -> &CpuCore {
        &self.cores[cpu]
    }

    /// Mutable core state (set up registers, PER controls).
    pub fn core_mut(&mut self, cpu: usize) -> &mut CpuCore {
        // The caller may change the clock or run state behind the
        // scheduler's back; resynchronize the hot mirrors lazily.
        self.hot_dirty = true;
        &mut self.cores[cpu]
    }

    /// Selects the interpreter: `true` routes steps through the original
    /// `Instr`-enum walk ([`ztm_isa::step_legacy`]), `false` (the default)
    /// through the predecoded micro-op dispatch. Both must produce
    /// identical outcomes — the differential tests flip this switch.
    pub fn set_legacy_interpreter(&mut self, legacy: bool) {
        self.use_legacy_interpreter = legacy;
    }

    /// Enables or disables same-line access coalescing (on by default;
    /// `ZTM_NO_COALESCE=1` starts systems with it off). Either setting
    /// produces byte-identical simulations — the lockstep differential in
    /// `tests/coalesce.rs` pins that — so this is a speed/debug lever, not a
    /// behavior switch.
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalesce = on;
        if !on {
            for n in &mut self.nodes {
                n.last_data = None;
            }
        }
    }

    /// Enables or disables superblock stepping (on by default;
    /// `ZTM_NO_SUPERBLOCK=1` starts systems with it off). When on, the
    /// serial scheduler retires a whole straight-line decoded region
    /// ([`Program::superblock_end`]) as one scheduler event, hoisting the
    /// per-step timer/PER/diag tests, view construction, hot-mirror
    /// writeback, and heap maintenance out of the per-instruction loop.
    /// Either setting produces byte-identical simulations — the lockstep
    /// differential in `tests/superblock.rs` pins that — so this is a
    /// speed/debug lever, not a behavior switch.
    pub fn set_superblocks(&mut self, on: bool) {
        self.superblocks = on;
    }

    /// Steps retired through the superblock fast path so far (zero when
    /// disabled or when every block bails to the scalar path).
    pub fn superblock_steps(&self) -> u64 {
        self.superblock_steps
    }

    /// Sets the in-order issue width (§II.B: the zEC12 core decodes three
    /// instructions per cycle). Width 1 still routes through the pipeline
    /// window — it must reduce exactly to the scalar path, and the lockstep
    /// differential test pins that; widths above 1 let independent micro-ops
    /// share a cycle so IPC becomes a measured output. Resets any existing
    /// window state.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn set_issue_width(&mut self, width: u64) {
        self.pipeline = Some(PipelineState::new(
            width,
            self.cores.len(),
            self.config.latency.lsu_ports,
        ));
    }

    /// Sets the host-thread count for the sharded run path (also settable
    /// at construction via `ZTM_SIM_THREADS`). `1` (the default) keeps the
    /// single-threaded scheduler; above `1` the run methods partition the
    /// simulated SMP at a coherence boundary of the topology — per book
    /// (MCM), per chip when the machine is a single book — and advance
    /// provably node-local steps of different shards concurrently inside
    /// conservative round windows. Everything that crosses the boundary is
    /// serialized by the coordinator, so simulation results (architectural
    /// state, statistics, the committed event stream and both trace digests)
    /// are byte-identical for any value.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn set_sim_threads(&mut self, threads: usize) {
        assert!(threads > 0, "sim_threads must be positive");
        self.sim_threads = threads;
    }

    /// The configured host-thread count (see
    /// [`set_sim_threads`](Self::set_sim_threads)).
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// How many steps the sharded driver executed inside parallel
    /// (shard-local) rounds so far — the complement of the serialized
    /// coordinator steps. Zero when running the serial scheduler.
    pub fn sharded_local_steps(&self) -> u64 {
        self.sharded_local_steps
    }

    /// Sets the minimum round size (in shard-local steps) that dispatches
    /// on scoped host threads; smaller rounds run inline. Purely a host
    /// speed/overhead trade — results are identical for any value.
    pub fn set_shard_round_min(&mut self, min: usize) {
        self.par_round_min = min.max(1);
    }

    /// Sets the sharded driver's speculation window in cycles (also
    /// settable at construction via `ZTM_SHARD_WINDOW`). A round admits
    /// every runnable CPU whose key lies within this many cycles of the
    /// round minimum and lets it execute speculatively under an undo
    /// journal; `1` reproduces the conservative provable-slack admission
    /// exactly (no speculation, no journals). Results are byte-identical
    /// for any value — the window only trades round size against rollback
    /// frequency.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn set_shard_window(&mut self, window: usize) {
        assert!(window > 0, "shard window must be positive");
        self.shard_window = Some(window);
    }

    /// Enables or disables contention-adaptive admission windows (also
    /// settable at construction via `ZTM_SHARD_ADAPT`, default on). Off
    /// reproduces the fixed-window regime: every CPU speculates to the
    /// full structural bound regardless of rollback history. A pinned
    /// [`set_shard_window`](Self::set_shard_window) also disables
    /// adaptation — an explicit width means exactly that width. Results
    /// are byte-identical either way; adaptation only trades round size
    /// against rollback frequency, per CPU instead of globally.
    pub fn set_shard_adapt(&mut self, on: bool) {
        self.shard_adapt = on;
    }

    /// Sets the per-chain run-ahead ceiling (also settable at construction
    /// via `ZTM_SHARD_RUN_AHEAD`). A host-cadence dial like the window:
    /// results never depend on it.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn set_shard_run_ahead(&mut self, cap: u64) {
        assert!(cap > 0, "run-ahead cap must be positive");
        self.run_ahead_cap = cap;
    }

    /// Enables or disables the full step log: every executed step is
    /// recorded as a [`StepLogEntry`] in serial scheduling order. This is
    /// the lockstep hook for the sharded-vs-serial differential tests;
    /// unbounded, so keep runs short while enabled.
    pub fn set_step_log(&mut self, enabled: bool) {
        self.step_log = if enabled { Some(Vec::new()) } else { None };
    }

    /// Takes the accumulated step log, leaving an empty one behind (empty
    /// `Vec` if logging was never enabled).
    pub fn take_step_log(&mut self) -> Vec<StepLogEntry> {
        match self.step_log.as_mut() {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Rebuilds the node-major hot mirrors from the cores.
    fn sync_hot(&mut self) {
        for (i, c) in self.cores.iter().enumerate() {
            self.hot_clock[i] = c.clock;
            self.hot_running[i] = c.is_running();
        }
        self.hot_dirty = false;
    }

    /// A CPU's transaction engine (set diagnostic control, read stats).
    pub fn engine_mut(&mut self, cpu: usize) -> &mut TxEngine {
        &mut self.nodes[cpu].engine
    }

    /// A CPU's transactional statistics.
    pub fn tx_stats(&self, cpu: usize) -> &TxStats {
        self.nodes[cpu].engine.stats()
    }

    /// A CPU's private cache unit (inspect footprint state).
    pub fn cache(&self, cpu: usize) -> &PrivateCache {
        &self.nodes[cpu].cache
    }

    /// XI-stall retries a CPU has performed.
    pub fn stalls(&self, cpu: usize) -> u64 {
        self.nodes[cpu].stalls
    }

    /// Loads a program onto one CPU.
    pub fn load_program(&mut self, cpu: usize, prog: &Program) {
        self.programs[cpu] = Some(Arc::new(prog.clone()));
        self.ready
            .push(Reverse(Self::pack_entry(self.cores[cpu].clock, cpu)));
    }

    /// Loads the same program onto every CPU.
    pub fn load_program_all(&mut self, prog: &Program) {
        let p = Arc::new(prog.clone());
        for cpu in 0..self.programs.len() {
            self.programs[cpu] = Some(Arc::clone(&p));
            self.ready
                .push(Reverse(Self::pack_entry(self.cores[cpu].clock, cpu)));
        }
    }

    /// Whether any CPU is still running.
    pub fn any_running(&self) -> bool {
        self.cores.iter().any(|c| c.is_running())
    }

    /// Enables or disables execution tracing for one CPU. Traced steps are
    /// recorded (bounded ring of the most recent 10 000) with disassembled
    /// instruction text — the simulator-side analog of the paper's
    /// instruction-trace debugging workflows.
    pub fn set_trace(&mut self, cpu: usize, enabled: bool) {
        self.traced[cpu] = enabled;
    }

    /// Attaches an event tracer ([`ztm_trace`]): every CPU's data cache,
    /// store cache, transaction engine and millicode retry ladder emit to a
    /// per-CPU clone, and the fabric emits requester-attributed XI-issue
    /// events. The instruction cache is deliberately left untraced so
    /// `Access` events count data-side activity exactly once.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let t = tracer.for_cpu(i as u16);
            node.cache.set_tracer(t.clone());
            node.engine.set_tracer(t);
        }
        self.fabric.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The recorded execution trace, oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &TraceRecord> {
        self.trace.iter()
    }

    /// Renders the recorded trace as a listing.
    pub fn trace_listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.trace {
            let _ = writeln!(
                out,
                "cpu{:<3} {:>10}  {:#08x}  {:<28} {:?} (+{})",
                r.cpu, r.clock, r.ia, r.text, r.event, r.cycles
            );
        }
        out
    }

    /// Packs a `(clock, cpu)` scheduling candidate into one `u64` whose
    /// natural ordering matches the tuple's: smallest clock first, ties
    /// toward the lowest CPU index. Clocks fit comfortably in 48 bits (a
    /// simulation would need ~3 × 10¹⁴ cycles to overflow), but an
    /// overflowing clock would shift bits into the CPU field and silently
    /// corrupt heap ordering — so the bound is a hard invariant, checked in
    /// release builds too.
    fn pack_entry(clock: u64, cpu: usize) -> u64 {
        assert!(
            clock < 1 << 48,
            "scheduler clock {clock} exceeds the 48-bit heap key range"
        );
        debug_assert!(cpu < 1 << 16);
        clock << 16 | cpu as u64
    }

    fn unpack_entry(entry: u64) -> (u64, usize) {
        (entry >> 16, (entry & 0xffff) as usize)
    }

    /// Whether a heap entry still describes a schedulable CPU at that clock.
    /// Reads only the node-major mirrors — no stride into `Vec<CpuCore>`.
    fn entry_fresh(&self, clock: u64, cpu: usize) -> bool {
        self.hot_running[cpu] && self.programs[cpu].is_some() && self.hot_clock[cpu] == clock
    }

    /// The smallest local clock among runnable CPUs (discarding stale heap
    /// entries), or `None` when every CPU has halted. A broadcast-stop
    /// holder is scheduled outside the heap, so its clock is merged in
    /// explicitly.
    fn peek_next_clock(&mut self) -> Option<u64> {
        if self.hot_dirty {
            self.sync_hot();
        }
        let holder = match self.quiesce {
            Some(h) if self.hot_running[h] && self.programs[h].is_some() => Some(self.hot_clock[h]),
            _ => None,
        };
        let queued = self.peek_fresh_entry().map(|e| Self::unpack_entry(e).0);
        match (holder, queued) {
            (Some(h), Some(q)) => Some(h.min(q)),
            (h, q) => h.or(q),
        }
    }

    /// Discards stale entries from the top of the heap and returns the
    /// packed entry of the runnable CPU with the smallest `(clock, cpu)` —
    /// ties break toward the lowest CPU index, exactly like the former
    /// linear scan. The entry is *left on the heap*: `step_one` refreshes it
    /// in place after the step (one sift instead of a pop + push).
    fn peek_fresh_entry(&mut self) -> Option<u64> {
        loop {
            let &Reverse(entry) = self.ready.peek()?;
            let (clock, cpu) = Self::unpack_entry(entry);
            if self.entry_fresh(clock, cpu) {
                return Some(entry);
            }
            self.ready.pop();
        }
    }

    /// Steps the runnable CPU with the smallest local clock. Returns the
    /// CPU index and outcome, or `None` when every CPU has halted.
    pub fn step_one(&mut self) -> Option<(usize, StepOutcome)> {
        self.step_upto(1)
    }

    /// Executes exactly one instruction on CPU `i` with full system access
    /// (exclusive memory and page-table ports, the coherence fabric) and
    /// performs every per-step obligation: timer interruptions, tracing, the
    /// hot-mirror writeback, statistics, and broadcast-stop quiesce
    /// management. Scheduling (heap maintenance, round planning) is the
    /// caller's job — both the serial batch loop and the sharded
    /// coordinator's global-step path funnel through here, which is what
    /// keeps their per-step behavior identical by construction.
    fn exec_step(&mut self, i: usize) -> StepOutcome {
        // Timer interruptions (abort any running transaction, §II.A).
        if let Some(t) = self.config.timer_interval {
            if self.hot_clock[i] - self.nodes[i].last_timer >= t {
                self.nodes[i].last_timer = self.hot_clock[i];
                self.nodes[i].engine.raise_async_interruption();
            }
        }

        let prog: &Arc<Program> = self.programs[i].as_ref().expect("program loaded");
        self.tracer.set_clock(self.hot_clock[i]);
        let mut view = View {
            cpu: i,
            base: 0,
            now: self.hot_clock[i],
            tracer: &self.tracer,
            nodes: &mut self.nodes,
            fabric: Some(&mut self.fabric),
            mem: MemPort::Excl(&mut self.mem),
            pages: PagePort::Direct(&mut self.pages),
            fabric_busy: Some(&mut self.fabric_busy),
            config: &self.config,
            coalesce: self.coalesce,
            hit_slot: None,
        };
        let traced = self.traced[i];
        let (pre_clock, pre_pc) = (self.hot_clock[i], self.cores[i].pc);
        let out = if let Some(pl) = self.pipeline.as_mut() {
            ztm_isa::step_pipelined(&mut self.cores[i], prog, &mut view, &mut pl.windows[i])
        } else if self.use_legacy_interpreter {
            ztm_isa::step_legacy(&mut self.cores[i], prog, &mut view)
        } else {
            ztm_isa::step(&mut self.cores[i], prog, &mut view)
        };
        // Pipeline trace events carry the retire-time clock. Only widths
        // above 1 emit — the width-1 window is byte-identical to the
        // scalar path and must leave digests untouched.
        if let Some(pl) = self.pipeline.as_mut() {
            if pl.width > 1 && self.tracer.is_enabled() {
                let rep = pl.windows[i].take_report();
                self.tracer.set_clock(self.cores[i].clock);
                if let Some(size) = rep.closed_group {
                    let width = pl.width.min(255) as u8;
                    self.tracer
                        .emit_at(i as u16, || Event::IssueGroup { width, size });
                }
                if let Some((reason, waited)) = rep.stall {
                    self.tracer.emit_at(i as u16, || Event::IssueStall {
                        reason: reason.code(),
                        waited,
                    });
                }
            }
        }
        // Mirror the stepped core's hot state back into the node-major
        // arrays before any scheduling decision reads them.
        self.hot_clock[i] = self.cores[i].clock;
        self.hot_running[i] = self.cores[i].is_running();
        self.steps += 1;
        if let Some(log) = self.step_log.as_mut() {
            log.push(StepLogEntry {
                clock: pre_clock,
                cpu: i,
                event: out.event,
                cycles: out.cycles,
            });
        }
        if traced {
            if self.trace.len() == self.trace_capacity {
                self.trace.pop_front();
            }
            self.trace.push_back(TraceRecord {
                cpu: i,
                clock: pre_clock,
                ia: prog.addr_of(pre_pc),
                text: prog.instr(pre_pc).to_string(),
                event: out.event,
                cycles: out.cycles,
            });
        }

        if out.event == StepEvent::Stalled {
            self.nodes[i].stalls += 1;
        }
        // Broadcast-stop quiesce management (§III.E).
        if out.broadcast_stop {
            self.quiesce = Some(i);
        } else if self.quiesce == Some(i)
            && matches!(out.event, StepEvent::Committed | StepEvent::Halted)
        {
            self.release_quiesce(i);
        }
        if self.quiesce == Some(i) && !self.hot_running[i] {
            self.release_quiesce(i);
        }
        out
    }

    /// Scalar picks to take after a degenerate superblock before probing
    /// the fast path again on that CPU. High enough that tight interleaves
    /// pay block overhead on ~6 % of picks at worst, low enough that a CPU
    /// whose neighbors halt or diverge re-engages quickly.
    const SB_COOLDOWN: u32 = 15;

    /// Steps a superblock must retire before the pop + push it costs over
    /// the scalar path's in-place heap refresh pays for itself. Blocks
    /// statically shorter than this are skipped outright
    /// ([`block_eligible`](Self::block_eligible)); statically long blocks
    /// that get *cut* below it trigger the cooldown. Measured on the
    /// contended 36-CPU stepbench brackets, where cross-CPU stop keys
    /// bound most blocks to one or two steps.
    const SB_MIN_RUN: u64 = 4;

    /// Whether CPU `i`'s next pick may route through the superblock fast
    /// path ([`exec_block`](Self::exec_block)). Conservative: anything the
    /// block loop does not replicate from [`exec_step`](Self::exec_step) —
    /// issue windows, the legacy walk, the disassembling step trace, a due
    /// (or arming-distance) timer tick, armed PER controls, a pending abort
    /// — falls back to the scalar path. These are exactly the per-step
    /// tests the block loop hoists: checked once per block here instead of
    /// once per instruction.
    #[inline]
    fn block_eligible(&self, i: usize) -> bool {
        self.superblocks
            && self.pipeline.is_none()
            && !self.use_legacy_interpreter
            && !self.traced[i]
            && !self.cores[i].per.enabled
            && self.nodes[i].engine.pending_abort().is_none()
            // A structurally short block (a branch or TX boundary within a
            // few instructions of pc) cannot amortize the fast path's heap
            // churn — skip it outright, *without* burning the cooldown:
            // shortness here is a property of this pc, not of the regime,
            // and the long block right after it should still batch.
            && {
                let pc = self.cores[i].pc;
                match self.programs[i].as_deref() {
                    Some(p) => p.superblock_end(pc) >= pc + Self::SB_MIN_RUN as usize,
                    None => false,
                }
            }
            && match self.config.timer_interval {
                Some(t) => self.hot_clock[i] < self.nodes[i].last_timer + t,
                None => true,
            }
    }

    /// Executes up to one superblock's worth of instructions on CPU `i` as
    /// a single scheduler event, hoisting every per-step obligation that
    /// [`exec_step`](Self::exec_step) pays per instruction — the timer
    /// test, view construction, the traced/pipeline branches, hot-mirror
    /// writeback, and (in the caller) heap maintenance — out of the loop.
    /// Per instruction only the pre-step tracer clock, the step itself,
    /// and the optional step-log push remain, so the emitted event stream,
    /// the step log, and every `StepOutcome` are byte-identical to scalar
    /// stepping.
    ///
    /// The loop stops — *before* executing the next instruction — when
    /// that instruction would not be the serial scheduler's pick or would
    /// cross a stopping rule, keeping `step_many`/`run_for_cycles`
    /// semantics exact:
    ///
    /// * the block's static end ([`Program::superblock_end`]), or any step
    ///   that leaves the straight line (branch taken, fault-retry);
    /// * any outcome other than a plain `Executed` (stall, abort, commit,
    ///   halt) — handled by the scalar epilogue below, exactly as
    ///   `exec_step` would;
    /// * `stop_key`: the packed `(clock, cpu)` key at which another CPU
    ///   becomes the scheduler's pick (other CPUs' clocks cannot move
    ///   while this CPU steps, so the bound computed at block entry stays
    ///   exact);
    /// * the step budget (`step_many`), the cycle horizon
    ///   (`run_for_cycles`, pre-step clock), and the next due timer tick.
    ///
    /// Returns how many instructions retired (≥ 1) and the last outcome.
    fn exec_block(
        &mut self,
        i: usize,
        stop_key: u64,
        budget: u64,
        horizon: u64,
    ) -> (u64, StepOutcome) {
        let timer_stop = match self.config.timer_interval {
            Some(t) => self.nodes[i].last_timer + t,
            None => u64::MAX,
        };
        let prog: &Arc<Program> = self.programs[i].as_ref().expect("program loaded");
        let tracer_on = self.tracer.is_enabled();
        let core = &mut self.cores[i];
        let mut clock = core.clock;
        let mut idx = core.pc;
        let end = prog.superblock_end(idx);
        let mut view = View {
            cpu: i,
            base: 0,
            now: clock,
            tracer: &self.tracer,
            nodes: &mut self.nodes,
            fabric: Some(&mut self.fabric),
            mem: MemPort::Excl(&mut self.mem),
            pages: PagePort::Direct(&mut self.pages),
            fabric_busy: Some(&mut self.fabric_busy),
            config: &self.config,
            coalesce: self.coalesce,
            hit_slot: None,
        };
        let mut executed = 0u64;
        let out = loop {
            if tracer_on {
                view.tracer.set_clock(clock);
            }
            view.now = clock;
            let out = ztm_isa::step(core, prog, &mut view);
            executed += 1;
            if let Some(log) = self.step_log.as_mut() {
                log.push(StepLogEntry {
                    clock,
                    cpu: i,
                    event: out.event,
                    cycles: out.cycles,
                });
            }
            if out.event != StepEvent::Executed {
                break out;
            }
            // Stay on the straight line: a taken branch leaves it, and a
            // handled-fault retry re-runs the same index (let the scalar
            // path take that rare step so one loop iteration maps to one
            // retired instruction).
            let next = core.pc;
            if next != idx + 1 || next >= end {
                break out;
            }
            idx = next;
            clock = core.clock;
            if executed >= budget
                || clock >= horizon
                || clock >= timer_stop
                || Self::pack_entry(clock, i) >= stop_key
            {
                break out;
            }
        };
        self.hot_clock[i] = self.cores[i].clock;
        self.hot_running[i] = self.cores[i].is_running();
        self.steps += executed;
        self.superblock_steps += executed;
        // Scalar epilogue for the bail-out step, mirroring `exec_step`
        // (the quiesce was free at block entry, so only this CPU's own
        // broadcast-stop can have claimed it).
        if out.event == StepEvent::Stalled {
            self.nodes[i].stalls += 1;
        }
        if out.broadcast_stop {
            self.quiesce = Some(i);
        }
        if self.quiesce == Some(i) && !self.hot_running[i] {
            self.release_quiesce(i);
        }
        (executed, out)
    }

    /// Steps up to `limit` instructions, returning the last `(cpu, outcome)`
    /// (`None` when every CPU has halted before the first step).
    ///
    /// All steps of one call execute on consecutively-scheduled CPUs in
    /// exactly the order a `step_one` loop would produce: after each step the
    /// batch only continues while the just-stepped CPU is *still* the
    /// scheduler's next pick — its refreshed entry sits on top of the heap
    /// (ties and staleness resolve identically: packed entries are unique
    /// per CPU and the refreshed entry is fresh by construction), or it
    /// still holds the broadcast-stop quiesce. Anything else falls back to
    /// the full scheduling pick on the next call. Batching only amortizes
    /// the pick itself; every per-step obligation (timer, tracing, quiesce
    /// management, heap refresh) runs inside the loop — or once per
    /// superblock when the fast path is eligible.
    fn step_upto(&mut self, limit: u64) -> Option<(usize, StepOutcome)> {
        self.step_upto_bounded(limit, u64::MAX)
    }

    /// [`step_upto`](Self::step_upto) with a cycle horizon: no step whose
    /// pre-step clock is `>= horizon` is executed (the `run_for_cycles`
    /// stopping rule, applied inside the batch and inside superblocks).
    /// The caller guarantees the first pick's clock is below `horizon`.
    fn step_upto_bounded(&mut self, limit: u64, horizon: u64) -> Option<(usize, StepOutcome)> {
        if self.hot_dirty {
            self.sync_hot();
        }
        // `my_entry` is the (still-enqueued) heap entry the CPU was
        // scheduled from; a broadcast-stop holder bypasses the heap.
        let (i, mut my_entry) = match self.quiesce {
            Some(holder) if self.hot_running[holder] => (holder, None),
            _ => {
                self.quiesce = None;
                let entry = self.peek_fresh_entry()?;
                (Self::unpack_entry(entry).1, Some(entry))
            }
        };
        let mut done = 0u64;
        loop {
            let out = if my_entry.is_some() && self.sb_cooldown[i] == 0 && self.block_eligible(i) {
                // Superblock fast path. The CPU's own (fresh) entry is on
                // top of the heap; pop it so the next-best fresh entry
                // bounds how far the block may run before another CPU
                // becomes the scheduler's pick.
                self.ready.pop();
                my_entry = None;
                let stop_key = self.peek_fresh_entry().unwrap_or(u64::MAX);
                let (k, out) = self.exec_block(i, stop_key, limit - done, horizon);
                if k < Self::SB_MIN_RUN {
                    // A statically long block got cut short dynamically — a
                    // tight cross-CPU interleave or a stall-heavy stretch
                    // broke it before enough steps amortized the fast
                    // path's heap churn (a pop + push instead of the scalar
                    // path's in-place top refresh). That regime outlives
                    // one pick: step scalar for a while, then probe again.
                    self.sb_cooldown[i] = Self::SB_COOLDOWN;
                }
                done += k;
                out
            } else {
                if my_entry.is_some() && self.sb_cooldown[i] > 0 {
                    self.sb_cooldown[i] -= 1;
                }
                done += 1;
                self.exec_step(i)
            };
            // Keep this CPU's heap entry fresh. While it holds the quiesce
            // it is scheduled directly (its stale entry is skipped lazily),
            // so pushing waits until the quiesce releases — the release path
            // falls through here. When the CPU was scheduled from the heap
            // and its (now stale) entry is still on top, refresh it in
            // place: one sift-down instead of a pop + push. (A
            // release_quiesce above may have pushed other entries, so the
            // top is re-checked rather than assumed.)
            if self.quiesce != Some(i) && self.hot_running[i] {
                let fresh = Reverse(Self::pack_entry(self.hot_clock[i], i));
                let mut replaced = false;
                if let Some(mut top) = self.ready.peek_mut() {
                    if Some(top.0) == my_entry {
                        *top = fresh;
                        replaced = true;
                    }
                }
                if !replaced {
                    self.ready.push(fresh);
                }
            } else if let Some(entry) = my_entry {
                // The stepped CPU halted or took the quiesce: drop its entry
                // eagerly while it is still (usually) on top.
                if let Some(top) = self.ready.peek_mut() {
                    if top.0 == entry {
                        std::collections::binary_heap::PeekMut::pop(top);
                    }
                }
            }
            if done >= limit || self.hot_clock[i] >= horizon {
                return Some((i, out));
            }
            // Batch continuation: same CPU only, and only when it is
            // unambiguously the next pick.
            if self.quiesce == Some(i) && self.hot_running[i] {
                my_entry = None;
                continue;
            }
            if self.quiesce.is_none() && self.hot_running[i] {
                let fresh = Self::pack_entry(self.hot_clock[i], i);
                if self.ready.peek() == Some(&Reverse(fresh)) {
                    my_entry = Some(fresh);
                    continue;
                }
            }
            return Some((i, out));
        }
    }

    fn release_quiesce(&mut self, holder: usize) {
        self.quiesce = None;
        let t = self.hot_clock[holder];
        for j in 0..self.cores.len() {
            if j == holder || !self.hot_running[j] || self.hot_clock[j] >= t {
                continue;
            }
            self.cores[j].clock = t;
            self.hot_clock[j] = t;
            // The bumped clock invalidates the CPU's heap entries.
            if self.programs[j].is_some() {
                self.ready.push(Reverse(Self::pack_entry(t, j)));
            }
        }
    }

    // ------------------------------------------------------------------
    // Sharded (host-parallel) execution
    // ------------------------------------------------------------------

    /// Whether the run methods should route through the sharded round
    /// driver: more than one host thread requested, more than one shard in
    /// the topology, and none of the inherently serial features engaged
    /// (issue windows re-time retirement through per-step reports, the
    /// legacy interpreter is a debug lever, and the disassembling step
    /// trace reads program text during the step).
    fn sharded_active(&self) -> bool {
        self.sim_threads > 1
            && self.pipeline.is_none()
            && !self.use_legacy_interpreter
            && !self.traced.iter().any(|&t| t)
            && ShardPlan::new(&self.config.topology).shard_count() > 1
    }

    /// Classifies CPU `i`'s next instruction step without executing it
    /// (coordinator entry point into [`classify_step_at`]).
    fn classify_step(&self, i: usize) -> Candidate {
        classify_step_at(
            i,
            self.hot_clock[i],
            &self.nodes[i],
            &self.cores[i],
            self.programs[i].as_ref().expect("program loaded"),
            &self.pages,
            SlotView::Main(&self.mem),
            &self.config,
            self.coalesce,
        )
    }

    /// Computes the [`GlobalTouch`] set of CPU `i`'s next — already
    /// classified global — step. Evaluated immediately before the step
    /// executes, against the same state the step will see, so the fabric
    /// and directory walks are exact. Mirrors [`classify_step_at`]'s
    /// reasons for going global, branch for branch.
    fn global_touch(&self, i: usize) -> (GlobalTouch, RollbackCause) {
        let node = &self.nodes[i];
        let core = &self.cores[i];
        let clock = self.hot_clock[i];
        // A due timer tick raises an async interruption whose abort
        // processing interrupts the OS (prefix TDB store, page-ins).
        if let Some(t) = self.config.timer_interval {
            if clock - node.last_timer >= t {
                return (GlobalTouch::All, RollbackCause::Quiesce);
            }
        }
        if let Some(cause) = node.engine.pending_abort() {
            // Abort processing. A constrained retry can broadcast-stop
            // (resynchronizing every clock), an OS-interrupting cause
            // stores the prefix TDB and may page in, and the debug modes
            // below can pile on. Otherwise the millicode writes at most
            // the registered 256-byte TDB — touching the holders of the
            // lines it spans.
            if node.engine.constrained()
                || cause.interrupts_os()
                || core.per.enabled
                || node.engine.tdc_active()
            {
                return (GlobalTouch::All, RollbackCause::Quiesce);
            }
            return match node.engine.tdb_addr() {
                None => (GlobalTouch::Confined, RollbackCause::Tx),
                Some(addr) => {
                    let mut cpus = Vec::new();
                    let last = addr.add(255).line();
                    let mut line = addr.line();
                    loop {
                        let (owner, sharers) = self.fabric.holders(line);
                        for c in owner.into_iter().chain(sharers) {
                            if c.0 != i {
                                cpus.push(c.0);
                            }
                        }
                        if line == last {
                            break;
                        }
                        line = LineAddr::new(line.index() + 1);
                    }
                    (GlobalTouch::Cpus(cpus), RollbackCause::Tx)
                }
            };
        }
        if core.per.enabled || node.engine.tdc_active() {
            // Debug modes: resolve, don't reason.
            return (GlobalTouch::All, RollbackCause::Quiesce);
        }
        let in_tx = node.engine.in_tx();
        if in_tx && node.engine.constrained() {
            // Constraint violations escalate (possibly to broadcast-stop).
            return (GlobalTouch::All, RollbackCause::Quiesce);
        }
        let prog = self.programs[i].as_ref().expect("program loaded");
        let d = prog.decoded(core.pc);
        // A text page-in bumps the page-residency epoch, invalidating
        // every CPU's line windows and ifetch snapshots mid-epoch.
        if self.pages.check(Address::new(d.addr)).is_err() {
            return (GlobalTouch::All, RollbackCause::Quiesce);
        }
        if in_tx
            && matches!(
                d.class,
                InstrClass::RestrictedInTx | InstrClass::ArModifying | InstrClass::FprModifying
            )
        {
            return (GlobalTouch::All, RollbackCause::Tx);
        }
        match d.op {
            // Engine-only transaction bookkeeping. A TEND commit drains
            // only lines this CPU holds exclusively (and an arena-slot
            // allocation is monotone — it can't invalidate any local
            // verdict), a TABORT or nested-TBEGIN overflow only sets the
            // pending cause, and TBEGINC's broadcast-stop happens at the
            // *abort* step, covered by the constrained branch above.
            Op::Tbegin | Op::Tbeginc | Op::Tend | Op::Tabort => {
                (GlobalTouch::Confined, RollbackCause::Tx)
            }
            Op::Lg => (
                self.data_touch(i, d, d.flags & FLAG_FOR_UPDATE != 0, AccessClass::Fetch),
                RollbackCause::Fabric,
            ),
            Op::Ltg | Op::Cg => (
                self.data_touch(i, d, false, AccessClass::Fetch),
                RollbackCause::Fabric,
            ),
            Op::Stg | Op::Stckf | Op::Csg => (
                self.data_touch(i, d, true, AccessClass::Store),
                RollbackCause::Fabric,
            ),
            Op::Ntstg => {
                if !effective_address_decoded(core, d).is_aligned(8) {
                    // Specification exception → OS.
                    return (GlobalTouch::All, RollbackCause::Quiesce);
                }
                (
                    self.data_touch(i, d, true, AccessClass::Store),
                    RollbackCause::Fabric,
                )
            }
            // Dsgr division by zero (the only global verdict left for it)
            // raises a program exception, and anything unrecognized
            // resolves everything rather than reasons about it.
            _ => (GlobalTouch::All, RollbackCause::Quiesce),
        }
    }

    /// Touch set of a global data access: the XI receivers and same-chip
    /// L3-eviction candidates of the fabric fetch (and of a possible
    /// next-line speculative prefetch) it is about to perform. Mirrors
    /// [`classify_data_at`]'s walk; the prefetch dice is *not* rolled —
    /// including line+1's holders whenever the roll is possible is a
    /// superset that at worst forces an unnecessary resolution.
    fn data_touch(
        &self,
        i: usize,
        d: &DecodedInstr,
        want_excl: bool,
        class: AccessClass,
    ) -> GlobalTouch {
        let node = &self.nodes[i];
        let core = &self.cores[i];
        let excl = class == AccessClass::Store || want_excl;
        let ea = effective_address_decoded(core, d);
        if !ea.fits_in_line(8) {
            return GlobalTouch::All; // specification exception → OS
        }
        let line = ea.line();
        let in_tx = node.engine.in_tx();
        let window_ok = self.coalesce
            && node.last_data.is_some_and(|w| {
                w.line == line
                    && (w.excl || !excl)
                    && w.gen == node.cache.generation()
                    && w.page_epoch == self.pages.epoch()
                    && (!in_tx
                        || node
                            .cache
                            .l1_tx_marks(line)
                            .is_some_and(|(read, dirty)| match class {
                                AccessClass::Fetch => read,
                                AccessClass::Store => dirty,
                            }))
            });
        let main_fetch = if window_ok {
            false
        } else {
            if self.pages.check(ea).is_err() {
                return GlobalTouch::All; // page-in bumps the page epoch
            }
            node.cache.probe_local(line, excl).is_none()
        };
        let may_prefetch = class == AccessClass::Fetch
            && in_tx
            && self.config.speculative_prefetch
            && self.config.prefetch_probability > 0.0
            && !node.engine.speculation_disabled();
        let mut cpus = Vec::new();
        if main_fetch {
            self.fabric
                .fetch_touch(CpuId(i), line, may_prefetch, &mut cpus);
        } else if may_prefetch {
            self.fabric
                .fetch_touch(CpuId(i), LineAddr::new(line.index() + 1), false, &mut cpus);
        }
        // A remaining global verdict with no fetch at all (a non-tx store
        // without an arena slot) only allocates under the coordinator's
        // exclusive memory: the empty set.
        GlobalTouch::Cpus(cpus.into_iter().map(|c| c.0).collect())
    }

    /// Closes CPU `j`'s speculative epoch as final (the frontier passed
    /// it, or a resolution proved it untouched): drops the journals,
    /// recycles the snapshot box for the next epoch, and rewards the CPU
    /// with additive window growth — its speculation survived.
    fn finalize_epoch(&mut self, j: usize) {
        if let Some(ep) = self.nodes[j].spec.take() {
            self.nodes[j].cache.undo_discard();
            self.nodes[j].icache.undo_discard();
            self.nodes[j].spec_pool = Some(ep);
            self.adapt_grow(j);
        }
    }

    /// Finalizes CPU `j`'s epoch when every speculated key precedes `cut`,
    /// rolls it back past `cut` otherwise. Returns the steps undone.
    fn resolve_epoch_past(
        &mut self,
        j: usize,
        cut: (u64, usize),
        cause: RollbackCause,
        plan: &ShardPlan,
        shard_tracers: &[Tracer],
    ) -> u64 {
        let Some(ep) = self.nodes[j].spec.as_ref() else {
            return 0;
        };
        let keep = ep.keys.partition_point(|&k| (k, j) < cut);
        if keep == ep.keys.len() {
            self.finalize_epoch(j);
            0
        } else {
            self.rollback_epoch_to(j, keep, cut, cause, plan, shard_tracers)
        }
    }

    /// Resolves the open epochs a global step about to execute at key `g`
    /// can reach: the stepping CPU's own epoch is final (its speculated
    /// steps precede the step in program order), and each epoch in `touch`
    /// is finalized or rolled back past `g`. Epochs outside the touch set
    /// stay open — the step provably cannot observe or invalidate them.
    /// Returns the speculated steps undone.
    fn resolve_epochs_for_global(
        &mut self,
        g: (u64, usize),
        touch: GlobalTouch,
        cause: RollbackCause,
        plan: &ShardPlan,
        shard_tracers: &[Tracer],
    ) -> u64 {
        self.finalize_epoch(g.1);
        let mut undone = 0;
        match touch {
            GlobalTouch::Confined => {}
            GlobalTouch::Cpus(mut cpus) => {
                cpus.sort_unstable();
                cpus.dedup();
                for j in cpus {
                    if j != g.1 {
                        undone += self.resolve_epoch_past(j, g, cause, plan, shard_tracers);
                    }
                }
            }
            GlobalTouch::All => {
                for j in 0..self.nodes.len() {
                    if j != g.1 {
                        undone += self.resolve_epoch_past(j, g, cause, plan, shard_tracers);
                    }
                }
            }
        }
        undone
    }

    /// Resolves every open epoch against the serial frontier (the smallest
    /// next key of any runnable CPU) for a `limit` boundary: afterwards the
    /// executed steps are exactly a serial prefix. The frontier CPU's own
    /// epoch is final (its steps precede its next step in program order);
    /// every other epoch finalizes or rolls back past the frontier. A
    /// rollback rewinds its CPU to a key strictly *above* the cut (its kept
    /// keys are below it and `j` breaks ties), so the frontier computed up
    /// front stays the minimum throughout. Returns the steps undone.
    fn resolve_epochs_to_frontier(&mut self, plan: &ShardPlan, shard_tracers: &[Tracer]) -> u64 {
        let mut min: Option<(u64, usize)> = None;
        for i in 0..self.hot_clock.len() {
            if self.hot_running[i] && self.programs[i].is_some() {
                let key = (self.hot_clock[i], i);
                if min.is_none_or(|m| key < m) {
                    min = Some(key);
                }
            }
        }
        let Some(cut) = min else {
            // Everything halted: the speculated steps are the only steps
            // left, so they are the serial tail and all final.
            for j in 0..self.nodes.len() {
                self.finalize_epoch(j);
            }
            return 0;
        };
        let mut undone = 0;
        for j in 0..self.nodes.len() {
            if j == cut.1 {
                self.finalize_epoch(j);
            } else {
                undone +=
                    self.resolve_epoch_past(j, cut, RollbackCause::Quiesce, plan, shard_tracers);
            }
        }
        undone
    }

    /// Rewinds CPU `j`'s open epoch to its start — shared-arena pre-images
    /// newest-first, cache undo journals, then the node/core snapshots —
    /// and silently replays the `keep`-step prefix whose keys precede
    /// `cut`, erasing every speculated step at or past the cut from the
    /// node, the arena, and the pending output buffers. Replay is exact:
    /// it starts from the identical pre-epoch state, runs the identical
    /// node-local steps, and nothing a concurrent epoch did is visible to
    /// it (MESI isolation). Its output is discarded (tracers disabled, no
    /// log) — the speculative run already produced it and the kept keys'
    /// pending entries survive the purge. Returns the steps undone.
    fn rollback_epoch_to(
        &mut self,
        j: usize,
        keep: usize,
        cut: (u64, usize),
        cause: RollbackCause,
        plan: &ShardPlan,
        shard_tracers: &[Tracer],
    ) -> u64 {
        let mut ep = self.nodes[j]
            .spec
            .take()
            .expect("rollback without an epoch");
        let undone = (ep.keys.len() - keep) as u64;
        debug_assert!(undone > 0, "rollback with nothing to undo");
        for &(addr, byte) in ep.mem_journal.iter().rev() {
            self.mem.store_bytes(addr, &[byte]);
        }
        // Swap the snapshots back in (rather than moving out of the box) so
        // the box and its buffers recycle into the epoch pool below.
        let node = &mut self.nodes[j];
        node.cache.undo_rollback();
        node.icache.undo_rollback();
        std::mem::swap(&mut node.engine, &mut *ep.engine);
        std::mem::swap(&mut node.rng, &mut ep.rng);
        node.last_ifetch = ep.last_ifetch;
        node.icache_installs = ep.icache_installs;
        node.last_ifetch_installs = ep.last_ifetch_installs;
        node.last_ifetch_page_epoch = ep.last_ifetch_page_epoch;
        node.last_data = ep.last_data;
        node.coalesced = ep.coalesced;
        std::mem::swap(&mut node.stm, &mut ep.stm);
        std::mem::swap(&mut self.cores[j], &mut *ep.core);
        // Kept keys precede the cut and undone keys follow it (`j` never
        // ties the cut), so a key comparison splits the pending output.
        self.pending_log
            .retain(|e| e.cpu != j || (e.clock, e.cpu) < cut);
        self.pending_blocks
            .retain(|b| b.1 as usize != j || (b.0, b.1 as usize) < cut);
        let disabled = Tracer::disabled();
        self.nodes[j].cache.set_tracer(disabled.clone());
        self.nodes[j].engine.set_tracer(disabled.clone());
        let prog = Arc::clone(self.programs[j].as_ref().expect("program loaded"));
        for r in 0..keep {
            let clock = self.cores[j].clock;
            debug_assert_eq!(clock, ep.keys[r], "replay diverged from the epoch");
            let mut view = View {
                cpu: j,
                base: 0,
                now: clock,
                tracer: &disabled,
                nodes: &mut self.nodes,
                fabric: None,
                mem: MemPort::Excl(&mut self.mem),
                pages: PagePort::Check(&self.pages),
                fabric_busy: None,
                config: &self.config,
                coalesce: self.coalesce,
                hit_slot: None,
            };
            let out = ztm_isa::step(&mut self.cores[j], &prog, &mut view);
            debug_assert!(
                !out.broadcast_stop && out.event != StepEvent::Stalled,
                "a replayed step must be node-local"
            );
        }
        self.hot_clock[j] = self.cores[j].clock;
        self.hot_running[j] = self.cores[j].is_running();
        // Rewire the round tracer for subsequent rounds (disabled stand-in
        // when the run isn't buffering — same as every other CPU).
        let t = shard_tracers[plan.shard_of(j)].for_cpu(j as u16);
        self.nodes[j].cache.set_tracer(t.clone());
        self.nodes[j].engine.set_tracer(t);
        self.steps -= undone;
        self.sharded_local_steps -= undone;
        self.shard_rollbacks += 1;
        self.shard_replayed += keep as u64;
        match cause {
            RollbackCause::Tx => self.shard_rb_tx += 1,
            RollbackCause::Fabric => self.shard_rb_fabric += 1,
            RollbackCause::Quiesce => self.shard_rb_quiesce += 1,
        }
        // Punish the rollback multiplicatively, score the contention that
        // caused it, and recycle the snapshot box.
        self.adapt_shrink(j);
        if matches!(cause, RollbackCause::Tx | RollbackCause::Fabric) {
            self.adapt_name(j);
        }
        self.nodes[j].spec_pool = Some(ep);
        undone
    }

    /// CPU `i`'s effective admission window: the conservative 1-cycle
    /// slack while the touch score holds it clamped (a contended CPU —
    /// lock-line holder, XI magnet — never opens epochs at all), its
    /// adaptive window otherwise.
    fn eff_win(&self, i: usize) -> u64 {
        if self.adapt_touch[i] >= ADAPT_CLAMP_AT {
            1
        } else {
            self.adapt_win[i]
        }
    }

    /// Multiplicative shrink on a rollback: the CPU speculated past a
    /// global step's key and paid for it, so its window collapses toward
    /// [`ADAPT_FLOOR`] — the width where rollbacks stop cutting any real
    /// prefix. Only the clamp goes below that.
    fn adapt_shrink(&mut self, j: usize) {
        if self.adapt_active && !self.adapt_win.is_empty() {
            let floor = ADAPT_FLOOR.min(self.adapt_max);
            self.adapt_win[j] = (self.adapt_win[j] / ADAPT_SHRINK_DIV).max(floor);
        }
    }

    /// Additive growth on a finalized-clean epoch: speculation survived,
    /// so the window creeps back toward the structural latency bound.
    fn adapt_grow(&mut self, j: usize) {
        if self.adapt_active && !self.adapt_win.is_empty() {
            self.adapt_win[j] = (self.adapt_win[j] + ADAPT_GROW).min(self.adapt_max);
        }
    }

    /// Bumps CPU `j`'s touch score (saturating): a bounded `GlobalTouch`
    /// set named it *and the naming cut an open epoch* — the CPU holds
    /// lines that serialized steps keep reaching while it speculates.
    /// Mere naming without damage is not scored (in a hot workload every
    /// fabric step names most holders, which would drown the signal), and
    /// neither are `Quiesce` cuts (timers and budget frontiers say nothing
    /// about who is contended).
    fn adapt_name(&mut self, j: usize) {
        if self.adapt_active && !self.adapt_touch.is_empty() {
            self.adapt_touch[j] = (self.adapt_touch[j] + 1).min(ADAPT_SCORE_MAX);
        }
    }

    /// Per-global-step adaptation clock. Every [`ADAPT_SWEEP`] serialized
    /// steps the touch scores *halve* — contention is forgiven fast once
    /// the naming stops, and holding a clamp needs a sustained naming rate
    /// of ~[`ADAPT_CLAMP_AT`] damaging cuts per sweep — and every
    /// unclamped CPU's window regrows by a one-cycle probe, so a width
    /// lost to a past contention phase drifts back toward the structural
    /// bound even when the CPU rarely opens epochs. Driven purely by the
    /// deterministic serialized-step count, never host time or thread
    /// count.
    fn adapt_tick(&mut self) {
        if !self.adapt_active || self.adapt_win.is_empty() {
            return;
        }
        self.adapt_ticks += 1;
        if !self.adapt_ticks.is_multiple_of(ADAPT_SWEEP) {
            return;
        }
        for i in 0..self.adapt_win.len() {
            self.adapt_touch[i] /= 2;
            if self.adapt_touch[i] < ADAPT_CLAMP_AT {
                // A one-cycle probe: enough to let a fully-shrunk CPU open
                // a (tiny, cheap) epoch again and earn real growth through
                // clean finalizes if the contention has moved on.
                self.adapt_win[i] = (self.adapt_win[i] + 1).min(self.adapt_max);
            }
        }
    }

    /// Runs up to `limit` steps through the sharded round scheduler,
    /// stopping early when every CPU halts or, with `horizon`, when the
    /// next serial pick would start at or past it (the exact
    /// [`run_for_cycles`](Self::run_for_cycles) stopping rule). Returns
    /// how many steps executed.
    ///
    /// Each round classifies every runnable CPU within one cycle of the
    /// minimum `(clock, cpu)` key and executes the [`safe_set`] — the
    /// key-ordered prefix of provably node-local steps the serial
    /// scheduler would run next, partitioned across shards. Each admitted
    /// CPU then *runs ahead* inside its shard: the shard re-classifies the
    /// CPU's own next step (node state and the read-only shared structures
    /// are all it needs) and keeps executing while the step stays local
    /// and its key stays strictly below the round bound — the earliest
    /// key at which any *other* runnable CPU could next go global. Rounds
    /// concatenated in key order *are* the serial step sequence, so state,
    /// statistics, step logs, and the replayed event stream are
    /// byte-identical to the single-threaded scheduler for any host-thread
    /// count.
    fn run_sharded_upto(&mut self, limit: u64, horizon: Option<u64>) -> u64 {
        if self.hot_dirty {
            self.sync_hot();
        }
        let plan = ShardPlan::new(&self.config.topology);
        let shard_count = plan.shard_count();

        // Reroute every event emitter into per-shard buffers (plus one for
        // the coordinator: the fabric and pipeline emit through
        // `self.tracer`) sharing a single ticket counter. Each round's
        // buffered events are replayed into the real sink in serial step
        // order before the next round, so sinks observe the exact serial
        // stream.
        let real = self.tracer.clone();
        let buffering = real.is_enabled();
        let mut shard_tracers: Vec<Tracer> = Vec::new();
        let mut shard_bufs: Vec<Arc<Mutex<EventBuffer>>> = Vec::new();
        let mut sys_buf: Option<Arc<Mutex<EventBuffer>>> = None;
        if buffering {
            let seq = Arc::new(AtomicU64::new(0));
            for s in 0..shard_count {
                let (t, b) = Tracer::buffering(Arc::clone(&seq));
                for cpu in plan.range(s) {
                    self.nodes[cpu].cache.set_tracer(t.for_cpu(cpu as u16));
                    self.nodes[cpu].engine.set_tracer(t.for_cpu(cpu as u16));
                }
                shard_tracers.push(t);
                shard_bufs.push(b);
            }
            let (t, b) = Tracer::buffering(seq);
            self.fabric.set_tracer(t.clone());
            self.tracer = t;
            sys_buf = Some(b);
        } else {
            // Disabled stand-ins keep the shard-step path uniform.
            shard_tracers = (0..shard_count).map(|_| Tracer::disabled()).collect();
        }

        // Speculation window: how many cycles past the round minimum a
        // CPU's key may lie and still join a round. The default is the
        // fabric's provable cross-boundary latency bound — any fetch that
        // crosses a shard boundary costs at least this many cycles, so
        // global steps rarely land inside an already-speculated window and
        // rollbacks stay rare. Window 1 is the pinned escape hatch: it
        // reproduces the conservative provable-slack admission exactly
        // (no epochs, no journals).
        let window = self.shard_window.map_or_else(
            || {
                self.config
                    .latency
                    .min_cross_boundary_latency(self.config.topology.mcm_count() <= 1)
            },
            |w| w as u64,
        );
        // Contention adaptation engages only for the *default* (structural)
        // window: an explicit `ZTM_SHARD_WINDOW` pin means "exactly this
        // width", and window 1 has nothing to adapt. Adaptation state is a
        // pure function of the deterministic serialized-step and rollback
        // history, so results stay byte-identical for any thread count —
        // and for `ZTM_SHARD_ADAPT=0`, which merely trades rounds for
        // rollbacks on the same serial step sequence.
        let adaptive = self.shard_adapt && self.shard_window.is_none() && window > 1;
        self.adapt_active = adaptive;
        self.adapt_max = window.min(ADAPT_CAP);
        if adaptive && self.adapt_win.len() != self.hot_clock.len() {
            self.adapt_win = vec![self.adapt_max; self.hot_clock.len()];
            self.adapt_touch = vec![0; self.hot_clock.len()];
        }

        let mut executed = 0u64;
        let mut cands: Vec<Candidate> = Vec::new();
        // `done` = nothing left to run this side of the frontier (all CPUs
        // halted, or every next key is at or past the horizon): pending
        // run-ahead output is final and flushes completely. A `limit` exit
        // leaves it pending — the continuation call may still execute
        // smaller keys.
        let mut done = false;
        // Set once a `limit` boundary forces the speculation frontier to
        // resolve: the remaining budget then runs under the conservative
        // admission, which exits exactly at `limit` without opening new
        // epochs (a speculate-resolve cycle at the boundary could undo as
        // much as it executes and never converge).
        let mut conservative_tail = false;
        loop {
            if executed >= limit {
                // Speculated steps are not yet a serial prefix: resolve
                // every open epoch back to the frontier, then re-check the
                // budget against the exact count.
                executed -= self.resolve_epochs_to_frontier(&plan, &shard_tracers);
                if executed >= limit {
                    break;
                }
                conservative_tail = true;
            }
            // Mirror the serial scheduler: a running broadcast-stop holder
            // is stepped directly; otherwise the smallest (clock, cpu)
            // runnable CPU is next.
            let holder = match self.quiesce {
                Some(h) if self.hot_running[h] => Some(h),
                _ => {
                    self.quiesce = None;
                    None
                }
            };
            let mut min: Option<(u64, usize)> = None;
            for i in 0..self.hot_clock.len() {
                if self.hot_running[i] && self.programs[i].is_some() {
                    let key = (self.hot_clock[i], i);
                    if min.is_none_or(|m| key < m) {
                        min = Some(key);
                    }
                }
            }
            let Some((min_clock, min_cpu)) = min else {
                done = true;
                break;
            };
            // Epochs the frontier has passed are final: every future cut
            // key is at least the frontier, so a journal whose last key
            // precedes it can never be needed — drop it and keep journals
            // short.
            for j in 0..self.nodes.len() {
                let passed = self.nodes[j].spec.as_ref().is_some_and(|ep| {
                    ep.keys
                        .last()
                        .is_none_or(|&k| (k, j) < (min_clock, min_cpu))
                });
                if passed {
                    self.finalize_epoch(j);
                }
            }
            // Frontier flush: every future step's key is at least the
            // serial minimum, so pending run-ahead output strictly below
            // it is in its final position.
            self.flush_pending_below((min_clock, min_cpu), &real);
            if horizon.is_some_and(|hz| min_clock >= hz) {
                done = true;
                break;
            }
            if let Some(h) = holder {
                // A quiesce only starts at a constrained-retry abort — a
                // global step whose resolution closed every epoch before
                // it executed — and no local round runs while it holds.
                debug_assert!(
                    self.nodes.iter().all(|n| n.spec.is_none()),
                    "open epoch across a quiesce"
                );
                self.flush_pending_below((u64::MAX, usize::MAX), &real);
                self.exec_global_round(h, &shard_tracers, &shard_bufs, sys_buf.as_ref(), &real);
                executed += 1;
                continue;
            }
            // The horizon is a hard key ceiling: nothing at or past
            // `(hz, 0)` may execute, whether admitted or run ahead.
            let ceiling = horizon.map_or((u64::MAX, usize::MAX), |hz| (hz, 0));
            if window > 1 && !conservative_tail {
                // --- Slack-width (speculative) admission ---
                // Each CPU joins the round only while its key lies within
                // its *own* effective window of the minimum: the full
                // structural slack while its speculation keeps surviving,
                // the provable 1-cycle slack while the controller holds it
                // clamped. CPUs outside their window still bound the
                // journal-free horizon at their current key (they could go
                // global the moment they become schedulable).
                cands.clear();
                let mut outside = (u64::MAX, usize::MAX);
                for i in 0..self.hot_clock.len() {
                    if self.hot_running[i] && self.programs[i].is_some() {
                        let w = if adaptive { self.eff_win(i) } else { window };
                        if self.hot_clock[i] <= min_clock.saturating_add(w) {
                            cands.push(self.classify_step(i));
                        } else {
                            outside = outside.min((self.hot_clock[i], i));
                        }
                    }
                }
                let serial_global = cands
                    .iter()
                    .find(|c| (c.clock, c.cpu) == (min_clock, min_cpu))
                    .expect("serial pick is in the window")
                    .global;
                if serial_global {
                    // The serial pick itself is global: resolve exactly
                    // the epochs its side effects can reach (rolling them
                    // back past its key), release the now-final prefix —
                    // the stepping CPU's own zero-cycle priors share its
                    // clock, hence the `+ 1` — and serialize the step.
                    // Untouched speculation with larger keys stays pending
                    // and is released once the frontier passes it.
                    let (touch, cause) = self.global_touch(min_cpu);
                    executed -= self.resolve_epochs_for_global(
                        (min_clock, min_cpu),
                        touch,
                        cause,
                        &plan,
                        &shard_tracers,
                    );
                    self.adapt_tick();
                    self.flush_pending_below((min_clock, min_cpu + 1), &real);
                    self.exec_global_round(
                        min_cpu,
                        &shard_tracers,
                        &shard_bufs,
                        sys_buf.as_ref(),
                        &real,
                    );
                    executed += 1;
                    continue;
                }
                // Admit every local candidate below the ceiling whose key
                // precedes its bound. Global candidates above the minimum
                // simply wait — speculation may pass their keys and is
                // rolled back if their side effects demand it when they
                // serialize. Each admitted step carries two keys: `safe`,
                // the smallest earliest-possible-global key of any *other*
                // CPU (below it steps are provably final and run without a
                // journal — PR 7's conservative argument), and `bound`,
                // the speculative ceiling `min + w + 1` past which the
                // chain must stop. A clamped CPU (w = 1) gets
                // `bound == safe`: it never arms an epoch at all.
                let eg = EgMin::new(&cands);
                let mut steps: Vec<ShardStep> = Vec::with_capacity(cands.len());
                for (at, c) in cands.iter().enumerate() {
                    if c.global || (c.clock, c.cpu) >= ceiling {
                        continue;
                    }
                    let safe = eg.excluding(at).min(outside).min(ceiling);
                    let w = if adaptive {
                        self.eff_win(c.cpu)
                    } else {
                        window
                    };
                    let bound = if w > 1 {
                        safe.max((min_clock.saturating_add(w).saturating_add(1), 0).min(ceiling))
                    } else {
                        safe
                    };
                    if (c.clock, c.cpu) < bound {
                        steps.push(ShardStep {
                            cpu: c.cpu,
                            clock: c.clock,
                            bound,
                            safe,
                        });
                    }
                }
                steps.sort_unstable_by_key(|s| (s.clock, s.cpu));
                // Same budget math as the conservative path: take · cap
                // never exceeds the remaining budget (integer division),
                // so `executed` can reach `limit` but never overshoot it.
                // The serial-minimum step is always admitted (every other
                // CPU's bound exceeds its key), so `take >= 1`.
                let remaining = limit - executed;
                let take = (steps.len() as u64).min(remaining) as usize;
                steps.truncate(take);
                let cap = (remaining / take as u64).clamp(1, self.run_ahead_cap);
                executed += self.exec_local_round(
                    &steps,
                    cap,
                    &plan,
                    &shard_tracers,
                    &shard_bufs,
                    buffering,
                    true,
                );
                continue;
            }
            // --- Conservative (provable 1-cycle slack) admission ---
            // Only CPUs within one cycle of the minimum can join the
            // round; every runnable CPU beyond that window still bounds
            // run-ahead conservatively at its current key (it could go
            // global the moment it becomes schedulable).
            cands.clear();
            let mut outside = (u64::MAX, usize::MAX);
            for i in 0..self.hot_clock.len() {
                if self.hot_running[i] && self.programs[i].is_some() {
                    if self.hot_clock[i] <= min_clock + 1 {
                        cands.push(self.classify_step(i));
                    } else {
                        outside = outside.min((self.hot_clock[i], i));
                    }
                }
            }
            let mut safe = safe_set(&cands);
            // Admission truncation at the ceiling is a prefix cut and
            // never empties a non-empty set — the serial-min key is below
            // the horizon, checked above.
            if horizon.is_some() {
                safe.truncate(
                    safe.partition_point(|&(at, _)| (cands[at].clock, cands[at].cpu) < ceiling),
                );
            }
            if safe.is_empty() {
                // The serial pick itself is global: run exactly that one
                // step under the coordinator and re-plan. Pending keys are
                // all below a global step's key in conservative mode
                // (run-ahead never passes another CPU's earliest-possible-
                // global key), so they flush first.
                self.flush_pending_below((u64::MAX, usize::MAX), &real);
                self.exec_global_round(
                    min_cpu,
                    &shard_tracers,
                    &shard_bufs,
                    sys_buf.as_ref(),
                    &real,
                );
                executed += 1;
                continue;
            }
            // A key-ordered prefix of the safe set is still an exact
            // serial prefix — truncate to the remaining step budget, and
            // divide what's left of the budget into per-chain run-ahead
            // caps so a round can never overshoot `limit`.
            let remaining = limit - executed;
            let take = (safe.len() as u64).min(remaining) as usize;
            let cap = (remaining / take as u64).clamp(1, self.run_ahead_cap);
            let steps: Vec<ShardStep> = safe[..take]
                .iter()
                .map(|&(at, bound)| {
                    let b = bound.min(outside).min(ceiling);
                    ShardStep {
                        cpu: cands[at].cpu,
                        clock: cands[at].clock,
                        bound: b,
                        // `safe == bound`: every conservative step is
                        // provably final, so no chain ever arms an epoch.
                        safe: b,
                    }
                })
                .collect();
            executed += self.exec_local_round(
                &steps,
                cap,
                &plan,
                &shard_tracers,
                &shard_bufs,
                buffering,
                false,
            );
        }

        // All halted or horizon reached: no future step can precede any
        // pending or speculated key (chains were bounded by the ceiling),
        // so the tail of the run-ahead output is final. (A `limit` exit
        // resolved its epochs at the budget boundary above.)
        if done {
            for j in 0..self.nodes.len() {
                self.finalize_epoch(j);
            }
            self.flush_pending_below((u64::MAX, usize::MAX), &real);
        }
        debug_assert!(
            self.nodes.iter().all(|n| n.spec.is_none()),
            "open epoch across a sharded-run boundary"
        );
        // Restore the real tracer wiring (`set_tracer` re-fans the per-CPU
        // clones) and rebuild the scheduling heap for the serial engine.
        if buffering {
            self.set_tracer(real);
        }
        self.ready.clear();
        for i in 0..self.hot_clock.len() {
            if self.hot_running[i] && self.programs[i].is_some() {
                self.ready
                    .push(Reverse(Self::pack_entry(self.hot_clock[i], i)));
            }
        }
        executed
    }

    /// Releases pending run-ahead output whose `(clock, cpu)` key is
    /// strictly below `key`: step-log entries move into the real log and
    /// event blocks replay into the real tracer, in serial key order.
    /// Callers pass the current frontier (no future step's key can be
    /// smaller) or `(u64::MAX, usize::MAX)` to flush everything.
    fn flush_pending_below(&mut self, key: (u64, usize), real: &Tracer) {
        if !self.pending_log.is_empty() {
            let n = self.pending_log.partition_point(|e| (e.clock, e.cpu) < key);
            let released = self.pending_log.drain(..n);
            if let Some(log) = self.step_log.as_mut() {
                log.extend(released);
            }
        }
        if !self.pending_blocks.is_empty() {
            let n = self
                .pending_blocks
                .partition_point(|b| (b.0, b.1 as usize) < key);
            for (_, _, events) in self.pending_blocks.drain(..n) {
                replay_events(real, &events);
            }
        }
    }

    /// One serialized step under the coordinator. Every shard tracer's
    /// clock is aligned first — a global step can emit against any node
    /// (XIs, quiesce release) — and the step's buffered events are merged
    /// by emission ticket and replayed immediately: rounds execute in
    /// serial key order, so replay order is arrival order.
    fn exec_global_round(
        &mut self,
        i: usize,
        shard_tracers: &[Tracer],
        shard_bufs: &[Arc<Mutex<EventBuffer>>],
        sys_buf: Option<&Arc<Mutex<EventBuffer>>>,
        real: &Tracer,
    ) {
        if let Some(sys) = sys_buf {
            for t in shard_tracers {
                t.set_clock(self.hot_clock[i]);
            }
            self.exec_step(i);
            let mut events: Vec<SeqTracedEvent> = Vec::new();
            for b in shard_bufs {
                events.extend(b.lock().expect("event buffer poisoned").drain());
            }
            events.extend(sys.lock().expect("event buffer poisoned").drain());
            events.sort_unstable_by_key(|e| e.seq);
            replay_events(real, &events);
        } else {
            self.exec_step(i);
        }
    }

    /// Executes one round's safe set, returning how many steps ran
    /// (admitted steps plus in-shard run-ahead). The set arrives in serial
    /// `(clock, cpu)` order; grouping by shard preserves each shard's
    /// internal order, and admitted steps of different shards commute, so
    /// running shards concurrently on host threads cannot change any
    /// outcome. Inline execution and `thread::scope` drive the *same*
    /// shard-step function — thread count selects a schedule, never a code
    /// path. Step logs and event blocks are merged back in key order
    /// (stable, so a chain's equal-key zero-cycle entries keep their
    /// execution order), which *is* the round's serial execution order.
    #[allow(clippy::too_many_arguments)]
    fn exec_local_round(
        &mut self,
        steps: &[ShardStep],
        cap: u64,
        plan: &ShardPlan,
        shard_tracers: &[Tracer],
        shard_bufs: &[Arc<Mutex<EventBuffer>>],
        buffering: bool,
        spec: bool,
    ) -> u64 {
        let shard_count = plan.shard_count();
        let mut per_shard: Vec<Vec<ShardStep>> = vec![Vec::new(); shard_count];
        for &s in steps {
            per_shard[plan.shard_of(s.cpu)].push(s);
        }
        let involved = per_shard.iter().filter(|w| !w.is_empty()).count();
        let want_log = self.step_log.is_some();
        // Spawning scoped threads costs tens of microseconds per round;
        // only rounds with enough work to amortize that go parallel —
        // smaller ones run inline through the identical shard-step code,
        // so the cutoff affects host speed only, never results.
        let run_parallel =
            involved >= 2 && self.sim_threads > 1 && steps.len() >= self.par_round_min;
        let bases: Vec<usize> = (0..shard_count).map(|s| plan.range(s).start).collect();

        let shared = SharedMem::new(&mut self.mem);
        let node_chunks = split_mut(&mut self.nodes, plan.bounds());
        let core_chunks = split_mut(&mut self.cores, plan.bounds());
        let clock_chunks = split_mut(&mut self.hot_clock, plan.bounds());
        let running_chunks = split_mut(&mut self.hot_running, plan.bounds());
        let chunks: Vec<_> = node_chunks
            .into_iter()
            .zip(core_chunks)
            .zip(clock_chunks)
            .zip(running_chunks)
            .map(|(((n, c), cl), r)| (n, c, cl, r))
            .collect();
        let pages = &self.pages;
        let config = &self.config;
        let programs = &self.programs[..];
        let coalesce = self.coalesce;

        let results: Vec<ShardRunResult> = if run_parallel {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(involved);
                for (s, chunk) in chunks.into_iter().enumerate() {
                    let work = std::mem::take(&mut per_shard[s]);
                    if work.is_empty() {
                        continue;
                    }
                    let (nodes, cores, clocks, running) = chunk;
                    let base = bases[s];
                    let tracer = &shard_tracers[s];
                    let buf = shard_bufs.get(s);
                    handles.push(scope.spawn(move || {
                        run_shard_steps(
                            &work, cap, base, nodes, cores, clocks, running, shared, pages, config,
                            programs, coalesce, tracer, buf, want_log, spec,
                        )
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard thread panicked"))
                    .collect()
            })
        } else {
            let mut out = Vec::with_capacity(involved);
            for (s, chunk) in chunks.into_iter().enumerate() {
                let work = &per_shard[s];
                if work.is_empty() {
                    continue;
                }
                let (nodes, cores, clocks, running) = chunk;
                out.push(run_shard_steps(
                    work,
                    cap,
                    bases[s],
                    nodes,
                    cores,
                    clocks,
                    running,
                    shared,
                    pages,
                    config,
                    programs,
                    coalesce,
                    &shard_tracers[s],
                    shard_bufs.get(s),
                    want_log,
                    spec,
                ));
            }
            out
        };

        let mut total = 0u64;
        let mut chain_max = 0u64;
        let mut all_logs: Vec<StepLogEntry> = Vec::new();
        let mut all_blocks: Vec<(u64, u16, Vec<SeqTracedEvent>)> = Vec::new();
        for r in results {
            total += r.executed;
            chain_max = chain_max.max(r.chain_max);
            all_logs.extend(r.log);
            all_blocks.extend(r.blocks);
        }
        self.steps += total;
        self.sharded_local_steps += total;
        self.shard_rounds += 1;
        self.shard_round_max = self.shard_round_max.max(total);
        self.shard_chain_max = self.shard_chain_max.max(chain_max);
        // Run-ahead output is not final until the key frontier passes it
        // (a later round can execute smaller keys on other CPUs): merge the
        // round into the pending buffers, kept key-sorted. Stable sorts:
        // equal keys are one CPU's zero-cycle chain, already in execution
        // order within its shard's contribution and across rounds.
        if want_log {
            self.pending_log.extend(all_logs);
            self.pending_log.sort_by_key(|e| (e.clock, e.cpu));
        }
        if buffering {
            self.pending_blocks.extend(all_blocks);
            self.pending_blocks.sort_by_key(|b| (b.0, b.1));
        }
        total
    }

    /// Runs until every CPU halts.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_steps` instructions execute system-wide
    /// (guards against livelock in tests).
    pub fn run_until_halt(&mut self, max_steps: u64) {
        if self.sharded_active() {
            if self.run_sharded_upto(max_steps, None) >= max_steps {
                panic!("system did not halt within {max_steps} steps");
            }
            return;
        }
        for _ in 0..max_steps {
            if self.step_one().is_none() {
                return;
            }
        }
        panic!("system did not halt within {max_steps} steps");
    }

    /// Steps up to `limit` instructions (batched scheduling, see
    /// [`step_upto`](Self::step_upto)), returning how many executed —
    /// 0 means every CPU has halted.
    pub fn step_many(&mut self, limit: u64) -> u64 {
        if self.sharded_active() {
            return self.run_sharded_upto(limit, None);
        }
        let before = self.steps;
        if self.step_upto(limit).is_none() {
            return 0;
        }
        self.steps - before
    }

    /// Runs until every running CPU's clock reaches `horizon` (or all halt).
    pub fn run_for_cycles(&mut self, horizon: u64) {
        if self.sharded_active() {
            self.run_sharded_upto(u64::MAX, Some(horizon));
            return;
        }
        loop {
            match self.peek_next_clock() {
                Some(t) if t < horizon => {
                    if self.step_upto_bounded(u64::MAX, horizon).is_none() {
                        return;
                    }
                }
                _ => return,
            }
        }
    }

    /// Performs a store from the I/O subsystem: invalidates every cached
    /// copy of the line (aborting transactions whose footprint it hits —
    /// §II.A requires isolation against I/O too) and updates committed
    /// memory.
    pub fn io_store(&mut self, addr: Address, value: u64) {
        let line = addr.line();
        let (owner, sharers) = self.fabric.holders(line);
        for (cpu, kind) in owner
            .into_iter()
            .map(|c| (c, ztm_cache::XiKind::Exclusive))
            .chain(
                sharers
                    .into_iter()
                    .map(|c| (c, ztm_cache::XiKind::ReadOnly)),
            )
        {
            // I/O XIs carry no requester id and cannot be stiff-armed.
            let out = self.nodes[cpu.0].cache.handle_xi(Xi {
                kind,
                line,
                from: None,
            });
            debug_assert_eq!(out.response, XiResponse::Accept);
            self.fabric.apply_xi_result(cpu, line, kind, true);
            for ev in out.events {
                self.nodes[cpu.0].engine.note_footprint_event(ev);
            }
        }
        self.mem.store_u64(addr, value);
    }

    /// Aggregated system report.
    pub fn report(&self) -> SystemReport {
        let mut tx = TxStats::new();
        let mut stm = crate::report::StmCounts::default();
        for n in &self.nodes {
            tx.merge(n.engine.stats());
            stm.merge(&n.stm);
        }
        SystemReport {
            elapsed_cycles: self.cores.iter().map(|c| c.clock).max().unwrap_or(0),
            total_instructions: self.cores.iter().map(|c| c.instructions).sum(),
            steps: self.steps,
            stalls: self.nodes.iter().map(|n| n.stalls).sum(),
            tx,
            xi_counts: self.fabric.xi_counts(),
            coalesced_accesses: self.nodes.iter().map(|n| n.coalesced).sum(),
            stm,
            sharding: self.sharding_stats(),
        }
    }

    /// Sharded-driver schedule statistics, including the end-of-run
    /// adaptive-window summary (all-zero window fields when adaptation
    /// never engaged).
    fn sharding_stats(&self) -> crate::report::ShardingStats {
        let mut s = crate::report::ShardingStats {
            rounds: self.shard_rounds,
            local_steps: self.sharded_local_steps,
            round_steps_max: self.shard_round_max,
            chain_max: self.shard_chain_max,
            rollbacks: self.shard_rollbacks,
            replayed: self.shard_replayed,
            rollbacks_tx: self.shard_rb_tx,
            rollbacks_fabric: self.shard_rb_fabric,
            rollbacks_quiesce: self.shard_rb_quiesce,
            ..Default::default()
        };
        if self.adapt_active && !self.adapt_win.is_empty() {
            let mut min = u64::MAX;
            for i in 0..self.adapt_win.len() {
                let w = self.eff_win(i);
                min = min.min(w);
                s.window_max = s.window_max.max(w);
                s.window_sum += w;
                if self.adapt_touch[i] >= ADAPT_CLAMP_AT {
                    s.window_clamped += 1;
                }
            }
            s.window_min = min;
            s.window_cpus = self.adapt_win.len() as u64;
        }
        s
    }
}

/// Which other CPUs' speculative epochs a global step can observe or
/// invalidate. Over-approximating is always safe — it only forces an
/// unnecessary finalize-or-rollback; *under*-approximating would let a
/// global step's effects interleave wrongly with speculation, so every
/// unrecognized case in [`System::global_touch`] resolves to [`All`].
///
/// [`All`]: GlobalTouch::All
enum GlobalTouch {
    /// Only the stepping CPU's own node plus resources no speculating CPU
    /// can reach (exclusively-held lines, the coordinator's arena index):
    /// nothing to resolve.
    Confined,
    /// A bounded set: XI receivers and L3-eviction candidates of a fabric
    /// fetch, or holders of the lines a TDB store spans.
    Cpus(Vec<usize>),
    /// Potentially any CPU: OS interruptions, page-ins, quiesce, timers.
    All,
}

/// Why a resolution rolled an epoch back — the feedback signal the
/// adaptive windows consume and the breakdown
/// [`ShardingStats`](crate::ShardingStats) reports. Classified from the
/// *global step* that forced the cut, not from the victim.
#[derive(Debug, Clone, Copy)]
enum RollbackCause {
    /// Transaction-side serialization: abort processing and the TDB
    /// stores it performs, or a restricted instruction inside a
    /// transaction.
    Tx,
    /// A fabric-touching data access: the victim held (or could victimize
    /// lines for) an address the coordinator's step reached.
    Fabric,
    /// Everything that resolves *everyone*: timer ticks, quiesce and
    /// broadcast-stop escalations, OS interruptions, page-ins, debug
    /// modes — plus step-budget frontier resolutions.
    Quiesce,
}

/// One admitted round entry: CPU `cpu`'s step at `clock`, plus the key
/// `bound` below which the shard may keep running this CPU's own
/// provably-local steps (run-ahead) before the coordinator re-plans.
///
/// Keys strictly below `safe` — the smallest earliest-possible-global key
/// of any *other* CPU at planning time — are provably final (no future
/// global step can cut below them) and execute without journaling. At
/// `safe` the chain arms a speculative epoch and journals the rest of the
/// way to `bound`. Conservative rounds set `safe == bound`, so they never
/// open an epoch.
#[derive(Debug, Clone, Copy)]
struct ShardStep {
    cpu: usize,
    clock: u64,
    bound: (u64, usize),
    safe: (u64, usize),
}

/// Per-chain run-ahead ceiling: bounds a lone unconstrained CPU's chain so
/// event replay and halt/limit checks still happen at a reasonable cadence.
const RUN_AHEAD_CAP: u64 = 64;

/// What one shard's slice of a round reports back to the coordinator.
struct ShardRunResult {
    executed: u64,
    log: Vec<StepLogEntry>,
    /// One `(clock, cpu, events)` block per step that emitted anything —
    /// the coordinator merges blocks of all shards by `(clock, cpu)`, the
    /// round's serial execution order.
    blocks: Vec<(u64, u16, Vec<SeqTracedEvent>)>,
    /// Longest run-ahead chain in this slice, in steps.
    chain_max: u64,
}

/// Executes one shard's slice of a round: provably node-local steps over
/// the shard's own nodes and cores plus the shared committed-memory window.
/// After each admitted step the shard re-classifies the *same CPU's* next
/// step — classification reads only the CPU's own node plus read-only
/// shared structures, all of which the shard holds — and chains it into
/// the round while it stays local, its key stays strictly below the round
/// bound, and the chain stays within `cap` steps. Runs either inline on
/// the coordinator or on a scoped host thread — same code, same results.
#[allow(clippy::too_many_arguments)]
fn run_shard_steps(
    work: &[ShardStep],
    cap: u64,
    base: usize,
    nodes: &mut [Node],
    cores: &mut [CpuCore],
    hot_clock: &mut [u64],
    hot_running: &mut [bool],
    shared: SharedMem,
    pages: &PageTable,
    config: &SystemConfig,
    programs: &[Option<Arc<Program>>],
    coalesce: bool,
    tracer: &Tracer,
    buf: Option<&Arc<Mutex<EventBuffer>>>,
    want_log: bool,
    spec: bool,
) -> ShardRunResult {
    let mut res = ShardRunResult {
        executed: 0,
        log: Vec::new(),
        blocks: Vec::new(),
        chain_max: 0,
    };
    for &ShardStep {
        cpu,
        clock,
        bound,
        safe,
    } in work
    {
        let at = cpu - base;
        debug_assert_eq!(hot_clock[at], clock, "stale round plan");
        debug_assert!(
            spec || nodes[at].spec.is_none(),
            "undo journal armed outside a speculative round"
        );
        let prog = programs[cpu].as_ref().expect("program loaded");
        let mut clock = clock;
        let mut budget = cap;
        let mut chain = 0u64;
        loop {
            // Keys below `safe` are provably final and run journal-free;
            // the first key at or past it arms a speculative epoch (one
            // may already be open from an earlier round of the same call —
            // then every step journals, wherever it lies: an epoch's
            // replay must cover the full suffix from its snapshot).
            if (clock, cpu) >= safe && nodes[at].spec.is_none() {
                debug_assert!(spec, "speculative key admitted to a conservative round");
                arm_epoch(&mut nodes[at], &cores[at]);
            }
            tracer.set_clock(clock);
            let mut view = View {
                cpu,
                base,
                now: clock,
                tracer,
                nodes: &mut *nodes,
                fabric: None,
                mem: MemPort::Shared(shared),
                pages: PagePort::Check(pages),
                fabric_busy: None,
                config,
                coalesce,
                hit_slot: None,
            };
            let out = ztm_isa::step(&mut cores[at], prog, &mut view);
            debug_assert!(
                !out.broadcast_stop && out.event != StepEvent::Stalled,
                "a shard-local step can neither stall nor quiesce"
            );
            hot_clock[at] = cores[at].clock;
            hot_running[at] = cores[at].is_running();
            res.executed += 1;
            chain += 1;
            if let Some(ep) = nodes[at].spec.as_deref_mut() {
                ep.keys.push(clock);
            }
            if want_log {
                res.log.push(StepLogEntry {
                    clock,
                    cpu,
                    event: out.event,
                    cycles: out.cycles,
                });
            }
            if let Some(b) = buf {
                let events = b.lock().expect("event buffer poisoned").drain();
                if !events.is_empty() {
                    res.blocks.push((clock, cpu as u16, events));
                }
            }
            budget -= 1;
            let next_clock = cores[at].clock;
            if budget == 0 || !hot_running[at] || (next_clock, cpu) >= bound {
                break;
            }
            // Run ahead: chain this CPU's own next step into the round if
            // it provably stays node-local.
            let c = classify_step_at(
                cpu,
                next_clock,
                &nodes[at],
                &cores[at],
                prog,
                pages,
                SlotView::Shared(shared),
                config,
                coalesce,
            );
            if c.global {
                break;
            }
            clock = next_clock;
        }
        res.chain_max = res.chain_max.max(chain);
    }
    res
}

/// Read-only committed-arena slot lookup for the classifier: the
/// coordinator classifies against exclusive memory, a run-ahead shard
/// against its shared window — same answers either way.
#[derive(Clone, Copy)]
enum SlotView<'a> {
    Main(&'a MainMemory),
    Shared(SharedMem),
}

impl SlotView<'_> {
    fn has_slot(&self, line: LineAddr) -> bool {
        match self {
            SlotView::Main(m) => m.line_slot(line).is_some(),
            SlotView::Shared(s) => s.line_slot(line).is_some(),
        }
    }
}

/// Classifies one CPU's next instruction step without executing it.
///
/// A step is *local* when it provably touches only the CPU's own node
/// (core, private caches, engine, RNG stream) plus committed-arena
/// bytes of lines its cache already holds with sufficient MESI
/// permission — no fabric traffic, no XIs, no page-table mutation, no
/// abort processing, no arena allocation. Everything else is *global*
/// and executes serially under the coordinator.
///
/// Every input is either the CPU's own node state or a structure no
/// shard-local step mutates (the page table, the arena slot index, the
/// config), so shards can re-classify their own CPUs mid-round for
/// run-ahead and reach the same verdicts the coordinator would.
///
/// Conservative by design: classifying local as global only costs
/// parallelism, never correctness, and the shared-mode ports panic on
/// any admitted step that actually reaches a serialized resource.
#[allow(clippy::too_many_arguments)]
fn classify_step_at(
    cpu: usize,
    clock: u64,
    node: &Node,
    core: &CpuCore,
    prog: &Program,
    pages: &PageTable,
    slots: SlotView<'_>,
    config: &SystemConfig,
    coalesce: bool,
) -> Candidate {
    let global = Candidate {
        cpu,
        clock,
        global: true,
        zero: false,
    };
    let local = |zero: bool| Candidate {
        cpu,
        clock,
        global: false,
        zero,
    };
    // Anything that can interrupt, abort, or fire PER events must be
    // serialized: a due timer tick raises an async interruption, a
    // pending abort runs millicode abort processing (TDB stores,
    // possible broadcast-stop), PER tracing fires on every predicate,
    // and an armed transaction-diagnostic control can force aborts
    // from `check_instruction`.
    if let Some(t) = config.timer_interval {
        if clock - node.last_timer >= t {
            return global;
        }
    }
    if node.engine.pending_abort().is_some() || core.per.enabled || node.engine.tdc_active() {
        return global;
    }
    let in_tx = node.engine.in_tx();
    // Constrained transactions track their footprint against the §II.D
    // constraints and can raise violations mid-step.
    if in_tx && node.engine.constrained() {
        return global;
    }
    let d = prog.decoded(core.pc);
    // The instruction fetch: the i-cache walk is entirely node-local
    // (instruction lines sit outside the coherence protocol), so only
    // a non-resident text page — an OS page-in — can leave the node.
    if pages.check(Address::new(d.addr)).is_err() {
        return global;
    }
    // Transactionally illegal instruction classes abort in
    // `check_instruction`.
    if in_tx
        && matches!(
            d.class,
            InstrClass::RestrictedInTx | InstrClass::ArModifying | InstrClass::FprModifying
        )
    {
        return global;
    }
    let data = |want_excl: bool, class: AccessClass| {
        classify_data_at(
            cpu, clock, node, core, d, want_excl, class, pages, slots, config, coalesce,
        )
    };
    match d.op {
        // Pure register, branch, and timing ops never leave the core.
        Op::Lghi
        | Op::Lgr
        | Op::La
        | Op::Agr
        | Op::Sgr
        | Op::Aghi
        | Op::Ngr
        | Op::Xgr
        | Op::Msgr
        | Op::Sllg
        | Op::Srlg
        | Op::Ltgr
        | Op::Cgr
        | Op::Cghi
        | Op::Brc
        | Op::Cgij
        | Op::Brctg
        | Op::Br
        | Op::Etnd
        | Op::Ppa
        | Op::Rdclk
        | Op::Sar
        | Op::Ear
        | Op::Adbr
        | Op::Decimal
        | Op::Privileged
        | Op::Nop
        | Op::Delay
        | Op::Halt => local(false),
        // Zero-cycle retires: the CPU's *next* step shares this clock,
        // which tightens the safe-set bound (see `Candidate`).
        Op::RandMod | Op::StmNote => local(true),
        // Division by zero raises a program exception.
        Op::Dsgr => {
            if core.grs[d.r2 as usize] == 0 {
                global
            } else {
                local(false)
            }
        }
        Op::Lg => data(d.flags & FLAG_FOR_UPDATE != 0, AccessClass::Fetch),
        Op::Ltg | Op::Cg => data(false, AccessClass::Fetch),
        Op::Stg | Op::Stckf => data(true, AccessClass::Store),
        Op::Ntstg => {
            // Misalignment is a specification exception.
            if !effective_address_decoded(core, d).is_aligned(8) {
                return global;
            }
            data(true, AccessClass::Store)
        }
        Op::Csg => data(true, AccessClass::Store),
        // An outermost TBEGIN cannot fail here (constrained mode and
        // the diagnostic control are pre-checked above, and its RNG
        // draw comes from the node's own stream); a nested begin can
        // overflow the depth limit and abort.
        Op::Tbegin => {
            if in_tx {
                global
            } else {
                local(false)
            }
        }
        Op::Tbeginc => global,
        Op::Tend => classify_tend_at(cpu, clock, node, slots),
        Op::Tabort => global,
    }
}

/// Classifies the single data access of a load/store-class instruction:
/// local iff the line window would serve it or the full directory walk
/// provably ends in an L1/L2 hit with sufficient ownership (an L2 hit
/// only re-installs into the L1 — nothing leaves the node), the page
/// is resident, any speculative-prefetch dice roll provably misses,
/// and a write-through store has a committed-arena slot to land in.
#[allow(clippy::too_many_arguments)]
fn classify_data_at(
    cpu: usize,
    clock: u64,
    node: &Node,
    core: &CpuCore,
    d: &DecodedInstr,
    want_excl: bool,
    class: AccessClass,
    pages: &PageTable,
    slots: SlotView<'_>,
    config: &SystemConfig,
    coalesce: bool,
) -> Candidate {
    let global = Candidate {
        cpu,
        clock,
        global: true,
        zero: false,
    };
    let excl = class == AccessClass::Store || want_excl;
    let ea = effective_address_decoded(core, d);
    // Line-crossing accesses raise a specification exception.
    if !ea.fits_in_line(8) {
        return global;
    }
    let line = ea.line();
    let in_tx = node.engine.in_tx();
    // Mirror of the `View::prepare` fast path.
    let window_ok = coalesce
        && node.last_data.is_some_and(|w| {
            w.line == line
                && (w.excl || !excl)
                && w.gen == node.cache.generation()
                && w.page_epoch == pages.epoch()
                && (!in_tx
                    || node
                        .cache
                        .l1_tx_marks(line)
                        .is_some_and(|(read, dirty)| match class {
                            AccessClass::Fetch => read,
                            AccessClass::Store => dirty,
                        }))
        });
    if !window_ok {
        if pages.check(ea).is_err() {
            return global; // page fault → OS page-in
        }
        if node.cache.probe_local(line, excl).is_none() {
            return global; // L2 miss or ownership upgrade → fabric fetch
        }
    }
    // A transactional fetch rolls the speculative-prefetch dice; a
    // firing prefetch reaches the fabric. Peek the roll on a clone of
    // the node's RNG — the real step replays the identical draw from
    // the identical stream state, so a miss here is a miss there.
    if class == AccessClass::Fetch
        && in_tx
        && config.speculative_prefetch
        && config.prefetch_probability > 0.0
        && !node.engine.speculation_disabled()
    {
        let mut dice = node.rng.clone();
        if dice.gen_bool(config.prefetch_probability) {
            return global;
        }
    }
    // Non-transactional stores write through to committed memory,
    // which the shared window can only do into an existing arena slot
    // (allocating would race the shared index).
    if class == AccessClass::Store && !in_tx && !slots.has_slot(line) {
        return global;
    }
    Candidate {
        cpu,
        clock,
        global: false,
        zero: false,
    }
}

/// Classifies TEND: engine-only unless it commits the outermost level,
/// in which case the store-cache drain needs a committed-arena slot for
/// every transactional store line. (The PER TEND event and the
/// diagnostic-control forcing are already pre-checked by the caller.)
fn classify_tend_at(cpu: usize, clock: u64, node: &Node, slots: SlotView<'_>) -> Candidate {
    let slots_ok = node.engine.depth() != 1
        || node
            .cache
            .store_cache()
            .tx_lines()
            .into_iter()
            .all(|line| slots.has_slot(line));
    Candidate {
        cpu,
        clock,
        global: !slots_ok,
        zero: false,
    }
}

/// Replays buffered events into the real tracer, restoring each event's
/// emission clock and CPU attribution.
fn replay_events(real: &Tracer, events: &[SeqTracedEvent]) {
    for e in events {
        real.set_clock(e.clock);
        real.emit_at(e.cpu, || e.event);
    }
}

/// The committed-memory port of a [`View`]: exclusive access for the serial
/// scheduler and the sharded coordinator's global steps, or a [`SharedMem`]
/// window for shard-local steps (which may only touch preallocated arena
/// slots of MESI-exclusive lines — the classifier guarantees it).
enum MemPort<'a> {
    Excl(&'a mut MainMemory),
    Shared(SharedMem),
}

/// Message for every "a shard-local step needed a global resource" panic:
/// such a step should never have been admitted into a parallel round.
const CLASSIFIER_BUG: &str = "shard-local step reached a serialized resource (classifier bug)";

impl MemPort<'_> {
    fn line_slot(&self, line: LineAddr) -> Option<u32> {
        match self {
            MemPort::Excl(m) => m.line_slot(line),
            MemPort::Shared(s) => s.line_slot(line),
        }
    }

    fn load_u64(&self, addr: Address) -> u64 {
        match self {
            MemPort::Excl(m) => m.load_u64(addr),
            MemPort::Shared(s) => s.load_u64(addr),
        }
    }

    fn load_u64_at_slot(&self, slot: u32, offset: usize) -> u64 {
        match self {
            MemPort::Excl(m) => m.load_u64_at_slot(slot, offset),
            MemPort::Shared(s) => s.load_u64_at_slot(slot, offset),
        }
    }

    fn load_bytes(&self, addr: Address, buf: &mut [u8]) {
        match self {
            MemPort::Excl(m) => m.load_bytes(addr, buf),
            MemPort::Shared(s) => s.load_bytes(addr, buf),
        }
    }

    fn store_bytes(&mut self, addr: Address, bytes: &[u8]) {
        match self {
            MemPort::Excl(m) => m.store_bytes(addr, bytes),
            MemPort::Shared(s) => s.store_bytes(addr, bytes),
        }
    }

    fn apply_write(&mut self, w: &ztm_cache::DrainWrite) {
        match self {
            MemPort::Excl(m) => w.apply_to(m),
            MemPort::Shared(s) => w.apply_to_shared(s),
        }
    }

    /// The exclusive memory, for paths only a serialized step can reach
    /// (abort cleanup, TDB/diagnostic stores).
    fn excl(&mut self) -> &mut MainMemory {
        match self {
            MemPort::Excl(m) => m,
            MemPort::Shared(_) => panic!("{CLASSIFIER_BUG}"),
        }
    }
}

/// The page-table port: direct mutable access for serialized steps, or a
/// check-only shared view for shard-local steps (whose accesses the
/// classifier has already proven resident — `access` on a resident page is
/// side-effect-free, so the check-only port is exact).
enum PagePort<'a> {
    Direct(&'a mut PageTable),
    Check(&'a PageTable),
}

impl PagePort<'_> {
    fn epoch(&self) -> u64 {
        match self {
            PagePort::Direct(p) => p.epoch(),
            PagePort::Check(p) => p.epoch(),
        }
    }

    fn access(&mut self, addr: Address) -> Result<(), ztm_mem::MemFault> {
        match self {
            PagePort::Direct(p) => p.access(addr),
            // `PageTable::access` only differs from `check` on a fault
            // (it counts the fault); a shard-local step's accesses are
            // pre-proven resident, so a fault here is a classifier bug —
            // surfaced by the caller turning it into a page-in, which
            // panics through `direct()`.
            PagePort::Check(p) => p.check(addr),
        }
    }

    /// The mutable page table, for paths only a serialized step can reach
    /// (OS page-in, abort cleanup).
    fn direct(&mut self) -> &mut PageTable {
        match self {
            PagePort::Direct(p) => p,
            PagePort::Check(_) => panic!("{CLASSIFIER_BUG}"),
        }
    }
}

/// The per-step [`Machine`] view: disjoint borrows of the system's fields
/// excluding the stepped CPU's core (borrowed by the interpreter).
///
/// Serialized steps (the serial scheduler, the sharded coordinator's global
/// steps) build it with exclusive ports over the whole system and
/// `base == 0`. Shard-local steps build it over the shard's own node slice
/// (`base` = first CPU of the shard), a [`SharedMem`] window, a check-only
/// page table, and *no* fabric — touching a serialized resource from a
/// parallel round is a classifier bug and panics.
struct View<'a> {
    cpu: usize,
    /// First CPU index of the node slice below (0 for serialized steps).
    base: usize,
    /// The stepped CPU's local clock at instruction start (for fabric
    /// bandwidth queueing).
    now: u64,
    tracer: &'a Tracer,
    nodes: &'a mut [Node],
    fabric: Option<&'a mut Fabric>,
    mem: MemPort<'a>,
    pages: PagePort<'a>,
    fabric_busy: Option<&'a mut [u64]>,
    config: &'a SystemConfig,
    /// Same-line coalescing switch ([`System::set_coalescing`]).
    coalesce: bool,
    /// Committed-arena slot of the line the most recent [`View::prepare`]
    /// served via the line window. Lets the data read that follows skip
    /// the memory index probe; reset at the top of every `prepare`, so it
    /// never outlives its access.
    hit_slot: Option<u32>,
}

impl View<'_> {
    fn me(&mut self) -> &mut Node {
        &mut self.nodes[self.cpu - self.base]
    }

    fn node(&self) -> &Node {
        &self.nodes[self.cpu - self.base]
    }

    fn fabric(&mut self) -> &mut Fabric {
        self.fabric.as_mut().expect(CLASSIFIER_BUG)
    }

    /// Delivers the LRU XIs produced by an L3 associativity overflow: the
    /// victim line leaves every private cache under the overflowing L3,
    /// aborting transactions whose footprint it carried (§III.A/§III.C).
    fn deliver_lru_xis(&mut self, xis: Vec<(CpuId, LineAddr)>) {
        for (cpu, vline) in xis {
            let out = self.nodes[cpu.0].cache.handle_xi(Xi {
                kind: XiKind::Lru,
                line: vline,
                from: None,
            });
            debug_assert_eq!(
                out.response,
                XiResponse::Accept,
                "LRU XIs are not rejectable"
            );
            self.fabric().apply_xi_result(cpu, vline, XiKind::Lru, true);
            for ev in out.events {
                self.nodes[cpu.0].engine.note_footprint_event(ev);
            }
        }
    }

    /// Delivers a fetch plan's XIs to their targets in plan order: each
    /// target's response is reported to the fabric and the footprint
    /// consequences are forwarded to that target's engine. Returns `false`
    /// the moment a target stiff-arms — the remaining XIs are not delivered
    /// and the caller abandons the fetch (retry or silent drop).
    fn deliver_plan_xis(&mut self, line: LineAddr, xis: Vec<(CpuId, XiKind)>) -> bool {
        for (target, xikind) in xis {
            let out = self.nodes[target.0].cache.handle_xi(Xi {
                kind: xikind,
                line,
                from: Some(CpuId(self.cpu)),
            });
            let accepted = out.response == XiResponse::Accept;
            self.fabric()
                .apply_xi_result(target, line, xikind, accepted);
            for ev in out.events {
                self.nodes[target.0].engine.note_footprint_event(ev);
            }
            if !accepted {
                return false;
            }
        }
        true
    }

    /// Reserves a slot on this CPU's MCM fabric channel for one line
    /// transfer and returns the queueing delay incurred.
    fn occupy_fabric(&mut self) -> u64 {
        let fabric = self.fabric.as_deref().expect(CLASSIFIER_BUG);
        let busy = self.fabric_busy.as_deref_mut().expect(CLASSIFIER_BUG);
        let mcm = fabric
            .topology()
            .mcm_of(CpuId(self.cpu))
            .0
            .min(busy.len() - 1);
        let start = self.now.max(busy[mcm]);
        busy[mcm] = start + self.config.fabric_occupancy;
        let queued = start - self.now;
        self.tracer
            .emit_at(self.cpu as u16, || Event::FabricOccupy { queued });
        queued
    }

    /// Fetches `line` through the fabric. `Err(stall)` when an XI was
    /// stiff-armed and the access must retry.
    fn fetch_line(
        &mut self,
        line: LineAddr,
        excl: bool,
        class: AccessClass,
        tx: bool,
    ) -> Result<u64, u64> {
        let kind = if excl {
            FetchKind::Exclusive
        } else {
            FetchKind::Shared
        };
        let who = CpuId(self.cpu);
        let plan = self.fabric().plan_fetch(who, line, kind);
        if !self.deliver_plan_xis(line, plan.xis) {
            return Err(self.config.latency.xi_reject_retry);
        }
        let lru = self.fabric().grant(who, line, kind);
        self.deliver_lru_xis(lru);
        let base = {
            let fabric = self.fabric.as_deref().expect(CLASSIFIER_BUG);
            self.config
                .latency
                .fetch(fabric.topology(), who, plan.source)
        };
        let cycles = base + self.occupy_fabric();
        let state = if excl {
            CohState::Exclusive
        } else {
            CohState::ReadOnly
        };
        let inst = self.me().cache.install(line, state, class, tx);
        for l in inst.lost_lines {
            self.fabric().drop_holder(who, l);
        }
        for ev in inst.events {
            self.me().engine.note_footprint_event(ev);
        }
        Ok(cycles)
    }

    /// Speculative next-line prefetch; with the configured probability it
    /// represents a wrong-path load and over-marks the line tx-read
    /// (§III.C). Abandoned silently when anybody stiff-arms.
    fn speculative_prefetch(&mut self, line: LineAddr) {
        let next = LineAddr::new(line.index() + 1);
        if self.node().cache.state_of(next).is_some() {
            return;
        }
        let overmark = {
            let p = self.config.overmark_probability;
            self.me().rng.gen_bool(p)
        };
        let who = CpuId(self.cpu);
        let plan = self.fabric().plan_fetch(who, next, FetchKind::Shared);
        if !self.deliver_plan_xis(next, plan.xis) {
            return;
        }
        let lru = self.fabric().grant(who, next, FetchKind::Shared);
        self.deliver_lru_xis(lru);
        self.occupy_fabric(); // speculative transfers consume bandwidth too
        let inst = self
            .me()
            .cache
            .install(next, CohState::ReadOnly, AccessClass::Fetch, overmark);
        for l in inst.lost_lines {
            self.fabric().drop_holder(who, l);
        }
        for ev in inst.events {
            self.me().engine.note_footprint_event(ev);
        }
    }

    /// Common access preparation: faults, constrained footprint, ownership.
    /// `want_excl` requests exclusive ownership even for fetches (load with
    /// intent to update). `Err` carries an early [`AccessResult`].
    fn prepare(
        &mut self,
        addr: Address,
        len: u8,
        class: AccessClass,
        want_excl: bool,
    ) -> Result<u64, AccessResult> {
        let excl = class == AccessClass::Store || want_excl;
        if !addr.fits_in_line(len as u64) {
            return Err(AccessResult::Fault(ProgramException::Specification));
        }
        let line = addr.line();
        self.hit_slot = None;
        // Line-window coalescing: consecutive accesses to the same data line
        // (field-by-field struct reads, adjacent stack pushes, spin polls)
        // repeat the directory walk the previous access just completed. The
        // walk can be skipped when its verdict provably recurs:
        //
        // - the window's line ended the arming walk as the hot (MRU) slot of
        //   *both* private directories, and repeat lookups of the hot line
        //   re-stamp nothing (`SetAssoc`'s hot-slot invariant), so the
        //   elided walk is LRU-pure;
        // - no XI, transaction boundary, or store-cache drain intervened on
        //   this CPU since (`PrivateCache::generation`), and page residency
        //   is unchanged (`PageTable::epoch`) — same line means same 4K
        //   page, so the elided page check would succeed again;
        // - the window's established ownership covers this access
        //   (`w.excl || !excl`): an exclusive window serves stores and
        //   fetches, a shared one only fetches;
        // - inside a transaction, the line's L1 entry must already carry the
        //   tx mark this access class would set, so the elided marking
        //   transition and journal push are no-ops. The constrained-footprint
        //   noting and the speculative-prefetch dice roll are NOT elidable —
        //   they run here exactly as the full walk runs them.
        //
        // Only the `Access` trace event remains observable; emit it and skip
        // the walk. `ZTM_NO_COALESCE=1` (or `set_coalescing(false)`) forces
        // the full walk; `tests/coalesce.rs` pins both paths to each other
        // per-step. A window can only exist while coalescing is enabled
        // (arming is gated and `set_coalescing(false)` clears them), so the
        // window presence check doubles as the switch check.
        let at = self.cpu - self.base;
        if let Some(w) = self.nodes[at].last_data {
            let node = &mut self.nodes[at];
            let tx = node.engine.in_tx();
            let valid = w.line == line
                && (w.excl || !excl)
                && w.gen == node.cache.generation()
                && w.page_epoch == self.pages.epoch()
                && (!tx
                    || node
                        .cache
                        .l1_tx_marks(line)
                        .is_some_and(|(read, dirty)| match class {
                            AccessClass::Fetch => read,
                            AccessClass::Store => dirty,
                        }));
            if valid {
                node.cache.emit_repeat_access(line, excl);
                node.coalesced += 1;
                self.hit_slot = match w.slot {
                    Some(resolved) => resolved,
                    None => {
                        let resolved = self.mem.line_slot(line);
                        if let Some(win) = self.nodes[at].last_data.as_mut() {
                            win.slot = Some(resolved);
                        }
                        resolved
                    }
                };
                if tx {
                    if self.me().engine.note_data_access(addr, len as u64).is_err() {
                        self.me()
                            .engine
                            .set_pending(AbortCause::UnfilteredProgramException(
                                ProgramException::ConstraintViolation,
                            ));
                    }
                    // The full walk would roll the speculative-prefetch dice
                    // after resolving the access; the RNG stream (and any
                    // resulting prefetch) must be preserved exactly. The
                    // prefetch install can evict this very line without a
                    // generation bump (it is this CPU's own access path), so
                    // it drops the window.
                    let prefetch_p = self.config.prefetch_probability;
                    if class == AccessClass::Fetch
                        && self.config.speculative_prefetch
                        && prefetch_p > 0.0
                        && !self.me().engine.speculation_disabled()
                        && self.me().rng.gen_bool(prefetch_p)
                    {
                        self.speculative_prefetch(line);
                        self.me().last_data = None;
                    }
                }
                return Ok(self.config.latency.l1_hit);
            }
        }
        if self.pages.access(addr).is_err() {
            return Err(AccessResult::Fault(ProgramException::PageFault {
                address: addr.raw(),
            }));
        }
        let tx = self.me().engine.in_tx();
        if tx && self.me().engine.note_data_access(addr, len as u64).is_err() {
            self.me()
                .engine
                .set_pending(AbortCause::UnfilteredProgramException(
                    ProgramException::ConstraintViolation,
                ));
        }
        let (hit, out) = self.me().cache.access_local(line, class, excl, tx);
        let cycles = match hit {
            LocalHit::L1 => {
                debug_assert!(out.lost_lines.is_empty() && out.events.is_empty());
                self.config.latency.l1_hit
            }
            LocalHit::L2 => {
                // An L2 hit re-installs into the L1 only, which drops no L2
                // lines — `lost_lines` is empty here (the fabric unwrap is
                // the backstop proving it, shard-local steps included).
                let who = CpuId(self.cpu);
                for l in out.lost_lines {
                    self.fabric().drop_holder(who, l);
                }
                for ev in out.events {
                    self.me().engine.note_footprint_event(ev);
                }
                self.config.latency.l2_hit
            }
            LocalHit::Miss { .. } => match self.fetch_line(line, excl, class, tx) {
                Ok(c) => c,
                Err(stall) => return Err(AccessResult::Stall { cycles: stall }),
            },
        };
        let prefetch_p = self.config.prefetch_probability;
        if class == AccessClass::Fetch
            && tx
            && self.config.speculative_prefetch
            && prefetch_p > 0.0
            && !self.me().engine.speculation_disabled()
            && self.me().rng.gen_bool(prefetch_p)
        {
            self.speculative_prefetch(line);
        }
        // Arm the line window (see the fast path above), but only when
        // coalescing is enabled (the escape hatch must step the exact
        // pre-window path) and the line verifiably ended this walk as the
        // hot slot of both directories. Two walks end otherwise: an ownership upgrade that
        // found the line already L1-resident (the install early-returns
        // without re-stamping the L1), and a speculative prefetch that left
        // the *next* line hot — arming either would let a repeat elide
        // stamps the full walk applies. Transactional boundaries need no
        // disarm of their own: TBEGIN/TEND bump the cache generation, which
        // already invalidates any window armed across them.
        let window = if self.coalesce && self.node().cache.line_is_hot(line) {
            Some(LineWindow {
                line,
                excl,
                gen: self.node().cache.generation(),
                page_epoch: self.pages.epoch(),
                slot: None,
            })
        } else {
            None
        };
        self.me().last_data = window;
        Ok(cycles)
    }

    fn read_value(&self, addr: Address, len: u8) -> u64 {
        // Common shape: a full-width load with no buffered stores to overlay
        // (spinners and read-mostly code never populate the store cache).
        // One fixed-size memory read, no forwarding scan, no byte loop.
        if len == 8 && self.node().cache.store_cache().is_empty() {
            // The window (or its arming walk) already resolved the line's
            // committed-arena slot; slots never move, so the value is one
            // array read away — no memory index probe.
            if let Some(slot) = self.hit_slot {
                return self
                    .mem
                    .load_u64_at_slot(slot, addr.offset_in_line() as usize);
            }
            return self.mem.load_u64(addr);
        }
        let mut buf = [0u8; 8];
        self.mem.load_bytes(addr, &mut buf[..len as usize]);
        self.node().cache.forward(addr, &mut buf[..len as usize]);
        let mut v = 0u64;
        for b in &buf[..len as usize] {
            v = v << 8 | *b as u64;
        }
        v
    }

    /// Buffers store data (splitting at the 128-byte granule) and applies it
    /// to committed memory when non-transactional.
    fn write_value(&mut self, addr: Address, len: u8, value: u64, ntstg: bool) {
        let tx = self.me().engine.in_tx();
        let bytes = value.to_be_bytes();
        let data = &bytes[8 - len as usize..];
        let split = (HALF_LINE_SIZE - addr.offset_in_half_line()).min(len as u64) as usize;
        let mut overflow = false;
        let out1 = self
            .me()
            .cache
            .buffer_store(addr, &data[..split], tx, ntstg);
        overflow |= out1 == ztm_cache::StoreOutcome::Overflow;
        if split < len as usize {
            let out2 =
                self.me()
                    .cache
                    .buffer_store(addr.add(split as u64), &data[split..], tx, ntstg);
            overflow |= out2 == ztm_cache::StoreOutcome::Overflow;
        }
        if overflow {
            self.me()
                .engine
                .note_footprint_event(FootprintEvent::StoreOverflow {
                    line: Some(addr.line()),
                });
        }
        if !tx {
            // Under an open speculative epoch, capture the committed-arena
            // pre-image before the write-through: a rollback restores the
            // journal newest-first. (Only this CPU can reach these bytes —
            // the classifier proved exclusive ownership — so the pre-image
            // is stable until this epoch resolves.)
            let at = self.cpu - self.base;
            if self.nodes[at].spec.is_some() {
                let mut old = [0u8; 8];
                self.mem.load_bytes(addr, &mut old[..data.len()]);
                let ep = self.nodes[at].spec.as_deref_mut().expect("checked above");
                for (i, &b) in old[..data.len()].iter().enumerate() {
                    ep.mem_journal.push((addr.add(i as u64), b));
                }
            }
            self.mem.store_bytes(addr, data);
        }
    }
}

impl Machine for View<'_> {
    fn ifetch(&mut self, addr: Address) -> AccessResult {
        let line = addr.line();
        let page_epoch = self.pages.epoch();
        let node = &mut self.nodes[self.cpu - self.base];
        // Same-line fast path: straight-line code fetches the same 256-byte
        // text line many instructions in a row. If nothing installed into
        // this i-cache and no page residency changed since the previous
        // fetch of this line, the directory walk would return the identical
        // hit (0 cycles) — skip it. LRU order is unaffected: repeat `get`s
        // of the directory-wide MRU line do not re-stamp (see
        // `SetAssoc::hot`), and a successful page access has no side
        // effects, so the elided calls are pure.
        if node.last_ifetch == Some(line)
            && node.icache_installs == node.last_ifetch_installs
            && node.last_ifetch_page_epoch == page_epoch
        {
            return AccessResult::Done {
                value: 0,
                cycles: 0,
            };
        }
        if self.pages.access(addr).is_err() {
            node.last_ifetch = None;
            return AccessResult::Fault(ProgramException::PageFault {
                address: addr.raw(),
            });
        }
        let cycles = if node.icache.get(line).is_some() {
            0
        } else {
            node.icache.insert(line, (), |_, _| 0);
            node.icache_installs += 1;
            self.config.latency.l2_hit
        };
        node.last_ifetch = Some(line);
        node.last_ifetch_installs = node.icache_installs;
        node.last_ifetch_page_epoch = page_epoch;
        AccessResult::Done { value: 0, cycles }
    }

    fn load(&mut self, addr: Address, len: u8, for_update: bool) -> AccessResult {
        match self.prepare(addr, len, AccessClass::Fetch, for_update) {
            Ok(cycles) => AccessResult::Done {
                value: self.read_value(addr, len),
                cycles,
            },
            Err(early) => early,
        }
    }

    fn store(&mut self, addr: Address, len: u8, value: u64) -> AccessResult {
        match self.prepare(addr, len, AccessClass::Store, true) {
            Ok(cycles) => {
                self.write_value(addr, len, value, false);
                AccessResult::Done { value: 0, cycles }
            }
            Err(early) => early,
        }
    }

    fn store_nontx(&mut self, addr: Address, value: u64) -> AccessResult {
        if !addr.is_aligned(8) {
            return AccessResult::Fault(ProgramException::Specification);
        }
        match self.prepare(addr, 8, AccessClass::Store, true) {
            Ok(cycles) => {
                let in_tx = self.me().engine.in_tx();
                self.write_value(addr, 8, value, in_tx);
                AccessResult::Done { value: 0, cycles }
            }
            Err(early) => early,
        }
    }

    fn compare_and_swap(&mut self, addr: Address, expected: u64, new: u64) -> CasResult {
        match self.prepare(addr, 8, AccessClass::Store, true) {
            Ok(cycles) => {
                let old = self.read_value(addr, 8);
                let swapped = old == expected;
                if swapped {
                    self.write_value(addr, 8, new, false);
                }
                CasResult::Done {
                    swapped,
                    old,
                    // Interlocked update: the serialization penalty of CSG
                    // is what makes uncontended transactions ~30% cheaper
                    // than lock acquire/release (§IV).
                    cycles: cycles + 12,
                }
            }
            Err(AccessResult::Stall { cycles }) => CasResult::Stall { cycles },
            Err(AccessResult::Fault(pe)) => CasResult::Fault(pe),
            Err(AccessResult::Done { .. }) => unreachable!("prepare never returns Done"),
        }
    }

    fn tx_begin(
        &mut self,
        constrained: bool,
        params: TbeginParams,
        grs: &[u64; 16],
        ia: u64,
        next_ia: u64,
    ) -> u64 {
        let node = self.me();
        let rng = &mut node.rng;
        match node
            .engine
            .begin(params, constrained, grs, ia, next_ia, rng)
        {
            Ok(ztm_core::BeginOutcome::Outermost { cycles }) => {
                node.cache.begin_outermost_tx();
                cycles
            }
            Ok(ztm_core::BeginOutcome::Nested) => 2,
            Err(cause) => {
                node.engine.set_pending(cause);
                1
            }
        }
    }

    fn tx_end(&mut self) -> EndResult {
        let node = self.me();
        if node.engine.in_tx() && node.engine.tdc_forces_abort_at_tend() {
            node.engine.set_pending(AbortCause::Diagnostic);
            return EndResult::AbortPending;
        }
        match node.engine.tend() {
            TendOutcome::NotInTx => EndResult::NotInTx,
            TendOutcome::Inner => EndResult::Inner { cycles: 1 },
            TendOutcome::Commit { cycles } => {
                let writes = node.cache.commit_tx();
                // Under an open speculative epoch, journal the pre-image of
                // every byte the drain will overwrite (the drain only
                // touches exclusively-held lines, so the pre-images are
                // stable until this epoch resolves).
                let at = self.cpu - self.base;
                if self.nodes[at].spec.is_some() {
                    let mut addrs: Vec<Address> = Vec::new();
                    for w in &writes {
                        w.for_each_byte(|a| addrs.push(a));
                    }
                    let mut pre = Vec::with_capacity(addrs.len());
                    for &a in &addrs {
                        let mut b = [0u8; 1];
                        self.mem.load_bytes(a, &mut b);
                        pre.push((a, b[0]));
                    }
                    self.nodes[at]
                        .spec
                        .as_deref_mut()
                        .expect("checked above")
                        .mem_journal
                        .extend(pre);
                }
                for w in writes {
                    self.mem.apply_write(&w);
                }
                EndResult::Commit { cycles }
            }
        }
    }

    fn tx_abort_request(&mut self, code: u64) {
        self.me()
            .engine
            .set_pending(AbortCause::Tabort(code.max(256)));
    }

    fn tx_depth(&self) -> u64 {
        self.node().engine.depth() as u64
    }

    fn in_tx(&self) -> bool {
        self.node().engine.in_tx()
    }

    fn check_instruction(&mut self, class: ztm_core::InstrClass, ia: u64, len: u64) {
        let node = self.me();
        if let Err(cause) = node.engine.check_instruction(class, ia, len) {
            node.engine.set_pending(cause);
            return;
        }
        let rng = &mut node.rng;
        if let Some(cause) = node.engine.tdc_tick(rng) {
            node.engine.set_pending(cause);
        }
    }

    fn instruction_retired(&mut self) {
        self.me().cache.note_instruction_complete();
    }

    fn pending_abort(&self) -> bool {
        self.node().engine.pending_abort().is_some()
    }

    fn take_abort(&mut self, grs: &[u64; 16], atia: u64) -> AbortApply {
        let cause = self
            .node()
            .engine
            .pending_abort()
            .expect("take_abort without pending abort");
        let ntstg_writes = self.me().cache.abort_tx();
        for w in ntstg_writes {
            self.mem.apply_write(&w);
        }
        // Aborts store the TDB and may page — serialized-only resources;
        // the classifier never admits a step that can abort into a
        // parallel round.
        let node = &mut self.nodes[self.cpu - self.base];
        let out = node.engine.process_abort(cause, grs, atia, &mut node.rng);
        let prefix_area = node.prefix_area;
        finish_abort(
            out,
            self.mem.excl(),
            self.pages.direct(),
            &self.config.os,
            prefix_area,
        )
    }

    fn report_exception(
        &mut self,
        pe: ProgramException,
        instruction_fetch: bool,
    ) -> ExceptionDisposition {
        let node = self.me();
        if node.engine.in_tx() {
            let cause = node.engine.classify_exception(pe, instruction_fetch);
            node.engine.set_pending(cause);
            return ExceptionDisposition::PendingAbort;
        }
        match self.config.os.disposition(pe) {
            ztm_isa::OsDisposition::PageIn(page) => {
                self.pages.direct().page_in(page);
                ExceptionDisposition::Retry {
                    cycles: self.config.os.page_in_cost,
                }
            }
            ztm_isa::OsDisposition::Observe => ExceptionDisposition::Retry {
                cycles: self.config.os.observe_cost,
            },
            ztm_isa::OsDisposition::Terminate(msg) => ExceptionDisposition::Terminate(msg),
        }
    }

    fn ppa(&mut self, abort_count: u64) -> u64 {
        let node = self.me();
        let rng = &mut node.rng;
        node.engine.ppa_tx_assist(abort_count, rng)
    }

    fn stm_note(&mut self, kind: u8, value: u64) {
        use ztm_isa::stm_note as k;
        let cpu = self.cpu as u16;
        let node = &mut self.nodes[self.cpu - self.base];
        let ev = match kind {
            k::BEGIN => {
                node.stm.begins += 1;
                Event::StmTx {
                    phase: 0,
                    info: value,
                }
            }
            k::COMMIT => {
                node.stm.commits += 1;
                Event::StmTx {
                    phase: 1,
                    info: value,
                }
            }
            k::ABORT => {
                node.stm.aborts += 1;
                Event::StmTx {
                    phase: 2,
                    info: value,
                }
            }
            k::LOCK_ACQ => {
                node.stm.lock_acquires += 1;
                Event::StmLock {
                    acquired: true,
                    addr: value,
                }
            }
            k::LOCK_REL => Event::StmLock {
                acquired: false,
                addr: value,
            },
            k::VAL_PASS => Event::StmValidation {
                ok: true,
                info: value,
            },
            k::VAL_FAIL => {
                node.stm.validation_failures += 1;
                Event::StmValidation {
                    ok: false,
                    info: value,
                }
            }
            k::FALLBACK => {
                // The note marks the HTM→STM transition; the hardware abort
                // that forced it is the engine's most recent abort.
                let code = node.engine.last_abort_code();
                node.stm.fallbacks += 1;
                *node.stm.fallback_codes.entry(code).or_insert(0) += 1;
                Event::StmFallback {
                    attempt: value as u32,
                    code,
                }
            }
            _ => return,
        };
        self.tracer.emit_at(cpu, || ev);
    }

    fn rand(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            0
        } else {
            self.me().rng.gen_range(0..bound)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;
    use ztm_isa::{gr::*, Assembler, MemOperand};

    #[test]
    fn pack_entry_round_trips_up_to_the_48_bit_boundary() {
        let max_clock = (1u64 << 48) - 1;
        assert_eq!(System::unpack_entry(System::pack_entry(0, 0)), (0, 0));
        assert_eq!(
            System::unpack_entry(System::pack_entry(max_clock, 0xffff)),
            (max_clock, 0xffff)
        );
        // Ordering: smallest clock first, ties toward the lowest CPU.
        assert!(System::pack_entry(1, 0xffff) < System::pack_entry(2, 0));
        assert!(System::pack_entry(5, 3) < System::pack_entry(5, 4));
    }

    #[test]
    #[should_panic(expected = "48-bit heap key range")]
    fn pack_entry_rejects_an_overflowing_clock() {
        System::pack_entry(1 << 48, 0);
    }

    /// Each CPU transactionally increments a shared counter `n` times,
    /// retrying forever on abort. Total must be exactly `cpus * n`.
    fn tx_increment_program(var: u64, n: i64) -> Program {
        let mut a = Assembler::new(0);
        a.lghi(R6, n); // iterations
        a.lghi(R0, 0); // abort count for PPA
        a.label("loop");
        a.tbegin(TbeginParams::new());
        a.jnz("aborted");
        a.lg(R2, MemOperand::absolute(var));
        a.aghi(R2, 1);
        a.stg(R2, MemOperand::absolute(var));
        a.tend();
        a.lghi(R0, 0);
        a.brctg(R6, "loop");
        a.halt();
        a.label("aborted");
        a.aghi(R0, 1);
        a.ppa(R0);
        a.j("loop");
        a.assemble().unwrap()
    }

    /// The admission-window controller in isolation: multiplicative
    /// shrink to the floor, additive regrowth to the structural bound,
    /// clamp under sustained naming pressure, and sweep-decay release.
    #[test]
    fn adaptive_window_controller_transitions() {
        let mut sys = System::new(SystemConfig::with_cpus(2));
        sys.adapt_active = true;
        sys.adapt_max = 350;
        sys.adapt_win = vec![350; 2];
        sys.adapt_touch = vec![0; 2];
        // Runs enough ticks for exactly one decay/regrow sweep.
        fn sweep(sys: &mut System) {
            for _ in 0..ADAPT_SWEEP {
                sys.adapt_tick();
            }
        }

        // Multiplicative shrink halves per rollback, down to the floor
        // where rollbacks stop cutting real prefixes — never below.
        sys.adapt_shrink(0);
        assert_eq!(sys.eff_win(0), 350 / ADAPT_SHRINK_DIV);
        for _ in 0..10 {
            sys.adapt_shrink(0);
        }
        assert_eq!(sys.eff_win(0), ADAPT_FLOOR);
        assert_eq!(sys.eff_win(1), 350, "windows are per-CPU");

        // Additive growth per finalized-clean epoch, capped at the
        // structural latency bound.
        sys.adapt_grow(0);
        assert_eq!(sys.eff_win(0), ADAPT_FLOOR + ADAPT_GROW);
        for _ in 0..1000 {
            sys.adapt_grow(0);
        }
        assert_eq!(sys.eff_win(0), 350);

        // Sustained naming pressure clamps the CPU to the conservative
        // 1-cycle window without disturbing its stored width…
        for _ in 0..ADAPT_CLAMP_AT {
            sys.adapt_name(0);
        }
        assert_eq!(sys.eff_win(0), 1, "clamped CPU admits conservatively");
        assert_eq!(sys.adapt_win[0], 350, "the stored width survives a clamp");
        assert_eq!(sys.eff_win(1), 350, "the clamp is per-CPU");
        // …and the score saturates, so a clamp cannot outlive its cause
        // by more than a few sweeps.
        for _ in 0..10_000 {
            sys.adapt_name(0);
        }
        assert_eq!(sys.adapt_touch[0], ADAPT_SCORE_MAX);

        // Pressure halves per quiet sweep: the clamp holds while the
        // score sits at or above the threshold and releases as soon as
        // it decays below, restoring the full stored width at once.
        let mut sweeps = 0;
        while sys.adapt_touch[0] >= ADAPT_CLAMP_AT {
            assert_eq!(sys.eff_win(0), 1, "clamped at or above the threshold");
            sweep(&mut sys);
            sweeps += 1;
        }
        assert!(
            (1..=8).contains(&sweeps),
            "a clamp releases within a few quiet sweeps, not {sweeps}"
        );
        assert_eq!(sys.eff_win(0), 350, "release restores the stored width");

        // The sweep probe regrows an unclamped CPU one cycle at a time,
        // independent of whether it managed to finalize any epochs.
        sys.adapt_win[1] = ADAPT_FLOOR;
        sweep(&mut sys);
        assert_eq!(sys.eff_win(1), ADAPT_FLOOR + 1);

        // With adaptation off (fixed-window regime) the controller is
        // inert: rollbacks and finalizes leave the widths alone.
        sys.adapt_active = false;
        sys.adapt_shrink(1);
        sys.adapt_grow(0);
        assert_eq!(sys.adapt_win, vec![350, ADAPT_FLOOR + 1]);
    }

    #[test]
    fn transactional_atomicity_across_cpus() {
        let var = 0x10_000u64;
        let mut sys = System::new(SystemConfig::with_cpus(4));
        let prog = tx_increment_program(var, 50);
        sys.load_program_all(&prog);
        sys.run_until_halt(3_000_000);
        assert_eq!(
            sys.mem().load_u64(Address::new(var)),
            4 * 50,
            "no increment lost or duplicated despite conflicts"
        );
        let r = sys.report();
        assert_eq!(r.tx.commits, 4 * 50);
        // Contention is resolved by stiff-arming (stalls) and, rarely,
        // aborts; either way there must be evidence of conflicts.
        assert!(
            r.stalls + r.tx.aborts > 0,
            "contention must cause stalls or aborts"
        );
    }

    #[test]
    fn cas_lock_mutual_exclusion() {
        // Classic test-and-CAS spinlock protecting an increment.
        let lock = 0x20_000u64;
        let var = 0x20_100u64;
        let mut a = Assembler::new(0);
        a.lghi(R6, 30);
        a.label("loop");
        a.lghi(R3, 0);
        a.lghi(R4, 1);
        a.label("acquire");
        a.ltg(R1, MemOperand::absolute(lock));
        a.jnz("acquire"); // spin while held
        a.lgr(R5, R3);
        a.csg(R5, R4, MemOperand::absolute(lock));
        a.jnz("acquire");
        a.lg(R2, MemOperand::absolute(var));
        a.aghi(R2, 1);
        a.stg(R2, MemOperand::absolute(var));
        a.lghi(R7, 0);
        a.stg(R7, MemOperand::absolute(lock));
        a.brctg(R6, "loop");
        a.halt();
        let prog = a.assemble().unwrap();

        let mut sys = System::new(SystemConfig::with_cpus(3));
        sys.load_program_all(&prog);
        sys.run_until_halt(3_000_000);
        assert_eq!(sys.mem().load_u64(Address::new(var)), 3 * 30);
    }

    #[test]
    fn constrained_transactions_make_forward_progress() {
        // Adversarial: every CPU hammers the same two lines constrained.
        let var = 0x30_000u64;
        let mut a = Assembler::new(0);
        a.lghi(R6, 25);
        a.label("loop");
        a.tbeginc(ztm_core::GrSaveMask::ALL);
        a.lg(R2, MemOperand::absolute(var));
        a.aghi(R2, 1);
        a.stg(R2, MemOperand::absolute(var));
        a.tend();
        a.brctg(R6, "loop");
        a.halt();
        let prog = a.assemble().unwrap();

        let mut sys = System::new(SystemConfig::with_cpus(6));
        sys.load_program_all(&prog);
        sys.run_until_halt(8_000_000);
        assert_eq!(
            sys.mem().load_u64(Address::new(var)),
            6 * 25,
            "constrained transactions eventually succeed (§II.D)"
        );
    }

    #[test]
    fn read_sharing_causes_no_aborts() {
        let var = 0x40_000u64;
        let mut a = Assembler::new(0);
        a.lghi(R6, 100);
        a.label("loop");
        a.tbegin(TbeginParams::new());
        a.jnz("aborted");
        a.lg(R2, MemOperand::absolute(var));
        a.tend();
        a.brctg(R6, "loop");
        a.halt();
        a.label("aborted");
        a.j("loop");
        let prog = a.assemble().unwrap();

        let mut cfg = SystemConfig::with_cpus(8);
        cfg.speculative_prefetch = false; // pure read-sharing
        let mut sys = System::new(cfg);
        sys.load_program_all(&prog);
        sys.run_until_halt(3_000_000);
        let r = sys.report();
        assert_eq!(r.tx.commits, 8 * 100);
        assert_eq!(r.tx.aborts, 0, "read-read sharing never conflicts");
    }

    #[test]
    fn stiff_arm_rejects_appear_under_contention() {
        let var = 0x50_000u64;
        let mut sys = System::new(SystemConfig::with_cpus(8));
        let prog = tx_increment_program(var, 40);
        sys.load_program_all(&prog);
        sys.run_until_halt(8_000_000);
        let r = sys.report();
        assert!(r.stalls > 0, "XI rejects must stall requesters");
        assert_eq!(sys.mem().load_u64(Address::new(var)), 8 * 40);
    }

    #[test]
    fn timer_interruption_aborts_transactions() {
        let var = 0x60_000u64;
        let mut cfg = SystemConfig::with_cpus(1);
        cfg.timer_interval = Some(2_000);
        let mut sys = System::new(cfg);
        let prog = tx_increment_program(var, 200);
        sys.load_program_all(&prog);
        sys.run_until_halt(3_000_000);
        let r = sys.report();
        assert_eq!(sys.mem().load_u64(Address::new(var)), 200);
        assert!(
            r.tx.aborts_by_code.contains_key(&2),
            "some aborts from async interruptions: {:?}",
            r.tx.aborts_by_code
        );
    }

    #[test]
    fn broadcast_stop_quiesces_and_resynchronizes_clocks() {
        // An adversarial constrained kernel: half the CPUs update the two
        // lines in one order, half in the other — cross-holding deadlocks
        // force RejectHang aborts, escalating to broadcast-stop.
        let var = 0xE0_000u64;
        let build = |first: u64, second: u64| {
            let mut a = Assembler::new(0);
            a.lghi(R6, 30);
            a.label("loop");
            a.tbeginc(ztm_core::GrSaveMask::ALL);
            a.lg(R2, MemOperand::absolute(first));
            a.aghi(R2, 1);
            a.stg(R2, MemOperand::absolute(first));
            a.lg(R3, MemOperand::absolute(second));
            a.aghi(R3, 1);
            a.stg(R3, MemOperand::absolute(second));
            a.tend();
            a.brctg(R6, "loop");
            a.halt();
            a.assemble().unwrap()
        };
        let fwd = build(var, var + 256);
        let rev = build(var + 256, var);
        let mut cfg = SystemConfig::with_cpus(10);
        // Make the ladder escalate quickly.
        cfg.engine.retry_ladder.broadcast_stop_after = 2;
        let mut sys = System::new(cfg);
        for i in 0..10 {
            sys.load_program(i, if i % 2 == 0 { &fwd } else { &rev });
        }
        sys.run_until_halt(80_000_000);
        assert_eq!(sys.mem().load_u64(Address::new(var)), 10 * 30);
        assert_eq!(sys.mem().load_u64(Address::new(var + 256)), 10 * 30);
        let r = sys.report();
        assert!(
            r.tx.broadcast_stops > 0,
            "the last-resort quiesce must have fired"
        );
    }

    #[test]
    fn run_for_cycles_stops_at_the_horizon() {
        let var = 0xD0_000u64;
        let mut sys = System::new(SystemConfig::with_cpus(2));
        let prog = tx_increment_program(var, 1_000_000); // effectively endless
        sys.load_program_all(&prog);
        sys.run_for_cycles(5_000);
        let r = sys.report();
        assert!(r.elapsed_cycles >= 5_000);
        assert!(r.elapsed_cycles < 20_000, "stops near the horizon");
        assert!(sys.any_running());
        // Resuming continues cleanly.
        sys.run_for_cycles(10_000);
        assert!(sys.report().elapsed_cycles >= 10_000);
    }

    #[test]
    fn io_store_aborts_conflicting_transaction() {
        // §II.A: "the transaction cannot observe changes made by other CPUs
        // or the I/O subsystem" — an I/O store to a tx-read line aborts the
        // transaction, and the target cannot stiff-arm the channel.
        let var = 0xC0_000u64;
        let mut a = Assembler::new(0);
        a.tbegin(TbeginParams::new());
        a.jnz("aborted");
        a.lg(R2, MemOperand::absolute(var));
        a.label("spin");
        a.lg(R3, MemOperand::absolute(var));
        a.cghi(R3, 0);
        a.jz("spin");
        a.tend();
        a.halt();
        a.label("aborted");
        a.lghi(R9, 1);
        a.halt();
        let p = a.assemble().unwrap();
        let mut cfg = SystemConfig::with_cpus(1);
        cfg.speculative_prefetch = false;
        let mut sys = System::new(cfg);
        sys.load_program(0, &p);
        for _ in 0..8 {
            sys.step_one();
        }
        sys.io_store(Address::new(var), 0xD1A0);
        sys.run_until_halt(100_000);
        assert_eq!(sys.core(0).gr(R9), 1, "transaction aborted by I/O");
        assert_eq!(sys.mem().load_u64(Address::new(var)), 0xD1A0);
        // The abort is a plain fetch conflict (code 9) with no CPU id.
        assert_eq!(sys.tx_stats(0).aborts_by_code.get(&9), Some(&1));
    }

    #[test]
    fn io_store_to_uncached_line_is_plain() {
        let mut sys = System::new(SystemConfig::with_cpus(2));
        sys.io_store(Address::new(0x123450), 7);
        assert_eq!(sys.mem().load_u64(Address::new(0x123450)), 7);
        assert_eq!(sys.report().tx.aborts, 0);
    }

    #[test]
    fn fabric_bandwidth_queueing_slows_parallel_misses() {
        // Two CPUs streaming disjoint misses: with a huge per-transfer
        // occupancy the shared channel serializes them.
        let prog = |base: u64| {
            let mut a = Assembler::new(0);
            a.lghi(R6, 50);
            a.lghi(R5, base as i64);
            a.label("stream");
            a.lg(R1, MemOperand::based(R5, 0));
            a.aghi(R5, 256);
            a.brctg(R6, "stream");
            a.halt();
            a.assemble().unwrap()
        };
        let run = |occupancy: u64| {
            let mut cfg = SystemConfig::with_cpus(2);
            cfg.fabric_occupancy = occupancy;
            let mut sys = System::new(cfg);
            sys.load_program(0, &prog(0x100_0000));
            sys.load_program(1, &prog(0x200_0000));
            sys.run_until_halt(100_000);
            sys.report().elapsed_cycles
        };
        let free = run(0);
        let contended = run(2_000);
        // 100 transfers × 2000 cycles of channel time ≈ 200k cycles lower
        // bound when serialized.
        assert!(
            contended > free + 100_000,
            "queueing must dominate: {free} vs {contended}"
        );
    }

    #[test]
    fn tracing_records_disassembled_steps() {
        let mut a = Assembler::new(0);
        a.lghi(R1, 5);
        a.tbegin(TbeginParams::new());
        a.jnz("out");
        a.tend();
        a.label("out");
        a.halt();
        let p = a.assemble().unwrap();
        let mut sys = System::new(SystemConfig::with_cpus(2));
        sys.load_program_all(&p);
        sys.set_trace(0, true); // only CPU 0
        sys.run_until_halt(1_000);
        let records: Vec<_> = sys.trace().collect();
        assert!(records.iter().all(|r| r.cpu == 0));
        assert!(records.iter().any(|r| r.text.starts_with("TBEGIN")));
        assert!(records
            .iter()
            .any(|r| matches!(r.event, StepEvent::Committed)));
        let listing = sys.trace_listing();
        assert!(listing.contains("LGHI    r1,5"));
    }

    #[test]
    fn event_tracer_captures_a_contended_run() {
        let var = 0x88_000u64;
        let (tracer, recorder) = Tracer::recording(1 << 16);
        let mut sys = System::new(SystemConfig::with_cpus(4));
        sys.set_tracer(tracer);
        let prog = tx_increment_program(var, 20);
        sys.load_program_all(&prog);
        sys.run_until_halt(3_000_000);

        let rec = recorder.lock().unwrap();
        assert_eq!(rec.dropped(), 0, "ring must be large enough for the run");
        let m = rec.metrics();
        let report = sys.report();
        assert_eq!(m.tx_commits, report.tx.commits);
        assert_eq!(m.tx_aborts, report.tx.aborts);
        assert_eq!(
            m.xi_issued.iter().sum::<u64>(),
            report.xi_counts.iter().sum::<u64>()
        );
        assert!(m.accesses.iter().sum::<u64>() > 0 && m.store_new > 0);
        // The recorded stream must satisfy every trace invariant.
        let events = rec.snapshot();
        if let Err(violations) = ztm_trace::check_invariants(&events) {
            panic!("invariant violations: {violations:#?}");
        }
    }

    #[test]
    fn l3_capacity_eviction_aborts_transactions() {
        // Shrink the shared L3 to 4 lines. CPU 0 opens a transaction over
        // one line and spins; CPU 1 (same chip) streams through enough
        // lines to evict CPU 0's footprint from the L3 — the resulting LRU
        // XI must abort CPU 0 (§III.A "LRU XIs" as an abort cause).
        let txline = 0xA0_000u64;
        let mut a0 = Assembler::new(0);
        a0.tbegin(TbeginParams::new());
        a0.jnz("aborted");
        a0.lg(R2, MemOperand::absolute(txline));
        a0.label("spin");
        a0.lg(R3, MemOperand::absolute(txline));
        a0.cghi(R3, 0);
        a0.jz("spin");
        a0.tend();
        a0.halt();
        a0.label("aborted");
        a0.lghi(R9, 1);
        a0.halt();
        let p0 = a0.assemble().unwrap();

        let mut a1 = Assembler::new(0x1000);
        a1.delay(2_000);
        a1.lghi(R6, 32);
        a1.lghi(R5, 0xB0_000);
        a1.label("stream");
        a1.lg(R1, MemOperand::based(R5, 0));
        a1.aghi(R5, 256);
        a1.brctg(R6, "stream");
        a1.halt();
        let p1 = a1.assemble().unwrap();

        let mut cfg = SystemConfig::with_cpus(2);
        cfg.l3_geometry = Some((1, 4));
        cfg.speculative_prefetch = false;
        let mut sys = System::new(cfg);
        sys.load_program(0, &p0);
        sys.load_program(1, &p1);
        sys.run_until_halt(1_000_000);
        assert_eq!(sys.core(0).gr(R9), 1, "transaction aborted by LRU XI");
        assert!(sys.tx_stats(0).aborts >= 1);
    }

    #[test]
    fn full_zec12_topology_smoke() {
        // All 144 cores of the real machine, hammering a small pool.
        let var = 0x90_000u64;
        let mut cfg = SystemConfig::with_cpus(1);
        cfg.topology = ztm_cache::Topology::zec12(144);
        let mut sys = System::new(cfg);
        let prog = tx_increment_program(var, 5);
        sys.load_program_all(&prog);
        sys.run_until_halt(80_000_000);
        assert_eq!(sys.mem().load_u64(Address::new(var)), 144 * 5);
    }

    #[test]
    fn non_tx_store_conflicts_with_tx_reader() {
        // Strong atomicity (§II.A): CPU 1's plain store aborts CPU 0's
        // transaction that read the line.
        let var = 0x70_000u64;
        // CPU 0: long transaction reading var then spinning on a flag.
        let mut a0 = Assembler::new(0);
        a0.tbegin(TbeginParams::new());
        a0.jnz("aborted");
        a0.lg(R2, MemOperand::absolute(var));
        a0.label("wait"); // poll a flag inside the tx until aborted
        a0.lg(R3, MemOperand::absolute(var + 8));
        a0.cghi(R3, 0);
        a0.jz("wait");
        a0.tend();
        a0.halt();
        a0.label("aborted");
        a0.lghi(R9, 1);
        a0.halt();
        let p0 = a0.assemble().unwrap();
        // CPU 1: wait a bit, then store to var (plain store).
        let mut a1 = Assembler::new(0x1000);
        a1.lghi(R6, 50);
        a1.label("delay");
        a1.brctg(R6, "delay");
        a1.lghi(R1, 99);
        a1.stg(R1, MemOperand::absolute(var));
        a1.halt();
        let p1 = a1.assemble().unwrap();

        let mut cfg = SystemConfig::with_cpus(2);
        cfg.speculative_prefetch = false;
        let mut sys = System::new(cfg);
        sys.load_program(0, &p0);
        sys.load_program(1, &p1);
        sys.run_until_halt(1_000_000);
        assert_eq!(sys.core(0).gr(R9), 1, "reader transaction aborted");
        assert_eq!(sys.mem().load_u64(Address::new(var)), 99);
        let r = sys.report();
        assert!(r.tx.aborts >= 1);
    }
}
