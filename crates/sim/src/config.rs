//! System-level configuration.

use ztm_cache::{CacheGeometry, LatencyModel, Topology};
use ztm_core::TxEngineConfig;
use ztm_isa::OsModel;

/// Configuration for a [`crate::System`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Core/chip/MCM arrangement.
    pub topology: Topology,
    /// Per-CPU cache geometry and transactional-tracking knobs.
    pub geometry: CacheGeometry,
    /// Cycle cost model.
    pub latency: LatencyModel,
    /// Per-CPU transaction engine configuration (diagnostic control,
    /// retry ladder, millicode costs).
    pub engine: TxEngineConfig,
    /// OS model (interruption costs and dispositions).
    pub os: OsModel,
    /// Base RNG seed; each CPU derives its own stream from it.
    pub seed: u64,
    /// Model speculative fetching: transactional load misses may prefetch
    /// the next line, occasionally marking it tx-read (over-marking from
    /// wrong-path loads, §III.C). The millicode retry ladder disables this
    /// per-CPU for struggling constrained transactions (§III.E/§IV).
    pub speculative_prefetch: bool,
    /// Probability that a transactional load miss issues a next-line
    /// prefetch.
    pub prefetch_probability: f64,
    /// Probability that such a prefetch was a wrong-path speculative load
    /// and over-marks the line tx-read.
    pub overmark_probability: f64,
    /// Override of the per-chip L3 geometry `(sets, ways)`; `None` uses the
    /// zEC12's 48 MB 12-way. Tests shrink it to exercise L3 LRU XIs.
    pub l3_geometry: Option<(usize, usize)>,
    /// Cycles one cache-line transfer occupies its MCM's fabric channel.
    /// Finite transfer bandwidth is what makes wasted transfers from
    /// aborted transactions slow the whole system (§IV, Fig 5c discussion).
    pub fabric_occupancy: u64,
    /// Raise an asynchronous (timer) interruption on each CPU every this
    /// many cycles; aborts any running transaction (§II.A).
    pub timer_interval: Option<u64>,
}

impl SystemConfig {
    /// A zEC12-flavored system with `cpus` cores and the paper's testbed
    /// MCM granularity (Fig 5(b) saturates at the 24-CPU MCM node).
    pub fn with_cpus(cpus: usize) -> Self {
        SystemConfig {
            topology: Topology::new(cpus, 6, 4),
            geometry: CacheGeometry::zec12(),
            latency: LatencyModel::zec12(),
            engine: TxEngineConfig::default(),
            os: OsModel::default(),
            seed: 0x5EC1_2BEE,
            speculative_prefetch: true,
            prefetch_probability: 0.25,
            overmark_probability: 0.10,
            l3_geometry: None,
            fabric_occupancy: 8,
            timer_interval: None,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::with_cpus(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_mcm_is_24_cpus() {
        let c = SystemConfig::with_cpus(48);
        assert_eq!(c.topology.cores_per_mcm(), 24);
        assert!(c.speculative_prefetch);
    }

    #[test]
    fn builder_seed() {
        let c = SystemConfig::with_cpus(2).seed(7);
        assert_eq!(c.seed, 7);
    }
}
