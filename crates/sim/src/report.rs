//! Aggregated system statistics.

use std::collections::BTreeMap;
use ztm_core::TxStats;

/// Software-TM (TL2) statistics, accumulated from the `STMNOTE` markers the
/// emitted STM programs execute (see `ztm_stm`). All zero for workloads that
/// never run the software path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StmCounts {
    /// STM transaction attempts begun (including retries).
    pub begins: u64,
    /// STM transactions committed.
    pub commits: u64,
    /// STM-level aborts: stripe-acquire or read-validation failures that
    /// rolled back and retried.
    pub aborts: u64,
    /// TL2 read-set validations that failed (a subset of `aborts` causes).
    pub validation_failures: u64,
    /// Stripe write-locks acquired at commit.
    pub lock_acquires: u64,
    /// HTM→STM fallback transitions (hybrid mode only).
    pub fallbacks: u64,
    /// Abort code of the final hardware attempt at each fallback
    /// transition, keyed by the engine's abort code (e.g. 8 = store
    /// footprint overflow, ≥256 = TABORT).
    pub fallback_codes: BTreeMap<u16, u64>,
}

impl StmCounts {
    /// Accumulates another CPU's counters into this one.
    pub fn merge(&mut self, other: &StmCounts) {
        self.begins += other.begins;
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.validation_failures += other.validation_failures;
        self.lock_acquires += other.lock_acquires;
        self.fallbacks += other.fallbacks;
        for (code, n) in &other.fallback_codes {
            *self.fallback_codes.entry(*code).or_insert(0) += n;
        }
    }
}

/// Sharded-driver round statistics (all zero on serial runs). These are
/// *host-side* measurements of how the run was scheduled: simulated
/// outcomes stay byte-identical for any thread count, but rounds, chains,
/// and rollbacks depend on the round schedule itself, so differential
/// tests zero this field before comparing whole reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardingStats {
    /// Parallel (shard-local) rounds dispatched.
    pub rounds: u64,
    /// Steps executed inside those rounds (net of rollbacks).
    pub local_steps: u64,
    /// Largest single round, in shard-local steps.
    pub round_steps_max: u64,
    /// Longest single run-ahead chain, in steps.
    pub chain_max: u64,
    /// Speculative epochs rolled back past a global step's key.
    pub rollbacks: u64,
    /// Steps re-executed by rollback replays.
    pub replayed: u64,
    /// Rollbacks caused by transaction-side global steps: abort processing
    /// and the TDB stores it performs (the `GlobalTouch` tx-confined
    /// naming).
    pub rollbacks_tx: u64,
    /// Rollbacks caused by fabric-touching data accesses: XI receivers and
    /// L3-eviction candidates of a coordinator fetch.
    pub rollbacks_fabric: u64,
    /// Rollbacks from everything that resolves *everyone*: timer ticks,
    /// quiesce/broadcast-stop escalations, OS interruptions and page-ins,
    /// plus step-budget frontier resolutions at `step_many` boundaries.
    pub rollbacks_quiesce: u64,
    /// Smallest per-CPU adaptive admission window at the end of the run,
    /// in cycles (zero when adaptation never engaged).
    pub window_min: u64,
    /// Largest per-CPU adaptive admission window at the end of the run.
    pub window_max: u64,
    /// Sum of the per-CPU adaptive windows (for [`mean_window`]).
    ///
    /// [`mean_window`]: Self::mean_window
    pub window_sum: u64,
    /// CPUs carrying an adaptive window (zero when adaptation never
    /// engaged; the denominator of [`mean_window`](Self::mean_window)).
    pub window_cpus: u64,
    /// CPUs held at the conservative window by `GlobalTouch` naming
    /// pressure at the end of the run (lock-line holders, XI magnets).
    pub window_clamped: u64,
}

impl ShardingStats {
    /// Mean shard-local steps per round — the coordinator-amortization
    /// figure the epoch windows exist to raise. Zero when no round ran.
    pub fn mean_round_steps(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.local_steps as f64 / self.rounds as f64
        }
    }

    /// Mean end-of-run adaptive window across the CPUs that carried one.
    /// Zero when adaptation never engaged.
    pub fn mean_window(&self) -> f64 {
        if self.window_cpus == 0 {
            0.0
        } else {
            self.window_sum as f64 / self.window_cpus as f64
        }
    }

    /// Accumulates another run's counters into this one (maxima stay
    /// maxima, counts add, window extrema widen) — for multi-run benchmark
    /// timing summaries.
    pub fn merge(&mut self, other: &ShardingStats) {
        self.rounds += other.rounds;
        self.local_steps += other.local_steps;
        self.round_steps_max = self.round_steps_max.max(other.round_steps_max);
        self.chain_max = self.chain_max.max(other.chain_max);
        self.rollbacks += other.rollbacks;
        self.replayed += other.replayed;
        self.rollbacks_tx += other.rollbacks_tx;
        self.rollbacks_fabric += other.rollbacks_fabric;
        self.rollbacks_quiesce += other.rollbacks_quiesce;
        if other.window_cpus > 0 {
            self.window_min = if self.window_cpus == 0 {
                other.window_min
            } else {
                self.window_min.min(other.window_min)
            };
            self.window_max = self.window_max.max(other.window_max);
            self.window_sum += other.window_sum;
            self.window_cpus += other.window_cpus;
        }
        self.window_clamped += other.window_clamped;
    }
}

/// A snapshot of system-wide counters, produced by
/// [`crate::System::report`].
#[derive(Debug, Clone, Default)]
pub struct SystemReport {
    /// Maximum per-CPU clock — the elapsed virtual time of the run.
    pub elapsed_cycles: u64,
    /// Instructions completed across all CPUs.
    pub total_instructions: u64,
    /// Simulator steps taken (instructions + stalls + aborts).
    pub steps: u64,
    /// XI-stall retries across all CPUs (stiff-arming at work, §III.C).
    pub stalls: u64,
    /// Merged transactional statistics.
    pub tx: TxStats,
    /// XIs sent, by kind: `[exclusive, demote, read-only, lru]`.
    pub xi_counts: [u64; 4],
    /// Data accesses served by the line-window coalescing fast path without
    /// a directory walk (zero under `ZTM_NO_COALESCE=1`). A host-speed
    /// statistic: coalescing changes no simulated outcome.
    pub coalesced_accesses: u64,
    /// Merged software-TM statistics (all zero unless an STM or hybrid
    /// sync mode ran).
    pub stm: StmCounts,
    /// Sharded-driver round statistics (all zero on serial runs; host-side
    /// schedule measurements, not simulated outcomes).
    pub sharding: ShardingStats,
}

impl SystemReport {
    /// System-wide abort rate (see [`TxStats::abort_rate`]).
    pub fn abort_rate(&self) -> f64 {
        self.tx.abort_rate()
    }

    /// Instructions per elapsed cycle. With the pipeline window engaged
    /// (`ZTM_ISSUE_WIDTH` > 1) this is a *measured* output of the issue
    /// model, not a configured constant; above 1.0 it demonstrates
    /// same-cycle co-issue. Note it aggregates across CPUs against the
    /// single max clock, so on multi-CPU runs it is `cpus ×` the per-core
    /// rate. Zero when nothing has run.
    pub fn ipc(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.total_instructions as f64 / self.elapsed_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let r = SystemReport::default();
        assert_eq!(r.elapsed_cycles, 0);
        assert_eq!(r.abort_rate(), 0.0);
    }
}
