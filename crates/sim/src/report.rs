//! Aggregated system statistics.

use ztm_core::TxStats;

/// A snapshot of system-wide counters, produced by
/// [`crate::System::report`].
#[derive(Debug, Clone, Default)]
pub struct SystemReport {
    /// Maximum per-CPU clock — the elapsed virtual time of the run.
    pub elapsed_cycles: u64,
    /// Instructions completed across all CPUs.
    pub total_instructions: u64,
    /// Simulator steps taken (instructions + stalls + aborts).
    pub steps: u64,
    /// XI-stall retries across all CPUs (stiff-arming at work, §III.C).
    pub stalls: u64,
    /// Merged transactional statistics.
    pub tx: TxStats,
    /// XIs sent, by kind: `[exclusive, demote, read-only, lru]`.
    pub xi_counts: [u64; 4],
    /// Data accesses served by the line-window coalescing fast path without
    /// a directory walk (zero under `ZTM_NO_COALESCE=1`). A host-speed
    /// statistic: coalescing changes no simulated outcome.
    pub coalesced_accesses: u64,
}

impl SystemReport {
    /// System-wide abort rate (see [`TxStats::abort_rate`]).
    pub fn abort_rate(&self) -> f64 {
        self.tx.abort_rate()
    }

    /// Instructions per elapsed cycle. With the pipeline window engaged
    /// (`ZTM_ISSUE_WIDTH` > 1) this is a *measured* output of the issue
    /// model, not a configured constant; above 1.0 it demonstrates
    /// same-cycle co-issue. Note it aggregates across CPUs against the
    /// single max clock, so on multi-CPU runs it is `cpus ×` the per-core
    /// rate. Zero when nothing has run.
    pub fn ipc(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.total_instructions as f64 / self.elapsed_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let r = SystemReport::default();
        assert_eq!(r.elapsed_cycles, 0);
        assert_eq!(r.abort_rate(), 0.0);
    }
}
