//! Shard planning and round scheduling for the host-parallel simulator.
//!
//! The sharded engine ([`crate::System::set_sim_threads`]) partitions the
//! simulated SMP at a coherence boundary of the zEC12 topology — per book
//! (MCM) when the machine has more than one, per chip otherwise — and
//! advances *provably node-local* instruction steps of different shards
//! concurrently on host threads. Everything that crosses the boundary (a
//! fabric fetch, an XI broadcast, a quiesce, an abort) is executed serially
//! by the coordinator, so the committed event stream and both trace digests
//! are byte-identical to the single-threaded scheduler for any
//! `ZTM_SIM_THREADS` value.
//!
//! This module holds the pure pieces: the shard plan, the conservative
//! safe-set rule that decides which steps may share a round, and the slice
//! splitter that hands each shard disjoint `&mut` views of the per-CPU
//! state. The classifier and the round driver live next to the private
//! `System` internals in `system.rs`.

use std::ops::Range;
use ztm_cache::Topology;

/// Contiguous CPU ranges, one per shard, partitioning `0..cpus` at a
/// coherence boundary of the topology.
#[derive(Debug, Clone)]
pub(crate) struct ShardPlan {
    /// Cumulative end index of each shard (`bounds.last() == cpus`).
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// Plans shards along book (MCM) boundaries, or chip boundaries when the
    /// machine is a single book. CPUs are numbered chip-major by
    /// [`Topology`], so every shard is one contiguous index range.
    pub(crate) fn new(topology: &Topology) -> ShardPlan {
        let cpus = topology.cpus();
        let stride = if topology.mcm_count() > 1 {
            topology.cores_per_mcm()
        } else {
            topology.cores_per_chip()
        };
        let mut bounds = Vec::new();
        let mut at = 0;
        while at < cpus {
            at = (at + stride).min(cpus);
            bounds.push(at);
        }
        if bounds.is_empty() {
            bounds.push(0);
        }
        ShardPlan { bounds }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.bounds.len()
    }

    /// The CPU index range of shard `s`.
    pub(crate) fn range(&self, s: usize) -> Range<usize> {
        let start = if s == 0 { 0 } else { self.bounds[s - 1] };
        start..self.bounds[s]
    }

    /// Which shard owns `cpu`.
    pub(crate) fn shard_of(&self, cpu: usize) -> usize {
        self.bounds.partition_point(|&b| b <= cpu)
    }

    /// The cumulative bounds, for [`split_mut`].
    pub(crate) fn bounds(&self) -> &[usize] {
        &self.bounds
    }
}

/// Splits one mutable slice into per-shard disjoint chunks at the plan's
/// cumulative `bounds`. The chunks can then move into scoped threads.
pub(crate) fn split_mut<'a, T>(mut rest: &'a mut [T], bounds: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(bounds.len());
    let mut off = 0;
    for &b in bounds {
        let (chunk, r) = rest.split_at_mut(b - off);
        out.push(chunk);
        rest = r;
        off = b;
    }
    out
}

/// One runnable CPU's classified next step, as seen by the round scheduler.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pub cpu: usize,
    /// The CPU's local clock (the step's scheduling key is `(clock, cpu)`).
    pub clock: u64,
    /// The step may leave its node (fabric, XIs, aborts, page table, RNG
    /// surprises) — it must run serially under the coordinator.
    pub global: bool,
    /// The step is zero-cycle-capable (`RANDMOD`/`STMNOTE` retire in 0
    /// cycles), so the CPU's *next* step can share the same clock.
    pub zero: bool,
}

impl Candidate {
    /// The earliest `(clock, cpu)` key at which this CPU could execute a
    /// *global* step: its current key if the classified step is itself
    /// global or zero-cycle, one cycle later otherwise (every non-zero step
    /// consumes at least one cycle before the CPU reaches its next
    /// instruction).
    fn earliest_global(&self) -> (u64, usize) {
        if self.global || self.zero {
            (self.clock, self.cpu)
        } else {
            (self.clock + 1, self.cpu)
        }
    }
}

/// The two smallest earliest-possible-global keys of a candidate set, so
/// the per-candidate binding constraint — min over *other* candidates —
/// falls out without an O(n²) pass: every candidate's constraint is the
/// smallest key unless that key is its own, in which case it is the second.
pub(crate) struct EgMin {
    /// Smallest earliest-global key and the candidate index holding it.
    best: Option<((u64, usize), usize)>,
    second: Option<(u64, usize)>,
}

/// "No constraint": no other candidate can ever go global.
pub(crate) const UNBOUNDED: (u64, usize) = (u64::MAX, usize::MAX);

impl EgMin {
    pub(crate) fn new(cands: &[Candidate]) -> EgMin {
        let mut best: Option<((u64, usize), usize)> = None;
        let mut second: Option<(u64, usize)> = None;
        for (at, c) in cands.iter().enumerate() {
            let eg = c.earliest_global();
            match best {
                Some((b, _)) if eg >= b => {
                    if second.is_none_or(|s| eg < s) {
                        second = Some(eg);
                    }
                }
                _ => {
                    if let Some((b, _)) = best {
                        second = Some(b);
                    }
                    best = Some((eg, at));
                }
            }
        }
        EgMin { best, second }
    }

    /// The smallest earliest-possible-global key among candidates other
    /// than index `at` ([`UNBOUNDED`] when there is none).
    pub(crate) fn excluding(&self, at: usize) -> (u64, usize) {
        match self.best {
            Some((_, bat)) if bat == at => self.second,
            Some((b, _)) => Some(b),
            None => None,
        }
        .unwrap_or(UNBOUNDED)
    }
}

/// Computes the round's *safe set*: the local steps that provably execute
/// before any other CPU can next influence them, in serial `(clock, cpu)`
/// order. Each admitted entry is `(index into cands, bound)` where `bound`
/// is the smallest earliest-possible-global key among all *other*
/// candidates — the admitted CPU may **run ahead** inside the round,
/// executing its own consecutive provably-local steps while their keys stay
/// strictly below the bound (`(u64::MAX, usize::MAX)` when unconstrained).
///
/// A local step of CPU `i` is admitted iff its key `(clock_i, i)` precedes
/// its bound. The serial scheduler picks the lexicographically smallest key
/// each time, so:
///
/// * the serial-minimum step, when local, is always admitted (every other
///   candidate's earliest-global key is at or after its own key, and ties
///   break on CPU index exactly like the serial pick);
/// * when the serial-minimum step is global the set is provably empty, and
///   the caller runs that one step under the coordinator;
/// * admitted steps — including run-ahead continuations under the bound —
///   touch only their own node plus committed-arena bytes of
///   MESI-exclusive lines, so they commute — executing them inside one
///   round (in any host order) reproduces the serial schedule exactly;
/// * round keys stay ordered across rounds: CPU `i`'s post-round keys are
///   at least its own earliest-global key, which every other CPU's
///   executed keys stayed strictly below, so concatenating rounds (each
///   internally key-sorted, ties broken by within-CPU execution order)
///   yields the exact serial sequence.
///
/// Callers must include in `cands` every runnable CPU whose clock is within
/// one cycle of the minimum; CPUs further out cannot constrain or join the
/// set (their earliest-global key exceeds every admissible candidate key).
pub(crate) fn safe_set(cands: &[Candidate]) -> Vec<(usize, (u64, usize))> {
    // The binding constraint for candidate i is min over j != i of
    // earliest_global(j): track the two smallest to exclude self.
    let eg = EgMin::new(cands);
    let mut out: Vec<(usize, (u64, usize))> = cands
        .iter()
        .enumerate()
        .filter_map(|(at, c)| {
            if c.global {
                return None;
            }
            let bound = eg.excluding(at);
            ((c.clock, c.cpu) < bound).then_some((at, bound))
        })
        .collect();
    out.sort_by_key(|&(at, _)| (cands[at].clock, cands[at].cpu));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(cpu: usize, clock: u64, global: bool, zero: bool) -> Candidate {
        Candidate {
            cpu,
            clock,
            global,
            zero,
        }
    }

    #[test]
    fn plan_partitions_zec12_per_book() {
        let t = Topology::zec12(144);
        let p = ShardPlan::new(&t);
        assert_eq!(p.shard_count(), 4, "four books");
        assert_eq!(p.range(0), 0..36);
        assert_eq!(p.range(3), 108..144);
        assert_eq!(p.shard_of(0), 0);
        assert_eq!(p.shard_of(35), 0);
        assert_eq!(p.shard_of(36), 1);
        assert_eq!(p.shard_of(143), 3);
    }

    #[test]
    fn plan_falls_back_to_chips_on_one_book() {
        // 8 CPUs, 6 per chip, 4 chips per MCM: one book, two chips.
        let t = Topology::new(8, 6, 4);
        let p = ShardPlan::new(&t);
        assert_eq!(p.shard_count(), 2);
        assert_eq!(p.range(0), 0..6);
        assert_eq!(p.range(1), 6..8);
    }

    #[test]
    fn split_mut_hands_out_disjoint_chunks() {
        let mut v: Vec<u32> = (0..10).collect();
        let chunks = split_mut(&mut v, &[3, 7, 10]);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], &[0, 1, 2]);
        assert_eq!(chunks[1], &[3, 4, 5, 6]);
        assert_eq!(chunks[2], &[7, 8, 9]);
    }

    /// Admitted candidate indices, in serial key order.
    fn idx(cands: &[Candidate]) -> Vec<usize> {
        safe_set(cands).into_iter().map(|(at, _)| at).collect()
    }

    #[test]
    fn serial_min_local_is_always_admitted() {
        let s = idx(&[cand(0, 10, false, false), cand(1, 10, false, false)]);
        // CPU 0 is the serial pick; CPU 1's key (10,1) is not before CPU 0's
        // earliest-global (11,0)? It is — (10,1) < (11,0) — so both run.
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn serial_min_global_empties_the_set() {
        let s = idx(&[cand(0, 10, true, false), cand(1, 50, false, false)]);
        assert!(s.is_empty(), "a later local must wait for the global step");
    }

    #[test]
    fn distant_local_is_not_admitted_past_a_near_one() {
        // CPU 0 at clock 10 could go global at 11; CPU 1 at 50 must wait.
        let s = idx(&[cand(0, 10, false, false), cand(1, 50, false, false)]);
        assert_eq!(s, vec![0]);
    }

    #[test]
    fn zero_cycle_step_blocks_higher_cpus_at_the_same_clock() {
        // CPU 0's RANDMOD retires at clock 10 and its *next* step may be a
        // global at clock 10 — CPU 1 at (10,1) is after (10,0), so only the
        // zero-cycle step itself runs.
        let s = idx(&[cand(0, 10, false, true), cand(1, 10, false, false)]);
        assert_eq!(s, vec![0]);
        // A lower-indexed CPU at the same clock still precedes it.
        let s = idx(&[cand(1, 10, false, true), cand(0, 10, false, false)]);
        assert_eq!(s, vec![1, 0], "(10,0) precedes (10,1): both admitted");
    }

    #[test]
    fn result_is_in_serial_key_order() {
        let s = idx(&[
            cand(7, 11, false, false),
            cand(2, 10, false, false),
            cand(5, 10, false, false),
        ]);
        // (10,2), (10,5) admitted; (11,7) is not before eg(2)=(11,2).
        assert_eq!(s, vec![1, 2]);
    }

    #[test]
    fn lone_candidate_runs_unconstrained() {
        assert_eq!(idx(&[cand(3, 99, false, false)]), vec![0]);
        assert!(safe_set(&[cand(3, 99, true, false)]).is_empty());
    }

    #[test]
    fn bounds_cap_run_ahead_at_the_others_earliest_global() {
        // CPUs 0 and 1 both at clock 10: each may run ahead only up to the
        // other's earliest-global key.
        let s = safe_set(&[cand(0, 10, false, false), cand(1, 10, false, false)]);
        assert_eq!(s, vec![(0, (11, 1)), (1, (11, 0))]);
        // A lone candidate is unconstrained.
        let s = safe_set(&[cand(3, 99, false, false)]);
        assert_eq!(s, vec![(0, (u64::MAX, usize::MAX))]);
        // A zero-cycle candidate bounds the other at its *current* key.
        let s = safe_set(&[cand(0, 10, false, true), cand(1, 9, false, false)]);
        assert_eq!(s, vec![(1, (10, 0)), (0, (10, 1))]);
    }
}
