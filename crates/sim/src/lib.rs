//! The multi-CPU discrete-event system simulator for the ztm workspace.
//!
//! [`System`] assembles the full machine of the paper: per CPU an
//! architectural core ([`ztm_isa::CpuCore`]), a private L1/L2 cache unit with
//! transactional footprint tracking ([`ztm_cache::PrivateCache`]) and a
//! transaction engine ([`ztm_core::TxEngine`]); globally the committed
//! memory image, the page table, and the coherence fabric issuing
//! cross-interrogates between CPUs.
//!
//! Simulation is single-threaded and deterministic (seeded RNG streams per
//! CPU): the scheduler always steps the runnable CPU with the smallest local
//! clock, and XIs are delivered synchronously at instruction boundaries —
//! the paper's "stall completion while XIs are pending" rule (§III.C).
//! Determinism makes every contention experiment exactly reproducible.
//!
//! The simulator also implements the millicode *broadcast-stop* quiesce
//! (§III.E): when a struggling constrained transaction escalates to the last
//! rung of the retry ladder, all other CPUs are held while it retries, which
//! guarantees eventual success.

mod config;
mod report;
mod system;

pub use config::SystemConfig;
pub use report::{StmCounts, SystemReport};
pub use system::{System, TraceRecord};
