//! The multi-CPU discrete-event system simulator for the ztm workspace.
//!
//! [`System`] assembles the full machine of the paper: per CPU an
//! architectural core ([`ztm_isa::CpuCore`]), a private L1/L2 cache unit with
//! transactional footprint tracking ([`ztm_cache::PrivateCache`]) and a
//! transaction engine ([`ztm_core::TxEngine`]); globally the committed
//! memory image, the page table, and the coherence fabric issuing
//! cross-interrogates between CPUs.
//!
//! Simulation is single-threaded and deterministic (seeded RNG streams per
//! CPU): the scheduler always steps the runnable CPU with the smallest local
//! clock, and XIs are delivered synchronously at instruction boundaries —
//! the paper's "stall completion while XIs are pending" rule (§III.C).
//! Determinism makes every contention experiment exactly reproducible.
//!
//! The simulator also implements the millicode *broadcast-stop* quiesce
//! (§III.E): when a struggling constrained transaction escalates to the last
//! rung of the retry ladder, all other CPUs are held while it retries, which
//! guarantees eventual success.

mod config;
mod report;
mod shard;
mod system;

pub use config::SystemConfig;
pub use report::{ShardingStats, StmCounts, SystemReport};
pub use system::{StepLogEntry, System, TraceRecord};

/// Reads a `ZTM_*` boolean switch. Per the workspace convention only the
/// value `"1"` engages a switch — `ZTM_FOO=0` and `ZTM_FOO=` must mean off,
/// so stray shell exports cannot flip behavior by accident. Anything else
/// (`"true"`, `"yes"`, `"0 "`, …) is a configuration error worth failing
/// loudly on, naming the bad token — silently reading those as *off* would
/// contradict what the user plainly asked for.
///
/// # Panics
///
/// Panics when the variable is set to something other than `"1"`, `"0"`,
/// or the empty string.
pub fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Err(_) => false,
        Ok(v) => match v.as_str() {
            "1" => true,
            "0" | "" => false,
            _ => panic!("{name}: expected \"1\", \"0\", or empty, got {v:?}"),
        },
    }
}

/// Reads a `ZTM_*` default-*on* boolean switch (e.g. `ZTM_SHARD_ADAPT`):
/// only the value `"0"` disengages it — absent, empty, and `"1"` all mean
/// on, mirroring [`env_flag`]'s strictness in the other direction so stray
/// exports still fail loudly instead of silently flipping behavior.
///
/// # Panics
///
/// Panics when the variable is set to something other than `"1"`, `"0"`,
/// or the empty string.
pub fn env_flag_on(name: &str) -> bool {
    match std::env::var(name) {
        Err(_) => true,
        Ok(v) => match v.as_str() {
            "0" => false,
            "1" | "" => true,
            _ => panic!("{name}: expected \"1\", \"0\", or empty, got {v:?}"),
        },
    }
}

/// Reads a `ZTM_*` positive-integer knob. Absent or empty → `None` (the
/// default engages); a valid positive integer engages it; anything else is a
/// configuration error worth failing loudly on, naming the bad token.
///
/// # Panics
///
/// Panics when the variable is set to something other than a positive
/// integer.
pub fn env_usize(name: &str) -> Option<usize> {
    let v = std::env::var(name).ok()?;
    if v.trim().is_empty() {
        return None;
    }
    match v.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => panic!("{name}: expected a positive integer, got {v:?}"),
    }
}
