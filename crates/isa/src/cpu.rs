//! The CPU interpreter: executes one instruction per [`step`] against a
//! [`Machine`].

use crate::asm::Program;
use crate::decoded::{DecodedInstr, Op, FLAG_FOR_UPDATE, FLAG_OPERAND_REG, NO_REG};
use crate::instr::{Instr, MemOperand, RegOrImm};
use crate::machine::{AccessResult, CasResult, EndResult, ExceptionDisposition, Machine};
use crate::reg::{CpuCore, CpuState, HaltReason, Reg};
use ztm_core::ProgramException;
use ztm_mem::Address;

/// What happened during one [`step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// An instruction completed normally.
    Executed,
    /// A memory access stalled (stiff-armed XI); the instruction will retry.
    Stalled,
    /// The outermost TEND committed a transaction.
    Committed,
    /// A transaction aborted (millicode ran; execution resumed at the abort
    /// handler or the TBEGINC).
    Aborted,
    /// The CPU is halted (no work performed).
    Halted,
}

/// Result of one [`step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Cycles consumed.
    pub cycles: u64,
    /// What happened.
    pub event: StepEvent,
    /// The constrained-retry ladder requests quiescing all other CPUs for
    /// the next retry (§III.E last resort).
    pub broadcast_stop: bool,
}

impl StepOutcome {
    fn executed(cycles: u64) -> Self {
        StepOutcome {
            cycles,
            event: StepEvent::Executed,
            broadcast_stop: false,
        }
    }
}

/// Store-hit-load-miss merge scan (§III.C) — the predecode pass computes
/// this once per program; the legacy walk re-derives it per execution.
fn store_follows(prog: &Program, idx: usize, mem: &MemOperand) -> bool {
    crate::decoded::store_follows(prog.raw_instrs(), idx, mem)
}

fn effective_address(core: &CpuCore, mem: &MemOperand) -> Address {
    let mut a = mem.disp as u64;
    if let Some(b) = mem.base {
        a = a.wrapping_add(core.gr(b));
    }
    if let Some(x) = mem.index {
        a = a.wrapping_add(core.gr(x));
    }
    Address::new(a)
}

/// Effective address from a decoded record: displacement in `imm`, register
/// slots resolved — same base-then-index wrapping order as the legacy path.
#[inline]
pub fn effective_address_decoded(core: &CpuCore, d: &DecodedInstr) -> Address {
    let mut a = d.imm as u64;
    if d.base != NO_REG {
        a = a.wrapping_add(core.grs[d.base as usize]);
    }
    if d.index != NO_REG {
        a = a.wrapping_add(core.grs[d.index as usize]);
    }
    Address::new(a)
}

fn take_abort(core: &mut CpuCore, prog: &Program, m: &mut impl Machine, atia: u64) -> StepOutcome {
    let apply = m.take_abort(&core.grs, atia);
    for (r, v) in &apply.gr_restores {
        core.grs[*r] = *v;
    }
    if let Some(msg) = apply.terminated {
        core.state = CpuState::Halted(HaltReason::Terminated(msg));
        return StepOutcome {
            cycles: apply.cycles,
            event: StepEvent::Aborted,
            broadcast_stop: false,
        };
    }
    core.cc = apply.cc;
    core.pc = prog
        .index_of_addr(apply.resume_ia)
        .expect("abort resume address must map to a program instruction");
    StepOutcome {
        cycles: apply.cycles,
        event: StepEvent::Aborted,
        broadcast_stop: apply.broadcast_stop,
    }
}

/// Handles a program-exception condition raised mid-instruction.
/// Returns the outcome; the program counter is left unchanged for retries.
fn handle_fault(
    core: &mut CpuCore,
    prog: &Program,
    m: &mut impl Machine,
    pe: ProgramException,
    atia: u64,
) -> StepOutcome {
    match m.report_exception(pe, false) {
        ExceptionDisposition::Retry { cycles } => StepOutcome {
            cycles,
            event: StepEvent::Executed,
            broadcast_stop: false,
        },
        ExceptionDisposition::PendingAbort => take_abort(core, prog, m, atia),
        ExceptionDisposition::Terminate(msg) => {
            core.state = CpuState::Halted(HaltReason::Terminated(msg));
            StepOutcome {
                cycles: 1,
                event: StepEvent::Executed,
                broadcast_stop: false,
            }
        }
    }
}

/// Executes one instruction of `prog` on `core` against machine `m`.
///
/// Advances `core.clock` by the consumed cycles. Aborts, faults, PER events
/// and stalls are handled internally per §II/§III of the paper; the caller
/// only needs to keep stepping until the CPU halts.
pub fn step(core: &mut CpuCore, prog: &Program, m: &mut impl Machine) -> StepOutcome {
    let out = step_inner(core, prog, m);
    core.clock += out.cycles;
    out
}

/// Executes one instruction via the original `Instr`-enum walk (cloning the
/// instruction and re-deriving lengths, classes and branch directions every
/// execution). Kept as the reference interpreter: the differential tests run
/// workloads through both paths and require identical outcomes and digests.
pub fn step_legacy(core: &mut CpuCore, prog: &Program, m: &mut impl Machine) -> StepOutcome {
    let out = step_inner_legacy(core, prog, m);
    core.clock += out.cycles;
    out
}

pub(crate) fn step_inner(core: &mut CpuCore, prog: &Program, m: &mut impl Machine) -> StepOutcome {
    if !core.is_running() {
        return StepOutcome {
            cycles: 0,
            event: StepEvent::Halted,
            broadcast_stop: false,
        };
    }

    let idx = core.pc;
    let d = *prog.decoded(idx);
    let ia = d.addr;

    // Asynchronous pending aborts (XI conflicts delivered between
    // instructions — completion stalls against XIs, §III.C).
    if m.pending_abort() {
        return take_abort(core, prog, m, ia);
    }

    let len = d.len as u64;
    let mut cycles: u64 = 1;

    // Instruction fetch through the i-cache; ifetch exceptions are never
    // filtered (§II.C), which `report_exception(…, true)` enforces.
    match m.ifetch(Address::new(ia)) {
        AccessResult::Done { cycles: c, .. } => cycles += c,
        AccessResult::Stall { cycles: c } => {
            return StepOutcome {
                cycles: cycles + c,
                event: StepEvent::Stalled,
                broadcast_stop: false,
            }
        }
        AccessResult::Fault(pe) => {
            return match m.report_exception(pe, true) {
                ExceptionDisposition::Retry { cycles } => StepOutcome {
                    cycles,
                    event: StepEvent::Executed,
                    broadcast_stop: false,
                },
                ExceptionDisposition::PendingAbort => take_abort(core, prog, m, ia),
                ExceptionDisposition::Terminate(msg) => {
                    core.state = CpuState::Halted(HaltReason::Terminated(msg));
                    StepOutcome {
                        cycles: 1,
                        event: StepEvent::Executed,
                        broadcast_stop: false,
                    }
                }
            }
        }
    }

    // PER instruction-fetch monitoring (§II.E.2).
    if core.per.enabled && core.per.ifetch_event(ia, m.in_tx()) {
        core.per_events += 1;
        if m.in_tx() {
            // PER event in a transaction: abort + non-filterable
            // interruption into the OS.
            let disp = m.report_exception(ProgramException::PerEvent, true);
            if disp == ExceptionDisposition::PendingAbort {
                return take_abort(core, prog, m, ia);
            }
        } else if let ExceptionDisposition::Retry { cycles: c } =
            m.report_exception(ProgramException::PerEvent, true)
        {
            // Debugger observed the fetch; the instruction then executes.
            cycles += c;
        }
    }

    // Transactional legality + constrained constraints + diagnostic tick.
    // The class (backward bit included) was folded in at predecode time.
    m.check_instruction(d.class, ia, len);
    if m.pending_abort() {
        return take_abort(core, prog, m, ia);
    }

    let mut next_pc = idx + 1;
    let mut event = StepEvent::Executed;

    macro_rules! mem_load {
        ($ea:expr, $len:expr, $upd:expr) => {
            match m.load($ea, $len, $upd) {
                AccessResult::Done { value, cycles: c } => {
                    cycles += c;
                    value
                }
                AccessResult::Stall { cycles: c } => {
                    return StepOutcome {
                        cycles: cycles + c,
                        event: StepEvent::Stalled,
                        broadcast_stop: false,
                    }
                }
                AccessResult::Fault(pe) => return handle_fault(core, prog, m, pe, ia),
            }
        };
    }
    macro_rules! mem_store {
        ($ea:expr, $len:expr, $val:expr) => {{
            match m.store($ea, $len, $val) {
                AccessResult::Done { cycles: c, .. } => cycles += c,
                AccessResult::Stall { cycles: c } => {
                    return StepOutcome {
                        cycles: cycles + c,
                        event: StepEvent::Stalled,
                        broadcast_stop: false,
                    }
                }
                AccessResult::Fault(pe) => return handle_fault(core, prog, m, pe, ia),
            }
            if core.per.enabled && core.per.store_event($ea.raw(), $len as u64, m.in_tx()) {
                core.per_events += 1;
                match m.report_exception(ProgramException::PerEvent, false) {
                    ExceptionDisposition::PendingAbort => return take_abort(core, prog, m, ia),
                    ExceptionDisposition::Retry { cycles: c } => cycles += c,
                    ExceptionDisposition::Terminate(msg) => {
                        core.state = CpuState::Halted(HaltReason::Terminated(msg));
                    }
                }
            }
        }};
    }

    match d.op {
        Op::Lghi => core.set_gr(Reg(d.r1), d.imm as u64),
        Op::Lgr => core.set_gr(Reg(d.r1), core.grs[d.r2 as usize]),
        Op::La => core.set_gr(Reg(d.r1), effective_address_decoded(core, &d).raw()),
        Op::Lg => {
            let ea = effective_address_decoded(core, &d);
            let upd = d.flags & FLAG_FOR_UPDATE != 0;
            let v = mem_load!(ea, 8, upd);
            core.set_gr(Reg(d.r1), v);
        }
        Op::Ltg => {
            let ea = effective_address_decoded(core, &d);
            let v = mem_load!(ea, 8, false);
            core.set_gr(Reg(d.r1), v);
            core.set_cc_value(v as i64);
        }
        Op::Stg => {
            let ea = effective_address_decoded(core, &d);
            mem_store!(ea, 8, core.grs[d.r1 as usize]);
        }
        Op::Ntstg => {
            let ea = effective_address_decoded(core, &d);
            match m.store_nontx(ea, core.grs[d.r1 as usize]) {
                AccessResult::Done { cycles: c, .. } => cycles += c,
                AccessResult::Stall { cycles: c } => {
                    return StepOutcome {
                        cycles: cycles + c,
                        event: StepEvent::Stalled,
                        broadcast_stop: false,
                    }
                }
                AccessResult::Fault(pe) => return handle_fault(core, prog, m, pe, ia),
            }
        }
        Op::Csg => {
            let ea = effective_address_decoded(core, &d);
            match m.compare_and_swap(ea, core.grs[d.r1 as usize], core.grs[d.r2 as usize]) {
                CasResult::Done {
                    swapped,
                    old,
                    cycles: c,
                } => {
                    cycles += c;
                    if swapped {
                        core.cc = 0;
                    } else {
                        core.set_gr(Reg(d.r1), old);
                        core.cc = 1;
                    }
                }
                CasResult::Stall { cycles: c } => {
                    return StepOutcome {
                        cycles: cycles + c,
                        event: StepEvent::Stalled,
                        broadcast_stop: false,
                    }
                }
                CasResult::Fault(pe) => return handle_fault(core, prog, m, pe, ia),
            }
        }
        Op::Agr => {
            let v = core.grs[d.r1 as usize].wrapping_add(core.grs[d.r2 as usize]);
            core.set_gr(Reg(d.r1), v);
            core.set_cc_value(v as i64);
        }
        Op::Sgr => {
            let v = core.grs[d.r1 as usize].wrapping_sub(core.grs[d.r2 as usize]);
            core.set_gr(Reg(d.r1), v);
            core.set_cc_value(v as i64);
        }
        Op::Aghi => {
            let v = core.grs[d.r1 as usize].wrapping_add(d.imm as u64);
            core.set_gr(Reg(d.r1), v);
            core.set_cc_value(v as i64);
        }
        Op::Ngr => {
            let v = core.grs[d.r1 as usize] & core.grs[d.r2 as usize];
            core.set_gr(Reg(d.r1), v);
            core.set_cc_value(v as i64);
        }
        Op::Xgr => {
            let v = core.grs[d.r1 as usize] ^ core.grs[d.r2 as usize];
            core.set_gr(Reg(d.r1), v);
            core.set_cc_value(v as i64);
        }
        Op::Msgr => {
            let v = core.grs[d.r1 as usize].wrapping_mul(core.grs[d.r2 as usize]);
            core.set_gr(Reg(d.r1), v);
        }
        Op::Dsgr => {
            let divisor = core.grs[d.r2 as usize];
            if divisor == 0 {
                return handle_fault(core, prog, m, ProgramException::FixedPointDivide, ia);
            }
            let v = (core.grs[d.r1 as usize] as i64).wrapping_div(divisor as i64) as u64;
            core.set_gr(Reg(d.r1), v);
            cycles += 20;
        }
        Op::Sllg => core.set_gr(Reg(d.r1), core.grs[d.r2 as usize] << d.aux),
        Op::Srlg => core.set_gr(Reg(d.r1), core.grs[d.r2 as usize] >> d.aux),
        Op::Ltgr => {
            let v = core.grs[d.r2 as usize];
            core.set_gr(Reg(d.r1), v);
            core.set_cc_value(v as i64);
        }
        Op::Cgr => core.set_cc_cmp(
            core.grs[d.r1 as usize] as i64,
            core.grs[d.r2 as usize] as i64,
        ),
        Op::Cghi => core.set_cc_cmp(core.grs[d.r1 as usize] as i64, d.imm),
        Op::Cg => {
            let ea = effective_address_decoded(core, &d);
            let v = mem_load!(ea, 8, false);
            core.set_cc_cmp(core.grs[d.r1 as usize] as i64, v as i64);
        }
        Op::Brc => {
            if d.aux >> (3 - core.cc) & 1 == 1 {
                next_pc = d.target as usize;
            }
        }
        Op::Cgij => {
            if crate::decoded::decode_cond(d.aux).eval(core.grs[d.r1 as usize] as i64, d.imm) {
                next_pc = d.target as usize;
            }
        }
        Op::Brctg => {
            let v = core.grs[d.r1 as usize].wrapping_sub(1);
            core.set_gr(Reg(d.r1), v);
            if v != 0 {
                next_pc = d.target as usize;
            }
        }
        Op::Br => next_pc = core.grs[d.r1 as usize] as usize,
        Op::Tbegin => {
            let params = *prog.tbegin_params(d.params);
            cycles += m.tx_begin(false, params, &core.grs, ia, ia + len);
            if m.pending_abort() {
                return take_abort(core, prog, m, ia);
            }
            core.cc = 0;
        }
        Op::Tbeginc => {
            // The side-table entry is already `TbeginParams::constrained`.
            let params = *prog.tbegin_params(d.params);
            cycles += m.tx_begin(true, params, &core.grs, ia, ia + len);
            if m.pending_abort() {
                return take_abort(core, prog, m, ia);
            }
            core.cc = 0;
        }
        Op::Tend => match m.tx_end() {
            EndResult::NotInTx => core.cc = 2,
            EndResult::Inner { cycles: c } => {
                cycles += c;
                core.cc = 0;
            }
            EndResult::Commit { cycles: c } => {
                cycles += c;
                core.cc = 0;
                event = StepEvent::Committed;
                if core.per.tend_event_fires() {
                    core.per_events += 1;
                    if let ExceptionDisposition::Retry { cycles: c } =
                        m.report_exception(ProgramException::PerEvent, false)
                    {
                        cycles += c;
                    }
                }
            }
            EndResult::AbortPending => return take_abort(core, prog, m, ia),
        },
        Op::Tabort => {
            if !m.in_tx() {
                return handle_fault(core, prog, m, ProgramException::Specification, ia);
            }
            let code = if d.flags & FLAG_OPERAND_REG != 0 {
                core.grs[d.r2 as usize]
            } else {
                d.imm as u64
            };
            m.tx_abort_request(code);
            return take_abort(core, prog, m, ia);
        }
        Op::Etnd => {
            core.set_gr(Reg(d.r1), m.tx_depth());
            cycles += 10; // millicoded, not performance critical (§III.E)
        }
        Op::Ppa => {
            cycles += m.ppa(core.grs[d.r1 as usize]);
        }
        Op::Stckf => {
            let ea = effective_address_decoded(core, &d);
            let clk = core.clock;
            mem_store!(ea, 8, clk);
        }
        Op::Rdclk => core.set_gr(Reg(d.r1), core.clock),
        Op::RandMod => {
            let b = if d.flags & FLAG_OPERAND_REG != 0 {
                core.grs[d.r2 as usize]
            } else {
                d.imm as u64
            };
            core.set_gr(Reg(d.r1), m.rand(b));
            cycles = 0; // RNG overhead is excluded from measurements (§IV)
        }
        Op::Sar => core.ars[d.r1 as usize] = core.grs[d.r2 as usize] as u32,
        Op::Ear => core.set_gr(Reg(d.r1), core.ars[d.r2 as usize] as u64),
        Op::Adbr => {
            let a = f64::from_bits(core.fprs[d.r1 as usize]);
            let b = f64::from_bits(core.fprs[d.r2 as usize]);
            core.fprs[d.r1 as usize] = (a + b).to_bits();
        }
        Op::StmNote => {
            m.stm_note(d.aux, core.grs[d.r1 as usize]);
            cycles = 0; // observability only — must not perturb STM timing
        }
        Op::Decimal | Op::Nop => {}
        Op::Delay => cycles += d.imm as u64,
        Op::Privileged => cycles += 10,
        Op::Halt => {
            core.state = CpuState::Halted(HaltReason::Completed);
            return StepOutcome {
                cycles,
                event: StepEvent::Halted,
                broadcast_stop: false,
            };
        }
    }

    core.pc = next_pc;
    core.instructions += 1;
    m.instruction_retired();
    if event == StepEvent::Committed {
        StepOutcome {
            cycles,
            event,
            broadcast_stop: false,
        }
    } else {
        StepOutcome::executed(cycles)
    }
}

fn step_inner_legacy(core: &mut CpuCore, prog: &Program, m: &mut impl Machine) -> StepOutcome {
    if !core.is_running() {
        return StepOutcome {
            cycles: 0,
            event: StepEvent::Halted,
            broadcast_stop: false,
        };
    }

    let idx = core.pc;
    let ia = prog.addr_of(idx);

    // Asynchronous pending aborts (XI conflicts delivered between
    // instructions — completion stalls against XIs, §III.C).
    if m.pending_abort() {
        return take_abort(core, prog, m, ia);
    }

    let instr = prog.instr(idx).clone();
    let len = instr.len();
    let mut cycles: u64 = 1;

    // Instruction fetch through the i-cache; ifetch exceptions are never
    // filtered (§II.C), which `report_exception(…, true)` enforces.
    match m.ifetch(Address::new(ia)) {
        AccessResult::Done { cycles: c, .. } => cycles += c,
        AccessResult::Stall { cycles: c } => {
            return StepOutcome {
                cycles: cycles + c,
                event: StepEvent::Stalled,
                broadcast_stop: false,
            }
        }
        AccessResult::Fault(pe) => {
            return match m.report_exception(pe, true) {
                ExceptionDisposition::Retry { cycles } => StepOutcome {
                    cycles,
                    event: StepEvent::Executed,
                    broadcast_stop: false,
                },
                ExceptionDisposition::PendingAbort => take_abort(core, prog, m, ia),
                ExceptionDisposition::Terminate(msg) => {
                    core.state = CpuState::Halted(HaltReason::Terminated(msg));
                    StepOutcome {
                        cycles: 1,
                        event: StepEvent::Executed,
                        broadcast_stop: false,
                    }
                }
            }
        }
    }

    // PER instruction-fetch monitoring (§II.E.2).
    if core.per.ifetch_event(ia, m.in_tx()) {
        core.per_events += 1;
        if m.in_tx() {
            // PER event in a transaction: abort + non-filterable
            // interruption into the OS.
            let d = m.report_exception(ProgramException::PerEvent, true);
            if d == ExceptionDisposition::PendingAbort {
                return take_abort(core, prog, m, ia);
            }
        } else if let ExceptionDisposition::Retry { cycles: c } =
            m.report_exception(ProgramException::PerEvent, true)
        {
            // Debugger observed the fetch; the instruction then executes.
            cycles += c;
        }
    }

    // Transactional legality + constrained constraints + diagnostic tick.
    let backward = instr
        .branch_target()
        .map(|t| prog.is_backward(idx, t))
        .unwrap_or(false);
    m.check_instruction(instr.class(backward), ia, len);
    if m.pending_abort() {
        return take_abort(core, prog, m, ia);
    }

    let mut next_pc = idx + 1;
    let mut event = StepEvent::Executed;

    macro_rules! mem_load {
        ($ea:expr, $len:expr, $upd:expr) => {
            match m.load($ea, $len, $upd) {
                AccessResult::Done { value, cycles: c } => {
                    cycles += c;
                    value
                }
                AccessResult::Stall { cycles: c } => {
                    return StepOutcome {
                        cycles: cycles + c,
                        event: StepEvent::Stalled,
                        broadcast_stop: false,
                    }
                }
                AccessResult::Fault(pe) => return handle_fault(core, prog, m, pe, ia),
            }
        };
    }
    macro_rules! mem_store {
        ($ea:expr, $len:expr, $val:expr) => {{
            match m.store($ea, $len, $val) {
                AccessResult::Done { cycles: c, .. } => cycles += c,
                AccessResult::Stall { cycles: c } => {
                    return StepOutcome {
                        cycles: cycles + c,
                        event: StepEvent::Stalled,
                        broadcast_stop: false,
                    }
                }
                AccessResult::Fault(pe) => return handle_fault(core, prog, m, pe, ia),
            }
            if core.per.store_event($ea.raw(), $len as u64, m.in_tx()) {
                core.per_events += 1;
                match m.report_exception(ProgramException::PerEvent, false) {
                    ExceptionDisposition::PendingAbort => return take_abort(core, prog, m, ia),
                    ExceptionDisposition::Retry { cycles: c } => cycles += c,
                    ExceptionDisposition::Terminate(msg) => {
                        core.state = CpuState::Halted(HaltReason::Terminated(msg));
                    }
                }
            }
        }};
    }

    match instr {
        Instr::Lghi(r, imm) => core.set_gr(r, imm as u64),
        Instr::Lgr(r1, r2) => core.set_gr(r1, core.gr(r2)),
        Instr::La(r, mem) => core.set_gr(r, effective_address(core, &mem).raw()),
        Instr::Lg(r, mem) => {
            let ea = effective_address(core, &mem);
            let upd = store_follows(prog, idx, &mem);
            let v = mem_load!(ea, 8, upd);
            core.set_gr(r, v);
        }
        Instr::Ltg(r, mem) => {
            let ea = effective_address(core, &mem);
            let v = mem_load!(ea, 8, false);
            core.set_gr(r, v);
            core.set_cc_value(v as i64);
        }
        Instr::Stg(r, mem) => {
            let ea = effective_address(core, &mem);
            mem_store!(ea, 8, core.gr(r));
        }
        Instr::Ntstg(r, mem) => {
            let ea = effective_address(core, &mem);
            match m.store_nontx(ea, core.gr(r)) {
                AccessResult::Done { cycles: c, .. } => cycles += c,
                AccessResult::Stall { cycles: c } => {
                    return StepOutcome {
                        cycles: cycles + c,
                        event: StepEvent::Stalled,
                        broadcast_stop: false,
                    }
                }
                AccessResult::Fault(pe) => return handle_fault(core, prog, m, pe, ia),
            }
        }
        Instr::Csg(r1, r3, mem) => {
            let ea = effective_address(core, &mem);
            match m.compare_and_swap(ea, core.gr(r1), core.gr(r3)) {
                CasResult::Done {
                    swapped,
                    old,
                    cycles: c,
                } => {
                    cycles += c;
                    if swapped {
                        core.cc = 0;
                    } else {
                        core.set_gr(r1, old);
                        core.cc = 1;
                    }
                }
                CasResult::Stall { cycles: c } => {
                    return StepOutcome {
                        cycles: cycles + c,
                        event: StepEvent::Stalled,
                        broadcast_stop: false,
                    }
                }
                CasResult::Fault(pe) => return handle_fault(core, prog, m, pe, ia),
            }
        }
        Instr::Agr(r1, r2) => {
            let v = core.gr(r1).wrapping_add(core.gr(r2));
            core.set_gr(r1, v);
            core.set_cc_value(v as i64);
        }
        Instr::Sgr(r1, r2) => {
            let v = core.gr(r1).wrapping_sub(core.gr(r2));
            core.set_gr(r1, v);
            core.set_cc_value(v as i64);
        }
        Instr::Aghi(r, imm) => {
            let v = core.gr(r).wrapping_add(imm as u64);
            core.set_gr(r, v);
            core.set_cc_value(v as i64);
        }
        Instr::Ngr(r1, r2) => {
            let v = core.gr(r1) & core.gr(r2);
            core.set_gr(r1, v);
            core.set_cc_value(v as i64);
        }
        Instr::Xgr(r1, r2) => {
            let v = core.gr(r1) ^ core.gr(r2);
            core.set_gr(r1, v);
            core.set_cc_value(v as i64);
        }
        Instr::Msgr(r1, r2) => {
            let v = core.gr(r1).wrapping_mul(core.gr(r2));
            core.set_gr(r1, v);
        }
        Instr::Dsgr(r1, r2) => {
            let d = core.gr(r2);
            if d == 0 {
                return handle_fault(core, prog, m, ProgramException::FixedPointDivide, ia);
            }
            core.set_gr(r1, (core.gr(r1) as i64).wrapping_div(d as i64) as u64);
            cycles += 20;
        }
        Instr::Sllg(r1, r2, n) => core.set_gr(r1, core.gr(r2) << n),
        Instr::Srlg(r1, r2, n) => core.set_gr(r1, core.gr(r2) >> n),
        Instr::Ltgr(r1, r2) => {
            let v = core.gr(r2);
            core.set_gr(r1, v);
            core.set_cc_value(v as i64);
        }
        Instr::Cgr(r1, r2) => core.set_cc_cmp(core.gr(r1) as i64, core.gr(r2) as i64),
        Instr::Cghi(r, imm) => core.set_cc_cmp(core.gr(r) as i64, imm),
        Instr::Cg(r, mem) => {
            let ea = effective_address(core, &mem);
            let v = mem_load!(ea, 8, false);
            core.set_cc_cmp(core.gr(r) as i64, v as i64);
        }
        Instr::Brc(mask, target) => {
            if mask >> (3 - core.cc) & 1 == 1 {
                next_pc = target;
            }
        }
        Instr::Cgij(r, imm, cond, target) => {
            if cond.eval(core.gr(r) as i64, imm) {
                next_pc = target;
            }
        }
        Instr::Brctg(r, target) => {
            let v = core.gr(r).wrapping_sub(1);
            core.set_gr(r, v);
            if v != 0 {
                next_pc = target;
            }
        }
        Instr::Br(r) => next_pc = core.gr(r) as usize,
        Instr::Tbegin(params) => {
            cycles += m.tx_begin(false, params, &core.grs, ia, ia + len);
            if m.pending_abort() {
                return take_abort(core, prog, m, ia);
            }
            core.cc = 0;
        }
        Instr::Tbeginc(grsm) => {
            let params = ztm_core::TbeginParams::constrained(grsm);
            cycles += m.tx_begin(true, params, &core.grs, ia, ia + len);
            if m.pending_abort() {
                return take_abort(core, prog, m, ia);
            }
            core.cc = 0;
        }
        Instr::Tend => match m.tx_end() {
            EndResult::NotInTx => core.cc = 2,
            EndResult::Inner { cycles: c } => {
                cycles += c;
                core.cc = 0;
            }
            EndResult::Commit { cycles: c } => {
                cycles += c;
                core.cc = 0;
                event = StepEvent::Committed;
                if core.per.tend_event_fires() {
                    core.per_events += 1;
                    if let ExceptionDisposition::Retry { cycles: c } =
                        m.report_exception(ProgramException::PerEvent, false)
                    {
                        cycles += c;
                    }
                }
            }
            EndResult::AbortPending => return take_abort(core, prog, m, ia),
        },
        Instr::Tabort(code) => {
            if !m.in_tx() {
                return handle_fault(core, prog, m, ProgramException::Specification, ia);
            }
            let code = match code {
                RegOrImm::Reg(r) => core.gr(r),
                RegOrImm::Imm(v) => v,
            };
            m.tx_abort_request(code);
            return take_abort(core, prog, m, ia);
        }
        Instr::Etnd(r) => {
            core.set_gr(r, m.tx_depth());
            cycles += 10; // millicoded, not performance critical (§III.E)
        }
        Instr::Ppa(r) => {
            cycles += m.ppa(core.gr(r));
        }
        Instr::Stckf(mem) => {
            let ea = effective_address(core, &mem);
            let clk = core.clock;
            mem_store!(ea, 8, clk);
        }
        Instr::Rdclk(r) => core.set_gr(r, core.clock),
        Instr::RandMod(r, bound) => {
            let b = match bound {
                RegOrImm::Reg(rb) => core.gr(rb),
                RegOrImm::Imm(v) => v,
            };
            core.set_gr(r, m.rand(b));
            cycles = 0; // RNG overhead is excluded from measurements (§IV)
        }
        Instr::Sar(ar, r) => core.ars[ar as usize] = core.gr(r) as u32,
        Instr::Ear(r, ar) => core.set_gr(r, core.ars[ar as usize] as u64),
        Instr::Adbr(f1, f2) => {
            let a = f64::from_bits(core.fprs[f1 as usize]);
            let b = f64::from_bits(core.fprs[f2 as usize]);
            core.fprs[f1 as usize] = (a + b).to_bits();
        }
        Instr::StmNote(kind, r) => {
            m.stm_note(kind, core.gr(r));
            cycles = 0; // observability only — must not perturb STM timing
        }
        Instr::Decimal | Instr::Nop => {}
        Instr::Delay(n) => cycles += n,
        Instr::Privileged => cycles += 10,
        Instr::Halt => {
            core.state = CpuState::Halted(HaltReason::Completed);
            return StepOutcome {
                cycles,
                event: StepEvent::Halted,
                broadcast_stop: false,
            };
        }
    }

    core.pc = next_pc;
    core.instructions += 1;
    m.instruction_retired();
    if event == StepEvent::Committed {
        StepOutcome {
            cycles,
            event,
            broadcast_stop: false,
        }
    } else {
        StepOutcome::executed(cycles)
    }
}

/// Runs a fresh CPU over `prog` until it halts or `max_steps` is exceeded.
///
/// # Panics
///
/// Panics if the CPU does not halt within `max_steps` (guards tests against
/// livelock).
pub fn run_to_halt(prog: &Program, m: &mut impl Machine, max_steps: u64) -> CpuCore {
    let mut core = CpuCore::new();
    for _ in 0..max_steps {
        if !core.is_running() {
            return core;
        }
        step(&mut core, prog, m);
    }
    panic!("program did not halt within {max_steps} steps");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::machine::SimpleMachine;
    use crate::reg::gr::*;
    use ztm_core::{DiagnosticControl, GrSaveMask, Pifc, TbeginParams, TxEngine, TxEngineConfig};

    fn machine() -> SimpleMachine {
        SimpleMachine::new(99)
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut a = Assembler::new(0);
        a.lghi(R1, 5);
        a.lghi(R2, 7);
        a.agr(R1, R2);
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        let core = run_to_halt(&p, &mut m, 100);
        assert_eq!(core.gr(R1), 12);
        assert_eq!(core.cc, 2); // positive result
    }

    #[test]
    fn loop_with_brctg() {
        let mut a = Assembler::new(0);
        a.lghi(R1, 10);
        a.lghi(R2, 0);
        a.label("loop");
        a.aghi(R2, 3);
        a.brctg(R1, "loop");
        a.halt();
        let p = a.assemble().unwrap();
        let core = run_to_halt(&p, &mut machine(), 1000);
        assert_eq!(core.gr(R2), 30);
    }

    #[test]
    fn committed_transaction_updates_memory() {
        let mut a = Assembler::new(0);
        a.tbegin(TbeginParams::new());
        a.jnz("out");
        a.lghi(R1, 42);
        a.stg(R1, MemOperand::absolute(0x1000));
        a.tend();
        a.label("out");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        let core = run_to_halt(&p, &mut m, 100);
        assert_eq!(m.mem.load_u64(Address::new(0x1000)), 42);
        assert_eq!(core.cc, 0);
        assert_eq!(m.engine.stats().commits, 1);
    }

    #[test]
    fn tabort_rolls_back_and_branches_to_handler() {
        let mut a = Assembler::new(0);
        a.lghi(R5, 1); // survives: pair 2 not in mask below
        let params = TbeginParams {
            grsm: GrSaveMask::new(0b0000_0001), // only GRs 0,1 restored
            ..TbeginParams::new()
        };
        a.tbegin(params);
        a.jnz("handler");
        a.lghi(R0, 77); // will be rolled back
        a.lghi(R5, 99); // will NOT be rolled back (not in mask)
        a.lghi(R9, 1);
        a.stg(R9, MemOperand::absolute(0x2000)); // rolled back
        a.tabort(256); // transient
        a.tend();
        a.halt();
        a.label("handler");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        let core = run_to_halt(&p, &mut m, 100);
        assert_eq!(core.cc, 2, "TABORT 256 (even) is transient");
        assert_eq!(core.gr(R0), 0, "masked pair restored");
        assert_eq!(core.gr(R5), 99, "unmasked register keeps modified value");
        assert_eq!(m.mem.load_u64(Address::new(0x2000)), 0, "store rolled back");
        assert_eq!(m.engine.stats().aborts, 1);
    }

    #[test]
    fn tabort_odd_code_is_permanent() {
        let mut a = Assembler::new(0);
        a.tbegin(TbeginParams::new());
        a.jnz("handler");
        a.tabort(257);
        a.label("handler");
        a.halt();
        let p = a.assemble().unwrap();
        let core = run_to_halt(&p, &mut machine(), 100);
        assert_eq!(core.cc, 3);
    }

    #[test]
    fn etnd_reports_depth() {
        let mut a = Assembler::new(0);
        a.tbegin(TbeginParams::new());
        a.jnz("out");
        a.tbegin(TbeginParams::new());
        a.jnz("out");
        a.etnd(R3);
        a.tend();
        a.tend();
        a.label("out");
        a.halt();
        let p = a.assemble().unwrap();
        let core = run_to_halt(&p, &mut machine(), 100);
        assert_eq!(core.gr(R3), 2);
    }

    #[test]
    fn restricted_instruction_aborts_with_cc3() {
        let mut a = Assembler::new(0);
        a.tbegin(TbeginParams::new());
        a.jnz("handler");
        a.push(Instr::Privileged);
        a.tend();
        a.halt();
        a.label("handler");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        let core = run_to_halt(&p, &mut m, 100);
        assert_eq!(core.cc, 3, "restricted instruction is permanent");
        assert_eq!(m.engine.stats().aborts_by_code.get(&11), Some(&1));
    }

    #[test]
    fn fpr_modification_control_blocks_adbr() {
        let mut a = Assembler::new(0);
        a.tbegin(TbeginParams::new()); // allow_fp_mod = false
        a.jnz("handler");
        a.push(Instr::Adbr(0, 1));
        a.tend();
        a.halt();
        a.label("handler");
        a.halt();
        let p = a.assemble().unwrap();
        let core = run_to_halt(&p, &mut machine(), 100);
        assert_eq!(core.cc, 3);
    }

    #[test]
    fn constrained_transaction_commits() {
        let mut a = Assembler::new(0);
        a.tbeginc(GrSaveMask::ALL);
        a.lghi(R1, 5);
        a.stg(R1, MemOperand::absolute(0x3000));
        a.tend();
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        run_to_halt(&p, &mut m, 100);
        assert_eq!(m.mem.load_u64(Address::new(0x3000)), 5);
        assert_eq!(m.engine.stats().tbegincs, 1);
    }

    #[test]
    fn constrained_violation_terminates_via_os() {
        // A backward branch inside TBEGINC is a constraint violation; the
        // OS terminates the program (§II.D non-filterable interruption).
        let mut a = Assembler::new(0);
        a.label("spin");
        a.tbeginc(GrSaveMask::ALL);
        a.j("spin"); // backward!
        let p = a.assemble().unwrap();
        let mut m = machine();
        let core = run_to_halt(&p, &mut m, 1000);
        match core.state {
            CpuState::Halted(HaltReason::Terminated(msg)) => {
                assert!(msg.contains("constraint"), "{msg}");
            }
            other => panic!("expected termination, got {other:?}"),
        }
    }

    #[test]
    fn filtered_page_fault_loops_forever_without_nontx_touch() {
        // §II.C: a filtered page fault never reaches the OS; if the program
        // only touches the page transactionally, it can never make progress.
        let mut a = Assembler::new(0);
        a.lghi(R7, 20); // bounded retry so the test halts
        a.label("retry");
        let params = TbeginParams {
            pifc: Pifc::DataAndAccess,
            ..TbeginParams::new()
        };
        a.tbegin(params);
        a.jnz("aborted");
        a.lg(R1, MemOperand::absolute(0x9000)); // faults every time
        a.tend();
        a.halt();
        a.label("aborted");
        a.brctg(R7, "retry");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        m.pages.evict(Address::new(0x9000).page());
        let core = run_to_halt(&p, &mut m, 10_000);
        assert_eq!(core.gr(R7), 0, "every retry aborted");
        assert_eq!(m.engine.stats().filtered_exceptions, 20);
        assert!(!m.pages.is_resident(Address::new(0x9000).page()));
    }

    #[test]
    fn unfiltered_page_fault_is_serviced_and_retried() {
        let mut a = Assembler::new(0);
        a.label("retry");
        a.tbegin(TbeginParams::new()); // PIFC 0: no filtering
        a.jnz("aborted");
        a.lg(R1, MemOperand::absolute(0x9008));
        a.tend();
        a.halt();
        a.label("aborted");
        a.j("retry");
        let p = a.assemble().unwrap();
        let mut m = machine();
        m.mem.store_u64(Address::new(0x9008), 1234);
        m.pages.evict(Address::new(0x9008).page());
        let core = run_to_halt(&p, &mut m, 10_000);
        assert_eq!(core.gr(R1), 1234, "OS paged in; retry succeeded");
        assert_eq!(m.engine.stats().os_interruptions, 1);
        assert!(m.pages.is_resident(Address::new(0x9008).page()));
    }

    #[test]
    fn figure1_lock_elision_with_fallback() {
        // The complete Figure 1 kernel: transactional path with lock test,
        // retry counter, PPA back-off, and a CS-based fallback lock path.
        // Forced aborts (diagnostic control AlwaysAbort) push it down the
        // fallback path, proving the whole structure works.
        let lock = 0x4000u64;
        let var = 0x4100u64;
        let mut a = Assembler::new(0);
        a.lghi(R0, 0); // retry count = 0
        a.label("loop");
        a.tbegin(TbeginParams::new());
        a.jnz("abort");
        a.ltg(R1, MemOperand::absolute(lock)); // lock free?
        a.jnz("lckbzy");
        a.lg(R2, MemOperand::absolute(var));
        a.aghi(R2, 1);
        a.stg(R2, MemOperand::absolute(var));
        a.tend();
        a.j("done");
        a.label("lckbzy");
        a.tabort(257); // permanent: go to fallback
        a.label("abort");
        a.jo("fallback"); // CC3 → no retry
        a.aghi(R0, 1);
        a.cgij_ge(R0, 6, "fallback"); // give up after 6 attempts
        a.ppa(R0);
        a.j("loop");
        a.label("fallback");
        a.lghi(R3, 0); // expected: lock free
        a.lghi(R4, 1); // lock value
        a.label("spin");
        a.lgr(R5, R3);
        a.csg(R5, R4, MemOperand::absolute(lock));
        a.jnz("spin");
        a.lg(R2, MemOperand::absolute(var));
        a.aghi(R2, 1);
        a.stg(R2, MemOperand::absolute(var));
        a.lghi(R6, 0);
        a.stg(R6, MemOperand::absolute(lock)); // release
        a.label("done");
        a.halt();
        let p = a.assemble().unwrap();

        // Run once normally: the transactional path commits.
        let mut m = machine();
        run_to_halt(&p, &mut m, 10_000);
        assert_eq!(m.mem.load_u64(Address::new(var)), 1);
        assert_eq!(m.engine.stats().commits, 1);

        // Run with forced aborts: the fallback path completes the update.
        let mut m2 = machine();
        m2.engine = TxEngine::new(TxEngineConfig {
            diagnostic: DiagnosticControl::AlwaysAbort { max_point: 3 },
            ..TxEngineConfig::default()
        });
        let core = run_to_halt(&p, &mut m2, 100_000);
        assert_eq!(m2.mem.load_u64(Address::new(var)), 1, "fallback updated");
        assert_eq!(m2.mem.load_u64(Address::new(lock)), 0, "lock released");
        assert!(m2.engine.stats().aborts >= 1);
        assert_eq!(m2.engine.stats().commits, 0);
        assert!(core.is_running() || matches!(core.state, CpuState::Halted(HaltReason::Completed)));
    }

    #[test]
    fn br_jumps_via_register_instruction_index() {
        let mut a = Assembler::new(0);
        a.lghi(R1, 4); // instruction index of the target
        a.push(Instr::Br(R1));
        a.lghi(R9, 1); // skipped
        a.halt();
        a.lghi(R9, 2); // index 4
        a.halt();
        let p = a.assemble().unwrap();
        let core = run_to_halt(&p, &mut machine(), 100);
        assert_eq!(core.gr(R9), 2);
    }

    #[test]
    fn br_is_restricted_in_constrained_transactions() {
        let mut a = Assembler::new(0);
        a.lghi(R1, 5);
        a.tbeginc(GrSaveMask::ALL);
        a.push(Instr::Br(R1)); // non-relative branch: constraint violation
        a.tend();
        a.halt();
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        let core = run_to_halt(&p, &mut m, 1000);
        assert!(matches!(
            core.state,
            CpuState::Halted(HaltReason::Terminated(_))
        ));
    }

    #[test]
    fn access_register_instructions() {
        let mut a = Assembler::new(0);
        a.lghi(R1, 0x1234);
        a.push(Instr::Sar(3, R1));
        a.push(Instr::Ear(R2, 3));
        a.halt();
        let p = a.assemble().unwrap();
        let core = run_to_halt(&p, &mut machine(), 100);
        assert_eq!(core.ars[3], 0x1234);
        assert_eq!(core.gr(R2), 0x1234);
    }

    #[test]
    fn ar_modification_blocked_in_tx_but_extraction_allowed() {
        let mut a = Assembler::new(0);
        a.tbegin(TbeginParams::new()); // allow_ar_mod = false
        a.jnz("handler");
        a.push(Instr::Ear(R2, 0)); // reading an AR is fine
        a.push(Instr::Sar(0, R1)); // modifying aborts
        a.tend();
        a.halt();
        a.label("handler");
        a.lghi(R9, 1);
        a.halt();
        let p = a.assemble().unwrap();
        let core = run_to_halt(&p, &mut machine(), 100);
        assert_eq!(core.gr(R9), 1);
        assert_eq!(core.cc, 3);
    }

    #[test]
    fn adbr_adds_fprs_outside_tx() {
        let mut a = Assembler::new(0);
        a.push(Instr::Adbr(0, 1));
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        let mut core = CpuCore::new();
        core.fprs[0] = 1.5f64.to_bits();
        core.fprs[1] = 2.25f64.to_bits();
        while core.is_running() {
            step(&mut core, &p, &mut m);
        }
        assert_eq!(f64::from_bits(core.fprs[0]), 3.75);
    }

    #[test]
    fn stckf_and_rdclk() {
        let mut a = Assembler::new(0);
        a.lghi(R1, 1);
        a.rdclk(R2);
        a.stckf(MemOperand::absolute(0x500));
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        let core = run_to_halt(&p, &mut m, 100);
        assert!(core.gr(R2) > 0);
        assert!(m.mem.load_u64(Address::new(0x500)) >= core.gr(R2));
    }

    #[test]
    fn per_tend_event_counts() {
        let mut a = Assembler::new(0);
        a.tbegin(TbeginParams::new());
        a.jnz("out");
        a.tend();
        a.label("out");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        let mut core = CpuCore::new();
        core.per.enabled = true;
        core.per.tend_event = true;
        while core.is_running() {
            step(&mut core, &p, &mut m);
        }
        assert_eq!(core.per_events, 1);
    }

    #[test]
    fn per_suppression_makes_tx_a_big_instruction() {
        // Instruction-fetch PER across the whole range: without suppression
        // the transaction can never commit; with suppression it commits.
        let mut a = Assembler::new(0);
        a.lghi(R7, 3);
        a.label("retry");
        a.tbegin(TbeginParams::new());
        a.jnz("aborted");
        a.lghi(R1, 1);
        a.tend();
        a.halt();
        a.label("aborted");
        a.brctg(R7, "retry");
        a.halt();
        let p = a.assemble().unwrap();

        let run = |suppress: bool| {
            let mut m = machine();
            let mut core = CpuCore::new();
            core.per.enabled = true;
            core.per.event_suppression = suppress;
            core.per.ifetch_range = Some((0, u64::MAX));
            for _ in 0..10_000 {
                if !core.is_running() {
                    break;
                }
                step(&mut core, &p, &mut m);
            }
            (m.engine.stats().commits, m.engine.stats().aborts)
        };
        let (commits_no_sup, aborts_no_sup) = run(false);
        assert_eq!(commits_no_sup, 0);
        assert!(aborts_no_sup > 0);
        let (commits_sup, _) = run(true);
        assert_eq!(commits_sup, 1);
    }

    #[test]
    fn nesting_depth_overflow_aborts_whole_nest() {
        let mut a = Assembler::new(0);
        a.lghi(R7, 0);
        for _ in 0..17 {
            a.tbegin(TbeginParams::new());
            a.jnz("handler");
        }
        a.halt();
        a.label("handler");
        a.etnd(R7);
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        let core = run_to_halt(&p, &mut m, 1000);
        assert_eq!(core.cc, 3);
        assert_eq!(core.gr(R7), 0, "nest flattened to depth 0");
        assert_eq!(m.engine.stats().aborts_by_code.get(&13), Some(&1));
    }

    #[test]
    fn tend_outside_tx_sets_cc2() {
        let mut a = Assembler::new(0);
        a.tend();
        a.halt();
        let p = a.assemble().unwrap();
        let core = run_to_halt(&p, &mut machine(), 10);
        assert_eq!(core.cc, 2);
    }

    #[test]
    fn divide_by_zero_outside_tx_terminates() {
        let mut a = Assembler::new(0);
        a.lghi(R1, 10);
        a.lghi(R2, 0);
        a.push(Instr::Dsgr(R1, R2));
        a.halt();
        let p = a.assemble().unwrap();
        let core = run_to_halt(&p, &mut machine(), 100);
        assert!(matches!(
            core.state,
            CpuState::Halted(HaltReason::Terminated(_))
        ));
    }

    #[test]
    fn filtered_divide_by_zero_reaches_abort_handler() {
        let mut a = Assembler::new(0);
        let params = TbeginParams {
            pifc: Pifc::Data,
            ..TbeginParams::new()
        };
        a.tbegin(params);
        a.jnz("handler");
        a.lghi(R1, 10);
        a.lghi(R2, 0);
        a.push(Instr::Dsgr(R1, R2));
        a.tend();
        a.halt();
        a.label("handler");
        a.lghi(R9, 1);
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        let core = run_to_halt(&p, &mut m, 100);
        assert_eq!(core.gr(R9), 1, "handler ran");
        assert_eq!(core.cc, 3, "filtered exception is permanent");
        assert_eq!(m.engine.stats().filtered_exceptions, 1);
        assert_eq!(m.engine.stats().os_interruptions, 0);
    }

    #[test]
    fn ntstg_breadcrumbs_survive_abort() {
        let mut a = Assembler::new(0);
        a.tbegin(TbeginParams::new());
        a.jnz("out");
        a.lghi(R1, 0xAA);
        a.ntstg(R1, MemOperand::absolute(0x6000));
        a.lghi(R2, 0xBB);
        a.stg(R2, MemOperand::absolute(0x6100));
        a.tabort(256);
        a.label("out");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = machine();
        run_to_halt(&p, &mut m, 100);
        assert_eq!(m.mem.load_u64(Address::new(0x6000)), 0xAA, "breadcrumb");
        assert_eq!(m.mem.load_u64(Address::new(0x6100)), 0, "normal store gone");
    }
}
