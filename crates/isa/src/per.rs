//! Program Event Recording (PER) with the two transactional-memory
//! extensions of §II.E.2: event suppression and the PER TEND event.

/// PER controls for one CPU (a simplified model of the z control registers).
///
/// PER monitors instruction fetches and stores within address ranges and is
/// the mechanism behind watch-points and single-stepping (z/OS SLIP traps,
/// GDB). For transactional memory the paper adds:
///
/// * **event suppression** ([`Self::event_suppression`]): no PER events are
///   recognized while in transactional-execution mode, making a transaction
///   look like one "big instruction" to a single-stepping debugger;
/// * **the TEND event** ([`Self::tend_event`]): triggers on successful
///   completion of an outermost TEND, so a debugger can re-check its
///   watch-points at transaction granularity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerControls {
    /// Master enable.
    pub enabled: bool,
    /// Suppress PER events while in transactional-execution mode (§II.E.2).
    pub event_suppression: bool,
    /// Trigger an event when an outermost TEND completes (§II.E.2).
    pub tend_event: bool,
    /// Instruction-fetch monitoring range `[start, end]` (inclusive).
    pub ifetch_range: Option<(u64, u64)>,
    /// Store monitoring range `[start, end]` (inclusive).
    pub store_range: Option<(u64, u64)>,
}

impl PerControls {
    /// PER disabled entirely.
    pub fn disabled() -> Self {
        Self::default()
    }

    fn in_range(range: Option<(u64, u64)>, lo: u64, hi: u64) -> bool {
        match range {
            Some((s, e)) => lo <= e && hi >= s,
            None => false,
        }
    }

    /// Whether fetching the instruction at `ia` raises a PER event, given
    /// the CPU's transactional state.
    pub fn ifetch_event(&self, ia: u64, in_tx: bool) -> bool {
        self.enabled
            && !(in_tx && self.event_suppression)
            && Self::in_range(self.ifetch_range, ia, ia)
    }

    /// Whether a store of `len` bytes at `addr` raises a PER event.
    pub fn store_event(&self, addr: u64, len: u64, in_tx: bool) -> bool {
        self.enabled
            && !(in_tx && self.event_suppression)
            && Self::in_range(self.store_range, addr, addr + len.saturating_sub(1))
    }

    /// Whether an outermost TEND completion raises the PER TEND event.
    /// (The transaction has already committed; suppression does not apply.)
    pub fn tend_event_fires(&self) -> bool {
        self.enabled && self.tend_event
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let p = PerControls::disabled();
        assert!(!p.ifetch_event(0, false));
        assert!(!p.store_event(0, 8, false));
        assert!(!p.tend_event_fires());
    }

    #[test]
    fn ifetch_range_matching() {
        let p = PerControls {
            enabled: true,
            ifetch_range: Some((0x100, 0x1ff)),
            ..PerControls::default()
        };
        assert!(p.ifetch_event(0x100, false));
        assert!(p.ifetch_event(0x1ff, false));
        assert!(!p.ifetch_event(0x200, false));
        assert!(!p.ifetch_event(0xff, false));
    }

    #[test]
    fn store_range_overlap() {
        let p = PerControls {
            enabled: true,
            store_range: Some((0x1000, 0x100f)),
            ..PerControls::default()
        };
        // 8-byte store straddling the range start.
        assert!(p.store_event(0xff8, 16, false));
        assert!(p.store_event(0x1008, 8, false));
        assert!(!p.store_event(0x1010, 8, false));
    }

    #[test]
    fn suppression_only_in_tx() {
        let p = PerControls {
            enabled: true,
            event_suppression: true,
            ifetch_range: Some((0, u64::MAX)),
            store_range: Some((0, u64::MAX)),
            ..PerControls::default()
        };
        assert!(p.ifetch_event(0x100, false), "fires outside tx");
        assert!(!p.ifetch_event(0x100, true), "suppressed inside tx");
        assert!(!p.store_event(0x100, 8, true));
    }

    #[test]
    fn tend_event_knob() {
        let p = PerControls {
            enabled: true,
            tend_event: true,
            ..PerControls::default()
        };
        assert!(p.tend_event_fires());
        let q = PerControls {
            enabled: false,
            tend_event: true,
            ..PerControls::default()
        };
        assert!(!q.tend_event_fires());
    }
}
