//! A small two-pass assembler producing executable [`Program`]s.

use crate::decoded::{self, DecodedInstr};
use crate::instr::{cc_mask, CmpCond, Instr, MemOperand, RegOrImm};
use crate::reg::Reg;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use ztm_core::{GrSaveMask, TbeginParams};

/// An assembled program: instructions plus their byte addresses, so that
/// transaction resume points (§II.A) and the constrained text-span rule
/// (§II.D) operate on realistic instruction addresses. Assembly also lowers
/// the program once into a flat [`DecodedInstr`] table, which is what the
/// interpreter dispatches over.
#[derive(Debug, Clone)]
pub struct Program {
    instrs: Vec<Instr>,
    addrs: Vec<u64>,
    decoded: Vec<DecodedInstr>,
    tparams: Vec<TbeginParams>,
    /// Per-instruction superblock ends ([`decoded::superblocks`]), computed
    /// once at assemble time for the batched stepper.
    sb_end: Vec<u32>,
    base: u64,
}

impl Program {
    /// The instruction at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn instr(&self, idx: usize) -> &Instr {
        &self.instrs[idx]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Byte address of instruction `idx`.
    pub fn addr_of(&self, idx: usize) -> u64 {
        self.addrs[idx]
    }

    /// The instruction index at a byte address (used to resume after abort).
    /// `addrs` is strictly increasing by construction, so a binary search
    /// replaces the hash map this used to keep.
    pub fn index_of_addr(&self, addr: u64) -> Option<usize> {
        self.addrs.binary_search(&addr).ok()
    }

    /// The decoded record for instruction `idx` (the interpreter's view).
    #[inline]
    pub fn decoded(&self, idx: usize) -> &DecodedInstr {
        &self.decoded[idx]
    }

    /// The TBEGIN/TBEGINC operand side table referenced by
    /// [`DecodedInstr::params`].
    #[inline]
    pub fn tbegin_params(&self, slot: u16) -> &TbeginParams {
        &self.tparams[slot as usize]
    }

    /// Exclusive end of the straight-line superblock containing instruction
    /// `idx` (see [`decoded::superblocks`]): every index in
    /// `idx..superblock_end(idx)` executes sequentially unless a step
    /// faults, stalls, aborts, or branches — always `> idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn superblock_end(&self, idx: usize) -> usize {
        self.sb_end[idx] as usize
    }

    /// Reconstructs instruction `idx` from its decoded record (exact
    /// inverse of the predecode lowering; used by the round-trip tests).
    pub fn reconstruct(&self, idx: usize) -> Instr {
        self.decoded[idx].reify(&self.tparams)
    }

    /// The full instruction slice (legacy interpreter path).
    pub(crate) fn raw_instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Base byte address of the program text.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Whether a branch from `from` to `target` points backward (§II.D
    /// forbids backward branches in constrained transactions).
    pub fn is_backward(&self, from: usize, target: usize) -> bool {
        self.addrs[target] <= self.addrs[from]
    }
}

/// Error from [`Assembler::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch references a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl Error for AsmError {}

/// A two-pass assembler with named labels.
///
/// # Examples
///
/// ```
/// use ztm_isa::{Assembler, gr::*};
///
/// let mut a = Assembler::new(0x1000);
/// a.lghi(R0, 0);
/// a.label("loop");
/// a.aghi(R0, 1);
/// a.cgij_lt(R0, 10, "loop");
/// a.halt();
/// let prog = a.assemble()?;
/// assert_eq!(prog.len(), 4);
/// assert_eq!(prog.base(), 0x1000);
/// # Ok::<(), ztm_isa::AsmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    instrs: Vec<Instr>,
    /// For each instruction with a label operand: (instr index, label).
    fixups: Vec<(usize, String)>,
    labels: HashMap<String, usize>,
    base: u64,
    duplicate: Option<String>,
}

impl Assembler {
    /// Creates an assembler placing the program text at `base`.
    pub fn new(base: u64) -> Self {
        Assembler {
            base,
            ..Assembler::default()
        }
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self
            .labels
            .insert(name.to_string(), self.instrs.len())
            .is_some()
        {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    fn push_branch(&mut self, i: Instr, label: &str) -> &mut Self {
        self.fixups.push((self.instrs.len(), label.to_string()));
        self.instrs.push(i);
        self
    }

    /// Resolves labels and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] or [`AsmError::DuplicateLabel`].
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if let Some(d) = &self.duplicate {
            return Err(AsmError::DuplicateLabel(d.clone()));
        }
        let mut instrs = self.instrs.clone();
        for (idx, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            match &mut instrs[*idx] {
                Instr::Brc(_, t) | Instr::Cgij(_, _, _, t) | Instr::Brctg(_, t) => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        let mut addrs = Vec::with_capacity(instrs.len());
        let mut a = self.base;
        for instr in &instrs {
            addrs.push(a);
            a += instr.len();
        }
        let (decoded, tparams) = decoded::predecode(&instrs, &addrs);
        let sb_end = decoded::superblocks(&decoded);
        Ok(Program {
            instrs,
            addrs,
            decoded,
            tparams,
            sb_end,
            base: self.base,
        })
    }

    // ---- convenience constructors (Figure 1 / Figure 3 style) ----

    /// `LGHI r, imm`.
    pub fn lghi(&mut self, r: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Lghi(r, imm))
    }

    /// `LG r, mem`.
    pub fn lg(&mut self, r: Reg, mem: MemOperand) -> &mut Self {
        self.push(Instr::Lg(r, mem))
    }

    /// `STG r, mem`.
    pub fn stg(&mut self, r: Reg, mem: MemOperand) -> &mut Self {
        self.push(Instr::Stg(r, mem))
    }

    /// `LTG r, mem` — load and test (the lock check of Figure 1).
    pub fn ltg(&mut self, r: Reg, mem: MemOperand) -> &mut Self {
        self.push(Instr::Ltg(r, mem))
    }

    /// `LGR r1, r2`.
    pub fn lgr(&mut self, r1: Reg, r2: Reg) -> &mut Self {
        self.push(Instr::Lgr(r1, r2))
    }

    /// `LA r, mem`.
    pub fn la(&mut self, r: Reg, mem: MemOperand) -> &mut Self {
        self.push(Instr::La(r, mem))
    }

    /// `CSG r1, r3, mem` — compare and swap.
    pub fn csg(&mut self, r1: Reg, r3: Reg, mem: MemOperand) -> &mut Self {
        self.push(Instr::Csg(r1, r3, mem))
    }

    /// `NTSTG r, mem` — non-transactional store (§II.A).
    pub fn ntstg(&mut self, r: Reg, mem: MemOperand) -> &mut Self {
        self.push(Instr::Ntstg(r, mem))
    }

    /// `AGHI r, imm`.
    pub fn aghi(&mut self, r: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Aghi(r, imm))
    }

    /// `AGR r1, r2`.
    pub fn agr(&mut self, r1: Reg, r2: Reg) -> &mut Self {
        self.push(Instr::Agr(r1, r2))
    }

    /// `SGR r1, r2`.
    pub fn sgr(&mut self, r1: Reg, r2: Reg) -> &mut Self {
        self.push(Instr::Sgr(r1, r2))
    }

    /// `SLLG r1, r2, amount`.
    pub fn sllg(&mut self, r1: Reg, r2: Reg, amount: u8) -> &mut Self {
        self.push(Instr::Sllg(r1, r2, amount))
    }

    /// `SRLG r1, r2, amount`.
    pub fn srlg(&mut self, r1: Reg, r2: Reg, amount: u8) -> &mut Self {
        self.push(Instr::Srlg(r1, r2, amount))
    }

    /// `NGR r1, r2`.
    pub fn ngr(&mut self, r1: Reg, r2: Reg) -> &mut Self {
        self.push(Instr::Ngr(r1, r2))
    }

    /// `CGHI r, imm` — compare immediate.
    pub fn cghi(&mut self, r: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Cghi(r, imm))
    }

    /// `CGR r1, r2` — compare registers.
    pub fn cgr(&mut self, r1: Reg, r2: Reg) -> &mut Self {
        self.push(Instr::Cgr(r1, r2))
    }

    /// `CG r, mem` — compare register with memory.
    pub fn cg(&mut self, r: Reg, mem: MemOperand) -> &mut Self {
        self.push(Instr::Cg(r, mem))
    }

    /// `LTGR r1, r2` — load and test register.
    pub fn ltgr(&mut self, r1: Reg, r2: Reg) -> &mut Self {
        self.push(Instr::Ltgr(r1, r2))
    }

    /// `J label` — unconditional jump.
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.push_branch(Instr::Brc(cc_mask::ALWAYS, 0), label)
    }

    /// `JZ label` — jump if CC = 0.
    pub fn jz(&mut self, label: &str) -> &mut Self {
        self.push_branch(Instr::Brc(cc_mask::ZERO, 0), label)
    }

    /// `JNZ label` — jump if CC ≠ 0 (Figure 1's abort check after TBEGIN).
    pub fn jnz(&mut self, label: &str) -> &mut Self {
        self.push_branch(Instr::Brc(cc_mask::NOT_ZERO, 0), label)
    }

    /// `JO label` — jump if CC = 3 (Figure 1: "no retry if CC=3").
    pub fn jo(&mut self, label: &str) -> &mut Self {
        self.push_branch(Instr::Brc(cc_mask::ONES, 0), label)
    }

    /// `JL label` — jump if CC = 1.
    pub fn jl(&mut self, label: &str) -> &mut Self {
        self.push_branch(Instr::Brc(cc_mask::LOW, 0), label)
    }

    /// `JH label` — jump if CC = 2.
    pub fn jh(&mut self, label: &str) -> &mut Self {
        self.push_branch(Instr::Brc(cc_mask::HIGH, 0), label)
    }

    /// `BRC mask, label` with an explicit mask.
    pub fn brc(&mut self, mask: u8, label: &str) -> &mut Self {
        self.push_branch(Instr::Brc(mask, 0), label)
    }

    /// `CGIJNL r, imm, label` — compare and jump if not low (Figure 1's
    /// retry-threshold check).
    pub fn cgij_ge(&mut self, r: Reg, imm: i64, label: &str) -> &mut Self {
        self.push_branch(Instr::Cgij(r, imm, CmpCond::Ge, 0), label)
    }

    /// Compare and jump if less.
    pub fn cgij_lt(&mut self, r: Reg, imm: i64, label: &str) -> &mut Self {
        self.push_branch(Instr::Cgij(r, imm, CmpCond::Lt, 0), label)
    }

    /// Compare and jump if equal.
    pub fn cgij_eq(&mut self, r: Reg, imm: i64, label: &str) -> &mut Self {
        self.push_branch(Instr::Cgij(r, imm, CmpCond::Eq, 0), label)
    }

    /// Compare and jump if not equal.
    pub fn cgij_ne(&mut self, r: Reg, imm: i64, label: &str) -> &mut Self {
        self.push_branch(Instr::Cgij(r, imm, CmpCond::Ne, 0), label)
    }

    /// `BRCTG r, label` — decrement and branch while non-zero.
    pub fn brctg(&mut self, r: Reg, label: &str) -> &mut Self {
        self.push_branch(Instr::Brctg(r, 0), label)
    }

    /// `TBEGIN` with the given operand fields.
    pub fn tbegin(&mut self, params: TbeginParams) -> &mut Self {
        self.push(Instr::Tbegin(params))
    }

    /// `TBEGINC` (§II.D).
    pub fn tbeginc(&mut self, grsm: GrSaveMask) -> &mut Self {
        self.push(Instr::Tbeginc(grsm))
    }

    /// `TEND`.
    pub fn tend(&mut self) -> &mut Self {
        self.push(Instr::Tend)
    }

    /// `TABORT imm`.
    pub fn tabort(&mut self, code: u64) -> &mut Self {
        self.push(Instr::Tabort(RegOrImm::Imm(code)))
    }

    /// `ETND r`.
    pub fn etnd(&mut self, r: Reg) -> &mut Self {
        self.push(Instr::Etnd(r))
    }

    /// `PPA r` (function code TX).
    pub fn ppa(&mut self, r: Reg) -> &mut Self {
        self.push(Instr::Ppa(r))
    }

    /// `STCKF mem`.
    pub fn stckf(&mut self, mem: MemOperand) -> &mut Self {
        self.push(Instr::Stckf(mem))
    }

    /// Read the cycle clock into a register (simulator helper).
    pub fn rdclk(&mut self, r: Reg) -> &mut Self {
        self.push(Instr::Rdclk(r))
    }

    /// `r ← uniform(0..bound)` (simulator helper, zero cost).
    pub fn rand_mod(&mut self, r: Reg, bound: RegOrImm) -> &mut Self {
        self.push(Instr::RandMod(r, bound))
    }

    /// `STMNOTE kind, r` — software-TM observability marker (zero cost).
    pub fn stm_note(&mut self, kind: u8, r: Reg) -> &mut Self {
        self.push(Instr::StmNote(kind, r))
    }

    /// `NOP`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Burn `n` cycles (back-off pause).
    pub fn delay(&mut self, n: u64) -> &mut Self {
        self.push(Instr::Delay(n))
    }

    /// `HALT` — stop the CPU.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::gr::*;

    #[test]
    fn label_resolution() {
        let mut a = Assembler::new(0);
        a.label("start");
        a.lghi(R0, 1);
        a.j("end");
        a.lghi(R0, 2);
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.instr(1).branch_target(), Some(3));
    }

    #[test]
    fn forward_label() {
        let mut a = Assembler::new(0);
        a.jnz("later");
        a.nop();
        a.label("later");
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.instr(0).branch_target(), Some(2));
        assert!(!p.is_backward(0, 2));
        assert!(p.is_backward(2, 0));
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Assembler::new(0);
        a.j("nowhere");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Assembler::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn byte_addresses_accumulate_lengths() {
        let mut a = Assembler::new(0x100);
        a.nop(); // 2 bytes at 0x100
        a.lghi(R0, 1); // 4 bytes at 0x102
        a.lg(R1, MemOperand::absolute(0)); // 6 bytes at 0x106
        a.halt(); // at 0x10c
        let p = a.assemble().unwrap();
        assert_eq!(p.addr_of(0), 0x100);
        assert_eq!(p.addr_of(1), 0x102);
        assert_eq!(p.addr_of(2), 0x106);
        assert_eq!(p.addr_of(3), 0x10c);
        assert_eq!(p.index_of_addr(0x106), Some(2));
        assert_eq!(p.index_of_addr(0x107), None);
        assert_eq!(p.base(), 0x100);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn self_branch_is_backward() {
        let mut a = Assembler::new(0);
        a.label("spin");
        a.j("spin");
        let p = a.assemble().unwrap();
        assert!(p.is_backward(0, 0));
    }
}
