//! Architectural register state: GRs, ARs, FPRs, and the PSW essentials.

use crate::per::PerControls;
use std::fmt;

/// A general-register designation (0–15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Creates a register designation.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub fn new(n: u8) -> Self {
        assert!(n < 16, "GR designation out of range");
        Reg(n)
    }

    /// The register number as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Convenient register constants (`R0`–`R15`).
pub mod gr {
    use super::Reg;
    /// General register 0.
    pub const R0: Reg = Reg(0);
    /// General register 1.
    pub const R1: Reg = Reg(1);
    /// General register 2.
    pub const R2: Reg = Reg(2);
    /// General register 3.
    pub const R3: Reg = Reg(3);
    /// General register 4.
    pub const R4: Reg = Reg(4);
    /// General register 5.
    pub const R5: Reg = Reg(5);
    /// General register 6.
    pub const R6: Reg = Reg(6);
    /// General register 7.
    pub const R7: Reg = Reg(7);
    /// General register 8.
    pub const R8: Reg = Reg(8);
    /// General register 9.
    pub const R9: Reg = Reg(9);
    /// General register 10.
    pub const R10: Reg = Reg(10);
    /// General register 11.
    pub const R11: Reg = Reg(11);
    /// General register 12.
    pub const R12: Reg = Reg(12);
    /// General register 13.
    pub const R13: Reg = Reg(13);
    /// General register 14.
    pub const R14: Reg = Reg(14);
    /// General register 15.
    pub const R15: Reg = Reg(15);
}

/// Why a CPU stopped running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HaltReason {
    /// The program executed HALT (normal completion).
    Completed,
    /// The simulated OS terminated the program (unrecoverable exception).
    Terminated(String),
}

/// Execution state of a simulated CPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuState {
    /// Executing instructions.
    Running,
    /// Stopped.
    Halted(HaltReason),
}

/// The architectural core state of one simulated CPU: 16 general registers,
/// 16 access registers, 16 floating-point registers, the condition code, the
/// instruction counter, and a local cycle clock (read by STCKF, §IV).
#[derive(Debug, Clone)]
pub struct CpuCore {
    /// General registers.
    pub grs: [u64; 16],
    /// Access registers (no transactional save/restore — §II.B).
    pub ars: [u32; 16],
    /// Floating-point registers (no transactional save/restore).
    pub fprs: [u64; 16],
    /// Condition code (0–3).
    pub cc: u8,
    /// Program counter: an index into the current [`crate::Program`].
    pub pc: usize,
    /// Local cycle clock.
    pub clock: u64,
    /// Run state.
    pub state: CpuState,
    /// PER controls (§II.E.2).
    pub per: PerControls,
    /// Count of PER events presented (for debugger modeling, §II.E.2).
    pub per_events: u64,
    /// Count of completed instructions.
    pub instructions: u64,
}

impl CpuCore {
    /// Creates a zeroed core at instruction index 0.
    pub fn new() -> Self {
        CpuCore {
            grs: [0; 16],
            ars: [0; 16],
            fprs: [0; 16],
            cc: 0,
            pc: 0,
            clock: 0,
            state: CpuState::Running,
            per: PerControls::disabled(),
            per_events: 0,
            instructions: 0,
        }
    }

    /// Reads a general register.
    pub fn gr(&self, r: Reg) -> u64 {
        self.grs[r.index()]
    }

    /// Writes a general register.
    pub fn set_gr(&mut self, r: Reg, v: u64) {
        self.grs[r.index()] = v;
    }

    /// Whether the CPU is still running.
    pub fn is_running(&self) -> bool {
        self.state == CpuState::Running
    }

    /// Sets the condition code from a signed comparison.
    pub fn set_cc_cmp(&mut self, a: i64, b: i64) {
        self.cc = match a.cmp(&b) {
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Less => 1,
            std::cmp::Ordering::Greater => 2,
        };
    }

    /// Sets the condition code from a signed value (load-and-test style).
    pub fn set_cc_value(&mut self, v: i64) {
        self.cc = match v.cmp(&0) {
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Less => 1,
            std::cmp::Ordering::Greater => 2,
        };
    }
}

impl Default for CpuCore {
    fn default() -> Self {
        CpuCore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_bounds() {
        assert_eq!(Reg::new(15).index(), 15);
        assert_eq!(gr::R7, Reg(7));
        assert_eq!(gr::R7.to_string(), "r7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range() {
        let _ = Reg::new(16);
    }

    #[test]
    fn cc_helpers() {
        let mut c = CpuCore::new();
        c.set_cc_cmp(1, 1);
        assert_eq!(c.cc, 0);
        c.set_cc_cmp(0, 1);
        assert_eq!(c.cc, 1);
        c.set_cc_cmp(2, 1);
        assert_eq!(c.cc, 2);
        c.set_cc_value(-5);
        assert_eq!(c.cc, 1);
        c.set_cc_value(0);
        assert_eq!(c.cc, 0);
        c.set_cc_value(5);
        assert_eq!(c.cc, 2);
    }

    #[test]
    fn gr_accessors() {
        let mut c = CpuCore::new();
        c.set_gr(gr::R3, 42);
        assert_eq!(c.gr(gr::R3), 42);
        assert!(c.is_running());
    }
}
