//! In-order issue window: a timing overlay over the scalar interpreter.
//!
//! The zEC12 core decodes three instructions per cycle and overlaps load
//! latency inside the GRSM micro-op pipeline (§II.B); the scalar [`step`]
//! retires one instruction per scheduler step with a purely additive cost
//! model. [`step_pipelined`] keeps the *functional* execution exactly as it
//! is — one instruction fully executes per call, in program order, so TX
//! journals, store-cache gathering, and the stamp-exact directory walk see
//! the identical access sequence — and layers a compact scoreboard on top
//! that decides *when* each instruction issues:
//!
//! - up to `width` instructions issue per cycle, at most `lsu_ports` of
//!   them memory operations;
//! - an instruction issues once its source registers (and the condition
//!   code, for conditional branches) are ready; register results become
//!   ready `cycles` after issue, so an L1/L2 load miss overlaps with
//!   younger non-dependent ALU work;
//! - loads and stores never issue before an older store's completion (no
//!   forwarding model — conservative, but order-exact);
//! - a taken branch closes the current issue group (one redirect per
//!   cycle);
//! - serializing instructions (TBEGIN/TBEGINC/TEND/TABORT, CSG, PPA, ETND,
//!   clock reads, access/FP registers, privileged ops, HALT) *drain* the
//!   window: every in-flight completion lands first, then the instruction
//!   executes alone. Pending aborts drain too, so millicode always sees a
//!   quiesced pipeline.
//!
//! The core's clock advances to each instruction's *issue* cycle (the
//! scheduler therefore interleaves CPUs by issue time), while the window's
//! `horizon` tracks the latest completion; drain points and HALT push the
//! clock to the horizon, so `elapsed_cycles` is the true retire time.
//!
//! At `width == 1` every instruction takes the drain path with an empty
//! window, which reduces to `clock += cycles` — byte-identical to the
//! scalar interpreter, which the lockstep differential in
//! `tests/pipeline.rs` pins down.
//!
//! [`step`]: crate::step

use crate::asm::Program;
use crate::cpu::{step_inner, StepEvent, StepOutcome};
use crate::decoded::{DecodedInstr, Op, FLAG_OPERAND_REG, NO_REG};
use crate::machine::Machine;
use crate::reg::CpuCore;

/// Why an instruction's issue was delayed past its candidate cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// A source register was still in flight (RAW hazard).
    RegisterDep,
    /// The condition code was still in flight (conditional branch after an
    /// uncompleted CC setter).
    ConditionCode,
    /// An older store had not completed (no store forwarding).
    StoreOrder,
}

impl StallReason {
    /// Stable small-integer code used in trace events.
    pub fn code(self) -> u8 {
        match self {
            StallReason::RegisterDep => 0,
            StallReason::ConditionCode => 1,
            StallReason::StoreOrder => 2,
        }
    }
}

/// What the window observed during the last [`step_pipelined`] call, for
/// trace emission by the system (the window itself has no tracer handle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IssueReport {
    /// An issue group closed this step; carries its size in instructions.
    pub closed_group: Option<u8>,
    /// Issue was delayed by a hazard: the reason and the cycles waited.
    pub stall: Option<(StallReason, u64)>,
}

/// Whether an instruction reaches the memory pipes, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemKind {
    None,
    Load,
    Store,
}

/// Register/CC/memory hazard sources and sinks of one decoded instruction.
struct Deps {
    src: [u8; 3],
    dst: u8,
    reads_cc: bool,
    sets_cc: bool,
    kind: MemKind,
}

impl Default for Deps {
    fn default() -> Self {
        Deps {
            src: [NO_REG; 3],
            dst: NO_REG,
            reads_cc: false,
            sets_cc: false,
            kind: MemKind::None,
        }
    }
}

/// Instructions that drain the window before executing: transaction
/// boundaries (journals and footprint walks must see a quiesced pipeline),
/// interlocked CSG, millicoded helpers, clock reads (they read `core.clock`,
/// which must equal the retire horizon), and the rare AR/FP/privileged ops.
fn is_serial(op: Op) -> bool {
    matches!(
        op,
        Op::Tbegin
            | Op::Tbeginc
            | Op::Tend
            | Op::Tabort
            | Op::Csg
            | Op::Ppa
            | Op::Etnd
            | Op::Stckf
            | Op::Rdclk
            | Op::Privileged
            | Op::Delay
            | Op::Halt
            | Op::Sar
            | Op::Ear
            | Op::Adbr
    )
}

/// The hazard classifier, mirroring the operand slots the predecode pass
/// (`decoded.rs`) fills and `step_inner` reads. Serial ops never reach it.
fn deps(d: &DecodedInstr) -> Deps {
    let mut p = Deps::default();
    match d.op {
        Op::Lg => {
            p.kind = MemKind::Load;
            p.src = [d.base, d.index, NO_REG];
            p.dst = d.r1;
        }
        Op::Ltg => {
            p.kind = MemKind::Load;
            p.src = [d.base, d.index, NO_REG];
            p.dst = d.r1;
            p.sets_cc = true;
        }
        Op::Stg | Op::Ntstg => {
            p.kind = MemKind::Store;
            p.src = [d.r1, d.base, d.index];
        }
        Op::Lghi => p.dst = d.r1,
        Op::Lgr => {
            p.src[0] = d.r2;
            p.dst = d.r1;
        }
        Op::La => {
            p.src = [d.base, d.index, NO_REG];
            p.dst = d.r1;
        }
        Op::Agr | Op::Sgr | Op::Ngr | Op::Xgr => {
            p.src = [d.r1, d.r2, NO_REG];
            p.dst = d.r1;
            p.sets_cc = true;
        }
        Op::Aghi => {
            p.src[0] = d.r1;
            p.dst = d.r1;
            p.sets_cc = true;
        }
        Op::Msgr | Op::Dsgr => {
            p.src = [d.r1, d.r2, NO_REG];
            p.dst = d.r1;
        }
        Op::Sllg | Op::Srlg => {
            p.src[0] = d.r2;
            p.dst = d.r1;
        }
        Op::Ltgr => {
            p.src[0] = d.r2;
            p.dst = d.r1;
            p.sets_cc = true;
        }
        Op::Cgr => {
            p.src = [d.r1, d.r2, NO_REG];
            p.sets_cc = true;
        }
        Op::Cghi => {
            p.src[0] = d.r1;
            p.sets_cc = true;
        }
        Op::Cg => {
            p.kind = MemKind::Load;
            p.src = [d.r1, d.base, d.index];
            p.sets_cc = true;
        }
        // Mask 15 branches unconditionally and mask 0 never branches —
        // neither consults the CC (`d.aux` is the mask).
        Op::Brc => p.reads_cc = d.aux != 15 && d.aux != 0,
        Op::Cgij => p.src[0] = d.r1,
        Op::Brctg => {
            p.src[0] = d.r1;
            p.dst = d.r1;
        }
        Op::Br => p.src[0] = d.r1,
        Op::RandMod => {
            if d.flags & FLAG_OPERAND_REG != 0 {
                p.src[0] = d.r2;
            }
            p.dst = d.r1;
        }
        // STMNOTE only reads its register for the machine hook; it writes
        // nothing and costs nothing.
        Op::StmNote => p.src[0] = d.r1,
        Op::Decimal | Op::Nop => {}
        // Serial ops are drained before execution and never scoreboarded.
        _ => debug_assert!(is_serial(d.op), "unclassified op {:?}", d.op),
    }
    p
}

/// Per-core scoreboard state. All times are absolute core-clock values, so
/// the window survives external clock bumps (quiesce release) by resyncing.
#[derive(Debug, Clone)]
pub struct IssueWindow {
    width: u64,
    lsu_ports: u64,
    /// Current issue cycle (== `core.clock` after every pipelined step).
    cycle: u64,
    /// Instructions issued in the current cycle.
    issued: u64,
    /// Memory operations issued in the current cycle.
    mem_issued: u64,
    /// Completion clock of the last writer of each GR.
    reg_ready: [u64; 16],
    /// Completion clock of the last CC setter.
    cc_ready: u64,
    /// Completion clock of the last store (no forwarding model).
    store_ready: u64,
    /// Latest completion in flight — the retire horizon drains land on.
    horizon: u64,
    report: IssueReport,
}

impl IssueWindow {
    /// A window issuing up to `width` instructions per cycle, at most
    /// `lsu_ports` of them memory operations.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `lsu_ports` is zero.
    pub fn new(width: u64, lsu_ports: u64) -> IssueWindow {
        assert!(width > 0, "issue width must be at least 1");
        assert!(lsu_ports > 0, "at least one LSU port is required");
        IssueWindow {
            width,
            lsu_ports,
            cycle: 0,
            issued: 0,
            mem_issued: 0,
            reg_ready: [0; 16],
            cc_ready: 0,
            store_ready: 0,
            horizon: 0,
            report: IssueReport::default(),
        }
    }

    /// The configured issue width.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Takes (and clears) the issue/stall observations of the last step.
    pub fn take_report(&mut self) -> IssueReport {
        std::mem::take(&mut self.report)
    }

    /// Empties the window at `clock`: everything in flight has completed.
    fn reset_to(&mut self, clock: u64) {
        self.cycle = clock;
        self.issued = 0;
        self.mem_issued = 0;
        self.horizon = clock;
    }

    /// Realigns with an externally bumped core clock (quiesce release,
    /// direct `core_mut` pokes). Ready times are absolute, so only the
    /// issue cycle and group counters need to move.
    fn resync(&mut self, clock: u64) {
        self.cycle = clock;
        self.issued = 0;
        self.mem_issued = 0;
        if self.horizon < clock {
            self.horizon = clock;
        }
    }

    /// Closes the current issue group, recording its size.
    fn close_group(&mut self, next_cycle: u64) {
        if self.issued > 0 {
            self.report.closed_group = Some(self.issued.min(255) as u8);
        }
        self.cycle = next_cycle;
        self.issued = 0;
        self.mem_issued = 0;
    }
}

/// Executes one instruction through the issue window.
///
/// Functionally identical to [`step`](crate::step) — the same `step_inner`
/// runs, in program order — but `core.clock` advances to the instruction's
/// issue cycle as computed by the scoreboard, and the returned
/// [`StepOutcome::cycles`] is the clock delta (possibly zero when several
/// instructions issue in one cycle). Serializing instructions and any
/// non-retiring step (stall, abort, fault retry) drain the window first.
pub fn step_pipelined(
    core: &mut CpuCore,
    prog: &Program,
    m: &mut impl Machine,
    win: &mut IssueWindow,
) -> StepOutcome {
    if !core.is_running() {
        return StepOutcome {
            cycles: 0,
            event: StepEvent::Halted,
            broadcast_stop: false,
        };
    }
    if core.clock > win.cycle {
        win.resync(core.clock);
    }
    let start = core.clock;
    let idx = core.pc;
    let d = *prog.decoded(idx);

    if win.width == 1 || is_serial(d.op) || m.pending_abort() {
        // Drain: land every in-flight completion, then execute alone. At
        // width 1 the window is always empty (horizon == clock), so this
        // path is exactly the scalar `clock += cycles`.
        if win.horizon > core.clock {
            core.clock = win.horizon;
        }
        win.reset_to(core.clock);
        let out = step_inner(core, prog, m);
        core.clock += out.cycles;
        win.reset_to(core.clock);
        return StepOutcome {
            cycles: core.clock - start,
            ..out
        };
    }

    let pre_instructions = core.instructions;
    let out = step_inner(core, prog, m);
    if core.instructions == pre_instructions {
        // The step did not retire (XI stall, abort, fault retry,
        // termination): drain, then charge the scalar cost on top. Sound
        // because none of those paths read `core.clock`.
        core.clock = core.clock.max(win.horizon) + out.cycles;
        win.reset_to(core.clock);
        return StepOutcome {
            cycles: core.clock - start,
            ..out
        };
    }

    // Retired normally: find the issue cycle the scoreboard allows.
    let dep = deps(&d);
    let mem = dep.kind != MemKind::None;
    let mut candidate = win.cycle;
    if win.issued >= win.width || (mem && win.mem_issued >= win.lsu_ports) {
        candidate += 1;
    }
    let mut issue_at = candidate;
    let mut stall = None;
    for &s in &dep.src {
        if s != NO_REG && win.reg_ready[s as usize] > issue_at {
            issue_at = win.reg_ready[s as usize];
            stall = Some(StallReason::RegisterDep);
        }
    }
    if dep.reads_cc && win.cc_ready > issue_at {
        issue_at = win.cc_ready;
        stall = Some(StallReason::ConditionCode);
    }
    if mem && win.store_ready > issue_at {
        issue_at = win.store_ready;
        stall = Some(StallReason::StoreOrder);
    }
    if issue_at > win.cycle {
        win.close_group(issue_at);
    }
    if let Some(reason) = stall {
        let waited = issue_at - candidate;
        if waited > 0 {
            win.report.stall = Some((reason, waited));
        }
    }

    // The scalar cost model charges every instruction a 1-cycle
    // fetch/decode base on top of its execute latency. In the pipelined
    // view that base cycle is the issue slot itself (fetch/decode proceed
    // under older instructions), so a dependent consumer waits only the
    // execute latency: an L1-hit load (scalar cost 2) forwards to its
    // consumer on the next cycle, while a genuine miss still keeps it
    // waiting out the full memory latency.
    let completion = issue_at + out.cycles.saturating_sub(1).max(1);
    if dep.dst != NO_REG {
        win.reg_ready[dep.dst as usize] = completion;
    }
    if dep.sets_cc {
        win.cc_ready = completion;
    }
    if dep.kind == MemKind::Store {
        win.store_ready = completion;
    }
    if completion > win.horizon {
        win.horizon = completion;
    }
    win.issued += 1;
    if mem {
        win.mem_issued += 1;
    }
    core.clock = issue_at;
    if core.pc != idx + 1 {
        // Taken branch: the redirect closes the group.
        win.close_group(issue_at + 1);
    }
    StepOutcome {
        cycles: core.clock - start,
        ..out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::instr::MemOperand;
    use crate::machine::SimpleMachine;
    use crate::reg::gr::*;

    fn alu_pair_prog() -> Program {
        // Two independent 1-cycle chains: at width 2+ they issue in pairs.
        let mut a = Assembler::new(0);
        a.lghi(R6, 100);
        a.label("loop");
        a.aghi(R2, 1);
        a.sllg(R3, R4, 1);
        a.aghi(R2, 1);
        a.sllg(R3, R4, 1);
        a.brctg(R6, "loop");
        a.halt();
        a.assemble().unwrap()
    }

    fn run(width: u64) -> (u64, u64) {
        let prog = alu_pair_prog();
        let mut core = CpuCore::default();
        let mut m = SimpleMachine::new(99);
        let mut win = IssueWindow::new(width, 2);
        loop {
            let out = step_pipelined(&mut core, &prog, &mut m, &mut win);
            if out.event == StepEvent::Halted {
                break;
            }
        }
        (core.clock, core.instructions)
    }

    #[test]
    fn width_1_matches_the_scalar_interpreter_exactly() {
        let prog = alu_pair_prog();
        let mut scalar = CpuCore::default();
        let mut m = SimpleMachine::new(99);
        loop {
            let out = crate::cpu::step(&mut scalar, &prog, &mut m);
            if out.event == StepEvent::Halted {
                break;
            }
        }
        let (clock, instructions) = run(1);
        assert_eq!(clock, scalar.clock);
        assert_eq!(instructions, scalar.instructions);
    }

    #[test]
    fn wider_windows_overlap_independent_alu_ops() {
        let (w1, n1) = run(1);
        let (w3, n3) = run(3);
        assert_eq!(n1, n3, "width changes timing, never the work done");
        assert!(
            w3 < w1,
            "width 3 must beat width 1: {w3} !< {w1} on independent ALU pairs"
        );
        // IPC must exceed 1.0 on this ALU-dominated kernel.
        assert!(
            n3 as f64 / w3 as f64 > 1.0,
            "ipc {} <= 1",
            n3 as f64 / w3 as f64
        );
    }

    #[test]
    fn dependent_chain_does_not_dual_issue() {
        // A fully dependent AGHI chain issues one per cycle at any width.
        let mut a = Assembler::new(0);
        for _ in 0..32 {
            a.aghi(R2, 1);
        }
        a.halt();
        let prog = a.assemble().unwrap();
        let run = |width| {
            let mut core = CpuCore::default();
            let mut m = SimpleMachine::new(99);
            let mut win = IssueWindow::new(width, 2);
            loop {
                if step_pipelined(&mut core, &prog, &mut m, &mut win).event == StepEvent::Halted {
                    break;
                }
            }
            core.clock
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn loads_overlap_with_younger_independent_alu_work() {
        // A load followed by independent ALU ops: the ALU ops issue under
        // the load's latency shadow, so width 3 finishes earlier.
        let mut a = Assembler::new(0);
        a.lghi(R6, 50);
        a.label("loop");
        a.lg(R1, MemOperand::absolute(0x1000));
        a.aghi(R2, 1);
        a.sllg(R3, R4, 2);
        a.brctg(R6, "loop");
        a.halt();
        let prog = a.assemble().unwrap();
        let run = |width| {
            let mut core = CpuCore::default();
            let mut m = SimpleMachine::new(99);
            let mut win = IssueWindow::new(width, 2);
            loop {
                if step_pipelined(&mut core, &prog, &mut m, &mut win).event == StepEvent::Halted {
                    break;
                }
            }
            core.clock
        };
        assert!(run(3) < run(1));
    }
}
