//! A z-flavored instruction set, assembler, and CPU interpreter for the ztm
//! simulator.
//!
//! This crate provides the architectural layer above the `ztm-core`
//! transaction engine:
//!
//! * [`Instr`] — a compact subset of z/Architecture plus the six
//!   Transactional Execution instructions (TBEGIN, TBEGINC, TEND, TABORT,
//!   ETND, NTSTG) and PPA (§II.A of the paper).
//! * [`Assembler`]/[`Program`] — a two-pass assembler with labels, producing
//!   programs with realistic byte addresses (needed for abort resume points
//!   and the constrained-transaction text-span rule).
//! * [`CpuCore`]/[`step`] — an interpreter that executes programs against a
//!   [`Machine`], handling condition codes, transaction begin/end/abort,
//!   interruption filtering, PER (§II.E.2), and XI-stall retries.
//! * [`Machine`] — the port implemented by the full system simulator
//!   (`ztm-sim`), with [`SimpleMachine`] as a single-CPU reference.
//!
//! # Example: the paper's Figure 1 shape
//!
//! ```
//! use ztm_isa::{Assembler, MemOperand, SimpleMachine, run_to_halt, gr::*};
//! use ztm_core::TbeginParams;
//!
//! let mut a = Assembler::new(0);
//! a.lghi(R0, 0);                         // retry count
//! a.label("loop");
//! a.tbegin(TbeginParams::new());         // begin transaction
//! a.jnz("abort");                        // CC!=0 → abort handler
//! a.ltg(R1, MemOperand::absolute(0x4000)); // load & test the fallback lock
//! a.jnz("abort");
//! a.lg(R2, MemOperand::absolute(0x4100));
//! a.aghi(R2, 1);
//! a.stg(R2, MemOperand::absolute(0x4100));
//! a.tend();                              // commit
//! a.halt();
//! a.label("abort");
//! a.halt();
//! let prog = a.assemble()?;
//!
//! let mut m = SimpleMachine::new(7);
//! run_to_halt(&prog, &mut m, 1_000);
//! assert_eq!(m.mem.load_u64(ztm_mem::Address::new(0x4100)), 1);
//! # Ok::<(), ztm_isa::AsmError>(())
//! ```

mod asm;
mod cpu;
pub mod decoded;
mod disasm;
mod instr;
mod machine;
mod per;
mod pipeline;
mod reg;

pub use asm::{AsmError, Assembler, Program};
pub use cpu::{effective_address_decoded, run_to_halt, step, step_legacy, StepEvent, StepOutcome};
pub use decoded::{superblocks, DecodedInstr, Op};
pub use instr::{cc_mask, CmpCond, Instr, MemOperand, RegOrImm};
pub use machine::{
    finish_abort, stm_note, AbortApply, AccessResult, CasResult, EndResult, ExceptionDisposition,
    Machine, OsDisposition, OsModel, SimpleMachine,
};
pub use per::PerControls;
pub use pipeline::{step_pipelined, IssueReport, IssueWindow, StallReason};
pub use reg::{gr, CpuCore, CpuState, HaltReason, Reg};
