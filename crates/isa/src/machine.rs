//! The [`Machine`] port: everything the CPU interpreter needs from the
//! memory/transaction subsystem, plus a reference single-CPU implementation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use ztm_core::{
    AbortCause, AbortOutcome, InstrClass, ProgramException, TbeginParams, TendOutcome, TxEngine,
};
use ztm_mem::{Address, MainMemory, PageAddr, PageTable};

/// Result of a load or store presented to the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The access completed. `value` is meaningful for loads.
    Done {
        /// Loaded value (0 for stores).
        value: u64,
        /// Access latency in cycles.
        cycles: u64,
    },
    /// The access could not complete because a conflicting owner stiff-armed
    /// the XI; retry the instruction after `cycles` (§III.C).
    Stall {
        /// Back-off delay before the retry.
        cycles: u64,
    },
    /// A program-exception condition was detected.
    Fault(ProgramException),
}

/// Result of a compare-and-swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasResult {
    /// The interlocked update completed.
    Done {
        /// Whether the swap happened (comparison matched).
        swapped: bool,
        /// The value observed in memory.
        old: u64,
        /// Access latency in cycles.
        cycles: u64,
    },
    /// Ownership could not be obtained yet; retry after `cycles`.
    Stall {
        /// Back-off delay before the retry.
        cycles: u64,
    },
    /// A program-exception condition was detected.
    Fault(ProgramException),
}

/// Result of TEND as seen by the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndResult {
    /// TEND executed outside transactional-execution mode.
    NotInTx,
    /// An inner nesting level closed.
    Inner {
        /// Execution cost.
        cycles: u64,
    },
    /// The outermost transaction committed.
    Commit {
        /// Execution cost.
        cycles: u64,
    },
    /// The diagnostic control forced an abort instead of committing
    /// (§II.E.3); the abort is pending.
    AbortPending,
}

/// What the interpreter must apply after the machine processed an abort.
#[derive(Debug, Clone)]
pub struct AbortApply {
    /// Byte address where execution resumes.
    pub resume_ia: u64,
    /// Condition code to set (2 or 3).
    pub cc: u8,
    /// Registers to restore from the backup file.
    pub gr_restores: Vec<(usize, u64)>,
    /// Total cycles consumed (millicode + OS + retry delay).
    pub cycles: u64,
    /// The simulated OS terminated the program.
    pub terminated: Option<String>,
    /// The constrained-retry ladder requested a broadcast-stop quiesce of
    /// all other CPUs for the next retry (§III.E).
    pub broadcast_stop: bool,
}

/// How the simulated OS handles an unfiltered exception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsDisposition {
    /// Service the fault (page-in) and let the program retry.
    PageIn(PageAddr),
    /// Observe (debugger/PER) and let the program continue.
    Observe,
    /// Terminate the program.
    Terminate(String),
}

/// A minimal OS model: interruption costs and exception dispositions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsModel {
    /// Cycles to service a page fault (trap + page-in + return).
    pub page_in_cost: u64,
    /// Cycles for an observational interruption (PER/debugger).
    pub observe_cost: u64,
    /// Cycles for an asynchronous interruption.
    pub async_cost: u64,
}

impl OsModel {
    /// Decides what the OS does with an unfiltered program exception.
    pub fn disposition(&self, pe: ProgramException) -> OsDisposition {
        match pe {
            ProgramException::PageFault { address } => {
                OsDisposition::PageIn(Address::new(address).page())
            }
            ProgramException::PerEvent => OsDisposition::Observe,
            ProgramException::FixedPointDivide => {
                OsDisposition::Terminate("fixed-point divide exception".into())
            }
            ProgramException::Operation => OsDisposition::Terminate("operation exception".into()),
            ProgramException::Specification => {
                OsDisposition::Terminate("specification exception".into())
            }
            ProgramException::ConstraintViolation => {
                OsDisposition::Terminate("transaction constraint violation".into())
            }
        }
    }
}

impl Default for OsModel {
    fn default() -> Self {
        OsModel {
            page_in_cost: 5_000,
            observe_cost: 500,
            async_cost: 1_000,
        }
    }
}

/// Disposition of an exception reported by the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExceptionDisposition {
    /// The OS serviced it; re-execute the instruction after `cycles`.
    Retry {
        /// Interruption service cost.
        cycles: u64,
    },
    /// The exception aborts the pending transaction; the abort is pending.
    PendingAbort,
    /// The program is terminated.
    Terminate(String),
}

/// Shared tail of abort processing: applies TDB stores and OS handling to an
/// [`AbortOutcome`]. Used by every [`Machine`] implementation.
pub fn finish_abort(
    out: AbortOutcome,
    mem: &mut MainMemory,
    pages: &mut PageTable,
    os: &OsModel,
    prefix_area: Address,
) -> AbortApply {
    let mut cycles = out.cycles;
    if let Some((addr, tdb)) = &out.tdb {
        tdb.store_to(mem, *addr);
    }
    if let Some(tdb) = &out.prefix_tdb {
        tdb.store_to(mem, prefix_area);
    }
    let mut terminated = None;
    if out.os_interruption {
        match out.cause {
            AbortCause::UnfilteredProgramException(pe) => match os.disposition(pe) {
                OsDisposition::PageIn(page) => {
                    pages.page_in(page);
                    cycles += os.page_in_cost;
                }
                OsDisposition::Observe => cycles += os.observe_cost,
                OsDisposition::Terminate(msg) => terminated = Some(msg),
            },
            AbortCause::AsynchronousInterruption => cycles += os.async_cost,
            _ => {}
        }
    }
    let mut broadcast_stop = false;
    if let Some(retry) = out.retry {
        cycles += retry.delay;
        broadcast_stop = retry.broadcast_stop;
    }
    AbortApply {
        resume_ia: out.resume_ia,
        cc: out.cc,
        gr_restores: out.gr_restores,
        cycles,
        terminated,
        broadcast_stop,
    }
}

/// Kind codes passed by the `STMNOTE` pseudo-instruction
/// ([`Instr::StmNote`](crate::Instr::StmNote)) to [`Machine::stm_note`] —
/// the observability points of the software-TM runtime (`ztm-stm`). The
/// noted register value's meaning depends on the kind.
pub mod stm_note {
    /// An STM transaction attempt begins; value = sampled read version.
    pub const BEGIN: u8 = 0;
    /// STM commit completed; value = write-set size.
    pub const COMMIT: u8 = 1;
    /// STM-level abort, about to retry; value = attempt count.
    pub const ABORT: u8 = 2;
    /// Stripe write-lock acquired; value = lockword address.
    pub const LOCK_ACQ: u8 = 3;
    /// Stripe write-lock released; value = lockword address.
    pub const LOCK_REL: u8 = 4;
    /// Read-set validation passed; value = read-set size.
    pub const VAL_PASS: u8 = 5;
    /// Read-set validation failed; value = offending lockword address.
    pub const VAL_FAIL: u8 = 6;
    /// The HTM retry ladder engaged the STM fallback; value = HTM attempt
    /// count at the transition.
    pub const FALLBACK: u8 = 7;
}

/// The port through which the CPU interpreter touches memory and the
/// Transactional Execution machinery.
///
/// Implemented by `ztm_sim::System` (full multi-CPU model with the cache
/// hierarchy and coherence fabric) and by [`SimpleMachine`] (single-CPU
/// reference used for ISA-semantics tests and examples).
pub trait Machine {
    /// Fetches the instruction at `addr` through the instruction cache.
    /// Returns the fetch cost; instruction-fetch page faults are reported
    /// as faults and are *never* filtered (§II.C).
    fn ifetch(&mut self, addr: Address) -> AccessResult;
    /// Loads `len` (1–8) bytes at `addr`, big-endian, right-aligned.
    /// `for_update` hints that a store to the same line is imminent (the
    /// OoO LSU merges the load miss with the store's exclusive fetch, so
    /// the line is fetched exclusive once — zEC12 behavior that lets
    /// stiff-arming protect the whole read-modify-write, §III.C).
    fn load(&mut self, addr: Address, len: u8, for_update: bool) -> AccessResult;
    /// Stores the low `len` bytes of `value` at `addr`.
    fn store(&mut self, addr: Address, len: u8, value: u64) -> AccessResult;
    /// NTSTG: non-transactional 8-byte store (§II.A). Must be doubleword
    /// aligned.
    fn store_nontx(&mut self, addr: Address, value: u64) -> AccessResult;
    /// Interlocked 8-byte compare-and-swap.
    fn compare_and_swap(&mut self, addr: Address, expected: u64, new: u64) -> CasResult;

    /// TBEGIN/TBEGINC. Abort conditions (nesting overflow, begin inside a
    /// constrained transaction) become pending aborts. Returns the begin
    /// cost in cycles.
    fn tx_begin(
        &mut self,
        constrained: bool,
        params: TbeginParams,
        grs: &[u64; 16],
        ia: u64,
        next_ia: u64,
    ) -> u64;
    /// TEND.
    fn tx_end(&mut self) -> EndResult;
    /// TABORT: requests an immediate abort with the given code.
    fn tx_abort_request(&mut self, code: u64);
    /// Current transaction nesting depth (ETND).
    fn tx_depth(&self) -> u64;
    /// Whether the CPU is in transactional-execution mode.
    fn in_tx(&self) -> bool;

    /// Per-instruction legality check (restricted instructions, AR/FPR
    /// controls, constrained constraints, diagnostic-control tick).
    /// Violations become pending aborts.
    fn check_instruction(&mut self, class: InstrClass, ia: u64, len: u64);
    /// Called after each completed instruction (resets the XI-reject
    /// counter, §III.C).
    fn instruction_retired(&mut self);
    /// Whether an abort is pending.
    fn pending_abort(&self) -> bool;
    /// Processes the pending abort (millicode, §III.E).
    ///
    /// # Panics
    ///
    /// Implementations may panic if no abort is pending.
    fn take_abort(&mut self, grs: &[u64; 16], atia: u64) -> AbortApply;
    /// Reports a program-exception condition detected while executing.
    fn report_exception(
        &mut self,
        pe: ProgramException,
        instruction_fetch: bool,
    ) -> ExceptionDisposition;
    /// STMNOTE observability hook: `kind` is one of the [`stm_note`] codes,
    /// `value` the noted register. Costs nothing and has no architectural
    /// effect; the default ignores it (the full simulator emits typed trace
    /// events and counts per-CPU STM statistics).
    fn stm_note(&mut self, _kind: u8, _value: u64) {}
    /// PPA function-code-TX delay for the given abort count (§II.A).
    fn ppa(&mut self, abort_count: u64) -> u64;
    /// Uniform random value in `0..bound` (the RAND pseudo-instruction).
    fn rand(&mut self, bound: u64) -> u64;
}

/// A reference single-CPU [`Machine`]: flat memory with a byte-granular
/// transactional overlay, a real [`TxEngine`], fixed 1-cycle accesses, and no
/// coherence (there is nobody to conflict with).
///
/// Useful for testing and demonstrating ISA-level transaction semantics —
/// atomicity, register rollback, nesting, filtering — without the cache
/// model. The full-system behavior lives in `ztm_sim::System`.
///
/// # Examples
///
/// ```
/// use ztm_isa::{Assembler, MemOperand, SimpleMachine, gr::*};
/// use ztm_isa::run_to_halt;
/// use ztm_core::TbeginParams;
///
/// let mut a = Assembler::new(0);
/// a.tbegin(TbeginParams::new());
/// a.jnz("skip");
/// a.lghi(R1, 7);
/// a.stg(R1, MemOperand::absolute(0x1000));
/// a.tend();
/// a.label("skip");
/// a.halt();
/// let prog = a.assemble()?;
///
/// let mut m = SimpleMachine::new(1);
/// let core = run_to_halt(&prog, &mut m, 10_000);
/// assert_eq!(m.mem.load_u64(ztm_mem::Address::new(0x1000)), 7);
/// assert_eq!(core.instructions, 5); // HALT does not retire
/// # Ok::<(), ztm_isa::AsmError>(())
/// ```
#[derive(Debug)]
pub struct SimpleMachine {
    /// Committed memory.
    pub mem: MainMemory,
    /// Page residency (evict pages to inject faults).
    pub pages: PageTable,
    /// The transaction engine.
    pub engine: TxEngine,
    /// OS model.
    pub os: OsModel,
    /// Where the prefix-area TDB copy is stored.
    pub prefix_area: Address,
    overlay: HashMap<u64, u8>,
    ntstg_buffer: Vec<(Address, u64)>,
    rng: SmallRng,
}

impl SimpleMachine {
    /// Creates a machine with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        SimpleMachine {
            mem: MainMemory::new(),
            pages: PageTable::all_resident(),
            engine: TxEngine::default(),
            os: OsModel::default(),
            prefix_area: Address::new(0xF000),
            overlay: HashMap::new(),
            ntstg_buffer: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn read(&self, addr: Address, len: u8) -> u64 {
        let mut v = 0u64;
        for i in 0..len {
            let a = addr.add(i as u64);
            let byte = self.overlay.get(&a.raw()).copied().unwrap_or_else(|| {
                let mut b = [0u8; 1];
                self.mem.load_bytes(a, &mut b);
                b[0]
            });
            v = v << 8 | byte as u64;
        }
        v
    }

    fn write(&mut self, addr: Address, len: u8, value: u64) {
        let bytes = value.to_be_bytes();
        let tx = self.engine.in_tx();
        for i in 0..len as usize {
            let a = addr.add(i as u64);
            let b = bytes[8 - len as usize + i];
            if tx {
                self.overlay.insert(a.raw(), b);
            } else {
                self.mem.store_bytes(a, &[b]);
            }
        }
    }

    fn check_access(&mut self, addr: Address, len: u8) -> Result<(), ProgramException> {
        if !addr.fits_in_line(len as u64) {
            return Err(ProgramException::Specification);
        }
        if self.pages.access(addr).is_err() {
            return Err(ProgramException::PageFault {
                address: addr.raw(),
            });
        }
        if self.engine.note_data_access(addr, len as u64).is_err() {
            // Constrained footprint exceeded: pending constraint violation.
            self.engine
                .set_pending(AbortCause::UnfilteredProgramException(
                    ProgramException::ConstraintViolation,
                ));
        }
        Ok(())
    }
}

impl Machine for SimpleMachine {
    fn ifetch(&mut self, addr: Address) -> AccessResult {
        if self.pages.access(addr).is_err() {
            return AccessResult::Fault(ProgramException::PageFault {
                address: addr.raw(),
            });
        }
        AccessResult::Done {
            value: 0,
            cycles: 0,
        }
    }

    fn load(&mut self, addr: Address, len: u8, _for_update: bool) -> AccessResult {
        if let Err(pe) = self.check_access(addr, len) {
            return AccessResult::Fault(pe);
        }
        AccessResult::Done {
            value: self.read(addr, len),
            cycles: 1,
        }
    }

    fn store(&mut self, addr: Address, len: u8, value: u64) -> AccessResult {
        if let Err(pe) = self.check_access(addr, len) {
            return AccessResult::Fault(pe);
        }
        self.write(addr, len, value);
        AccessResult::Done {
            value: 0,
            cycles: 1,
        }
    }

    fn store_nontx(&mut self, addr: Address, value: u64) -> AccessResult {
        if !addr.is_aligned(8) {
            return AccessResult::Fault(ProgramException::Specification);
        }
        if let Err(pe) = self.check_access(addr, 8) {
            return AccessResult::Fault(pe);
        }
        if self.engine.in_tx() {
            // Isolated until transaction end, but survives aborts.
            self.write(addr, 8, value);
            self.ntstg_buffer.push((addr, value));
        } else {
            self.write(addr, 8, value);
        }
        AccessResult::Done {
            value: 0,
            cycles: 1,
        }
    }

    fn compare_and_swap(&mut self, addr: Address, expected: u64, new: u64) -> CasResult {
        if let Err(pe) = self.check_access(addr, 8) {
            return CasResult::Fault(pe);
        }
        let old = self.read(addr, 8);
        let swapped = old == expected;
        if swapped {
            self.write(addr, 8, new);
        }
        CasResult::Done {
            swapped,
            old,
            cycles: 12,
        }
    }

    fn tx_begin(
        &mut self,
        constrained: bool,
        params: TbeginParams,
        grs: &[u64; 16],
        ia: u64,
        next_ia: u64,
    ) -> u64 {
        let outermost = !self.engine.in_tx();
        match self
            .engine
            .begin(params, constrained, grs, ia, next_ia, &mut self.rng)
        {
            Ok(ztm_core::BeginOutcome::Outermost { cycles }) => {
                if outermost {
                    self.overlay.clear();
                    self.ntstg_buffer.clear();
                }
                cycles
            }
            Ok(ztm_core::BeginOutcome::Nested) => 2,
            Err(cause) => {
                self.engine.set_pending(cause);
                1
            }
        }
    }

    fn tx_end(&mut self) -> EndResult {
        if self.engine.in_tx() && self.engine.tdc_forces_abort_at_tend() {
            self.engine.set_pending(AbortCause::Diagnostic);
            return EndResult::AbortPending;
        }
        match self.engine.tend() {
            TendOutcome::NotInTx => EndResult::NotInTx,
            TendOutcome::Inner => EndResult::Inner { cycles: 1 },
            TendOutcome::Commit { cycles } => {
                // Publish the speculative bytes.
                let overlay = std::mem::take(&mut self.overlay);
                for (a, b) in overlay {
                    self.mem.store_bytes(Address::new(a), &[b]);
                }
                self.ntstg_buffer.clear();
                EndResult::Commit { cycles }
            }
        }
    }

    fn tx_abort_request(&mut self, code: u64) {
        self.engine.set_pending(AbortCause::Tabort(code.max(256)));
    }

    fn tx_depth(&self) -> u64 {
        self.engine.depth() as u64
    }

    fn in_tx(&self) -> bool {
        self.engine.in_tx()
    }

    fn check_instruction(&mut self, class: InstrClass, ia: u64, len: u64) {
        if let Err(cause) = self.engine.check_instruction(class, ia, len) {
            self.engine.set_pending(cause);
            return;
        }
        if let Some(cause) = self.engine.tdc_tick(&mut self.rng) {
            self.engine.set_pending(cause);
        }
    }

    fn instruction_retired(&mut self) {}

    fn pending_abort(&self) -> bool {
        self.engine.pending_abort().is_some()
    }

    fn take_abort(&mut self, grs: &[u64; 16], atia: u64) -> AbortApply {
        let cause = self
            .engine
            .pending_abort()
            .expect("take_abort without a pending abort");
        // Roll back speculative state, keeping NTSTG doublewords.
        self.overlay.clear();
        let ntstg = std::mem::take(&mut self.ntstg_buffer);
        for (addr, value) in ntstg {
            self.mem.store_u64(addr, value);
        }
        let out = self.engine.process_abort(cause, grs, atia, &mut self.rng);
        finish_abort(
            out,
            &mut self.mem,
            &mut self.pages,
            &self.os,
            self.prefix_area,
        )
    }

    fn report_exception(
        &mut self,
        pe: ProgramException,
        instruction_fetch: bool,
    ) -> ExceptionDisposition {
        if self.engine.in_tx() {
            let cause = self.engine.classify_exception(pe, instruction_fetch);
            self.engine.set_pending(cause);
            return ExceptionDisposition::PendingAbort;
        }
        match self.os.disposition(pe) {
            OsDisposition::PageIn(page) => {
                self.pages.page_in(page);
                ExceptionDisposition::Retry {
                    cycles: self.os.page_in_cost,
                }
            }
            OsDisposition::Observe => ExceptionDisposition::Retry {
                cycles: self.os.observe_cost,
            },
            OsDisposition::Terminate(msg) => ExceptionDisposition::Terminate(msg),
        }
    }

    fn ppa(&mut self, abort_count: u64) -> u64 {
        self.engine.ppa_tx_assist(abort_count, &mut self.rng)
    }

    fn rand(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            0
        } else {
            self.rng.gen_range(0..bound)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_dispositions() {
        let os = OsModel::default();
        assert_eq!(
            os.disposition(ProgramException::PageFault { address: 0x5000 }),
            OsDisposition::PageIn(Address::new(0x5000).page())
        );
        assert_eq!(
            os.disposition(ProgramException::PerEvent),
            OsDisposition::Observe
        );
        assert!(matches!(
            os.disposition(ProgramException::FixedPointDivide),
            OsDisposition::Terminate(_)
        ));
    }

    #[test]
    fn simple_machine_overlay_isolation() {
        let mut m = SimpleMachine::new(1);
        m.mem.store_u64(Address::new(0x100), 1);
        let grs = [0u64; 16];
        m.tx_begin(false, TbeginParams::new(), &grs, 0, 6);
        m.store(Address::new(0x100), 8, 99);
        // Committed image unchanged while speculating.
        assert_eq!(m.mem.load_u64(Address::new(0x100)), 1);
        // But the transaction sees its own store.
        match m.load(Address::new(0x100), 8, false) {
            AccessResult::Done { value, .. } => assert_eq!(value, 99),
            other => panic!("{other:?}"),
        }
        assert!(matches!(m.tx_end(), EndResult::Commit { .. }));
        assert_eq!(m.mem.load_u64(Address::new(0x100)), 99);
    }

    #[test]
    fn simple_machine_abort_rolls_back_but_keeps_ntstg() {
        let mut m = SimpleMachine::new(1);
        m.mem.store_u64(Address::new(0x100), 1);
        let grs = [7u64; 16];
        m.tx_begin(false, TbeginParams::new(), &grs, 0x10, 0x16);
        m.store(Address::new(0x100), 8, 99);
        m.store_nontx(Address::new(0x200), 42);
        m.tx_abort_request(260);
        assert!(m.pending_abort());
        let apply = m.take_abort(&grs, 0x20);
        assert_eq!(apply.cc, 2);
        assert_eq!(apply.resume_ia, 0x16);
        assert_eq!(m.mem.load_u64(Address::new(0x100)), 1, "rolled back");
        assert_eq!(m.mem.load_u64(Address::new(0x200)), 42, "NTSTG survives");
    }

    #[test]
    fn page_fault_outside_tx_is_serviced() {
        let mut m = SimpleMachine::new(1);
        m.pages.evict(Address::new(0x3000).page());
        match m.load(Address::new(0x3000), 8, false) {
            AccessResult::Fault(pe) => {
                let d = m.report_exception(pe, false);
                assert!(matches!(d, ExceptionDisposition::Retry { .. }));
            }
            other => panic!("{other:?}"),
        }
        // Retry succeeds.
        assert!(matches!(
            m.load(Address::new(0x3000), 8, false),
            AccessResult::Done { .. }
        ));
    }

    #[test]
    fn cas_semantics() {
        let mut m = SimpleMachine::new(1);
        m.mem.store_u64(Address::new(0x80), 5);
        match m.compare_and_swap(Address::new(0x80), 5, 9) {
            CasResult::Done { swapped, old, .. } => {
                assert!(swapped);
                assert_eq!(old, 5);
            }
            other => panic!("{other:?}"),
        }
        match m.compare_and_swap(Address::new(0x80), 5, 11) {
            CasResult::Done { swapped, old, .. } => {
                assert!(!swapped);
                assert_eq!(old, 9);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(m.mem.load_u64(Address::new(0x80)), 9);
    }
}
