//! Disassembly: human-readable rendering of instructions and programs.

use crate::asm::Program;
use crate::instr::{cc_mask, CmpCond, Instr, MemOperand, RegOrImm};
use std::fmt;

impl fmt::Display for MemOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.base, self.index) {
            (None, None) => write!(f, "{:#x}", self.disp),
            (Some(b), None) => write!(f, "{}({b})", self.disp),
            (Some(b), Some(x)) => write!(f, "{}({x},{b})", self.disp),
            (None, Some(x)) => write!(f, "{}({x})", self.disp),
        }
    }
}

impl fmt::Display for RegOrImm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegOrImm::Reg(r) => write!(f, "{r}"),
            RegOrImm::Imm(v) => write!(f, "{v}"),
        }
    }
}

fn cond_suffix(c: CmpCond) -> &'static str {
    match c {
        CmpCond::Eq => "E",
        CmpCond::Ne => "NE",
        CmpCond::Lt => "L",
        CmpCond::Le => "NH",
        CmpCond::Gt => "H",
        CmpCond::Ge => "NL",
    }
}

fn brc_mnemonic(mask: u8) -> Option<&'static str> {
    match mask {
        cc_mask::ALWAYS => Some("J"),
        cc_mask::ZERO => Some("JZ"),
        cc_mask::NOT_ZERO => Some("JNZ"),
        cc_mask::LOW => Some("JL"),
        cc_mask::HIGH => Some("JH"),
        cc_mask::ONES => Some("JO"),
        _ => None,
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match self {
            Lg(r, m) => write!(f, "LG      {r},{m}"),
            Stg(r, m) => write!(f, "STG     {r},{m}"),
            Ltg(r, m) => write!(f, "LTG     {r},{m}"),
            Lghi(r, i) => write!(f, "LGHI    {r},{i}"),
            Lgr(a, b) => write!(f, "LGR     {a},{b}"),
            La(r, m) => write!(f, "LA      {r},{m}"),
            Csg(a, b, m) => write!(f, "CSG     {a},{b},{m}"),
            Ntstg(r, m) => write!(f, "NTSTG   {r},{m}"),
            Agr(a, b) => write!(f, "AGR     {a},{b}"),
            Sgr(a, b) => write!(f, "SGR     {a},{b}"),
            Aghi(r, i) => write!(f, "AGHI    {r},{i}"),
            Ngr(a, b) => write!(f, "NGR     {a},{b}"),
            Xgr(a, b) => write!(f, "XGR     {a},{b}"),
            Msgr(a, b) => write!(f, "MSGR    {a},{b}"),
            Dsgr(a, b) => write!(f, "DSGR    {a},{b}"),
            Sllg(a, b, n) => write!(f, "SLLG    {a},{b},{n}"),
            Srlg(a, b, n) => write!(f, "SRLG    {a},{b},{n}"),
            Ltgr(a, b) => write!(f, "LTGR    {a},{b}"),
            Cgr(a, b) => write!(f, "CGR     {a},{b}"),
            Cghi(r, i) => write!(f, "CGHI    {r},{i}"),
            Cg(r, m) => write!(f, "CG      {r},{m}"),
            Brc(mask, t) => match brc_mnemonic(*mask) {
                Some(m) => write!(f, "{m:<7} @{t}"),
                None => write!(f, "BRC     {mask},@{t}"),
            },
            Cgij(r, i, c, t) => write!(f, "CGIJ{:<3} {r},{i},@{t}", cond_suffix(*c)),
            Brctg(r, t) => write!(f, "BRCTG   {r},@{t}"),
            Br(r) => write!(f, "BR      {r}"),
            Tbegin(p) => write!(
                f,
                "TBEGIN  grsm={:#04x},pifc={}{}",
                p.grsm.raw(),
                p.pifc.value(),
                match p.tdb {
                    Some(a) => format!(",tdb={a}"),
                    None => String::new(),
                }
            ),
            Tbeginc(grsm) => write!(f, "TBEGINC grsm={:#04x}", grsm.raw()),
            Tend => write!(f, "TEND"),
            Tabort(c) => write!(f, "TABORT  {c}"),
            Etnd(r) => write!(f, "ETND    {r}"),
            Ppa(r) => write!(f, "PPA     {r},TX"),
            Stckf(m) => write!(f, "STCKF   {m}"),
            Rdclk(r) => write!(f, "RDCLK   {r}"),
            RandMod(r, b) => write!(f, "RAND    {r},{b}"),
            Sar(ar, r) => write!(f, "SAR     a{ar},{r}"),
            Ear(r, ar) => write!(f, "EAR     {r},a{ar}"),
            Adbr(a, b) => write!(f, "ADBR    f{a},f{b}"),
            Decimal => write!(f, "AP      (decimal)"),
            Privileged => write!(f, "LPSW    (privileged)"),
            StmNote(k, r) => write!(f, "STMNOTE {k},{r}"),
            Nop => write!(f, "NOP"),
            Delay(n) => write!(f, "DELAY   {n}"),
            Halt => write!(f, "HALT"),
        }
    }
}

impl Program {
    /// Renders the whole program as an address-annotated listing.
    ///
    /// # Examples
    ///
    /// ```
    /// use ztm_isa::{Assembler, gr::*};
    /// let mut a = Assembler::new(0x100);
    /// a.lghi(R1, 5);
    /// a.halt();
    /// let listing = a.assemble()?.listing();
    /// assert!(listing.contains("0x000100"));
    /// assert!(listing.contains("LGHI    r1,5"));
    /// # Ok::<(), ztm_isa::AsmError>(())
    /// ```
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for i in 0..self.len() {
            let _ = writeln!(out, "{:#08x}  {}", self.addr_of(i), self.instr(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::reg::gr::*;
    use ztm_core::TbeginParams;

    #[test]
    fn figure1_listing_reads_like_z_assembly() {
        let mut a = Assembler::new(0);
        a.lghi(R0, 0);
        a.label("loop");
        a.tbegin(TbeginParams::new());
        a.jnz("abort");
        a.ltg(R1, MemOperand::absolute(0x4000));
        a.tend();
        a.halt();
        a.label("abort");
        a.ppa(R0);
        a.j("loop");
        let p = a.assemble().unwrap();
        let listing = p.listing();
        assert!(listing.contains("TBEGIN  grsm=0xff,pifc=0"));
        assert!(listing.contains("JNZ"));
        assert!(listing.contains("LTG     r1,0x4000"));
        assert!(listing.contains("TEND"));
        assert!(listing.contains("PPA     r0,TX"));
        assert_eq!(listing.lines().count(), p.len());
    }

    #[test]
    fn operand_forms_render() {
        assert_eq!(MemOperand::based(R5, 16).to_string(), "16(r5)");
        assert_eq!(MemOperand::absolute(0x80).to_string(), "0x80");
        assert_eq!(MemOperand::indexed(R5, R6, -8).to_string(), "-8(r6,r5)");
        assert_eq!(RegOrImm::Imm(7).to_string(), "7");
        assert_eq!(RegOrImm::Reg(R3).to_string(), "r3");
    }

    #[test]
    fn every_instruction_has_nonempty_display() {
        let samples = [
            Instr::Nop,
            Instr::Halt,
            Instr::Tend,
            Instr::Delay(5),
            Instr::Decimal,
            Instr::Privileged,
            Instr::Adbr(0, 1),
            Instr::Sar(2, R1),
            Instr::Ear(R1, 2),
            Instr::Br(R9),
            Instr::Dsgr(R1, R2),
            Instr::Etnd(R3),
            Instr::Stckf(MemOperand::absolute(0)),
        ];
        for i in samples {
            assert!(!i.to_string().is_empty());
        }
    }
}
