//! Predecoded micro-op table: the interpreter's fast path.
//!
//! [`Program::assemble`](crate::Assembler::assemble) lowers every program
//! once into a flat, contiguous vector of fixed-size [`DecodedInstr`]
//! records — one per instruction — with the operand `Option<Reg>` chains
//! resolved to plain register slots, the instruction length and byte
//! address precomputed, the [`InstrClass`] (including the backward-branch
//! bit, which is static once the assembler has resolved targets) folded in,
//! and the store-follows window (load-with-intent-to-update, §III.C) walked
//! ahead of time. `step` then dispatches over the compact [`Op`] tag
//! instead of matching (and cloning) the full [`Instr`] enum on every
//! executed instruction.
//!
//! The lowering is loss-free: [`DecodedInstr::reify`] reconstructs the
//! original [`Instr`] exactly, which the property tests use to prove the
//! decoded table and the legacy walk describe the same program.

use crate::instr::{CmpCond, Instr, MemOperand, RegOrImm};
use crate::reg::Reg;
use ztm_core::{InstrClass, TbeginParams};

/// Sentinel for an absent register slot (valid registers are 0..=15).
pub const NO_REG: u8 = 16;

/// `flags` bit: an `Lg` whose line is stored to within the merge window —
/// fetch it exclusive up front (load with intent to update, §III.C).
pub const FLAG_FOR_UPDATE: u8 = 1;
/// `flags` bit: the TABORT / RAND operand is a register (in `r2`) rather
/// than the immediate in `imm`.
pub const FLAG_OPERAND_REG: u8 = 2;

/// Compact operation tag, one per [`Instr`] variant. `#[repr(u8)]` so the
/// interpreter's dispatch is a dense jump table over a single byte.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// See [`Instr::Lg`].
    Lg,
    /// See [`Instr::Stg`].
    Stg,
    /// See [`Instr::Ltg`].
    Ltg,
    /// See [`Instr::Lghi`].
    Lghi,
    /// See [`Instr::Lgr`].
    Lgr,
    /// See [`Instr::La`].
    La,
    /// See [`Instr::Csg`].
    Csg,
    /// See [`Instr::Ntstg`].
    Ntstg,
    /// See [`Instr::Agr`].
    Agr,
    /// See [`Instr::Sgr`].
    Sgr,
    /// See [`Instr::Aghi`].
    Aghi,
    /// See [`Instr::Ngr`].
    Ngr,
    /// See [`Instr::Xgr`].
    Xgr,
    /// See [`Instr::Msgr`].
    Msgr,
    /// See [`Instr::Dsgr`].
    Dsgr,
    /// See [`Instr::Sllg`].
    Sllg,
    /// See [`Instr::Srlg`].
    Srlg,
    /// See [`Instr::Ltgr`].
    Ltgr,
    /// See [`Instr::Cgr`].
    Cgr,
    /// See [`Instr::Cghi`].
    Cghi,
    /// See [`Instr::Cg`].
    Cg,
    /// See [`Instr::Brc`].
    Brc,
    /// See [`Instr::Cgij`].
    Cgij,
    /// See [`Instr::Brctg`].
    Brctg,
    /// See [`Instr::Br`].
    Br,
    /// See [`Instr::Tbegin`].
    Tbegin,
    /// See [`Instr::Tbeginc`].
    Tbeginc,
    /// See [`Instr::Tend`].
    Tend,
    /// See [`Instr::Tabort`].
    Tabort,
    /// See [`Instr::Etnd`].
    Etnd,
    /// See [`Instr::Ppa`].
    Ppa,
    /// See [`Instr::Stckf`].
    Stckf,
    /// See [`Instr::Rdclk`].
    Rdclk,
    /// See [`Instr::RandMod`].
    RandMod,
    /// See [`Instr::Sar`].
    Sar,
    /// See [`Instr::Ear`].
    Ear,
    /// See [`Instr::Adbr`].
    Adbr,
    /// See [`Instr::Decimal`].
    Decimal,
    /// See [`Instr::Privileged`].
    Privileged,
    /// See [`Instr::StmNote`].
    StmNote,
    /// See [`Instr::Nop`].
    Nop,
    /// See [`Instr::Delay`].
    Delay,
    /// See [`Instr::Halt`].
    Halt,
}

/// One fixed-size (32-byte) decoded instruction record.
///
/// Field meanings vary by [`Op`]; [`DecodedInstr::reify`] is the definitive
/// inverse mapping. Register slots hold plain indices (`r1`, `r2`; AR and
/// FPR numbers reuse the same slots), memory operands are `base`/`index`
/// slots (or [`NO_REG`]) plus the displacement in `imm`, and `aux` carries
/// the BRC mask, CGIJ condition code, or shift amount.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInstr {
    /// Immediate / displacement / delay count / TABORT-or-RAND immediate
    /// (unsigned values bit-cast through `i64`).
    pub imm: i64,
    /// Byte address of the instruction (what `addr_of` returns).
    pub addr: u64,
    /// Branch target, already resolved to an instruction index.
    pub target: u32,
    /// Index into the program's [`TbeginParams`] side table (TBEGIN /
    /// TBEGINC only; TBEGINC entries are already `TbeginParams::constrained`).
    pub params: u16,
    /// Transactional-legality class with the backward-branch bit folded in.
    pub class: InstrClass,
    /// Operation tag.
    pub op: Op,
    /// First register slot (also AR number for SAR, FPR number for ADBR).
    pub r1: u8,
    /// Second register slot.
    pub r2: u8,
    /// Memory-operand base register slot, or [`NO_REG`].
    pub base: u8,
    /// Memory-operand index register slot, or [`NO_REG`].
    pub index: u8,
    /// BRC mask / CGIJ condition code / SLLG-SRLG shift amount.
    pub aux: u8,
    /// Encoded length in bytes (2, 4 or 6).
    pub len: u8,
    /// [`FLAG_FOR_UPDATE`] | [`FLAG_OPERAND_REG`].
    pub flags: u8,
}

fn reg_slot(r: Option<Reg>) -> u8 {
    match r {
        Some(Reg(n)) => n,
        None => NO_REG,
    }
}

fn slot_reg(s: u8) -> Option<Reg> {
    if s == NO_REG {
        None
    } else {
        Some(Reg(s))
    }
}

fn encode_cond(c: CmpCond) -> u8 {
    match c {
        CmpCond::Eq => 0,
        CmpCond::Ne => 1,
        CmpCond::Lt => 2,
        CmpCond::Le => 3,
        CmpCond::Gt => 4,
        CmpCond::Ge => 5,
    }
}

/// Decodes the condition code produced by [`encode_cond`].
pub fn decode_cond(code: u8) -> CmpCond {
    match code {
        0 => CmpCond::Eq,
        1 => CmpCond::Ne,
        2 => CmpCond::Lt,
        3 => CmpCond::Le,
        4 => CmpCond::Gt,
        5 => CmpCond::Ge,
        _ => unreachable!("invalid condition code {code}"),
    }
}

/// Whether a store to the same memory operand appears within the next few
/// instructions — the out-of-order LSU would merge the load miss with the
/// store's exclusive fetch, so the line is fetched exclusive once (zEC12
/// store-hit-load-miss merging; this is what lets stiff-arming protect a
/// transactional read-modify-write, §III.C). Purely static over the program
/// text, which is why the predecode pass can fold it into the record.
pub(crate) fn store_follows(instrs: &[Instr], idx: usize, mem: &MemOperand) -> bool {
    const WINDOW: usize = 4;
    for instr in instrs
        .iter()
        .take((idx + 1 + WINDOW).min(instrs.len()))
        .skip(idx + 1)
    {
        match instr {
            // Same base/index registers and displacement within the same
            // 256-byte line.
            Instr::Stg(_, m) | Instr::Ntstg(_, m) | Instr::Csg(_, _, m)
                if m.base == mem.base && m.index == mem.index && m.disp / 256 == mem.disp / 256 =>
            {
                return true;
            }
            // A branch or transaction boundary ends the merge window.
            Instr::Brc(..)
            | Instr::Cgij(..)
            | Instr::Brctg(..)
            | Instr::Br(..)
            | Instr::Tend
            | Instr::Tbegin(..)
            | Instr::Tbeginc(..)
            | Instr::Halt => return false,
            _ => {}
        }
    }
    false
}

/// Lowers an assembled instruction sequence into the decoded table plus the
/// TBEGIN-parameter side table. `addrs[i]` is the byte address of
/// instruction `i` (branch direction is derived from it).
pub(crate) fn predecode(instrs: &[Instr], addrs: &[u64]) -> (Vec<DecodedInstr>, Vec<TbeginParams>) {
    let mut table = Vec::with_capacity(instrs.len());
    let mut tparams: Vec<TbeginParams> = Vec::new();
    for (idx, instr) in instrs.iter().enumerate() {
        let backward = instr
            .branch_target()
            .map(|t| addrs[t] <= addrs[idx])
            .unwrap_or(false);
        let mut d = DecodedInstr {
            imm: 0,
            addr: addrs[idx],
            target: 0,
            params: 0,
            class: instr.class(backward),
            op: Op::Nop,
            r1: 0,
            r2: 0,
            base: NO_REG,
            index: NO_REG,
            aux: 0,
            len: instr.len() as u8,
            flags: 0,
        };
        let set_mem = |d: &mut DecodedInstr, m: &MemOperand| {
            d.base = reg_slot(m.base);
            d.index = reg_slot(m.index);
            d.imm = m.disp;
        };
        match instr {
            Instr::Lg(r, m) => {
                d.op = Op::Lg;
                d.r1 = r.0;
                set_mem(&mut d, m);
                if store_follows(instrs, idx, m) {
                    d.flags |= FLAG_FOR_UPDATE;
                }
            }
            Instr::Stg(r, m) => {
                d.op = Op::Stg;
                d.r1 = r.0;
                set_mem(&mut d, m);
            }
            Instr::Ltg(r, m) => {
                d.op = Op::Ltg;
                d.r1 = r.0;
                set_mem(&mut d, m);
            }
            Instr::Lghi(r, i) => {
                d.op = Op::Lghi;
                d.r1 = r.0;
                d.imm = *i;
            }
            Instr::Lgr(a, b) => {
                d.op = Op::Lgr;
                d.r1 = a.0;
                d.r2 = b.0;
            }
            Instr::La(r, m) => {
                d.op = Op::La;
                d.r1 = r.0;
                set_mem(&mut d, m);
            }
            Instr::Csg(a, b, m) => {
                d.op = Op::Csg;
                d.r1 = a.0;
                d.r2 = b.0;
                set_mem(&mut d, m);
            }
            Instr::Ntstg(r, m) => {
                d.op = Op::Ntstg;
                d.r1 = r.0;
                set_mem(&mut d, m);
            }
            Instr::Agr(a, b) => {
                d.op = Op::Agr;
                d.r1 = a.0;
                d.r2 = b.0;
            }
            Instr::Sgr(a, b) => {
                d.op = Op::Sgr;
                d.r1 = a.0;
                d.r2 = b.0;
            }
            Instr::Aghi(r, i) => {
                d.op = Op::Aghi;
                d.r1 = r.0;
                d.imm = *i;
            }
            Instr::Ngr(a, b) => {
                d.op = Op::Ngr;
                d.r1 = a.0;
                d.r2 = b.0;
            }
            Instr::Xgr(a, b) => {
                d.op = Op::Xgr;
                d.r1 = a.0;
                d.r2 = b.0;
            }
            Instr::Msgr(a, b) => {
                d.op = Op::Msgr;
                d.r1 = a.0;
                d.r2 = b.0;
            }
            Instr::Dsgr(a, b) => {
                d.op = Op::Dsgr;
                d.r1 = a.0;
                d.r2 = b.0;
            }
            Instr::Sllg(a, b, n) => {
                d.op = Op::Sllg;
                d.r1 = a.0;
                d.r2 = b.0;
                d.aux = *n;
            }
            Instr::Srlg(a, b, n) => {
                d.op = Op::Srlg;
                d.r1 = a.0;
                d.r2 = b.0;
                d.aux = *n;
            }
            Instr::Ltgr(a, b) => {
                d.op = Op::Ltgr;
                d.r1 = a.0;
                d.r2 = b.0;
            }
            Instr::Cgr(a, b) => {
                d.op = Op::Cgr;
                d.r1 = a.0;
                d.r2 = b.0;
            }
            Instr::Cghi(r, i) => {
                d.op = Op::Cghi;
                d.r1 = r.0;
                d.imm = *i;
            }
            Instr::Cg(r, m) => {
                d.op = Op::Cg;
                d.r1 = r.0;
                set_mem(&mut d, m);
            }
            Instr::Brc(mask, t) => {
                d.op = Op::Brc;
                d.aux = *mask;
                d.target = *t as u32;
            }
            Instr::Cgij(r, i, c, t) => {
                d.op = Op::Cgij;
                d.r1 = r.0;
                d.imm = *i;
                d.aux = encode_cond(*c);
                d.target = *t as u32;
            }
            Instr::Brctg(r, t) => {
                d.op = Op::Brctg;
                d.r1 = r.0;
                d.target = *t as u32;
            }
            Instr::Br(r) => {
                d.op = Op::Br;
                d.r1 = r.0;
            }
            Instr::Tbegin(p) => {
                d.op = Op::Tbegin;
                d.params = tparams.len() as u16;
                tparams.push(*p);
            }
            Instr::Tbeginc(grsm) => {
                d.op = Op::Tbeginc;
                d.params = tparams.len() as u16;
                // The implicit constrained controls are static too (§II.D).
                tparams.push(TbeginParams::constrained(*grsm));
            }
            Instr::Tend => d.op = Op::Tend,
            Instr::Tabort(code) => {
                d.op = Op::Tabort;
                match code {
                    RegOrImm::Reg(r) => {
                        d.flags |= FLAG_OPERAND_REG;
                        d.r2 = r.0;
                    }
                    RegOrImm::Imm(v) => d.imm = *v as i64,
                }
            }
            Instr::Etnd(r) => {
                d.op = Op::Etnd;
                d.r1 = r.0;
            }
            Instr::Ppa(r) => {
                d.op = Op::Ppa;
                d.r1 = r.0;
            }
            Instr::Stckf(m) => {
                d.op = Op::Stckf;
                set_mem(&mut d, m);
            }
            Instr::Rdclk(r) => {
                d.op = Op::Rdclk;
                d.r1 = r.0;
            }
            Instr::RandMod(r, bound) => {
                d.op = Op::RandMod;
                d.r1 = r.0;
                match bound {
                    RegOrImm::Reg(b) => {
                        d.flags |= FLAG_OPERAND_REG;
                        d.r2 = b.0;
                    }
                    RegOrImm::Imm(v) => d.imm = *v as i64,
                }
            }
            Instr::Sar(ar, r) => {
                d.op = Op::Sar;
                d.r1 = *ar;
                d.r2 = r.0;
            }
            Instr::Ear(r, ar) => {
                d.op = Op::Ear;
                d.r1 = r.0;
                d.r2 = *ar;
            }
            Instr::Adbr(a, b) => {
                d.op = Op::Adbr;
                d.r1 = *a;
                d.r2 = *b;
            }
            Instr::Decimal => d.op = Op::Decimal,
            Instr::Privileged => d.op = Op::Privileged,
            Instr::StmNote(kind, r) => {
                d.op = Op::StmNote;
                d.aux = *kind;
                d.r1 = r.0;
            }
            Instr::Nop => d.op = Op::Nop,
            Instr::Delay(n) => {
                d.op = Op::Delay;
                d.imm = *n as i64;
            }
            Instr::Halt => d.op = Op::Halt,
        }
        table.push(d);
    }
    (table, tparams)
}

/// Superblock table: for every instruction index, the *exclusive* end of
/// the maximal straight-line region containing it.
///
/// A superblock is a run of consecutively-addressed instructions that a
/// batched stepper may execute as one scheduler event. Runs end:
///
/// * **after** a branch (`BRC`, `CGIJ`, `BRCTG`, `BR`) or `HALT` — the
///   branch itself is the block's last instruction, since only *after* it
///   can the program counter leave the straight line;
/// * **around** a transaction boundary (`TBEGIN`, `TBEGINC`, `TEND`,
///   `TABORT`) — these serialize against the engine (commit/abort events,
///   broadcast-stop, nesting-depth changes), so each forms its own
///   single-instruction block;
/// * **before** any statically-known branch target — a region-crossing
///   entry starts a fresh block, keeping every block's membership
///   independent of how control reached it.
///
/// The table says nothing about *dynamic* hazards (faults, stalls, aborts,
/// mid-block retries): a batched stepper must still bail out of a block on
/// any step whose outcome is not a plain sequential `Executed`. Everything
/// here is static program shape, computable once at assemble time.
pub fn superblocks(decoded: &[DecodedInstr]) -> Vec<u32> {
    let n = decoded.len();
    let mut start = vec![false; n + 1];
    for (i, d) in decoded.iter().enumerate() {
        match d.op {
            Op::Brc | Op::Cgij | Op::Brctg => {
                start[i + 1] = true;
                if (d.target as usize) < n {
                    start[d.target as usize] = true;
                }
            }
            // BR is an indirect branch: no static target to split on, but
            // the block still ends after it.
            Op::Br | Op::Halt => start[i + 1] = true,
            Op::Tbegin | Op::Tbeginc | Op::Tend | Op::Tabort => {
                start[i] = true;
                start[i + 1] = true;
            }
            _ => {}
        }
    }
    let mut ends = vec![0u32; n];
    let mut end = n as u32;
    for i in (0..n).rev() {
        ends[i] = end;
        if start[i] {
            end = i as u32;
        }
    }
    ends
}

impl DecodedInstr {
    /// The memory operand encoded in `base`/`index`/`imm`.
    pub fn mem(&self) -> MemOperand {
        MemOperand {
            base: slot_reg(self.base),
            index: slot_reg(self.index),
            disp: self.imm,
        }
    }

    fn operand(&self) -> RegOrImm {
        if self.flags & FLAG_OPERAND_REG != 0 {
            RegOrImm::Reg(Reg(self.r2))
        } else {
            RegOrImm::Imm(self.imm as u64)
        }
    }

    /// Reconstructs the original [`Instr`] (exact inverse of the predecode
    /// lowering). `tparams` is the owning program's side table.
    pub fn reify(&self, tparams: &[TbeginParams]) -> Instr {
        match self.op {
            Op::Lg => Instr::Lg(Reg(self.r1), self.mem()),
            Op::Stg => Instr::Stg(Reg(self.r1), self.mem()),
            Op::Ltg => Instr::Ltg(Reg(self.r1), self.mem()),
            Op::Lghi => Instr::Lghi(Reg(self.r1), self.imm),
            Op::Lgr => Instr::Lgr(Reg(self.r1), Reg(self.r2)),
            Op::La => Instr::La(Reg(self.r1), self.mem()),
            Op::Csg => Instr::Csg(Reg(self.r1), Reg(self.r2), self.mem()),
            Op::Ntstg => Instr::Ntstg(Reg(self.r1), self.mem()),
            Op::Agr => Instr::Agr(Reg(self.r1), Reg(self.r2)),
            Op::Sgr => Instr::Sgr(Reg(self.r1), Reg(self.r2)),
            Op::Aghi => Instr::Aghi(Reg(self.r1), self.imm),
            Op::Ngr => Instr::Ngr(Reg(self.r1), Reg(self.r2)),
            Op::Xgr => Instr::Xgr(Reg(self.r1), Reg(self.r2)),
            Op::Msgr => Instr::Msgr(Reg(self.r1), Reg(self.r2)),
            Op::Dsgr => Instr::Dsgr(Reg(self.r1), Reg(self.r2)),
            Op::Sllg => Instr::Sllg(Reg(self.r1), Reg(self.r2), self.aux),
            Op::Srlg => Instr::Srlg(Reg(self.r1), Reg(self.r2), self.aux),
            Op::Ltgr => Instr::Ltgr(Reg(self.r1), Reg(self.r2)),
            Op::Cgr => Instr::Cgr(Reg(self.r1), Reg(self.r2)),
            Op::Cghi => Instr::Cghi(Reg(self.r1), self.imm),
            Op::Cg => Instr::Cg(Reg(self.r1), self.mem()),
            Op::Brc => Instr::Brc(self.aux, self.target as usize),
            Op::Cgij => Instr::Cgij(
                Reg(self.r1),
                self.imm,
                decode_cond(self.aux),
                self.target as usize,
            ),
            Op::Brctg => Instr::Brctg(Reg(self.r1), self.target as usize),
            Op::Br => Instr::Br(Reg(self.r1)),
            Op::Tbegin => Instr::Tbegin(tparams[self.params as usize]),
            Op::Tbeginc => Instr::Tbeginc(tparams[self.params as usize].grsm),
            Op::Tend => Instr::Tend,
            Op::Tabort => Instr::Tabort(self.operand()),
            Op::Etnd => Instr::Etnd(Reg(self.r1)),
            Op::Ppa => Instr::Ppa(Reg(self.r1)),
            Op::Stckf => Instr::Stckf(self.mem()),
            Op::Rdclk => Instr::Rdclk(Reg(self.r1)),
            Op::RandMod => Instr::RandMod(Reg(self.r1), self.operand()),
            Op::Sar => Instr::Sar(self.r1, Reg(self.r2)),
            Op::Ear => Instr::Ear(Reg(self.r1), self.r2),
            Op::Adbr => Instr::Adbr(self.r1, self.r2),
            Op::Decimal => Instr::Decimal,
            Op::Privileged => Instr::Privileged,
            Op::StmNote => Instr::StmNote(self.aux, Reg(self.r1)),
            Op::Nop => Instr::Nop,
            Op::Delay => Instr::Delay(self.imm as u64),
            Op::Halt => Instr::Halt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_stays_compact() {
        // The whole point of the table is host-cache density: two records
        // per 64-byte line.
        assert!(std::mem::size_of::<DecodedInstr>() <= 32);
    }

    #[test]
    fn cond_codes_round_trip() {
        use CmpCond::*;
        for c in [Eq, Ne, Lt, Le, Gt, Ge] {
            assert_eq!(decode_cond(encode_cond(c)), c);
        }
    }
}
