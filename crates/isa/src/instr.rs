//! The z-flavored instruction set of the simulator.
//!
//! A compact subset of z/Architecture sufficient to write the paper's
//! Figure 1 / Figure 3 kernels and every workload of §IV, plus the six
//! Transactional Execution instructions (TBEGIN, TBEGINC, TEND, TABORT,
//! ETND, NTSTG) and PPA (§II.A).

use crate::reg::Reg;
use ztm_core::{GrSaveMask, InstrClass, TbeginParams};

/// A base+index+displacement memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOperand {
    /// Base register (ignored if `None`).
    pub base: Option<Reg>,
    /// Index register.
    pub index: Option<Reg>,
    /// Signed displacement.
    pub disp: i64,
}

impl MemOperand {
    /// `disp(base)` — the common form.
    pub fn based(base: Reg, disp: i64) -> Self {
        MemOperand {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// An absolute address (no base register).
    pub fn absolute(addr: u64) -> Self {
        MemOperand {
            base: None,
            index: None,
            disp: addr as i64,
        }
    }

    /// `disp(index, base)` — indexed form.
    pub fn indexed(base: Reg, index: Reg, disp: i64) -> Self {
        MemOperand {
            base: Some(base),
            index: Some(index),
            disp,
        }
    }
}

/// A register or immediate operand (e.g. for TABORT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegOrImm {
    /// Value taken from a general register.
    Reg(Reg),
    /// Immediate value.
    Imm(u64),
}

/// Comparison conditions for compare-and-jump instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than ("low").
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than ("high").
    Gt,
    /// Greater than or equal ("not low" — CIJNL in Figure 1).
    Ge,
}

impl CmpCond {
    /// Evaluates the condition on a signed comparison.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpCond::Eq => a == b,
            CmpCond::Ne => a != b,
            CmpCond::Lt => a < b,
            CmpCond::Le => a <= b,
            CmpCond::Gt => a > b,
            CmpCond::Ge => a >= b,
        }
    }
}

/// Branch-condition masks for BRC (bit 8 = CC0, 4 = CC1, 2 = CC2, 1 = CC3).
pub mod cc_mask {
    /// Branch if CC = 0 (zero / equal).
    pub const ZERO: u8 = 8;
    /// Branch if CC ≠ 0.
    pub const NOT_ZERO: u8 = 7;
    /// Branch if CC = 1 (low / lock busy in Figure 1).
    pub const LOW: u8 = 4;
    /// Branch if CC = 2 (high).
    pub const HIGH: u8 = 2;
    /// Branch if CC = 3 ("ones" — JO in Figure 1: permanent abort).
    pub const ONES: u8 = 1;
    /// Unconditional.
    pub const ALWAYS: u8 = 15;
}

/// One simulated instruction.
///
/// Branch targets are instruction indices resolved by the
/// [`Assembler`](crate::Assembler).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // ---- loads / stores ----
    /// Load 8 bytes: `r ← mem`.
    Lg(Reg, MemOperand),
    /// Store 8 bytes: `mem ← r`.
    Stg(Reg, MemOperand),
    /// Load and test 8 bytes (sets CC from the loaded value) — the `LT` of
    /// Figure 1's lock check.
    Ltg(Reg, MemOperand),
    /// Load halfword immediate: `r ← imm`.
    Lghi(Reg, i64),
    /// Load register: `r1 ← r2`.
    Lgr(Reg, Reg),
    /// Load address: `r ← effective address`.
    La(Reg, MemOperand),
    /// Compare and swap 8 bytes: if `mem = r1` then `mem ← r3`, CC 0; else
    /// `r1 ← mem`, CC 1.
    Csg(Reg, Reg, MemOperand),
    /// Non-transactional store of 8 bytes (§II.A): isolated during the
    /// transaction but committed even on abort.
    Ntstg(Reg, MemOperand),

    // ---- arithmetic / logic ----
    /// Add register: `r1 ← r1 + r2`.
    Agr(Reg, Reg),
    /// Subtract register: `r1 ← r1 - r2`.
    Sgr(Reg, Reg),
    /// Add halfword immediate: `r ← r + imm` (sets CC from the result).
    Aghi(Reg, i64),
    /// AND registers: `r1 ← r1 & r2`.
    Ngr(Reg, Reg),
    /// XOR registers: `r1 ← r1 ^ r2`.
    Xgr(Reg, Reg),
    /// Multiply: `r1 ← r1 * r2`.
    Msgr(Reg, Reg),
    /// Divide: `r1 ← r1 / r2` (fixed-point-divide exception when `r2 = 0`).
    Dsgr(Reg, Reg),
    /// Shift left logical: `r1 ← r2 << amount`.
    Sllg(Reg, Reg, u8),
    /// Shift right logical: `r1 ← r2 >> amount`.
    Srlg(Reg, Reg, u8),
    /// Load and test register: `r1 ← r2`, CC from value.
    Ltgr(Reg, Reg),
    /// Compare registers (signed), sets CC.
    Cgr(Reg, Reg),
    /// Compare immediate (signed), sets CC.
    Cghi(Reg, i64),
    /// Compare register with 8 bytes of memory (signed), sets CC — relieves
    /// register pressure in the STM read/write-set scans.
    Cg(Reg, MemOperand),

    // ---- branches (relative, assembler-resolved) ----
    /// Branch on condition mask (see [`cc_mask`]); `J` is `Brc(ALWAYS, _)`.
    Brc(u8, usize),
    /// Compare immediate and jump on condition — Figure 1's CIJNL.
    Cgij(Reg, i64, CmpCond, usize),
    /// Branch on count: `r ← r - 1`; branch if `r ≠ 0`.
    Brctg(Reg, usize),
    /// Branch via register (non-relative — forbidden in constrained
    /// transactions, §II.D). The register holds an instruction *index*.
    Br(Reg),

    // ---- transactional execution (§II.A) ----
    /// Transaction Begin (non-constrained).
    Tbegin(TbeginParams),
    /// Transaction Begin Constrained (§II.D).
    Tbeginc(GrSaveMask),
    /// Transaction End.
    Tend,
    /// Transaction Abort with a code (≥ 256; low bit picks CC 2/3).
    Tabort(RegOrImm),
    /// Extract Transaction Nesting Depth into a register.
    Etnd(Reg),
    /// Perform Processor Assist, function code TX: random abort back-off;
    /// the register passes the current abort count (§II.A).
    Ppa(Reg),

    // ---- timing / randomness ----
    /// Store Clock Fast: store the local cycle clock to memory (§IV uses it
    /// to time lock/tend sections).
    Stckf(MemOperand),
    /// Simulator helper: read the local cycle clock into a register
    /// (avoids memory traffic in measurement code; see DESIGN.md).
    Rdclk(Reg),
    /// Simulator helper: `r ← uniform(0..bound)`. Zero cycle cost — the
    /// paper excludes random-number-generation overhead from its
    /// measurements (§IV).
    RandMod(Reg, RegOrImm),

    // ---- register-set controls (§II.B) ----
    /// Set access register from a GR (AR-modifying).
    Sar(u8, Reg),
    /// Extract access register into a GR (not AR-modifying).
    Ear(Reg, u8),
    /// Floating-point add register (FPR-modifying; also excluded from
    /// constrained transactions).
    Adbr(u8, u8),
    /// A storage-to-storage decimal operation stand-in: legal in normal
    /// transactions, excluded from constrained ones (§II.D).
    Decimal,
    /// A privileged-instruction stand-in: restricted in any transaction
    /// (§II.A).
    Privileged,

    // ---- misc ----
    /// Software-TM observability marker: reports `(kind, value-of-reg)` to
    /// the machine (`Machine::stm_note`). Zero cycle cost and no
    /// architectural effect — the STM runtime's timing must not be inflated
    /// by its own instrumentation (see `ztm_isa::stm_note` for the kinds).
    StmNote(u8, Reg),
    /// No operation.
    Nop,
    /// Burn the given number of cycles in one instruction (models a pause /
    /// back-off loop without simulating each iteration).
    Delay(u64),
    /// Stop this CPU.
    Halt,
}

impl Instr {
    /// Encoded length in bytes (z instructions are 2, 4, or 6 bytes; these
    /// lengths drive the constrained-transaction text-span rule, §II.D).
    pub fn len(&self) -> u64 {
        use Instr::*;
        match self {
            Nop | Halt | StmNote(..) => 2,
            Delay(..) => 4,
            Lghi(..) | Lgr(..) | Agr(..) | Sgr(..) | Aghi(..) | Ngr(..) | Xgr(..) | Msgr(..)
            | Dsgr(..) | Ltgr(..) | Cgr(..) | Cghi(..) | Etnd(..) | Ppa(..) | Rdclk(..)
            | RandMod(..) | Sar(..) | Ear(..) | Adbr(..) | Br(..) | Tend => 4,
            La(..) | Brc(..) | Brctg(..) => 4,
            Lg(..) | Stg(..) | Ltg(..) | Cg(..) | Csg(..) | Ntstg(..) | Sllg(..) | Srlg(..)
            | Cgij(..) | Tbegin(..) | Tbeginc(..) | Tabort(..) | Stckf(..) | Decimal
            | Privileged => 6,
        }
    }

    /// Always false; instructions occupy at least 2 bytes. Present to pair
    /// with [`Instr::len`] per Rust API conventions.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Branch-target instruction index, if this is a resolved branch.
    pub fn branch_target(&self) -> Option<usize> {
        match self {
            Instr::Brc(_, t) | Instr::Cgij(_, _, _, t) | Instr::Brctg(_, t) => Some(*t),
            _ => None,
        }
    }

    /// The transactional-legality classification (consumed by
    /// [`ztm_core::TxEngine::check_instruction`]). `backward` reports branch
    /// direction and must be supplied by the program (which knows addresses).
    pub fn class(&self, backward: bool) -> InstrClass {
        use Instr::*;
        match self {
            Brc(..) | Cgij(..) | Brctg(..) => InstrClass::BranchRelative { backward },
            Br(..) => InstrClass::BranchOther,
            Sar(..) => InstrClass::ArModifying,
            Adbr(..) => InstrClass::FprModifying,
            Decimal => InstrClass::RestrictedInConstrained,
            Privileged => InstrClass::RestrictedInTx,
            _ => InstrClass::General,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::gr::*;

    #[test]
    fn lengths_are_z_like() {
        assert_eq!(Instr::Nop.len(), 2);
        assert_eq!(Instr::Lghi(R1, 0).len(), 4);
        assert_eq!(Instr::Lg(R1, MemOperand::absolute(0)).len(), 6);
        assert_eq!(Instr::Tend.len(), 4);
        assert_eq!(Instr::Tbeginc(GrSaveMask::ALL).len(), 6);
        assert!(!Instr::Nop.is_empty());
    }

    #[test]
    fn classification() {
        assert_eq!(
            Instr::Brc(7, 0).class(true),
            InstrClass::BranchRelative { backward: true }
        );
        assert_eq!(Instr::Br(R1).class(false), InstrClass::BranchOther);
        assert_eq!(Instr::Sar(1, R1).class(false), InstrClass::ArModifying);
        assert_eq!(Instr::Adbr(0, 2).class(false), InstrClass::FprModifying);
        assert_eq!(
            Instr::Decimal.class(false),
            InstrClass::RestrictedInConstrained
        );
        assert_eq!(Instr::Privileged.class(false), InstrClass::RestrictedInTx);
        assert_eq!(
            Instr::Lg(R1, MemOperand::absolute(0)).class(false),
            InstrClass::General
        );
    }

    #[test]
    fn cmp_cond_eval() {
        assert!(CmpCond::Ge.eval(5, 5));
        assert!(CmpCond::Ge.eval(6, 5));
        assert!(!CmpCond::Ge.eval(4, 5));
        assert!(CmpCond::Ne.eval(1, 2));
        assert!(CmpCond::Le.eval(-1, 0));
        assert!(CmpCond::Gt.eval(3, 2) && !CmpCond::Gt.eval(2, 2));
        assert!(CmpCond::Eq.eval(0, 0) && CmpCond::Lt.eval(-2, -1));
    }

    #[test]
    fn branch_targets() {
        assert_eq!(Instr::Brc(15, 7).branch_target(), Some(7));
        assert_eq!(Instr::Nop.branch_target(), None);
    }

    #[test]
    fn mem_operand_forms() {
        let m = MemOperand::based(R5, 16);
        assert_eq!(m.base, Some(R5));
        assert_eq!(m.disp, 16);
        let a = MemOperand::absolute(0x1000);
        assert_eq!(a.base, None);
        assert_eq!(a.disp, 0x1000);
        let i = MemOperand::indexed(R5, R6, -8);
        assert_eq!(i.index, Some(R6));
        assert_eq!(i.disp, -8);
    }
}
