//! Property tests for the ISA layer: assembler address discipline and the
//! interpreter against a reference evaluator for straight-line ALU code.

use proptest::prelude::*;
use ztm_isa::{gr::*, run_to_halt, Assembler, Instr, Reg, SimpleMachine};

#[derive(Debug, Clone)]
enum AluOp {
    Lghi(u8, i16),
    Aghi(u8, i16),
    Agr(u8, u8),
    Sgr(u8, u8),
    Ngr(u8, u8),
    Xgr(u8, u8),
    Msgr(u8, u8),
    Sllg(u8, u8, u8),
    Srlg(u8, u8, u8),
    Lgr(u8, u8),
}

fn arb_op() -> impl Strategy<Value = AluOp> {
    let r = 0u8..16;
    prop_oneof![
        (r.clone(), any::<i16>()).prop_map(|(a, i)| AluOp::Lghi(a, i)),
        (r.clone(), any::<i16>()).prop_map(|(a, i)| AluOp::Aghi(a, i)),
        (r.clone(), r.clone()).prop_map(|(a, b)| AluOp::Agr(a, b)),
        (r.clone(), r.clone()).prop_map(|(a, b)| AluOp::Sgr(a, b)),
        (r.clone(), r.clone()).prop_map(|(a, b)| AluOp::Ngr(a, b)),
        (r.clone(), r.clone()).prop_map(|(a, b)| AluOp::Xgr(a, b)),
        (r.clone(), r.clone()).prop_map(|(a, b)| AluOp::Msgr(a, b)),
        (r.clone(), r.clone(), 0u8..64).prop_map(|(a, b, n)| AluOp::Sllg(a, b, n)),
        (r.clone(), r.clone(), 0u8..64).prop_map(|(a, b, n)| AluOp::Srlg(a, b, n)),
        (r.clone(), r).prop_map(|(a, b)| AluOp::Lgr(a, b)),
    ]
}

/// Reference semantics of the ALU subset.
fn reference(ops: &[AluOp]) -> [u64; 16] {
    let mut g = [0u64; 16];
    for op in ops {
        match *op {
            AluOp::Lghi(a, i) => g[a as usize] = i as i64 as u64,
            AluOp::Aghi(a, i) => g[a as usize] = g[a as usize].wrapping_add(i as i64 as u64),
            AluOp::Agr(a, b) => g[a as usize] = g[a as usize].wrapping_add(g[b as usize]),
            AluOp::Sgr(a, b) => g[a as usize] = g[a as usize].wrapping_sub(g[b as usize]),
            AluOp::Ngr(a, b) => g[a as usize] &= g[b as usize],
            AluOp::Xgr(a, b) => g[a as usize] ^= g[b as usize],
            AluOp::Msgr(a, b) => g[a as usize] = g[a as usize].wrapping_mul(g[b as usize]),
            AluOp::Sllg(a, b, n) => g[a as usize] = g[b as usize] << n,
            AluOp::Srlg(a, b, n) => g[a as usize] = g[b as usize] >> n,
            AluOp::Lgr(a, b) => g[a as usize] = g[b as usize],
        }
    }
    g
}

fn emit(a: &mut Assembler, op: &AluOp) {
    match *op {
        AluOp::Lghi(r, i) => a.lghi(Reg(r), i as i64),
        AluOp::Aghi(r, i) => a.aghi(Reg(r), i as i64),
        AluOp::Agr(x, y) => a.agr(Reg(x), Reg(y)),
        AluOp::Sgr(x, y) => a.sgr(Reg(x), Reg(y)),
        AluOp::Ngr(x, y) => a.ngr(Reg(x), Reg(y)),
        AluOp::Xgr(x, y) => a.push(Instr::Xgr(Reg(x), Reg(y))),
        AluOp::Msgr(x, y) => a.push(Instr::Msgr(Reg(x), Reg(y))),
        AluOp::Sllg(x, y, n) => a.sllg(Reg(x), Reg(y), n),
        AluOp::Srlg(x, y, n) => a.push(Instr::Srlg(Reg(x), Reg(y), n)),
        AluOp::Lgr(x, y) => a.lgr(Reg(x), Reg(y)),
    };
}

proptest! {
    /// Straight-line ALU programs compute exactly what the reference
    /// evaluator says, both plainly and inside a committed transaction
    /// (transactions are invisible to register dataflow when they commit).
    #[test]
    fn alu_matches_reference(ops in prop::collection::vec(arb_op(), 0..40)) {
        let mut a = Assembler::new(0);
        for op in &ops {
            emit(&mut a, op);
        }
        a.halt();
        let prog = a.assemble().unwrap();
        let core = run_to_halt(&prog, &mut SimpleMachine::new(0), 10_000);
        prop_assert_eq!(core.grs, reference(&ops));

        let mut b = Assembler::new(0);
        b.tbegin(ztm_core::TbeginParams::new());
        b.jnz("out");
        for op in &ops {
            emit(&mut b, op);
        }
        b.tend();
        b.label("out");
        b.halt();
        let prog = b.assemble().unwrap();
        let core = run_to_halt(&prog, &mut SimpleMachine::new(0), 10_000);
        prop_assert_eq!(core.grs, reference(&ops));
    }

    /// Assembler addresses are strictly increasing, spaced by instruction
    /// lengths, and `index_of_addr` is the exact inverse of `addr_of`.
    #[test]
    fn assembler_address_discipline(
        ops in prop::collection::vec(arb_op(), 1..50),
        base in 0u64..0x10000,
    ) {
        let mut a = Assembler::new(base);
        for op in &ops {
            emit(&mut a, op);
        }
        a.halt();
        let prog = a.assemble().unwrap();
        let mut expect = base;
        for i in 0..prog.len() {
            prop_assert_eq!(prog.addr_of(i), expect);
            prop_assert_eq!(prog.index_of_addr(expect), Some(i));
            expect += prog.instr(i).len();
        }
        // No interior byte of an instruction maps to an index.
        prop_assert_eq!(prog.index_of_addr(base + 1), None);
    }

    /// Register rollback: for any subset mask, aborting restores exactly
    /// the masked registers and leaves the rest at their modified values.
    #[test]
    fn rollback_respects_arbitrary_masks(mask in any::<u8>()) {
        use ztm_core::{GrSaveMask, TbeginParams};
        let mut a = Assembler::new(0);
        // Set every register to its index + 1.
        for r in 0..16u8 {
            a.lghi(Reg(r), (r + 1) as i64);
        }
        let params = TbeginParams {
            grsm: GrSaveMask::new(mask),
            ..TbeginParams::new()
        };
        a.tbegin(params);
        a.jnz("out");
        // Clobber every register.
        for r in 0..16u8 {
            a.lghi(Reg(r), 100 + r as i64);
        }
        a.tabort(256);
        a.label("out");
        a.halt();
        let prog = a.assemble().unwrap();
        let core = run_to_halt(&prog, &mut SimpleMachine::new(0), 10_000);
        for r in 0..16usize {
            let expect = if GrSaveMask::new(mask).covers_gr(r) {
                (r + 1) as u64 // restored
            } else {
                100 + r as u64 // survives the abort (§II.B)
            };
            prop_assert_eq!(core.grs[r], expect, "GR{}", r);
        }
    }

    /// Condition-code truth table for BRC: a branch with mask `m` is taken
    /// iff bit `3 - cc` of `m` is set.
    #[test]
    fn brc_mask_semantics(mask in 0u8..16, cc_src in 0u8..3) {
        // Produce CC 0, 1 or 2 via a compare.
        let mut a = Assembler::new(0);
        a.lghi(R1, cc_src as i64); // compare value
        a.cghi(R1, 1); // CC: 0 if ==1, 1 if <1, 2 if >1
        a.brc(mask, "taken");
        a.lghi(R9, 1); // fall-through marker
        a.halt();
        a.label("taken");
        a.lghi(R9, 2);
        a.halt();
        let prog = a.assemble().unwrap();
        let core = run_to_halt(&prog, &mut SimpleMachine::new(0), 100);
        let cc = match cc_src {
            1 => 0u8, // equal
            0 => 1,   // low
            _ => 2,   // high
        };
        let taken = mask >> (3 - cc) & 1 == 1;
        prop_assert_eq!(core.gr(R9), if taken { 2 } else { 1 });
    }
}
