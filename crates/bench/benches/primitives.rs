//! Criterion micro-benchmarks of the simulator primitives, so the harness
//! itself is performance-regression-tested.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ztm_cache::{AccessClass, CacheGeometry, CohState, PrivateCache, StoreCache};
use ztm_core::{TbeginParams, TxEngine};
use ztm_mem::{Address, LineAddr, MainMemory};
use ztm_sim::{System, SystemConfig};
use ztm_workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};

fn bench_cache_hit_path(c: &mut Criterion) {
    let mut cache = PrivateCache::new(CacheGeometry::zec12());
    cache.install(
        LineAddr::new(1),
        CohState::Exclusive,
        AccessClass::Fetch,
        false,
    );
    c.bench_function("l1_hit_lookup", |b| {
        b.iter(|| black_box(cache.lookup(black_box(LineAddr::new(1)), AccessClass::Fetch)))
    });
}

fn bench_store_cache_gather(c: &mut Criterion) {
    c.bench_function("store_cache_gather_64", |b| {
        b.iter(|| {
            let mut sc = StoreCache::new(64);
            for i in 0..64u64 {
                sc.store(Address::new(i * 8), &[1u8; 8], true, false);
            }
            black_box(sc.tx_entries())
        })
    });
}

fn bench_tx_begin_end(c: &mut Criterion) {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(1);
    let mut tx = TxEngine::default();
    let grs = [0u64; 16];
    c.bench_function("tx_begin_commit", |b| {
        b.iter(|| {
            tx.begin(TbeginParams::new(), false, &grs, 0, 6, &mut rng)
                .unwrap();
            black_box(tx.tend())
        })
    });
}

fn bench_memory_image(c: &mut Criterion) {
    let mut mem = MainMemory::new();
    c.bench_function("memory_store_load_u64", |b| {
        b.iter(|| {
            mem.store_u64(Address::new(0x1000), 7);
            black_box(mem.load_u64(Address::new(0x1000)))
        })
    });
}

fn bench_system_steps(c: &mut Criterion) {
    c.bench_function("pool_tbeginc_2cpu_50ops", |b| {
        b.iter(|| {
            let wl = PoolWorkload::new(PoolLayout::new(16, 1), SyncMethod::Tbeginc, 1);
            let mut sys = System::new(SystemConfig::with_cpus(2));
            black_box(wl.run(&mut sys, 50).committed_ops())
        })
    });
}

criterion_group!(
    benches,
    bench_cache_hit_path,
    bench_store_cache_gather,
    bench_tx_begin_end,
    bench_memory_image,
    bench_system_steps
);
criterion_main!(benches);
