//! Criterion benchmarks of simulator performance on the main workloads —
//! guards against regressions in the hot simulation paths (steps/second),
//! not in the simulated results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ztm_sim::{System, SystemConfig};
use ztm_workloads::bank::{Bank, BankMethod};
use ztm_workloads::hashtable::{HashTable, TableMethod};
use ztm_workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};
use ztm_workloads::queue::{ConcurrentQueue, QueueMethod};

fn bench_pool_methods(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_4cpu_40ops");
    for (name, method) in [
        ("lock", SyncMethod::CoarseLock),
        ("tbegin", SyncMethod::Tbegin),
        ("tbeginc", SyncMethod::Tbeginc),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &method, |b, &m| {
            b.iter(|| {
                let wl = PoolWorkload::new(PoolLayout::new(16, 1), m, 1);
                let mut sys = System::new(SystemConfig::with_cpus(4));
                black_box(wl.run(&mut sys, 40).committed_ops())
            })
        });
    }
    g.finish();
}

fn bench_contended_pool(c: &mut Criterion) {
    c.bench_function("pool_hot_8cpu", |b| {
        b.iter(|| {
            let wl = PoolWorkload::new(PoolLayout::new(4, 1), SyncMethod::Tbegin, 1);
            let mut sys = System::new(SystemConfig::with_cpus(8));
            black_box(wl.run(&mut sys, 25).committed_ops())
        })
    });
}

fn bench_hashtable(c: &mut Criterion) {
    c.bench_function("hashtable_elision_4cpu", |b| {
        b.iter(|| {
            let t = HashTable::new(256, 1024, 20, TableMethod::Elision);
            let mut sys = System::new(SystemConfig::with_cpus(4));
            t.populate(&mut sys, &(0..256).collect::<Vec<_>>());
            black_box(t.run(&mut sys, 30).committed_ops())
        })
    });
}

fn bench_queue(c: &mut Criterion) {
    c.bench_function("queue_tbeginc_4cpu", |b| {
        b.iter(|| {
            let q = ConcurrentQueue::new(QueueMethod::Tbeginc);
            let mut sys = System::new(SystemConfig::with_cpus(4));
            q.seed(&mut sys, 16);
            black_box(q.run(&mut sys, 30).committed_ops())
        })
    });
}

fn bench_bank(c: &mut Criterion) {
    c.bench_function("bank_tbeginc_4cpu", |b| {
        b.iter(|| {
            let bank = Bank::new(16, BankMethod::Tbeginc);
            let mut sys = System::new(SystemConfig::with_cpus(4));
            bank.open(&mut sys, 1_000);
            black_box(bank.run(&mut sys, 30).committed_ops())
        })
    });
}

criterion_group!(
    benches,
    bench_pool_methods,
    bench_contended_pool,
    bench_hashtable,
    bench_queue,
    bench_bank
);
criterion_main!(benches);
