//! Shared harness for the figure-regeneration binaries.
//!
//! One binary per table/figure of the paper's §IV (see DESIGN.md's
//! per-experiment index):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig_uncontended` | E1: single-CPU TX vs lock (~30%), TBEGINC vs TBEGIN (~0.4%) |
//! | `fig5a` | Fig 5(a): TX vs locks, 4 vars, pools 1k/10k |
//! | `fig5b` | Fig 5(b): single var, pool 10, coarse/fine/TBEGINC/TBEGIN |
//! | `fig5c` | Fig 5(c): 4 vars, pool 10 |
//! | `fig5d` | Fig 5(d): read-write lock vs TBEGINC, 4-var reads, pool 10k |
//! | `fig5e` | Fig 5(e): lock-elided hashtable |
//! | `fig5f` | Fig 5(f): LRU-extension effect on the fetch footprint |
//! | `fig_queue` | E2: ConcurrentLinkedQueue, constrained TX ≈ 2× locks |
//! | `ablation_stiffarm` | E3: XI reject (stiff-arming) on/off |
//! | `ablation_retry_ladder` | E4: constrained-retry ladder stages |
//!
//! Run them in release mode, e.g.
//! `cargo run --release -p ztm-bench --bin fig5b`.
//! Set `ZTM_QUICK=1` for a reduced sweep.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use ztm_sim::{System, SystemConfig, SystemReport};
use ztm_trace::{Recorder, Tracer};
use ztm_workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};
use ztm_workloads::WorkloadReport;

/// The CPU counts on the paper's x-axes (2…100).
pub const CPU_COUNTS: [usize; 12] = [2, 3, 4, 5, 6, 8, 10, 20, 40, 60, 80, 100];

/// A reduced sweep for quick runs (`ZTM_QUICK=1`).
pub const CPU_COUNTS_QUICK: [usize; 6] = [2, 4, 6, 10, 20, 40];

/// The full-topology tier's x-axis (`ZTM_FULL=1`): up to the zEC12's
/// 144 CPUs (4 books × 6 chips × 6 cores), with points on the chip (6)
/// and book (36) boundaries where the paper's step-function drops sit.
pub const CPU_COUNTS_FULL: [usize; 10] = [2, 6, 12, 24, 36, 48, 72, 96, 120, 144];

/// Reduced full-topology sweep (`ZTM_FULL=1 ZTM_QUICK=1`, the CI smoke
/// tier) — fewer points but still reaching the 144-CPU apex.
pub const CPU_COUNTS_FULL_QUICK: [usize; 5] = [2, 12, 36, 72, 144];

/// The CPU counts to sweep, honoring `ZTM_FULL` and `ZTM_QUICK`.
pub fn cpu_counts() -> Vec<usize> {
    match (full(), quick()) {
        (true, true) => CPU_COUNTS_FULL_QUICK.to_vec(),
        (true, false) => CPU_COUNTS_FULL.to_vec(),
        (false, true) => CPU_COUNTS_QUICK.to_vec(),
        (false, false) => CPU_COUNTS.to_vec(),
    }
}

/// Whether quick mode is on (smaller sweeps for CI/tests).
pub fn quick() -> bool {
    ztm_sim::env_flag("ZTM_QUICK")
}

/// Whether the full-topology tier is on (`ZTM_FULL=1`): sweep to 144 CPUs
/// on the real zEC12 book/chip arrangement instead of the paper's testbed
/// MCM granularity. Orthogonal to [`quick`], which still shrinks op counts.
pub fn full() -> bool {
    ztm_sim::env_flag("ZTM_FULL")
}

/// The system configuration for one sweep point, honoring the
/// full-topology tier. Outside `ZTM_FULL=1` this is exactly
/// [`SystemConfig::with_cpus`], so committed digests are unaffected.
pub fn system_config(cpus: usize) -> SystemConfig {
    let mut cfg = SystemConfig::with_cpus(cpus);
    if full() {
        cfg.topology = ztm_cache::Topology::zec12(cpus);
    }
    cfg
}

/// Result-file name for the current tier: pipelined runs
/// (`ZTM_ISSUE_WIDTH` > 1) get a `_w<width>` suffix and full-topology
/// artifacts a `_full` suffix, so variant artifacts sit next to (never
/// overwrite) the default tier's.
pub fn bench_tag(name: &str) -> String {
    let mut tag = name.to_string();
    if let Some(w) = issue_width() {
        tag.push_str(&format!("_w{w}"));
    }
    if full() {
        tag.push_str("_full");
    }
    tag
}

/// The pipeline issue width in effect, when above 1 (`ZTM_ISSUE_WIDTH`,
/// validated by [`ztm_sim::env_usize`] — a bad token fails loudly here
/// rather than silently running unpipelined).
pub fn issue_width() -> Option<u64> {
    ztm_sim::env_usize("ZTM_ISSUE_WIDTH")
        .map(|w| w as u64)
        .filter(|&w| w > 1)
}

/// Worker-thread count for [`sweep`]: `ZTM_BENCH_THREADS` if set (≥ 1),
/// otherwise the host's available parallelism.
pub fn bench_threads() -> usize {
    ztm_sim::env_usize("ZTM_BENCH_THREADS").unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Intra-run host threads (`ZTM_SIM_THREADS`) in effect for the systems
/// this process builds — the sharded-simulation dial, as opposed to
/// [`bench_threads`], which fans independent sweep points out.
pub fn sim_threads() -> usize {
    ztm_sim::env_usize("ZTM_SIM_THREADS").unwrap_or(1)
}

/// Runs `f` over every config, fanning the points out across worker threads,
/// and returns the results **in input order**.
///
/// Each point is an independent simulation: `f` constructs its own
/// [`System`] (a `System` is not `Send` — its tracer hands out `Rc`s — so it
/// must live and die inside the worker that runs it). Determinism is
/// unaffected: a simulation's outcome depends only on its config and seed,
/// never on which host thread runs it, so the result vector — and therefore
/// the table printed from it — is byte-identical for any thread count,
/// including 1. Workers claim points dynamically (an atomic cursor), which
/// load-balances sweeps whose cost grows steeply with the CPU count.
///
/// Traced runs (those that keep a `Recorder` for metrics export) should stay
/// outside `sweep`, since the recorder is thread-local by construction.
pub fn sweep<C, R, F>(configs: Vec<C>, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    sweep_with(bench_threads(), configs, f)
}

/// [`sweep`] with an explicit worker count (exposed for tests).
pub fn sweep_with<C, R, F>(threads: usize, configs: Vec<C>, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    if threads <= 1 || configs.len() <= 1 {
        return configs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = configs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(configs.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cfg) = configs.get(i) else { break };
                *slots[i].lock().expect("sweep slot") = Some(f(cfg));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("sweep slot")
                .expect("every slot filled")
        })
        .collect()
}

/// Operations per CPU, scaled down as CPU counts grow so total work stays
/// bounded under heavy serialization.
pub fn ops_for(cpus: usize) -> u64 {
    let budget = if quick() { 2_000 } else { 6_000 };
    (budget / cpus as u64).clamp(30, 400)
}

/// Runs one pool-workload point.
pub fn run_pool(
    method: SyncMethod,
    cpus: usize,
    pool: u64,
    vars: usize,
    seed: u64,
) -> WorkloadReport {
    let wl = PoolWorkload::new(PoolLayout::new(pool, vars), method, seed);
    let mut sys = System::new(system_config(cpus).seed(seed));
    wl.run(&mut sys, ops_for(cpus))
}

/// Like [`run_pool`], but with a recording [`ztm_trace`] tracer attached, so
/// the caller can export the run's event-level metrics.
pub fn run_pool_traced(
    method: SyncMethod,
    cpus: usize,
    pool: u64,
    vars: usize,
    seed: u64,
) -> (WorkloadReport, Arc<Mutex<Recorder>>) {
    let wl = PoolWorkload::new(PoolLayout::new(pool, vars), method, seed);
    let mut sys = System::new(system_config(cpus).seed(seed));
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    let report = wl.run(&mut sys, ops_for(cpus));
    (report, recorder)
}

/// Host-side (wall-clock) speed of a benchmark run — simulator performance,
/// as opposed to the simulated machine's performance.
///
/// Accumulate one instance across every simulation a binary runs, then pass
/// it to [`write_bench_json`]. The fields are inherently non-deterministic
/// (they measure the host), so they serialize to a **single** `"timing"`
/// line that comparison tooling can strip with `grep -v '"timing"'` while
/// diffing the deterministic remainder.
#[derive(Clone, Copy, Debug, Default)]
pub struct Timing {
    /// Wall-clock milliseconds spent simulating.
    pub wall_ms: f64,
    /// Total scheduler steps across the accumulated runs.
    pub steps: u64,
    /// Total simulated cycles (max core clock per run, summed over runs).
    pub sim_cycles: u64,
    /// Aggregated sharded-driver round statistics (all zero on serial
    /// runs). Host-schedule measurements, so they ride the stripped
    /// `"timing"` line, never a deterministic field.
    pub sharding: ztm_sim::ShardingStats,
}

impl Timing {
    /// Folds one finished run into the totals.
    pub fn add_run(&mut self, wall: std::time::Duration, report: &SystemReport) {
        self.wall_ms += wall.as_secs_f64() * 1e3;
        self.steps += report.steps;
        self.sim_cycles += report.elapsed_cycles;
        self.sharding.merge(&report.sharding);
    }

    /// The single-line JSON value for the `"timing"` key.
    fn json_value(&self) -> String {
        let per_sec = |n: u64| {
            if self.wall_ms > 0.0 {
                n as f64 / (self.wall_ms / 1e3)
            } else {
                0.0
            }
        };
        let s = &self.sharding;
        format!(
            "{{ \"wall_ms\": {:.3}, \"steps_per_sec\": {:.0}, \"sim_cycles_per_sec\": {:.0}, \
             \"commit\": \"{}\", \"host_threads\": {}, \"sweep_threads\": {}, \
             \"shard_rounds\": {}, \"shard_mean_round\": {:.2}, \"shard_round_max\": {}, \
             \"shard_chain_max\": {}, \"shard_rollbacks\": {}, \"shard_replayed\": {}, \
             \"shard_rollbacks_tx\": {}, \"shard_rollbacks_fabric\": {}, \
             \"shard_rollbacks_quiesce\": {}, \"shard_window_min\": {}, \
             \"shard_window_mean\": {:.2}, \"shard_window_max\": {}, \
             \"shard_window_clamped\": {} }}",
            self.wall_ms,
            per_sec(self.steps),
            per_sec(self.sim_cycles),
            commit_id(),
            sim_threads(),
            bench_threads(),
            s.rounds,
            s.mean_round_steps(),
            s.round_steps_max,
            s.chain_max,
            s.rollbacks,
            s.replayed,
            s.rollbacks_tx,
            s.rollbacks_fabric,
            s.rollbacks_quiesce,
            s.window_min,
            s.mean_window(),
            s.window_max,
            s.window_clamped
        )
    }
}

/// The git commit the binary ran from, for correlating timing artifacts
/// with history: `git rev-parse` when run inside a checkout, else the CI
/// `GITHUB_SHA`, else `"unknown"`. Lives on the stripped `"timing"` line —
/// it is host metadata, not simulation output.
fn commit_id() -> String {
    static COMMIT: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    COMMIT
        .get_or_init(|| {
            let git = std::process::Command::new("git")
                .args(["rev-parse", "--short=12", "HEAD"])
                .output();
            if let Ok(out) = git {
                if out.status.success() {
                    if let Ok(s) = String::from_utf8(out.stdout) {
                        let s = s.trim();
                        if !s.is_empty() {
                            return s.to_string();
                        }
                    }
                }
            }
            match std::env::var("GITHUB_SHA") {
                Ok(sha) if !sha.is_empty() => sha.chars().take(12).collect(),
                _ => "unknown".to_string(),
            }
        })
        .clone()
}

/// Writes `BENCH_<name>.json` into the results directory (`ZTM_RESULTS_DIR`,
/// default `results/`): the benchmark's headline numbers plus, when a
/// recorder is given, the run's full [`ztm_trace::Metrics`] document — so
/// every figure binary leaves a machine-readable perf trajectory behind.
/// A [`Timing`], when given, lands on one `"timing"` line (see there).
///
/// # Errors
///
/// Propagates filesystem errors from creating the directory or writing.
pub fn write_bench_json(
    name: &str,
    headlines: &[(&str, f64)],
    recorder: Option<&Recorder>,
    timing: Option<&Timing>,
) -> std::io::Result<PathBuf> {
    write_bench_json_sweep(name, headlines, None, recorder, timing)
}

/// [`write_bench_json`] plus an optional per-point sweep table: the rows
/// the binary printed as its figure, exported verbatim so offline tooling
/// (`results/plot_fig5e_full.py`) can re-render the figure without
/// re-running the simulator. The table is deterministic output and is
/// diffed by CI like every other non-timing field.
///
/// # Errors
///
/// Propagates filesystem errors from creating the directory or writing.
pub fn write_bench_json_sweep(
    name: &str,
    headlines: &[(&str, f64)],
    sweep: Option<&SweepTable>,
    recorder: Option<&Recorder>,
    timing: Option<&Timing>,
) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(std::env::var("ZTM_RESULTS_DIR").unwrap_or_else(|_| "results".into()));
    write_bench_json_to(&dir, name, headlines, sweep, recorder, timing)
}

/// A figure's per-point rows for [`write_bench_json_sweep`]: the x column
/// name, one name per y series, and `(x, ys)` rows with one y per series.
/// Series names must not collide with headline keys of the digest-only
/// artifact shape (CI grep-extracts headline lines by key across the two
/// shapes).
pub struct SweepTable<'a> {
    pub x: &'a str,
    pub series: &'a [&'a str],
    pub rows: Vec<(usize, Vec<f64>)>,
}

/// [`write_bench_json_sweep`] with an explicit target directory — the
/// testable core (tests must not mutate `ZTM_RESULTS_DIR`, which is
/// process-global and races with any parallel test reading it).
pub fn write_bench_json_to(
    dir: &std::path::Path,
    name: &str,
    headlines: &[(&str, f64)],
    sweep: Option<&SweepTable>,
    recorder: Option<&Recorder>,
    timing: Option<&Timing>,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"bench\": \"{name}\",\n"));
    let hl: Vec<String> = headlines
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    body.push_str(&format!("  \"headlines\": {{\n{}\n  }},\n", hl.join(",\n")));
    if let Some(s) = sweep {
        let series: Vec<String> = s.series.iter().map(|n| format!("\"{n}\"")).collect();
        body.push_str(&format!(
            "  \"sweep\": {{\n    \"x\": \"{}\",\n    \"series\": [{}],\n    \"rows\": [\n",
            s.x,
            series.join(", ")
        ));
        let rows: Vec<String> = s
            .rows
            .iter()
            .map(|(x, ys)| {
                let ys: Vec<String> = ys.iter().map(|y| format!("{y}")).collect();
                format!("      [{x}, {}]", ys.join(", "))
            })
            .collect();
        body.push_str(&rows.join(",\n"));
        body.push_str("\n    ]\n  },\n");
    }
    if let Some(t) = timing {
        body.push_str(&format!("  \"timing\": {},\n", t.json_value()));
    }
    match recorder {
        Some(rec) => {
            // The metrics document is itself JSON; indent it for nesting.
            let nested = rec.metrics_json();
            let nested = nested.trim_end().replace('\n', "\n  ");
            body.push_str(&format!("  \"metrics\": {nested}\n"));
        }
        None => body.push_str("  \"metrics\": null\n"),
    }
    body.push_str("}\n");
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Whether the digest-only tracing tier is engaged (`ZTM_DIGEST_ONLY=1`,
/// and only the value "1"): figure binaries then attach `ztm-trace`'s
/// digest-only sink to their traced re-run instead of a full recorder and
/// export via [`write_bench_json_digest`] — the cheapest way to keep the
/// determinism check while skipping ring buffering and metrics.
pub fn digest_only() -> bool {
    ztm_sim::env_flag("ZTM_DIGEST_ONLY")
}

/// The digest-only variant of [`write_bench_json`]: the same headline and
/// timing layout, but the metrics object carries only what the digest-only
/// sink knows — the FNV-1a trace digest (formatted exactly as the full
/// metrics document formats it, so a `grep '"digest"'` line from this file
/// diffs clean against the full-recorder artifact) and the events-digested
/// count.
///
/// # Errors
///
/// Propagates filesystem errors from creating the directory or writing.
pub fn write_bench_json_digest(
    name: &str,
    headlines: &[(&str, f64)],
    digest: u64,
    events: u64,
    timing: Option<&Timing>,
) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(std::env::var("ZTM_RESULTS_DIR").unwrap_or_else(|_| "results".into()));
    write_bench_json_digest_to(&dir, name, headlines, digest, events, timing)
}

/// [`write_bench_json_digest`] with an explicit target directory (the
/// testable core, mirroring [`write_bench_json_to`]).
pub fn write_bench_json_digest_to(
    dir: &std::path::Path,
    name: &str,
    headlines: &[(&str, f64)],
    digest: u64,
    events: u64,
    timing: Option<&Timing>,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"bench\": \"{name}\",\n"));
    let hl: Vec<String> = headlines
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    body.push_str(&format!("  \"headlines\": {{\n{}\n  }},\n", hl.join(",\n")));
    if let Some(t) = timing {
        body.push_str(&format!("  \"timing\": {},\n", t.json_value()));
    }
    body.push_str("  \"metrics\": {\n");
    body.push_str(&format!("    \"digest\": \"{digest:#018x}\",\n"));
    body.push_str(&format!("    \"events\": {events}\n"));
    body.push_str("  }\n");
    body.push_str("}\n");
    std::fs::write(&path, body)?;
    Ok(path)
}

/// The paper's normalization reference: the throughput of 2 CPUs updating a
/// single variable from a pool of 1 (coarse lock); figures divide by this
/// and multiply by 100.
pub fn reference_throughput(seed: u64) -> f64 {
    run_pool(SyncMethod::CoarseLock, 2, 1, 1, seed).throughput()
}

/// Prints a table header: first column label plus one column per series.
pub fn print_header(x_label: &str, series: &[&str]) {
    print!("{x_label:>8}");
    for s in series {
        print!("{s:>14}");
    }
    println!();
}

/// Prints one row of values.
pub fn print_row(x: impl std::fmt::Display, values: &[f64]) {
    print!("{x:>8}");
    for v in values {
        print!("{v:>14.1}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_scale_down_with_cpus() {
        assert!(ops_for(2) >= ops_for(100));
        assert!(ops_for(100) >= 30);
    }

    #[test]
    fn reference_is_positive() {
        assert!(reference_throughput(1) > 0.0);
    }

    #[test]
    fn bench_json_exports_headlines_and_metrics() {
        // Inject the directory explicitly — mutating `ZTM_RESULTS_DIR` here
        // would race with parallel tests (env vars are process-global).
        let dir = std::env::temp_dir().join("ztm-bench-json-test");
        let (report, recorder) = run_pool_traced(SyncMethod::Tbegin, 2, 4, 1, 7);
        let mut timing = Timing::default();
        timing.add_run(std::time::Duration::from_millis(5), &report.system);
        let path = write_bench_json_to(
            &dir,
            "test",
            &[("cycles_per_op", report.avg_op_cycles())],
            Some(&SweepTable {
                x: "cpus",
                series: &["lock", "elision"],
                rows: vec![(1, vec![1.0, 1.25]), (2, vec![1.5, 4.0])],
            }),
            Some(&recorder.lock().unwrap()),
            Some(&timing),
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"cycles_per_op\""));
        assert!(text.contains("\"abort_codes\""), "{text}");
        assert!(text.contains("\"digest\""));
        // The sweep table rides as a deterministic field: x label, series
        // names, and one row array per point.
        assert!(text.contains("\"sweep\""), "{text}");
        assert!(
            text.contains("\"series\": [\"lock\", \"elision\"]"),
            "{text}"
        );
        assert!(text.contains("[2, 1.5, 4]"), "{text}");
        // The timing key must stay on one line so CI can strip it with grep.
        let timing_lines: Vec<&str> = text.lines().filter(|l| l.contains("\"timing\"")).collect();
        assert_eq!(timing_lines.len(), 1);
        assert!(timing_lines[0].contains("\"steps_per_sec\""));
        // Host metadata (commit, thread count) must ride the same stripped
        // line, never a deterministic field.
        assert!(timing_lines[0].contains("\"commit\""));
        assert!(timing_lines[0].contains("\"host_threads\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_only_json_digest_line_matches_the_full_export() {
        // The digest-only artifact must render its "digest" and "events"
        // lines byte-identically to the full-recorder export, so CI can
        // grep-extract and diff them across the two artifact shapes.
        let dir = std::env::temp_dir().join("ztm-bench-digest-json-test");
        let (report, recorder) = run_pool_traced(SyncMethod::Tbegin, 2, 4, 1, 7);
        let rec = recorder.lock().unwrap();
        let full = write_bench_json_to(
            &dir,
            "full",
            &[("cycles_per_op", report.avg_op_cycles())],
            None,
            Some(&rec),
            None,
        )
        .unwrap();
        let digest = write_bench_json_digest_to(
            &dir,
            "digest",
            &[("cycles_per_op", report.avg_op_cycles())],
            rec.digest(),
            rec.metrics().events,
            None,
        )
        .unwrap();
        let pick = |path: &std::path::Path, key: &str| -> String {
            std::fs::read_to_string(path)
                .unwrap()
                .lines()
                .find(|l| l.contains(key))
                .unwrap_or_else(|| panic!("{key} missing in {}", path.display()))
                .trim_end_matches(',')
                .to_string()
        };
        assert_eq!(pick(&full, "\"digest\":"), pick(&digest, "\"digest\":"));
        assert_eq!(pick(&full, "\"events\":"), pick(&digest, "\"events\":"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_returns_input_order_for_any_thread_count() {
        let configs: Vec<usize> = (0..17).collect();
        let serial = sweep_with(1, configs.clone(), |&c| c * 3 + 1);
        assert_eq!(serial, (0..17).map(|c| c * 3 + 1).collect::<Vec<_>>());
        for threads in [2, 5, 16, 64] {
            assert_eq!(sweep_with(threads, configs.clone(), |&c| c * 3 + 1), serial);
        }
    }

    #[test]
    fn sweep_simulation_points_are_thread_count_independent() {
        let configs = vec![
            (SyncMethod::CoarseLock, 2usize),
            (SyncMethod::Tbegin, 2),
            (SyncMethod::Tbeginc, 3),
        ];
        let key = |r: &WorkloadReport| (r.throughput().to_bits(), r.system.steps);
        let serial: Vec<_> = sweep_with(1, configs.clone(), |&(m, n)| run_pool(m, n, 4, 1, 7))
            .iter()
            .map(key)
            .collect();
        let parallel: Vec<_> = sweep_with(4, configs, |&(m, n)| run_pool(m, n, 4, 1, 7))
            .iter()
            .map(key)
            .collect();
        assert_eq!(serial, parallel);
    }
}
