//! Figure 5(d): read-write lock vs constrained transactions, four variables
//! read, pool size 10k.
//!
//! Expected shape (paper): the rwlock's reader-count updates ping-pong the
//! lock-word line between CPUs and cap throughput; transactional readers
//! share everything read-only and scale almost linearly.

use ztm_bench::{cpu_counts, ops_for, print_header, print_row, quick, reference_throughput, sweep};
use ztm_sim::{System, SystemConfig};
use ztm_workloads::rwlock::{ReadMethod, ReadWorkload};

fn main() {
    let pool: u64 = if quick() { 1_000 } else { 10_000 };
    println!("Fig 5(d): R/W lock vs TBEGINC, 4 variables read, pool {pool}");
    println!("(normalized: 100 = 2 CPUs, single variable, pool of 1)");
    println!();
    let reference = reference_throughput(42);
    print_header("CPUs", &["R/W Lock", "TBEGINC"]);
    let points: Vec<(ReadMethod, usize)> = cpu_counts()
        .into_iter()
        .flat_map(|cpus| [(ReadMethod::RwLock, cpus), (ReadMethod::Tbeginc, cpus)])
        .collect();
    let results = sweep(points, |&(m, cpus)| {
        let wl = ReadWorkload::new(pool, m);
        let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(42));
        wl.run(&mut sys, ops_for(cpus))
            .normalized_throughput(reference)
    });
    for (i, cpus) in cpu_counts().into_iter().enumerate() {
        print_row(cpus, &results[2 * i..2 * i + 2]);
    }
}
