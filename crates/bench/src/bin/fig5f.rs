//! Figure 5(f): effect of the LRU extension on the fetch footprint.
//!
//! Monte-Carlo over the real [`ztm_cache::PrivateCache`] mechanism: install
//! n random lines transactionally and record whether a fetch-overflow abort
//! occurred. Without the LRU extension the footprint is bounded by the L1
//! (64 sets × 6 ways); with it, by the L2 (512 sets × 8 ways) — §III.C.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ztm_bench::{print_header, print_row, quick, sweep};
use ztm_cache::{AccessClass, CacheGeometry, CohState, FootprintEvent, PrivateCache};
use ztm_mem::LineAddr;

/// One trial: returns whether installing `n` random lines aborted.
fn trial(geom: &CacheGeometry, n: usize, rng: &mut SmallRng) -> bool {
    let mut cache = PrivateCache::new(geom.clone());
    cache.begin_outermost_tx();
    let mut chosen = Vec::with_capacity(n);
    while chosen.len() < n {
        // Random congruence classes: random line addresses over a wide range.
        let line = LineAddr::new(rng.gen_range(0..1_000_000u64));
        if chosen.contains(&line) {
            continue;
        }
        chosen.push(line);
        let out = cache.install(line, CohState::ReadOnly, AccessClass::Fetch, true);
        if out
            .events
            .iter()
            .any(|e| matches!(e, FootprintEvent::FetchOverflow { .. }))
        {
            return true;
        }
    }
    false
}

fn main() {
    println!("Fig 5(f): statistical abort rate vs accessed cache lines");
    println!("(fetch-footprint overflow probability, random congruence classes)");
    println!();
    let trials = if quick() { 60 } else { 300 };
    let no_ext = CacheGeometry {
        lru_extension: false,
        ..CacheGeometry::zec12()
    };
    let with_ext = CacheGeometry::zec12();
    let points: Vec<usize> = vec![50, 100, 150, 200, 250, 300, 350, 400, 500, 600, 700, 800];
    print_header("lines", &["no-ext 64x6 %", "ext 512x8 %"]);
    // Each (lines, geometry) cell seeds its own rng from its coordinates, so
    // the Monte-Carlo estimate is independent of sweep order / thread count.
    let cells: Vec<(usize, bool)> = points
        .iter()
        .flat_map(|&n| [(n, false), (n, true)])
        .collect();
    let results = sweep(cells, |&(n, ext)| {
        let geom = if ext { &with_ext } else { &no_ext };
        let mut rng = SmallRng::seed_from_u64(5 ^ ((n as u64) << 1 | ext as u64));
        let aborts = (0..trials).filter(|_| trial(geom, n, &mut rng)).count();
        100.0 * aborts as f64 / trials as f64
    });
    for (i, &n) in points.iter().enumerate() {
        print_row(n, &results[2 * i..2 * i + 2]);
    }
    println!();
    println!("Paper shape: the 64x6 curve rises toward 100% within a few hundred");
    println!("lines; the 512x8 curve stays near zero across the whole range.");
}
