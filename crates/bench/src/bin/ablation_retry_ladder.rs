//! E4 (ablation): the constrained-transaction retry ladder (§III.E).
//!
//! Millicode escalates retries of a struggling constrained transaction:
//! random back-off → disable speculative fetching → broadcast-stop all
//! other CPUs. This ablation measures an adversarial high-conflict kernel
//! (2 variables from a pool of 8 hot lines — cross-holding deadlocks occur,
//! and prefetched neighbors are hot lines the transaction does not need)
//! under each ladder configuration.

use ztm_bench::{print_header, print_row, quick, sweep};
use ztm_core::RetryLadderConfig;
use ztm_sim::{System, SystemConfig};
use ztm_workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};

fn main() {
    println!("E4: constrained-retry ladder ablation — 2 vars, pool 8, TBEGINC");
    println!();
    let cpus = if quick() { 6 } else { 16 };
    let ops = if quick() { 40 } else { 80 };
    let configs: [(&str, RetryLadderConfig); 3] = [
        (
            "backoff-only",
            RetryLadderConfig {
                enable_speculation_stage: false,
                enable_broadcast_stage: false,
                ..RetryLadderConfig::zec12()
            },
        ),
        (
            "+no-spec",
            RetryLadderConfig {
                enable_broadcast_stage: false,
                ..RetryLadderConfig::zec12()
            },
        ),
        ("+broadcast", RetryLadderConfig::zec12()),
    ];
    print_header("ladder", &["thpt(x1e4)", "aborts/op", "bcasts"]);
    let results = sweep(configs.to_vec(), |(_, ladder)| {
        let mut cfg = SystemConfig::with_cpus(cpus).seed(42);
        cfg.engine.retry_ladder = ladder.clone();
        let mut sys = System::new(cfg);
        let wl = PoolWorkload::new(PoolLayout::new(8, 2), SyncMethod::Tbeginc, 42);
        wl.run(&mut sys, ops)
    });
    for ((name, _), rep) in configs.iter().zip(&results) {
        print_row(
            name,
            &[
                rep.throughput() * 1e4,
                rep.system.tx.aborts as f64 / rep.committed_ops() as f64,
                rep.system.tx.broadcast_stops as f64,
            ],
        );
    }
    println!();
    println!("Expected: the no-spec stage cuts aborts per commit (over-marked");
    println!("prefetches stop colliding); broadcast-stop trades a little");
    println!("throughput here for the forward-progress guarantee that");
    println!("dominates under extreme contention (see fig5c).");
}
