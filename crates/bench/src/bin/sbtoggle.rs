//! Same-system superblock A/B probe.
//!
//! Separate-`System` benchmark rows (the `stepbench` brackets) carry ±10 %
//! allocation-layout luck: two fresh systems place their heaps differently
//! and the difference survives min-of-5. This probe instead toggles
//! [`System::set_superblocks`] on ONE long-lived system mid-run, so both
//! modes step the identical heap, caches, and program state — any stable
//! ns/step delta between adjacent rounds is genuinely attributable to the
//! superblock fast path. Used to validate the numbers quoted in DESIGN.md
//! ("Superblock stepping"); the simulated schedule is byte-identical in
//! both modes, so toggling mid-run is safe.
use std::time::Instant;
use ztm_isa::gr::*;
use ztm_sim::{System, SystemConfig};
use ztm_workloads::hashtable::{HashTable, TableMethod};

fn main() {
    let table = HashTable::new(256, 1024, 20, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    table.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    let prog = table.program(1_000_000);
    sys.load_program_all(&prog);
    for i in 0..sys.cpus() {
        let arena = 0x2000_0000u64 + i as u64 * 0x10_0000;
        sys.core_mut(i).set_gr(R7, arena);
    }
    // Warm up past the cold-start transient before timing anything.
    sys.step_many(200_000);
    let n = 2_000_000u64;
    for round in 0..4 {
        for sb in [true, false] {
            sys.set_superblocks(sb);
            let t = Instant::now();
            let mut left = n;
            while left > 0 {
                let k = sys.step_many(left);
                if k == 0 {
                    println!("system halted; grow the per-op count");
                    return;
                }
                left -= k;
            }
            let el = t.elapsed().as_secs_f64();
            println!(
                "round {round} sb={sb:<5} {:.1} ns/step",
                el / n as f64 * 1e9
            );
        }
    }
    println!("superblock steps total: {}", sys.superblock_steps());
}
