//! E2 (§IV text): ConcurrentLinkedQueue with constrained transactions.
//!
//! The paper reports throughput exceeding locks by a factor of about 2.

use ztm_bench::{ops_for, print_header, print_row, quick, sweep};
use ztm_sim::{System, SystemConfig};
use ztm_workloads::queue::{ConcurrentQueue, QueueMethod};

fn main() {
    println!("E2: concurrent queue — global lock vs constrained transactions");
    println!();
    let counts: Vec<usize> = if quick() {
        vec![2, 4, 8]
    } else {
        vec![2, 4, 6, 8, 12, 16]
    };
    let points: Vec<(QueueMethod, usize)> = counts
        .iter()
        .flat_map(|&n| [(QueueMethod::Lock, n), (QueueMethod::Tbeginc, n)])
        .collect();
    let results = sweep(points, |&(method, cpus)| {
        let q = ConcurrentQueue::new(method);
        let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(42));
        q.seed(&mut sys, 64);
        q.run(&mut sys, ops_for(cpus).min(150)).throughput()
    });
    print_header("CPUs", &["Lock", "TBEGINC", "ratio"]);
    let mut last_ratio = 0.0;
    for (i, &n) in counts.iter().enumerate() {
        let (lock, tx) = (results[2 * i], results[2 * i + 1]);
        last_ratio = tx / lock;
        print_row(n, &[lock * 1e4, tx * 1e4, last_ratio]);
    }
    println!();
    println!(
        "TBEGINC / Lock at {} CPUs = {last_ratio:.2}x (paper: ~2x)",
        counts.last().unwrap()
    );
}
