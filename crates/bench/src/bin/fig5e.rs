//! Figure 5(e): lock-elided hashtable.
//!
//! Expected shape (paper): with the global lock, throughput is flat as
//! threads are added; with transactional lock elision it grows almost
//! linearly.

use ztm_bench::{ops_for, print_header, print_row, quick, write_bench_json};
use ztm_sim::{System, SystemConfig};
use ztm_trace::{Recorder, Tracer};
use ztm_workloads::hashtable::{HashTable, TableMethod};

fn main() {
    println!("Fig 5(e): java/util/Hashtable-style lock elision (20% puts)");
    println!("(throughput normalized to 1 thread under the global lock)");
    println!();
    let threads: Vec<usize> = if quick() {
        vec![1, 2, 4, 6]
    } else {
        vec![1, 2, 3, 4, 5, 6, 7, 8]
    };
    let run = |method, cpus: usize| {
        let t = HashTable::new(512, 2048, 20, method);
        let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(42));
        t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
        t.run(&mut sys, ops_for(cpus).min(150)).throughput()
    };
    let base = run(TableMethod::GlobalLock, 1);
    print_header("threads", &["Locks", "TBEGIN"]);
    let (mut lock_top, mut elision_top) = (0.0, 0.0);
    for &n in &threads {
        lock_top = run(TableMethod::GlobalLock, n) / base;
        elision_top = run(TableMethod::Elision, n) / base;
        print_row(n, &[lock_top, elision_top]);
    }
    // Re-run the widest elision point traced for the metrics trajectory.
    let top = *threads.last().unwrap();
    let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(top).seed(42));
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    t.run(&mut sys, ops_for(top).min(150));
    let rec = recorder.borrow();
    match write_bench_json(
        "fig5e_hashtable",
        &[
            ("threads", top as f64),
            ("lock_normalized", lock_top),
            ("elision_normalized", elision_top),
            ("elision_speedup", elision_top / lock_top),
        ],
        Some(&rec),
    ) {
        Ok(path) => println!("\nmetrics: {}", path.display()),
        Err(e) => eprintln!("metrics export failed: {e}"),
    }
}
