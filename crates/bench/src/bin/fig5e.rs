//! Figure 5(e): lock-elided hashtable.
//!
//! Expected shape (paper): with the global lock, throughput is flat as
//! threads are added; with transactional lock elision it grows almost
//! linearly. The unsynchronized column is the no-coordination upper bound
//! (it loses updates under contention — never a correctness baseline), and
//! its single-CPU run yields the measured-IPC headline: with
//! `ZTM_ISSUE_WIDTH` > 1 the issue window makes IPC an output of the
//! model rather than a configured constant.

use std::time::Instant;
use ztm_bench::{
    bench_tag, cpu_counts, digest_only, full, ops_for, print_header, print_row, quick, sweep,
    system_config, write_bench_json_digest, write_bench_json_sweep, SweepTable, Timing,
};
use ztm_sim::System;
use ztm_trace::{Recorder, Tracer};
use ztm_workloads::hashtable::{HashTable, TableMethod};

/// Parses `ZTM_FIG5E_THREADS=a,b,c`, skipping empty segments (so trailing
/// commas like `"36,"` are fine) and naming the offending token on error.
fn parse_threads(list: &str) -> Vec<usize> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                panic!("ZTM_FIG5E_THREADS: expected a list of thread counts, bad token {s:?}")
            })
        })
        .collect()
}

fn main() {
    println!("Fig 5(e): java/util/Hashtable-style lock elision (20% puts)");
    println!("(throughput normalized to 1 thread under the global lock)");
    println!();
    // `ZTM_FIG5E_THREADS=a,b,c` overrides the sweep (e.g. a single 36-CPU
    // point for scheduler-scaling measurements).
    let threads: Vec<usize> = match std::env::var("ZTM_FIG5E_THREADS") {
        Ok(list) => parse_threads(&list),
        // Full-topology tier: elide across the whole 144-CPU machine.
        Err(_) if full() => cpu_counts(),
        Err(_) if quick() => vec![1, 2, 4, 6],
        Err(_) => vec![1, 2, 3, 4, 5, 6, 7, 8],
    };
    assert!(
        !threads.is_empty(),
        "ZTM_FIG5E_THREADS: no thread counts given"
    );
    // One sweep point per (method, thread-count) cell, plus the 1-thread
    // global-lock normalization base at index 0 and the 1-CPU unsync IPC
    // point at the end; each worker times its run so the exported timing
    // covers every simulation this binary does. The IPC point runs long
    // enough to amortize cold-start cache misses — IPC is a steady-state
    // property, and the table's short runs are dominated by cold fills.
    let short = |cpus: usize| ops_for(cpus).min(150);
    let mut points = vec![(TableMethod::GlobalLock, 1, short(1))];
    for &n in &threads {
        points.push((TableMethod::GlobalLock, n, short(n)));
        points.push((TableMethod::Elision, n, short(n)));
        points.push((TableMethod::Unsync, n, short(n)));
    }
    // 25k ops amortize the ~300 cold line fills (~600 cycles each) that
    // otherwise dominate: the warm core runs at ~1.4 IPC with width 3.
    points.push((TableMethod::Unsync, 1, 25_000));
    let results = sweep(points, |&(method, cpus, ops)| {
        let t = HashTable::new(512, 2048, 20, method);
        let mut sys = System::new(system_config(cpus).seed(42));
        let t0 = Instant::now();
        t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
        let rep = t.run(&mut sys, ops);
        (rep.throughput(), rep.system, t0.elapsed())
    });
    let mut timing = Timing::default();
    for (_, report, wall) in &results {
        timing.add_run(*wall, report);
    }
    let base = results[0].0;
    print_header("threads", &["Locks", "TBEGIN", "Unsync"]);
    let (mut lock_top, mut elision_top, mut unsync_top) = (0.0, 0.0, 0.0);
    let mut rows = Vec::with_capacity(threads.len());
    for (i, &n) in threads.iter().enumerate() {
        lock_top = results[1 + 3 * i].0 / base;
        elision_top = results[2 + 3 * i].0 / base;
        unsync_top = results[3 + 3 * i].0 / base;
        print_row(n, &[lock_top, elision_top, unsync_top]);
        rows.push((n, vec![lock_top, elision_top, unsync_top]));
    }
    // The printed figure, exported verbatim so `results/plot_fig5e_full.py`
    // can render it offline. Named "cpus"/"lock"/... — the digest-only
    // artifact diff grep-extracts headline keys like "threads", which must
    // stay unique in this file.
    let sweep_table = SweepTable {
        x: "cpus",
        series: &["lock", "elision", "unsync"],
        rows,
    };
    // The single-CPU unsync run: IPC with no synchronization and no other
    // CPU's clock in the max, i.e. the core's own issue rate.
    let ipc = results.last().unwrap().1.ipc();
    println!("\nmeasured IPC (1-CPU unsync row): {ipc:.3}");
    // Re-run the widest elision point traced for the metrics trajectory
    // (serial: the recorder is thread-local by construction). Under
    // `ZTM_DIGEST_ONLY=1` the re-run attaches the digest-only sink instead:
    // same event stream, same digest, no ring or metrics — the artifact
    // carries just the digest + event count for CI to diff.
    let top = *threads.last().unwrap();
    let headlines = [
        ("threads", top as f64),
        ("lock_normalized", lock_top),
        ("elision_normalized", elision_top),
        ("unsync_normalized", unsync_top),
        ("elision_speedup", elision_top / lock_top),
        ("unsync_ipc", ipc),
    ];
    let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
    let mut sys = System::new(system_config(top).seed(42));
    let written = if digest_only() {
        let (tracer, sink) = Tracer::digest_only();
        sys.set_tracer(tracer);
        let t0 = Instant::now();
        t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
        t.run(&mut sys, ops_for(top).min(150));
        timing.add_run(t0.elapsed(), &sys.report());
        write_bench_json_digest(
            &bench_tag("fig5e_hashtable_digest"),
            &headlines,
            sink.digest(),
            sink.events(),
            Some(&timing),
        )
    } else {
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        let t0 = Instant::now();
        t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
        t.run(&mut sys, ops_for(top).min(150));
        timing.add_run(t0.elapsed(), &sys.report());
        let rec = recorder.lock().unwrap();
        write_bench_json_sweep(
            &bench_tag("fig5e_hashtable"),
            &headlines,
            Some(&sweep_table),
            Some(&rec),
            Some(&timing),
        )
    };
    match written {
        Ok(path) => println!("\nmetrics: {}", path.display()),
        Err(e) => eprintln!("metrics export failed: {e}"),
    }
}
