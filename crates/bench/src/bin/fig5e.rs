//! Figure 5(e): lock-elided hashtable.
//!
//! Expected shape (paper): with the global lock, throughput is flat as
//! threads are added; with transactional lock elision it grows almost
//! linearly.

use ztm_bench::{ops_for, print_header, print_row, quick};
use ztm_sim::{System, SystemConfig};
use ztm_workloads::hashtable::{HashTable, TableMethod};

fn main() {
    println!("Fig 5(e): java/util/Hashtable-style lock elision (20% puts)");
    println!("(throughput normalized to 1 thread under the global lock)");
    println!();
    let threads: Vec<usize> = if quick() {
        vec![1, 2, 4, 6]
    } else {
        vec![1, 2, 3, 4, 5, 6, 7, 8]
    };
    let run = |method, cpus: usize| {
        let t = HashTable::new(512, 2048, 20, method);
        let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(42));
        t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
        t.run(&mut sys, ops_for(cpus).min(150)).throughput()
    };
    let base = run(TableMethod::GlobalLock, 1);
    print_header("threads", &["Locks", "TBEGIN"]);
    for &n in &threads {
        print_row(
            n,
            &[
                run(TableMethod::GlobalLock, n) / base,
                run(TableMethod::Elision, n) / base,
            ],
        );
    }
}
