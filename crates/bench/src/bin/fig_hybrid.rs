//! Hybrid HTM/STM study: the TL2 software layer (`ztm-stm`) vs hardware
//! transactions vs the TBEGIN-fast-path-with-software-fallback mode, on
//! the hashtable, queue, and bank workloads.
//!
//! The question this binary answers is the one §VI of the paper leaves
//! open: what does a software fallback (instead of the global fallback
//! lock) cost, and how often does the hardware fast path actually engage?
//! Each exported artifact carries per-mode throughput, commit/abort counts
//! for both engines, the fallback-engagement count, and the abort-code
//! breakdown of what drove each escalation.
//!
//! Default sweep tops out at one book (36 CPUs); `ZTM_FULL=1` sweeps the
//! hashtable across the whole 144-CPU machine.

use std::time::{Duration, Instant};
use ztm_bench::{
    bench_tag, cpu_counts, full, ops_for, print_header, print_row, quick, sweep, system_config,
    write_bench_json, Timing,
};
use ztm_sim::System;
use ztm_trace::{Recorder, Tracer};
use ztm_workloads::bank::{Bank, BankMethod};
use ztm_workloads::hashtable::{HashTable, TableMethod};
use ztm_workloads::queue::{ConcurrentQueue, QueueMethod};
use ztm_workloads::WorkloadReport;

/// The three synchronization modes under comparison. `Htm` is each
/// workload's existing hardware-transaction baseline (lock elision, or
/// TBEGIN with the lock fallback for the bank).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Htm,
    PureStm,
    Hybrid,
}

const MODES: [Mode; 3] = [Mode::Htm, Mode::PureStm, Mode::Hybrid];

fn run_point(workload: &str, mode: Mode, cpus: usize, ops: u64) -> (WorkloadReport, Duration) {
    let mut sys = System::new(system_config(cpus).seed(42));
    run_in(workload, mode, &mut sys, ops)
}

fn run_in(workload: &str, mode: Mode, sys: &mut System, ops: u64) -> (WorkloadReport, Duration) {
    let t0 = Instant::now();
    let rep = match workload {
        "hashtable" => {
            let method = match mode {
                Mode::Htm => TableMethod::Elision,
                Mode::PureStm => TableMethod::PureStm,
                Mode::Hybrid => TableMethod::HtmStmFallback,
            };
            let t = HashTable::new(512, 2048, 20, method);
            t.populate(sys, &(0..1024).collect::<Vec<_>>());
            t.run(sys, ops)
        }
        "queue" => {
            let method = match mode {
                Mode::Htm => QueueMethod::Elision,
                Mode::PureStm => QueueMethod::PureStm,
                Mode::Hybrid => QueueMethod::HtmStmFallback,
            };
            let q = ConcurrentQueue::new(method);
            q.seed(sys, 64);
            q.run(sys, ops)
        }
        "bank" => {
            let method = match mode {
                Mode::Htm => BankMethod::Tbegin,
                Mode::PureStm => BankMethod::PureStm,
                Mode::Hybrid => BankMethod::HtmStmFallback,
            };
            let b = Bank::new(64, method);
            b.open(sys, 10_000);
            b.run(sys, ops)
        }
        other => unreachable!("unknown workload {other}"),
    };
    (rep, t0.elapsed())
}

fn main() {
    println!("Hybrid HTM/STM fallback study (TL2 software layer on the simulated ISA)");
    println!();
    let threads: Vec<usize> = if full() {
        cpu_counts()
    } else if quick() {
        vec![2, 12, 36]
    } else {
        vec![2, 6, 12, 24, 36]
    };
    // The full-topology tier sweeps only the hashtable (the 144-CPU STM
    // points dominate the runtime; the 36-CPU tier covers all three).
    let workloads: &[&str] = if full() {
        &["hashtable"]
    } else {
        &["hashtable", "queue", "bank"]
    };
    let short = |cpus: usize| ops_for(cpus).min(150);
    for &workload in workloads {
        let mut points = Vec::new();
        for &n in &threads {
            for mode in MODES {
                points.push((mode, n, short(n)));
            }
        }
        let results = sweep(points, |&(mode, cpus, ops)| {
            let (rep, wall) = run_point(workload, mode, cpus, ops);
            (rep, wall)
        });
        let mut timing = Timing::default();
        for (rep, wall) in &results {
            timing.add_run(*wall, &rep.system);
        }
        println!("{workload}: throughput (ops/cycle x 1000)");
        print_header("cpus", &["HTM", "PureSTM", "Hybrid"]);
        for (i, &n) in threads.iter().enumerate() {
            let row: Vec<f64> = (0..3)
                .map(|m| results[3 * i + m].0.throughput() * 1e3)
                .collect();
            print_row(n, &row);
        }
        // Headline the widest point: per-mode throughput plus the hybrid
        // mode's engine split and the pure-STM abort economy.
        let top_idx = 3 * (threads.len() - 1);
        let htm = &results[top_idx].0;
        let purestm = &results[top_idx + 1].0;
        let hybrid = &results[top_idx + 2].0;
        let hs = &hybrid.system.stm;
        let ps = &purestm.system.stm;
        println!(
            "  @{} cpus: hybrid hw commits {}, sw commits {}, fallbacks {} (codes {:?})",
            threads.last().unwrap(),
            hybrid.system.tx.commits,
            hs.commits,
            hs.fallbacks,
            hs.fallback_codes,
        );
        println!(
            "  pure STM: {} commits, {} aborts, {} validation failures\n",
            ps.commits, ps.aborts, ps.validation_failures
        );
        let headlines = [
            ("cpus", *threads.last().unwrap() as f64),
            ("htm_throughput", htm.throughput()),
            ("purestm_throughput", purestm.throughput()),
            ("hybrid_throughput", hybrid.throughput()),
            ("hybrid_hw_commits", hybrid.system.tx.commits as f64),
            ("hybrid_hw_aborts", hybrid.system.tx.aborts as f64),
            ("hybrid_sw_commits", hs.commits as f64),
            ("hybrid_sw_aborts", hs.aborts as f64),
            ("hybrid_fallbacks", hs.fallbacks as f64),
            ("purestm_commits", ps.commits as f64),
            ("purestm_aborts", ps.aborts as f64),
            ("purestm_validation_failures", ps.validation_failures as f64),
        ];
        // Traced re-run of the widest hybrid point: the exported metrics
        // document carries the stm block (begins/commits/aborts, lock and
        // validation counters, fallback-code histogram) alongside the
        // hardware-abort-code histogram — the abort-cause breakdown.
        let top = *threads.last().unwrap();
        let mut sys = System::new(system_config(top).seed(42));
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        let (rep, wall) = run_in(workload, Mode::Hybrid, &mut sys, short(top));
        timing.add_run(wall, &rep.system);
        let rec = recorder.lock().unwrap();
        match write_bench_json(
            &bench_tag(&format!("hybrid_{workload}")),
            &headlines,
            Some(&rec),
            Some(&timing),
        ) {
            Ok(path) => println!("  metrics: {}\n", path.display()),
            Err(e) => eprintln!("  metrics export failed: {e}\n"),
        }
    }
}
