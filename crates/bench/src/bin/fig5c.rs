//! Figure 5(c): TX vs coarse lock, four variables, pool size 10.
//!
//! Expected shape (paper): transactions win slightly up to ~6 CPUs, but as
//! contention grows the lock wins — a transaction must collect all four
//! lines before committing and is vulnerable while waiting, wasting cache
//! transfers on aborts, whereas a lock holder always finishes. Under
//! extreme contention TBEGINC degrades more gracefully than TBEGIN because
//! the millicode retry ladder turns speculative fetching off (§IV).

use ztm_bench::{cpu_counts, print_header, print_row, reference_throughput, run_pool, sweep};
use ztm_workloads::pool::SyncMethod;

fn main() {
    println!("Fig 5(c): TX vs coarse lock, 4 variables, pool size 10");
    println!("(normalized: 100 = 2 CPUs, single variable, pool of 1)");
    println!();
    let reference = reference_throughput(42);
    print_header("CPUs", &["Lock", "TBEGINC", "TBEGIN", "abrt%C", "abrt%N"]);
    let points: Vec<(SyncMethod, usize)> = cpu_counts()
        .into_iter()
        .flat_map(|cpus| {
            [
                (SyncMethod::CoarseLock, cpus),
                (SyncMethod::Tbeginc, cpus),
                (SyncMethod::Tbegin, cpus),
            ]
        })
        .collect();
    let results = sweep(points, |&(m, cpus)| run_pool(m, cpus, 10, 4, 42));
    for (i, cpus) in cpu_counts().into_iter().enumerate() {
        let [lock, tbc, tbn] = &results[3 * i..3 * i + 3] else {
            unreachable!()
        };
        print_row(
            cpus,
            &[
                lock.normalized_throughput(reference),
                tbc.normalized_throughput(reference),
                tbn.normalized_throughput(reference),
                100.0 * tbc.abort_rate(),
                100.0 * tbn.abort_rate(),
            ],
        );
    }
}
