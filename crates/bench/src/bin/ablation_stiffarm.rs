//! E3 (ablation): XI rejection ("stiff-arming", §III.C) on vs off.
//!
//! The paper: "This stiff-arming is very efficient in highly contended
//! transactions." With it disabled, every conflicting XI aborts the target
//! immediately instead of letting it finish.

use ztm_bench::{ops_for, print_header, print_row, quick, sweep};
use ztm_sim::{System, SystemConfig};
use ztm_workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};

fn main() {
    println!("E3: stiff-arming ablation — single variable, pool 10, TBEGIN");
    println!();
    let counts: Vec<usize> = if quick() {
        vec![2, 4, 8]
    } else {
        vec![2, 4, 8, 16, 32]
    };
    let points: Vec<(bool, usize)> = counts
        .iter()
        .flat_map(|&n| [(true, n), (false, n)])
        .collect();
    let results = sweep(points, |&(stiff, cpus)| {
        let mut cfg = SystemConfig::with_cpus(cpus).seed(42);
        cfg.geometry.stiff_arm = stiff;
        let mut sys = System::new(cfg);
        let wl = PoolWorkload::new(PoolLayout::new(10, 1), SyncMethod::Tbegin, 42);
        let rep = wl.run(&mut sys, ops_for(cpus));
        (rep.throughput(), rep.abort_rate())
    });
    print_header("CPUs", &["with (thpt)", "without", "abrt% w", "abrt% w/o"]);
    for (i, &n) in counts.iter().enumerate() {
        let ((tw, aw), (to, ao)) = (results[2 * i], results[2 * i + 1]);
        print_row(n, &[tw * 1e4, to * 1e4, 100.0 * aw, 100.0 * ao]);
    }
    println!();
    println!("Expected: disabling XI rejection raises the abort rate and lowers");
    println!("throughput under contention.");
}
