//! E1 (§IV text): uncontended overhead — a single CPU, pool of 1 line.
//!
//! The paper reports that transactions outperform locks by ~30% in this
//! case (shorter path than lock obtain/release), and that constrained vs
//! non-constrained transactions differ by only ~0.4% (the lock-test branch
//! is perfectly predictable).

use std::time::Instant;
use ztm_bench::{run_pool, run_pool_traced, sweep, write_bench_json, Timing};
use ztm_workloads::pool::SyncMethod;

fn main() {
    println!("E1: uncontended single-CPU overhead (pool=1, vars=1)");
    println!();
    let mut timing = Timing::default();
    let untraced = sweep(
        vec![SyncMethod::CoarseLock, SyncMethod::Tbeginc],
        |&method| {
            let t0 = Instant::now();
            let rep = run_pool(method, 1, 1, 1, 42);
            (rep, t0.elapsed())
        },
    );
    let t0 = Instant::now();
    let (tbegin, recorder) = run_pool_traced(SyncMethod::Tbegin, 1, 1, 1, 42);
    timing.add_run(t0.elapsed(), &tbegin.system);
    for (rep, wall) in &untraced {
        timing.add_run(*wall, &rep.system);
    }
    let (lock, tbeginc) = (&untraced[0].0, &untraced[1].0);

    let rows = [
        ("lock", lock.avg_op_cycles()),
        ("TBEGIN", tbegin.avg_op_cycles()),
        ("TBEGINC", tbeginc.avg_op_cycles()),
    ];
    println!("{:>10} {:>16}", "method", "cycles/update");
    for (name, cyc) in rows {
        println!("{name:>10} {cyc:>16.2}");
    }
    println!();
    let tx_vs_lock = 100.0 * (lock.avg_op_cycles() / tbegin.avg_op_cycles() - 1.0);
    let c_vs_nc =
        100.0 * (tbegin.avg_op_cycles() - tbeginc.avg_op_cycles()).abs() / tbegin.avg_op_cycles();
    println!("TBEGIN advantage over lock : {tx_vs_lock:+.1}%   (paper: ~+30%)");
    println!("TBEGINC vs TBEGIN          : {c_vs_nc:.2}%   (paper: ~0.4%)");
    let rec = recorder.lock().unwrap();
    match write_bench_json(
        "E1_uncontended",
        &[
            ("lock_cycles_per_op", lock.avg_op_cycles()),
            ("tbegin_cycles_per_op", tbegin.avg_op_cycles()),
            ("tbeginc_cycles_per_op", tbeginc.avg_op_cycles()),
            ("tbegin_advantage_pct", tx_vs_lock),
            ("tbeginc_vs_tbegin_pct", c_vs_nc),
        ],
        Some(&rec),
        Some(&timing),
    ) {
        Ok(path) => println!("metrics: {}", path.display()),
        Err(e) => eprintln!("metrics export failed: {e}"),
    }
}
