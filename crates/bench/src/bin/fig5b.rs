//! Figure 5(b): TX vs locks, single variable, pool size 10.
//!
//! Expected shape (paper): coarse locking yields very poor throughput; fine
//! locking is better but flat/declining beyond ~10 CPUs; transactions grow
//! up to the MCM size (24 CPUs in the tested system), hold steady beyond,
//! and win across the whole range.

use ztm_bench::{cpu_counts, print_header, print_row, reference_throughput, run_pool};
use ztm_workloads::pool::SyncMethod;

fn main() {
    println!("Fig 5(b): TX vs locks, single variable, pool size 10");
    println!("(normalized: 100 = 2 CPUs, single variable, pool of 1)");
    println!();
    let reference = reference_throughput(42);
    print_header("CPUs", &["CoarseLock", "FineLock", "TBEGINC", "TBEGIN"]);
    for cpus in cpu_counts() {
        let row: Vec<f64> = [
            SyncMethod::CoarseLock,
            SyncMethod::FineLock,
            SyncMethod::Tbeginc,
            SyncMethod::Tbegin,
        ]
        .into_iter()
        .map(|m| run_pool(m, cpus, 10, 1, 42).normalized_throughput(reference))
        .collect();
        print_row(cpus, &row);
    }
}
