//! Figure 5(b): TX vs locks, single variable, pool size 10.
//!
//! Expected shape (paper): coarse locking yields very poor throughput; fine
//! locking is better but flat/declining beyond ~10 CPUs; transactions grow
//! up to the MCM size (24 CPUs in the tested system), hold steady beyond,
//! and win across the whole range.

use ztm_bench::{cpu_counts, print_header, print_row, reference_throughput, run_pool, sweep};
use ztm_workloads::pool::SyncMethod;

const METHODS: [SyncMethod; 4] = [
    SyncMethod::CoarseLock,
    SyncMethod::FineLock,
    SyncMethod::Tbeginc,
    SyncMethod::Tbegin,
];

fn main() {
    println!("Fig 5(b): TX vs locks, single variable, pool size 10");
    println!("(normalized: 100 = 2 CPUs, single variable, pool of 1)");
    println!();
    let reference = reference_throughput(42);
    print_header("CPUs", &["CoarseLock", "FineLock", "TBEGINC", "TBEGIN"]);
    let points: Vec<(SyncMethod, usize)> = cpu_counts()
        .into_iter()
        .flat_map(|cpus| METHODS.map(|m| (m, cpus)))
        .collect();
    let results = sweep(points, |&(m, cpus)| {
        run_pool(m, cpus, 10, 1, 42).normalized_throughput(reference)
    });
    for (i, cpus) in cpu_counts().into_iter().enumerate() {
        print_row(cpus, &results[4 * i..4 * i + 4]);
    }
}
