//! Simulator-speed brackets: ns/step for the interpreter, the memory
//! system, and the scheduler in isolation. Not part of the figure set —
//! this is the attribution tool behind DESIGN.md's "Interpreter dispatch"
//! numbers. Run several times and take the minimum per bracket; shared
//! hosts jitter by double-digit percentages.
//!
//! Brackets, cheapest first: a pure ALU loop (interpreter floor), a
//! same-line spin (repeat-access fast path), rotating-line loads (L1-hit
//! directory walk), a 36-CPU CAS handoff (XI storm), and the two fig 5(e)
//! hashtable shapes (the real mix).

use std::time::Instant;
use ztm_isa::{gr::*, Assembler, MemOperand};
use ztm_mem::Address;
use ztm_sim::{System, SystemConfig};
use ztm_stm::Stm;
use ztm_trace::{Recorder, Tracer};
use ztm_workloads::hashtable::{HashTable, TableMethod};

fn spin_prog() -> ztm_isa::Program {
    // The GlobalLock spin shape: load, compare-branch, delay, branch.
    let mut a = Assembler::new(0);
    a.lghi(R6, 1_000_000_000);
    a.label("loop");
    a.ltg(R1, MemOperand::absolute(0xF000));
    a.jnz("loop");
    a.delay(24);
    a.brctg(R6, "loop");
    a.halt();
    a.assemble().unwrap()
}

fn alu_prog() -> ztm_isa::Program {
    let mut a = Assembler::new(0);
    a.lghi(R6, 1_000_000_000);
    a.label("loop");
    a.aghi(R2, 1);
    a.aghi(R2, 1);
    a.aghi(R2, 1);
    a.brctg(R6, "loop");
    a.halt();
    a.assemble().unwrap()
}

/// Eight loads at different offsets of ONE line — the struct-walk shape the
/// line-window coalescing targets (every load after the first can skip the
/// directory walk).
fn burst_prog() -> ztm_isa::Program {
    let mut a = Assembler::new(0);
    a.lghi(R6, 1_000_000_000);
    a.label("loop");
    for k in 0..8 {
        a.lg(R1, MemOperand::absolute(0x10_000 + k * 8));
    }
    a.brctg(R6, "loop");
    a.halt();
    a.assemble().unwrap()
}

/// Eight loads rotating across eight different lines — every access lands
/// on a different line than its predecessor, so the line window always
/// misses and the full (L1-hit) directory walk runs each time.
fn rotating_prog() -> ztm_isa::Program {
    let mut a = Assembler::new(0);
    a.lghi(R6, 1_000_000_000);
    a.label("loop");
    for k in 0..8 {
        a.lg(R1, MemOperand::absolute(0x10_000 + k * 256));
    }
    a.brctg(R6, "loop");
    a.halt();
    a.assemble().unwrap()
}

fn time_steps(sys: &mut System, n: u64, label: &str) {
    // Warm caches first.
    sys.step_many(100_000);
    let t = Instant::now();
    let mut left = n;
    while left > 0 {
        let took = sys.step_many(left);
        if took == 0 {
            break;
        }
        left -= took;
    }
    let el = t.elapsed().as_secs_f64();
    // Report against the steps that actually executed: a program that halts
    // early would otherwise divide the elapsed time by the *requested* count
    // and print a falsely fast ns/step.
    let done = n - left;
    if done == 0 {
        println!("{label:<28} WARNING: system halted before any timed step");
        return;
    }
    let short = if done < n {
        format!(" WARNING: halted after {done} of {n} steps")
    } else {
        String::new()
    };
    println!(
        "{label:<28} {done} steps in {el:.3}s = {:.1} ns/step ({:.1}M steps/s){short}",
        el / done as f64 * 1e9,
        done as f64 / el / 1e6
    );
}

/// The sharded-driver bracket (5e below), also runnable on its own via
/// `ZTM_STEPBENCH_ONLY_SHARDED=1` so CI can track the sharded ns/step
/// without paying for the whole attribution grid.
fn sharded_bracket(n: u64) {
    for (label, threads, window, adapt) in [
        ("fig5e elision 36cpu serial", 1usize, None, true),
        ("fig5e elision 36cpu 2t w1", 2, Some(1usize), true),
        ("fig5e elision 36cpu 2t fixed", 2, None, false),
        ("fig5e elision 36cpu 2t adapt", 2, None, true),
    ] {
        let table = HashTable::new(256, 1024, 20, TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
        sys.set_sim_threads(threads);
        sys.set_shard_adapt(adapt);
        if let Some(w) = window {
            sys.set_shard_window(w);
        }
        table.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
        let prog = table.program(1_000_000);
        sys.load_program_all(&prog);
        for i in 0..sys.cpus() {
            let arena = 0x2000_0000u64 + i as u64 * 0x10_0000;
            sys.core_mut(i).set_gr(R7, arena);
        }
        time_steps(&mut sys, n, label);
        let s = sys.report().sharding;
        if s.rounds > 0 {
            println!(
                "{:<28} rounds={} mean_round={:.1} chain_max={} rollbacks={} replayed={}",
                "",
                s.rounds,
                s.mean_round_steps(),
                s.chain_max,
                s.rollbacks,
                s.replayed
            );
            if s.window_cpus > 0 {
                println!(
                    "{:<28} windows min={} mean={:.1} max={} clamped={}/{}",
                    "",
                    s.window_min,
                    s.mean_window(),
                    s.window_max,
                    s.window_clamped,
                    s.window_cpus
                );
            }
        }
    }
}

/// The superblock on/off bracket: the same system per shape, stepped with
/// the superblock fast path engaged ("sb") and forced off ("scalar"). Also
/// runnable on its own via `ZTM_STEPBENCH_ONLY_SUPERBLOCK=1` so CI can
/// track the fast path's win without the whole attribution grid.
fn superblock_bracket(n: u64) {
    for sb in [false, true] {
        let mode = if sb { "sb" } else { "scalar" };

        let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
        sys.set_superblocks(sb);
        for k in 0..8 {
            sys.io_store(Address::new(0x10_000 + k * 8), k + 1);
        }
        sys.load_program(0, &burst_prog());
        time_steps(&mut sys, n, &format!("burst 1cpu {mode}"));

        let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
        sys.set_superblocks(sb);
        sys.load_program(0, &alu_prog());
        time_steps(&mut sys, n, &format!("alu 1cpu {mode}"));

        let table = HashTable::new(256, 1024, 20, TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
        sys.set_superblocks(sb);
        table.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
        let prog = table.program(1_000_000);
        sys.load_program_all(&prog);
        for i in 0..sys.cpus() {
            let arena = 0x2000_0000u64 + i as u64 * 0x10_0000;
            sys.core_mut(i).set_gr(R7, arena);
        }
        time_steps(&mut sys, n, &format!("fig5e elision 36cpu {mode}"));
        if sb {
            // How much of the run the fast path actually covered — tight
            // cross-CPU interleaves bound what superblocks can batch.
            println!(
                "{:<28} superblock steps: {:.1}%",
                "",
                sys.superblock_steps() as f64 / sys.report().steps as f64 * 100.0
            );
        }
    }
}

fn main() {
    let n = 4_000_000u64;

    if ztm_sim::env_flag("ZTM_STEPBENCH_ONLY_SHARDED") {
        sharded_bracket(n);
        return;
    }
    if ztm_sim::env_flag("ZTM_STEPBENCH_ONLY_SUPERBLOCK") {
        superblock_bracket(n);
        return;
    }

    // 1. Bare spin, one CPU: interpreter + memory path, trivial scheduler.
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    sys.load_program(0, &spin_prog());
    time_steps(&mut sys, n, "spin 1cpu");

    // 2. Bare spin, 36 CPUs all spinning on the same (read-shared) line.
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    sys.load_program_all(&spin_prog());
    time_steps(&mut sys, n, "spin 36cpu");

    // 3. Pure ALU loop, one CPU: interpreter only, no data accesses.
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    sys.load_program(0, &alu_prog());
    time_steps(&mut sys, n, "alu 1cpu");

    // 4. ALU loop, 36 CPUs: adds scheduler pressure, still no data.
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    sys.load_program_all(&alu_prog());
    time_steps(&mut sys, n, "alu 36cpu");

    // 4a. Same ALU loop through the width-3 issue window: the scoreboard's
    // host overhead on the cheapest possible bracket.
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    sys.set_issue_width(3);
    sys.load_program(0, &alu_prog());
    time_steps(&mut sys, n, "alu 1cpu w3");

    // 4b. Varied-line loads, one CPU: L1 hits on rotating lines (hot-miss
    // row scans), no coherence traffic.
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    sys.load_program(0, &rotating_prog());
    time_steps(&mut sys, n, "varied loads 1cpu");

    // 4c. Lock handoff: every CPU csg/stg's one line — XI storm.
    let mut a = Assembler::new(0);
    a.lghi(R6, 1_000_000_000);
    a.label("loop");
    a.lghi(R2, 0);
    a.lghi(R3, 1);
    a.csg(R2, R3, MemOperand::absolute(0xF000));
    a.lghi(R2, 0);
    a.stg(R2, MemOperand::absolute(0xF000));
    a.brctg(R6, "loop");
    a.halt();
    let p = a.assemble().unwrap();
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    sys.load_program_all(&p);
    time_steps(&mut sys, n, "lock handoff 36cpu");

    // 5. The real fig5e point shape.
    let table = HashTable::new(256, 1024, 20, TableMethod::GlobalLock);
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    table.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    let prog = table.program(1_000_000);
    sys.load_program_all(&prog);
    for i in 0..sys.cpus() {
        let arena = 0x2000_0000u64 + i as u64 * 0x10_0000;
        sys.core_mut(i).set_gr(R7, arena);
    }
    time_steps(&mut sys, n, "fig5e lock 36cpu");

    // The elision shape per tracing tier: untraced, the digest-only sink,
    // and a full recorder. This is the "what does tracing cost on the real
    // mix" attribution behind the digest-only export path.
    for sink in ["untraced", "digest", "recorder"] {
        let table = HashTable::new(256, 1024, 20, TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
        match sink {
            "digest" => {
                let (tracer, _sink) = Tracer::digest_only();
                sys.set_tracer(tracer);
            }
            "recorder" => {
                let (tracer, _rec) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
                sys.set_tracer(tracer);
            }
            _ => {}
        }
        table.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
        let prog = table.program(1_000_000);
        sys.load_program_all(&prog);
        for i in 0..sys.cpus() {
            let arena = 0x2000_0000u64 + i as u64 * 0x10_0000;
            sys.core_mut(i).set_gr(R7, arena);
        }
        time_steps(&mut sys, n, &format!("fig5e elision 36cpu {sink}"));
    }

    // 5b. The same elision shape through the width-3 window: what the
    // pipelined mode costs on the real mix (scoreboard + drain churn).
    let table = HashTable::new(256, 1024, 20, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    sys.set_issue_width(3);
    table.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    let prog = table.program(1_000_000);
    sys.load_program_all(&prog);
    for i in 0..sys.cpus() {
        let arena = 0x2000_0000u64 + i as u64 * 0x10_0000;
        sys.core_mut(i).set_gr(R7, arena);
    }
    time_steps(&mut sys, n, "fig5e elision 36cpu w3");

    // 5c. STM instrumentation cost. The same two-read/two-write op as a
    // raw load/store loop and wrapped in a TL2 software transaction
    // (stripe arithmetic, read-set append + post-validation, write-set
    // buffering, the commit's acquire/validate/write-back/release). The
    // ns/step gap is the *host* dispatch cost of the STM's instruction
    // mix; the instrumentation factor itself is the simulated
    // instructions-per-op ratio, visible in the two loops' step counts.
    const STM_A: u64 = 0x10_000;
    const STM_B: u64 = 0x10_100;
    let mut a = Assembler::new(0);
    a.lghi(R6, 1_000_000_000);
    a.label("loop");
    for addr in [STM_A, STM_B] {
        a.lg(R2, MemOperand::absolute(addr));
        a.aghi(R2, 1);
        a.stg(R2, MemOperand::absolute(addr));
    }
    a.brctg(R6, "loop");
    a.halt();
    let raw = a.assemble().unwrap();
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    sys.load_program(0, &raw);
    time_steps(&mut sys, n, "rmw pair raw 1cpu");

    let stm = Stm::new();
    let mut a = Assembler::new(0);
    a.lghi(R6, 1_000_000_000);
    a.label("loop");
    a.lghi(R8, STM_A as i64);
    a.lghi(R9, STM_B as i64);
    stm.emit_tx(&mut a, "op", &[], |tx| {
        tx.read(R2, R8);
        tx.asm().aghi(R2, 1);
        tx.write(R2, R8);
        tx.read(R2, R9);
        tx.asm().aghi(R2, 1);
        tx.write(R2, R9);
    });
    a.brctg(R6, "loop");
    a.halt();
    let instrumented = a.assemble().unwrap();
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    sys.load_program(0, &instrumented);
    stm.layout.install(&mut sys);
    time_steps(&mut sys, n, "rmw pair stm 1cpu");

    // 5d. The PureStm hashtable shape at 36 CPUs: the software-TM analogue
    // of the fig5e elision bracket (CSG clock traffic, stripe-lock lines,
    // real contention).
    let table = HashTable::new(256, 1024, 20, TableMethod::PureStm);
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    table.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    let prog = table.program(1_000_000);
    sys.load_program_all(&prog);
    table.stm_layout().install(&mut sys);
    for i in 0..sys.cpus() {
        let arena = 0x2000_0000u64 + i as u64 * 0x10_0000;
        sys.core_mut(i).set_gr(R7, arena);
    }
    time_steps(&mut sys, n, "fig5e purestm 36cpu");

    // 5e. The sharded driver on the real mix: the same fig5e elision shape
    // stepped serially, sharded with the conservative 1-cycle window
    // (rollback-free), and sharded with the default speculative window
    // (epoch journals + rollback). All three produce byte-identical
    // simulated outcomes; the ns/step spread is the host-side price of
    // each coordination regime on a given host core count.
    sharded_bracket(n);

    // 5f. Superblock stepping on/off across three shapes: the dispatch-floor
    // attribution behind DESIGN.md's "Superblock stepping" numbers.
    superblock_bracket(n);

    // 6. Coalescing × tracing attribution grid. Two memory shapes — the
    // same-line burst (where the line window serves 7 of 8 loads) and
    // rotating lines (where it never hits) — each with coalescing on/off
    // ("coal"/"walk") and with no tracer, the digest-only sink, and a full
    // recorder attached. The grid isolates both tentpole optimizations:
    // burst coal-vs-walk is the coalescing win, and per-sink columns show
    // what each tracing tier costs per step.
    for (shape, prog, stride) in [
        ("burst", burst_prog(), 8u64),
        ("rotate", rotating_prog(), 256),
    ] {
        for coalesce in [true, false] {
            for sink in ["untraced", "digest", "recorder"] {
                let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
                sys.set_coalescing(coalesce);
                // Struct walks read data somebody wrote: populate the lines
                // so the loads hit allocated memory, as real workloads do.
                for k in 0..8 {
                    sys.io_store(Address::new(0x10_000 + k * stride), k + 1);
                }
                match sink {
                    "digest" => {
                        let (tracer, _sink) = Tracer::digest_only();
                        sys.set_tracer(tracer);
                    }
                    "recorder" => {
                        let (tracer, _rec) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
                        sys.set_tracer(tracer);
                    }
                    _ => {}
                }
                sys.load_program(0, &prog);
                let mode = if coalesce { "coal" } else { "walk" };
                time_steps(&mut sys, n, &format!("{shape} {mode} {sink} 1cpu"));
            }
        }
    }
}
