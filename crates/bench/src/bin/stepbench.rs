//! Simulator-speed brackets: ns/step for the interpreter, the memory
//! system, and the scheduler in isolation. Not part of the figure set —
//! this is the attribution tool behind DESIGN.md's "Interpreter dispatch"
//! numbers. Run several times and take the minimum per bracket; shared
//! hosts jitter by double-digit percentages.
//!
//! Brackets, cheapest first: a pure ALU loop (interpreter floor), a
//! same-line spin (repeat-access fast path), rotating-line loads (L1-hit
//! directory walk), a 36-CPU CAS handoff (XI storm), and the two fig 5(e)
//! hashtable shapes (the real mix).

use std::time::Instant;
use ztm_isa::{gr::*, Assembler, MemOperand};
use ztm_sim::{System, SystemConfig};
use ztm_workloads::hashtable::{HashTable, TableMethod};

fn spin_prog() -> ztm_isa::Program {
    // The GlobalLock spin shape: load, compare-branch, delay, branch.
    let mut a = Assembler::new(0);
    a.lghi(R6, 1_000_000_000);
    a.label("loop");
    a.ltg(R1, MemOperand::absolute(0xF000));
    a.jnz("loop");
    a.delay(24);
    a.brctg(R6, "loop");
    a.halt();
    a.assemble().unwrap()
}

fn alu_prog() -> ztm_isa::Program {
    let mut a = Assembler::new(0);
    a.lghi(R6, 1_000_000_000);
    a.label("loop");
    a.aghi(R2, 1);
    a.aghi(R2, 1);
    a.aghi(R2, 1);
    a.brctg(R6, "loop");
    a.halt();
    a.assemble().unwrap()
}

fn time_steps(sys: &mut System, n: u64, label: &str) {
    // Warm caches first.
    sys.step_many(100_000);
    let t = Instant::now();
    let mut left = n;
    while left > 0 {
        let took = sys.step_many(left);
        if took == 0 {
            break;
        }
        left -= took;
    }
    let el = t.elapsed().as_secs_f64();
    println!(
        "{label:<28} {n} steps in {el:.3}s = {:.1} ns/step ({:.1}M steps/s)",
        el / n as f64 * 1e9,
        n as f64 / el / 1e6
    );
}

fn main() {
    let n = 4_000_000u64;

    // 1. Bare spin, one CPU: interpreter + memory path, trivial scheduler.
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    sys.load_program(0, &spin_prog());
    time_steps(&mut sys, n, "spin 1cpu");

    // 2. Bare spin, 36 CPUs all spinning on the same (read-shared) line.
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    sys.load_program_all(&spin_prog());
    time_steps(&mut sys, n, "spin 36cpu");

    // 3. Pure ALU loop, one CPU: interpreter only, no data accesses.
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    sys.load_program(0, &alu_prog());
    time_steps(&mut sys, n, "alu 1cpu");

    // 4. ALU loop, 36 CPUs: adds scheduler pressure, still no data.
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    sys.load_program_all(&alu_prog());
    time_steps(&mut sys, n, "alu 36cpu");

    // 4a. Same ALU loop through the width-3 issue window: the scoreboard's
    // host overhead on the cheapest possible bracket.
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    sys.set_issue_width(3);
    sys.load_program(0, &alu_prog());
    time_steps(&mut sys, n, "alu 1cpu w3");

    // 4b. Varied-line loads, one CPU: L1 hits on rotating lines (hot-miss
    // row scans), no coherence traffic.
    let mut a = Assembler::new(0);
    a.lghi(R6, 1_000_000_000);
    a.label("loop");
    for k in 0..8 {
        a.lg(R1, MemOperand::absolute(0x10_000 + k * 256));
    }
    a.brctg(R6, "loop");
    a.halt();
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    sys.load_program(0, &a.assemble().unwrap());
    time_steps(&mut sys, n, "varied loads 1cpu");

    // 4c. Lock handoff: every CPU csg/stg's one line — XI storm.
    let mut a = Assembler::new(0);
    a.lghi(R6, 1_000_000_000);
    a.label("loop");
    a.lghi(R2, 0);
    a.lghi(R3, 1);
    a.csg(R2, R3, MemOperand::absolute(0xF000));
    a.lghi(R2, 0);
    a.stg(R2, MemOperand::absolute(0xF000));
    a.brctg(R6, "loop");
    a.halt();
    let p = a.assemble().unwrap();
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    sys.load_program_all(&p);
    time_steps(&mut sys, n, "lock handoff 36cpu");

    // 5. The real fig5e point shape.
    let table = HashTable::new(256, 1024, 20, TableMethod::GlobalLock);
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    table.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    let prog = table.program(1_000_000);
    sys.load_program_all(&prog);
    for i in 0..sys.cpus() {
        let arena = 0x2000_0000u64 + i as u64 * 0x10_0000;
        sys.core_mut(i).set_gr(R7, arena);
    }
    time_steps(&mut sys, n, "fig5e lock 36cpu");

    let table = HashTable::new(256, 1024, 20, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    table.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    let prog = table.program(1_000_000);
    sys.load_program_all(&prog);
    for i in 0..sys.cpus() {
        let arena = 0x2000_0000u64 + i as u64 * 0x10_0000;
        sys.core_mut(i).set_gr(R7, arena);
    }
    time_steps(&mut sys, n, "fig5e elision 36cpu");

    // 5b. The same elision shape through the width-3 window: what the
    // pipelined mode costs on the real mix (scoreboard + drain churn).
    let table = HashTable::new(256, 1024, 20, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(36).seed(42));
    sys.set_issue_width(3);
    table.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    let prog = table.program(1_000_000);
    sys.load_program_all(&prog);
    for i in 0..sys.cpus() {
        let arena = 0x2000_0000u64 + i as u64 * 0x10_0000;
        sys.core_mut(i).set_gr(R7, arena);
    }
    time_steps(&mut sys, n, "fig5e elision 36cpu w3");
}
