//! Ablation: the General Register Save Mask cost (§II.B/§III.B).
//!
//! "Saving only a subset of GRs during TBEGIN speeds up execution" — the
//! outermost TBEGIN is cracked into one FXU micro-op per saved pair, two
//! per cycle. This sweep measures uncontended cycles/update for 0…8 saved
//! pairs.

use ztm_bench::{print_header, print_row, sweep};
use ztm_core::{GrSaveMask, TbeginParams};
use ztm_isa::{gr::*, Assembler, MemOperand};
use ztm_sim::{System, SystemConfig};
use ztm_workloads::harness::{convention, WorkloadReport};

fn run(pairs: u32) -> f64 {
    let mask = GrSaveMask::new(((1u16 << pairs) - 1) as u8);
    let var = 0x1_0000u64;
    let mut a = Assembler::new(0);
    a.lghi(convention::OPS_LEFT, 2_000);
    a.lghi(convention::OP_CYCLES, 0);
    a.lghi(convention::OPS_DONE, 0);
    a.label("op_loop");
    a.rdclk(convention::T_START);
    a.tbegin(TbeginParams {
        grsm: mask,
        ..TbeginParams::new()
    });
    a.jnz("op_loop"); // uncontended: aborts cannot happen
    a.lg(R2, MemOperand::absolute(var));
    a.aghi(R2, 1);
    a.stg(R2, MemOperand::absolute(var));
    a.tend();
    a.rdclk(convention::T_END);
    a.sgr(convention::T_END, convention::T_START);
    a.agr(convention::OP_CYCLES, convention::T_END);
    a.aghi(convention::OPS_DONE, 1);
    a.brctg(convention::OPS_LEFT, "op_loop");
    a.halt();
    let prog = a.assemble().expect("assembles");
    let mut sys = System::new(SystemConfig::with_cpus(1));
    sys.load_program(0, &prog);
    sys.run_until_halt(10_000_000);
    WorkloadReport::collect(&sys).avg_op_cycles()
}

fn main() {
    println!("GRSM ablation: TBEGIN cost vs saved GR pairs (1 CPU, uncontended)");
    println!();
    print_header("pairs", &["cycles/update"]);
    let results = sweep((0..=8u32).collect(), |&pairs| run(pairs));
    let (none, full) = (results[0], results[8]);
    for (pairs, &cycles) in results.iter().enumerate() {
        print_row(pairs, &[cycles]);
    }
    println!();
    println!(
        "saving nothing is {:.1}% faster than saving all 16 GRs (§II.B)",
        100.0 * (full / none - 1.0)
    );
}
