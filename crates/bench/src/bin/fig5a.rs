//! Figure 5(a): TX vs locks, four variables, pool sizes 1k and 10k.
//!
//! Expected shape (paper): the coarse lock shows step-function drops at
//! chip/MCM boundaries and very poor throughput at high CPU counts;
//! transactions scale well. With pool 1k, TBEGIN drops steeply past a
//! threshold but still beats the lock. At 100 CPUs, TBEGINC on the large
//! pool reaches ~99.8% of the unsynchronized upper bound.

use std::time::Instant;
use ztm_bench::{
    bench_tag, cpu_counts, print_header, print_row, quick, reference_throughput, run_pool, sweep,
    write_bench_json_sweep, SweepTable, Timing,
};
use ztm_workloads::pool::SyncMethod;

fn main() {
    let pools: [u64; 2] = if quick() {
        [200, 1_000]
    } else {
        [1_000, 10_000]
    };
    println!(
        "Fig 5(a): TX vs locks, 4 variables, pool sizes {} and {}",
        pools[0], pools[1]
    );
    println!("(normalized: 100 = 2 CPUs, single variable, pool of 1)");
    println!();
    let reference = reference_throughput(42);
    print_header(
        "CPUs",
        &[
            &format!("Lock {}", pools[0]),
            &format!("TBEGINC {}", pools[0]),
            &format!("TBEGIN {}", pools[0]),
            &format!("Lock {}", pools[1]),
            &format!("TBEGINC {}", pools[1]),
            &format!("TBEGIN {}", pools[1]),
        ]
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>(),
    );
    // One sweep point per (cpus, pool, method) cell, columns in row order.
    let mut points = Vec::new();
    for &cpus in &cpu_counts() {
        for pool in pools {
            for method in [
                SyncMethod::CoarseLock,
                SyncMethod::Tbeginc,
                SyncMethod::Tbegin,
            ] {
                points.push((method, cpus, pool));
            }
        }
    }
    // The "99.8% of no locking" comparison at the largest CPU count.
    let top = *cpu_counts().last().expect("non-empty sweep");
    points.push((SyncMethod::None, top, pools[1]));
    points.push((SyncMethod::Tbeginc, top, pools[1]));
    let timed = sweep(points, |&(method, cpus, pool)| {
        let t0 = Instant::now();
        let rep = run_pool(method, cpus, pool, 4, 42);
        (rep.throughput(), rep.system, t0.elapsed())
    });
    let mut timing = Timing::default();
    for (_, report, wall) in &timed {
        timing.add_run(*wall, report);
    }
    let results: Vec<f64> = timed.iter().map(|(t, _, _)| *t).collect();
    let mut top_row = Vec::new();
    let mut rows = Vec::new();
    for (i, cpus) in cpu_counts().into_iter().enumerate() {
        let row: Vec<f64> = results[6 * i..6 * i + 6]
            .iter()
            .map(|t| 100.0 * t / reference)
            .collect();
        print_row(cpus, &row);
        rows.push((cpus, row.clone()));
        top_row = row;
    }
    // The printed figure, exported verbatim so `results/plot_fig5e_full.py`
    // can render it offline. Series names are distinct from the headline
    // keys below (the digest-only artifact diff grep-extracts headline
    // lines by key, which must stay unique per file).
    let sweep_table = SweepTable {
        x: "cpus",
        series: &[
            "lock_small",
            "tbeginc_small",
            "tbegin_small",
            "lock_large",
            "tbeginc_large",
            "tbegin_large",
        ],
        rows,
    };
    println!();
    let cpus = top;
    let [none, tbc] = results[results.len() - 2..] else {
        unreachable!()
    };
    let tbc_pct = 100.0 * tbc / none;
    println!("TBEGINC at {cpus} CPUs = {tbc_pct:.1}% of unsynchronized throughput (paper: 99.8%)",);
    match write_bench_json_sweep(
        &bench_tag("fig5a_pools"),
        &[
            ("cpus_max", cpus as f64),
            ("lock_small_pool", top_row[0]),
            ("tbeginc_small_pool", top_row[1]),
            ("tbegin_small_pool", top_row[2]),
            ("lock_large_pool", top_row[3]),
            ("tbeginc_large_pool", top_row[4]),
            ("tbegin_large_pool", top_row[5]),
            ("tbeginc_vs_unsync_pct", tbc_pct),
        ],
        Some(&sweep_table),
        None,
        Some(&timing),
    ) {
        Ok(path) => println!("metrics: {}", path.display()),
        Err(e) => eprintln!("metrics export failed: {e}"),
    }
}
