//! Figure 5(a): TX vs locks, four variables, pool sizes 1k and 10k.
//!
//! Expected shape (paper): the coarse lock shows step-function drops at
//! chip/MCM boundaries and very poor throughput at high CPU counts;
//! transactions scale well. With pool 1k, TBEGIN drops steeply past a
//! threshold but still beats the lock. At 100 CPUs, TBEGINC on the large
//! pool reaches ~99.8% of the unsynchronized upper bound.

use ztm_bench::{
    cpu_counts, print_header, print_row, quick, reference_throughput, run_pool, sweep,
};
use ztm_workloads::pool::SyncMethod;

fn main() {
    let pools: [u64; 2] = if quick() {
        [200, 1_000]
    } else {
        [1_000, 10_000]
    };
    println!(
        "Fig 5(a): TX vs locks, 4 variables, pool sizes {} and {}",
        pools[0], pools[1]
    );
    println!("(normalized: 100 = 2 CPUs, single variable, pool of 1)");
    println!();
    let reference = reference_throughput(42);
    print_header(
        "CPUs",
        &[
            &format!("Lock {}", pools[0]),
            &format!("TBEGINC {}", pools[0]),
            &format!("TBEGIN {}", pools[0]),
            &format!("Lock {}", pools[1]),
            &format!("TBEGINC {}", pools[1]),
            &format!("TBEGIN {}", pools[1]),
        ]
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>(),
    );
    // One sweep point per (cpus, pool, method) cell, columns in row order.
    let mut points = Vec::new();
    for &cpus in &cpu_counts() {
        for pool in pools {
            for method in [
                SyncMethod::CoarseLock,
                SyncMethod::Tbeginc,
                SyncMethod::Tbegin,
            ] {
                points.push((method, cpus, pool));
            }
        }
    }
    // The "99.8% of no locking" comparison at the largest CPU count.
    let top = *cpu_counts().last().expect("non-empty sweep");
    points.push((SyncMethod::None, top, pools[1]));
    points.push((SyncMethod::Tbeginc, top, pools[1]));
    let results = sweep(points, |&(method, cpus, pool)| {
        run_pool(method, cpus, pool, 4, 42).throughput()
    });
    for (i, cpus) in cpu_counts().into_iter().enumerate() {
        let row: Vec<f64> = results[6 * i..6 * i + 6]
            .iter()
            .map(|t| 100.0 * t / reference)
            .collect();
        print_row(cpus, &row);
    }
    println!();
    let cpus = top;
    let [none, tbc] = results[results.len() - 2..] else {
        unreachable!()
    };
    println!(
        "TBEGINC at {cpus} CPUs = {:.1}% of unsynchronized throughput (paper: 99.8%)",
        100.0 * tbc / none
    );
}
