//! TBEGIN operand fields and interruption-filtering controls (§II.B/§II.C).

use crate::abort::ExceptionClass;
use ztm_mem::Address;

/// The General Register Save Mask: 8 bits, each covering an even/odd pair of
/// the 16 GRs (§II.B). Bit *i* covers GRs `2i` and `2i+1`.
///
/// # Examples
///
/// ```
/// use ztm_core::GrSaveMask;
///
/// let all = GrSaveMask::ALL;
/// assert!(all.covers_pair(7));
/// let some = GrSaveMask::new(0b0000_0101);
/// assert!(some.covers_gr(0) && some.covers_gr(1));
/// assert!(some.covers_gr(4) && some.covers_gr(5));
/// assert!(!some.covers_gr(2));
/// assert_eq!(some.pair_count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GrSaveMask(u8);

impl GrSaveMask {
    /// Save/restore every register pair.
    pub const ALL: GrSaveMask = GrSaveMask(0xff);
    /// Save/restore nothing.
    pub const NONE: GrSaveMask = GrSaveMask(0);

    /// Creates a mask from its raw 8-bit value.
    pub const fn new(mask: u8) -> Self {
        GrSaveMask(mask)
    }

    /// The raw 8-bit value.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Whether GR pair `i` (GRs `2i`, `2i+1`) is covered.
    ///
    /// # Panics
    ///
    /// Panics if `i > 7`.
    pub fn covers_pair(self, i: usize) -> bool {
        assert!(i < 8, "GR pair index out of range");
        self.0 >> i & 1 == 1
    }

    /// Whether a specific GR is covered.
    ///
    /// # Panics
    ///
    /// Panics if `r > 15`.
    pub fn covers_gr(self, r: usize) -> bool {
        assert!(r < 16, "GR index out of range");
        self.covers_pair(r / 2)
    }

    /// Number of pairs covered (TBEGIN cracks one save micro-op per pair,
    /// §III.B — this drives the cost model).
    pub fn pair_count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over the covered pair indices.
    pub fn pairs(self) -> impl Iterator<Item = usize> {
        (0..8).filter(move |i| self.0 >> i & 1 == 1)
    }
}

/// The Program Interruption Filtering Control of TBEGIN (§II.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Pifc {
    /// 0 — no filtering: every exception interrupts into the OS.
    #[default]
    None,
    /// 1 — filter data/arithmetic exceptions (class 4) only.
    Data,
    /// 2 — filter access exceptions (class 3) and data exceptions (class 4).
    DataAndAccess,
}

impl Pifc {
    /// Whether an exception of `class` is filtered at this PIFC level.
    /// Instruction-fetch related exceptions are never filtered (§II.C); the
    /// caller distinguishes fetch from operand access.
    pub fn filters(self, class: ExceptionClass) -> bool {
        match class {
            ExceptionClass::Impossible | ExceptionClass::Error => false,
            ExceptionClass::Access => self == Pifc::DataAndAccess,
            ExceptionClass::Data => self >= Pifc::Data,
        }
    }

    /// The architected field value (0–2).
    pub fn value(self) -> u8 {
        match self {
            Pifc::None => 0,
            Pifc::Data => 1,
            Pifc::DataAndAccess => 2,
        }
    }
}

/// The operand fields of a TBEGIN instruction (§II.B, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbeginParams {
    /// Which GR pairs to save/restore.
    pub grsm: GrSaveMask,
    /// Access-register modification control: when `false`, any AR-modifying
    /// instruction in the transaction is a restricted-instruction abort.
    pub allow_ar_mod: bool,
    /// Floating-point-register modification control.
    pub allow_fp_mod: bool,
    /// Program interruption filtering control.
    pub pifc: Pifc,
    /// Optional Transaction Diagnostic Block address (stored on abort).
    pub tdb: Option<Address>,
}

impl TbeginParams {
    /// Conventional defaults: save all GR pairs, forbid AR/FPR modification,
    /// no filtering, no TDB.
    pub fn new() -> Self {
        TbeginParams {
            grsm: GrSaveMask::ALL,
            allow_ar_mod: false,
            allow_fp_mod: false,
            pifc: Pifc::None,
            tdb: None,
        }
    }

    /// The implicit controls of TBEGINC: the FPR control and PIFC fields "do
    /// not exist and the controls are considered to be zero" (§II.D).
    pub fn constrained(grsm: GrSaveMask) -> Self {
        TbeginParams {
            grsm,
            allow_ar_mod: false,
            allow_fp_mod: false,
            pifc: Pifc::None,
            tdb: None,
        }
    }
}

impl Default for TbeginParams {
    fn default() -> Self {
        TbeginParams::new()
    }
}

/// The effective controls of a transaction nest: AR/FPR controls are the AND
/// of all levels, PIFC is the maximum of all levels (§II.B/§II.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EffectiveControls {
    /// Effective AR-modification permission.
    pub allow_ar_mod: bool,
    /// Effective FPR-modification permission.
    pub allow_fp_mod: bool,
    /// Effective filtering level.
    pub pifc: Pifc,
}

impl EffectiveControls {
    /// Effective controls of a single-level nest.
    pub fn from_params(p: &TbeginParams) -> Self {
        EffectiveControls {
            allow_ar_mod: p.allow_ar_mod,
            allow_fp_mod: p.allow_fp_mod,
            pifc: p.pifc,
        }
    }

    /// Merges an inner nesting level into the effective controls.
    pub fn merge(self, inner: &TbeginParams) -> Self {
        EffectiveControls {
            allow_ar_mod: self.allow_ar_mod && inner.allow_ar_mod,
            allow_fp_mod: self.allow_fp_mod && inner.allow_fp_mod,
            pifc: self.pifc.max(inner.pifc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grsm_pairs() {
        let m = GrSaveMask::new(0b1000_0001);
        assert_eq!(m.pairs().collect::<Vec<_>>(), vec![0, 7]);
        assert!(m.covers_gr(14) && m.covers_gr(15));
        assert!(!m.covers_gr(13));
        assert_eq!(m.pair_count(), 2);
        assert_eq!(GrSaveMask::ALL.pair_count(), 8);
        assert_eq!(GrSaveMask::NONE.pair_count(), 0);
    }

    #[test]
    fn pifc_filtering_matrix() {
        use ExceptionClass::*;
        assert!(!Pifc::None.filters(Data));
        assert!(!Pifc::None.filters(Access));
        assert!(Pifc::Data.filters(Data));
        assert!(!Pifc::Data.filters(Access));
        assert!(Pifc::DataAndAccess.filters(Data));
        assert!(Pifc::DataAndAccess.filters(Access));
        // Programming errors are never filtered.
        for p in [Pifc::None, Pifc::Data, Pifc::DataAndAccess] {
            assert!(!p.filters(Error));
        }
    }

    #[test]
    fn effective_controls_merge() {
        let outer = TbeginParams {
            allow_ar_mod: true,
            allow_fp_mod: false,
            pifc: Pifc::Data,
            ..TbeginParams::new()
        };
        let inner = TbeginParams {
            allow_ar_mod: false,
            allow_fp_mod: true,
            pifc: Pifc::DataAndAccess,
            ..TbeginParams::new()
        };
        let eff = EffectiveControls::from_params(&outer).merge(&inner);
        assert!(!eff.allow_ar_mod, "AND of AR controls");
        assert!(!eff.allow_fp_mod, "AND of FPR controls");
        assert_eq!(eff.pifc, Pifc::DataAndAccess, "max of PIFCs");
    }

    #[test]
    fn constrained_params_have_zero_controls() {
        let p = TbeginParams::constrained(GrSaveMask::ALL);
        assert!(!p.allow_fp_mod);
        assert_eq!(p.pifc, Pifc::None);
        assert!(p.tdb.is_none());
    }
}
