//! Constrained-transaction programming constraints (§II.D).

use std::error::Error;
use std::fmt;
use ztm_mem::{Address, Octoword};

/// Maximum instructions a constrained transaction may execute.
pub const MAX_CONSTRAINED_INSTRUCTIONS: u32 = 32;
/// All instruction text must lie within this many consecutive bytes.
pub const MAX_CONSTRAINED_TEXT_SPAN: u64 = 256;
/// Maximum aligned octowords (32-byte blocks) of memory accessed.
pub const MAX_CONSTRAINED_OCTOWORDS: usize = 4;

/// Classification of an instruction for transactional-execution legality.
///
/// The ISA layer classifies every instruction; the transaction engine applies
/// the rules of §II.A (restricted instructions), §II.B (AR/FPR modification
/// controls) and §II.D (constrained-transaction constraints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// A simple instruction, allowed in any transaction.
    General,
    /// A relative branch; constrained transactions require forward targets.
    BranchRelative {
        /// Whether the branch target precedes the branch instruction.
        backward: bool,
    },
    /// A branch that is not relative (e.g. via register); forbidden in
    /// constrained transactions (no sub-routine calls, §II.D).
    BranchOther,
    /// Modifies an access register (subject to the AR control, §II.B).
    ArModifying,
    /// Modifies a floating-point register (subject to the FPR control).
    FprModifying,
    /// Complex/decimal/floating-point operations excluded from constrained
    /// transactions but legal in normal ones (§II.D).
    RestrictedInConstrained,
    /// Privileged or complex instructions never allowed in any transaction
    /// (§II.A) — always a restricted-instruction abort.
    RestrictedInTx,
}

/// A violated constrained-transaction programming constraint. Raising one
/// causes a non-filterable constraint-violation program interruption (§II.D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintViolation {
    /// More than 32 instructions executed.
    TooManyInstructions,
    /// Instruction text spans more than 256 consecutive bytes.
    TextSpanTooLarge,
    /// A backward branch was executed.
    BackwardBranch,
    /// A non-relative branch (e.g. sub-routine call) was executed.
    NonRelativeBranch,
    /// An instruction excluded from constrained transactions was executed.
    RestrictedInstruction,
    /// More than 4 aligned octowords of memory were accessed.
    FootprintTooLarge,
    /// An AR/FPR-modifying instruction was executed (controls are zero).
    RegisterControl,
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ConstraintViolation::TooManyInstructions => {
                "constrained transaction executed more than 32 instructions"
            }
            ConstraintViolation::TextSpanTooLarge => {
                "constrained transaction text spans more than 256 bytes"
            }
            ConstraintViolation::BackwardBranch => {
                "constrained transaction executed a backward branch"
            }
            ConstraintViolation::NonRelativeBranch => {
                "constrained transaction executed a non-relative branch"
            }
            ConstraintViolation::RestrictedInstruction => {
                "instruction is excluded from constrained transactions"
            }
            ConstraintViolation::FootprintTooLarge => {
                "constrained transaction accessed more than 4 octowords"
            }
            ConstraintViolation::RegisterControl => "constrained transaction modified an AR/FPR",
        };
        f.write_str(msg)
    }
}

impl Error for ConstraintViolation {}

/// Dynamically tracks a running constrained transaction against its
/// programming constraints.
///
/// # Examples
///
/// ```
/// use ztm_core::{ConstraintTracker, InstrClass};
/// use ztm_mem::Address;
///
/// let mut t = ConstraintTracker::new(0x100);
/// t.note_instruction(0x100, 6, InstrClass::General)?;
/// t.note_data_access(Address::new(0x4000), 8)?;
/// # Ok::<(), ztm_core::ConstraintViolation>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConstraintTracker {
    /// Addresses of counted instructions. Constrained transactions contain
    /// no loops (forward branches only), so each address executes at most
    /// once — re-presenting an address means the instruction is being
    /// *retried* (e.g. after a stiff-armed memory access) and must not be
    /// counted again.
    counted: Vec<u64>,
    min_ia: u64,
    max_ia_end: u64,
    octowords: Vec<Octoword>,
}

impl ConstraintTracker {
    /// Starts tracking at the TBEGINC instruction address.
    pub fn new(tbeginc_ia: u64) -> Self {
        ConstraintTracker {
            counted: Vec::with_capacity(MAX_CONSTRAINED_INSTRUCTIONS as usize),
            min_ia: tbeginc_ia,
            max_ia_end: tbeginc_ia,
            octowords: Vec::with_capacity(MAX_CONSTRAINED_OCTOWORDS),
        }
    }

    /// Instructions executed so far (excluding TBEGINC itself).
    pub fn instructions(&self) -> u32 {
        self.counted.len() as u32
    }

    /// Distinct octowords accessed so far.
    pub fn octowords(&self) -> usize {
        self.octowords.len()
    }

    /// Records the execution of one instruction at `ia` of `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint, which the engine turns into a
    /// constraint-violation program interruption.
    pub fn note_instruction(
        &mut self,
        ia: u64,
        len: u64,
        class: InstrClass,
    ) -> Result<(), ConstraintViolation> {
        if !self.counted.contains(&ia) {
            self.counted.push(ia);
        }
        if self.counted.len() as u32 > MAX_CONSTRAINED_INSTRUCTIONS {
            return Err(ConstraintViolation::TooManyInstructions);
        }
        self.min_ia = self.min_ia.min(ia);
        self.max_ia_end = self.max_ia_end.max(ia + len);
        if self.max_ia_end - self.min_ia > MAX_CONSTRAINED_TEXT_SPAN {
            return Err(ConstraintViolation::TextSpanTooLarge);
        }
        match class {
            InstrClass::General => Ok(()),
            InstrClass::BranchRelative { backward: false } => Ok(()),
            InstrClass::BranchRelative { backward: true } => {
                Err(ConstraintViolation::BackwardBranch)
            }
            InstrClass::BranchOther => Err(ConstraintViolation::NonRelativeBranch),
            InstrClass::ArModifying | InstrClass::FprModifying => {
                Err(ConstraintViolation::RegisterControl)
            }
            InstrClass::RestrictedInConstrained | InstrClass::RestrictedInTx => {
                Err(ConstraintViolation::RestrictedInstruction)
            }
        }
    }

    /// Records an operand access of `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`ConstraintViolation::FootprintTooLarge`] if the access
    /// brings the footprint over 4 aligned octowords.
    pub fn note_data_access(&mut self, addr: Address, len: u64) -> Result<(), ConstraintViolation> {
        debug_assert!(len > 0);
        let first = addr.octoword().index();
        let last = addr.add(len - 1).octoword().index();
        for i in first..=last {
            let ow = Octoword::new(i);
            if !self.octowords.contains(&ow) {
                if self.octowords.len() == MAX_CONSTRAINED_OCTOWORDS {
                    return Err(ConstraintViolation::FootprintTooLarge);
                }
                self.octowords.push(ow);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_budget() {
        let mut t = ConstraintTracker::new(0);
        for i in 0..32 {
            t.note_instruction(i * 4, 4, InstrClass::General).unwrap();
        }
        assert_eq!(
            t.note_instruction(128, 4, InstrClass::General),
            Err(ConstraintViolation::TooManyInstructions)
        );
    }

    #[test]
    fn text_span_includes_tbeginc() {
        let mut t = ConstraintTracker::new(0x100);
        t.note_instruction(0x1f0, 6, InstrClass::General).unwrap(); // span 0x100..0x1f6 ≤ 256
        assert_eq!(
            t.note_instruction(0x200, 4, InstrClass::General),
            Err(ConstraintViolation::TextSpanTooLarge)
        );
    }

    #[test]
    fn branch_rules() {
        let mut t = ConstraintTracker::new(0);
        assert!(t
            .note_instruction(0, 4, InstrClass::BranchRelative { backward: false })
            .is_ok());
        assert_eq!(
            t.note_instruction(4, 4, InstrClass::BranchRelative { backward: true }),
            Err(ConstraintViolation::BackwardBranch)
        );
        assert_eq!(
            t.note_instruction(8, 4, InstrClass::BranchOther),
            Err(ConstraintViolation::NonRelativeBranch)
        );
    }

    #[test]
    fn restricted_classes() {
        let mut t = ConstraintTracker::new(0);
        assert_eq!(
            t.note_instruction(0, 4, InstrClass::RestrictedInConstrained),
            Err(ConstraintViolation::RestrictedInstruction)
        );
        assert_eq!(
            t.note_instruction(4, 4, InstrClass::FprModifying),
            Err(ConstraintViolation::RegisterControl)
        );
    }

    #[test]
    fn octoword_budget_allows_4() {
        let mut t = ConstraintTracker::new(0);
        for i in 0..4u64 {
            t.note_data_access(Address::new(i * 32), 8).unwrap();
        }
        // Re-touching the same octowords is free.
        t.note_data_access(Address::new(0), 32).unwrap();
        assert_eq!(t.octowords(), 4);
        assert_eq!(
            t.note_data_access(Address::new(4 * 32), 1),
            Err(ConstraintViolation::FootprintTooLarge)
        );
    }

    #[test]
    fn straddling_access_counts_two_octowords() {
        let mut t = ConstraintTracker::new(0);
        t.note_data_access(Address::new(28), 8).unwrap();
        assert_eq!(t.octowords(), 2);
    }

    #[test]
    fn double_linked_list_insert_fits() {
        // The paper notes common operations like doubly-linked-list insert
        // fit the constraints: 3 distinct nodes + head ≈ 4 octowords.
        let mut t = ConstraintTracker::new(0x40);
        let nodes = [0x1000u64, 0x2000, 0x3000, 0x4000];
        for (i, n) in nodes.iter().enumerate() {
            t.note_instruction(0x40 + 6 * i as u64 + 6, 6, InstrClass::General)
                .unwrap();
            t.note_data_access(Address::new(*n), 16).unwrap();
        }
        assert_eq!(t.octowords(), 4);
    }

    #[test]
    fn violation_display_nonempty() {
        assert!(!ConstraintViolation::FootprintTooLarge
            .to_string()
            .is_empty());
        assert!(ConstraintViolation::TooManyInstructions
            .to_string()
            .contains("32"));
    }
}
