//! Transaction abort causes, architected abort codes, and condition codes.

use std::fmt;
use ztm_cache::{CpuId, FootprintEvent};
use ztm_mem::LineAddr;

/// The condition code presented to the abort handler (§II.A): 2 for
/// *transient* conditions worth retrying, 3 for *permanent* conditions where
/// the program should branch to its fallback path immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCc {
    /// Condition code 2 — transient; a retry may succeed.
    Transient,
    /// Condition code 3 — permanent; retrying is futile.
    Permanent,
}

impl AbortCc {
    /// The architected condition-code value (2 or 3).
    pub fn value(self) -> u8 {
        match self {
            AbortCc::Transient => 2,
            AbortCc::Permanent => 3,
        }
    }
}

/// Classes of program-exception conditions for interruption filtering
/// (§II.C groups exceptions into four classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionClass {
    /// Cannot occur inside a transaction (e.g. exceptions of instructions
    /// that are themselves restricted).
    Impossible,
    /// Always a programming error; never filtered (e.g. undefined opcode).
    Error,
    /// Related to memory access (e.g. page faults); filtered at PIFC ≥ 2.
    Access,
    /// Arithmetic/data exceptions (e.g. divide by zero); filtered at PIFC ≥ 1.
    Data,
}

/// Program-exception conditions the simulator can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgramException {
    /// Page-translation exception (class [`ExceptionClass::Access`]).
    PageFault {
        /// Faulting byte address.
        address: u64,
    },
    /// Fixed-point divide exception (class [`ExceptionClass::Data`]).
    FixedPointDivide,
    /// Operation exception — undefined opcode (class [`ExceptionClass::Error`]).
    Operation,
    /// Transaction-constraint exception: a constrained transaction violated
    /// its programming constraints (§II.D; never filterable).
    ConstraintViolation,
    /// Specification exception (bad operand alignment etc.).
    Specification,
    /// A Program Event Recording event (store/fetch/TEND monitoring,
    /// §II.E.2); inside a transaction it causes an abort and a
    /// non-filterable interruption into the OS.
    PerEvent,
}

impl ProgramException {
    /// The filtering class of this exception.
    pub fn class(self) -> ExceptionClass {
        match self {
            ProgramException::PageFault { .. } => ExceptionClass::Access,
            ProgramException::FixedPointDivide => ExceptionClass::Data,
            ProgramException::Operation => ExceptionClass::Error,
            ProgramException::ConstraintViolation => ExceptionClass::Error,
            ProgramException::Specification => ExceptionClass::Access,
            ProgramException::PerEvent => ExceptionClass::Error,
        }
    }

    /// The z-style program-interruption code stored in the TDB.
    pub fn interruption_code(self) -> u16 {
        match self {
            ProgramException::Operation => 0x0001,
            ProgramException::Specification => 0x0006,
            ProgramException::FixedPointDivide => 0x0009,
            ProgramException::PageFault { .. } => 0x0011,
            ProgramException::ConstraintViolation => 0x0018,
            ProgramException::PerEvent => 0x0080,
        }
    }
}

/// Why a transaction aborted. Carries enough detail to build the Transaction
/// Diagnostic Block (§II.E.1) and select condition code and abort code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// An XI from another CPU (or the I/O subsystem) hit the footprint.
    Conflict {
        /// The conflicting line (TDB conflict token).
        line: LineAddr,
        /// The interrogating CPU, when known.
        from: Option<CpuId>,
        /// Whether the write set (vs read set) was hit.
        store: bool,
    },
    /// Transactional read footprint exceeded tracking capability.
    FetchOverflow,
    /// Transactional store footprint exceeded the store cache / L2.
    StoreOverflow,
    /// XI-reject threshold reached without forward progress (§III.C).
    RejectHang {
        /// The line whose XI finally had to be accepted.
        line: LineAddr,
    },
    /// A restricted instruction was decoded inside the transaction.
    RestrictedInstruction,
    /// The maximum transaction nesting depth (16) was exceeded.
    NestingDepthExceeded,
    /// A program-exception condition that will be *filtered* (no OS
    /// interruption; §II.C).
    FilteredProgramException(ProgramException),
    /// A program-exception condition presented to the OS.
    UnfilteredProgramException(ProgramException),
    /// An asynchronous interruption (timer, I/O, external).
    AsynchronousInterruption,
    /// TABORT was executed with the given code (§II.A: codes < 256 are
    /// reserved; the low bit selects CC 2 vs 3).
    Tabort(u64),
    /// A forced random abort from the Transaction Diagnostic Control
    /// (§II.E.3).
    Diagnostic,
}

impl AbortCause {
    /// The architected transaction abort code (z/Architecture flavored;
    /// see the TDB documentation in this crate).
    pub fn abort_code(self) -> u64 {
        match self {
            AbortCause::AsynchronousInterruption => 2,
            AbortCause::UnfilteredProgramException(_) => 4,
            AbortCause::FetchOverflow => 7,
            AbortCause::StoreOverflow => 8,
            AbortCause::Conflict { store: false, .. } => 9,
            AbortCause::Conflict { store: true, .. } => 10,
            AbortCause::RestrictedInstruction => 11,
            AbortCause::FilteredProgramException(_) => 12,
            AbortCause::NestingDepthExceeded => 13,
            AbortCause::RejectHang { .. } => 16,
            AbortCause::Diagnostic => 255,
            AbortCause::Tabort(code) => code.max(256),
        }
    }

    /// The condition code the abort presents (transient vs permanent).
    pub fn condition(self) -> AbortCc {
        match self {
            AbortCause::Conflict { .. }
            | AbortCause::RejectHang { .. }
            | AbortCause::AsynchronousInterruption
            | AbortCause::UnfilteredProgramException(_)
            | AbortCause::Diagnostic => AbortCc::Transient,
            AbortCause::FetchOverflow | AbortCause::StoreOverflow => AbortCc::Permanent,
            AbortCause::RestrictedInstruction
            | AbortCause::NestingDepthExceeded
            | AbortCause::FilteredProgramException(_) => AbortCc::Permanent,
            AbortCause::Tabort(code) => {
                if code & 1 == 0 {
                    AbortCc::Transient
                } else {
                    AbortCc::Permanent
                }
            }
        }
    }

    /// The conflict token (conflicting line address) if one is known.
    pub fn conflict_token(self) -> Option<LineAddr> {
        match self {
            AbortCause::Conflict { line, .. } | AbortCause::RejectHang { line } => Some(line),
            _ => None,
        }
    }

    /// Converts a cache-layer footprint event into an abort cause.
    pub fn from_footprint(ev: FootprintEvent) -> Self {
        match ev {
            FootprintEvent::Conflict { line, from, store } => {
                AbortCause::Conflict { line, from, store }
            }
            FootprintEvent::FetchOverflow { .. } => AbortCause::FetchOverflow,
            FootprintEvent::StoreOverflow { .. } => AbortCause::StoreOverflow,
            FootprintEvent::RejectHang { line } => AbortCause::RejectHang { line },
        }
    }

    /// Whether this abort also presents a program interruption to the OS.
    pub fn interrupts_os(self) -> bool {
        matches!(
            self,
            AbortCause::UnfilteredProgramException(_) | AbortCause::AsynchronousInterruption
        )
    }
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortCause::Conflict { line, from, store } => {
                let kind = if *store { "store" } else { "fetch" };
                match from {
                    Some(cpu) => write!(f, "{kind} conflict on {line} with {cpu}"),
                    None => write!(f, "{kind} conflict on {line}"),
                }
            }
            AbortCause::FetchOverflow => write!(f, "fetch footprint overflow"),
            AbortCause::StoreOverflow => write!(f, "store footprint overflow"),
            AbortCause::RejectHang { line } => {
                write!(f, "XI-reject threshold reached on {line}")
            }
            AbortCause::RestrictedInstruction => write!(f, "restricted instruction"),
            AbortCause::NestingDepthExceeded => write!(f, "nesting depth exceeded"),
            AbortCause::FilteredProgramException(pe) => {
                write!(
                    f,
                    "filtered program exception (code {:#06x})",
                    pe.interruption_code()
                )
            }
            AbortCause::UnfilteredProgramException(pe) => {
                write!(
                    f,
                    "program interruption (code {:#06x})",
                    pe.interruption_code()
                )
            }
            AbortCause::AsynchronousInterruption => write!(f, "asynchronous interruption"),
            AbortCause::Tabort(code) => write!(f, "TABORT code {code}"),
            AbortCause::Diagnostic => write!(f, "diagnostic-control forced abort"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condition_code_values() {
        assert_eq!(AbortCc::Transient.value(), 2);
        assert_eq!(AbortCc::Permanent.value(), 3);
    }

    #[test]
    fn conflicts_are_transient() {
        let c = AbortCause::Conflict {
            line: LineAddr::new(1),
            from: None,
            store: false,
        };
        assert_eq!(c.condition(), AbortCc::Transient);
        assert_eq!(c.abort_code(), 9);
        let s = AbortCause::Conflict {
            line: LineAddr::new(1),
            from: None,
            store: true,
        };
        assert_eq!(s.abort_code(), 10);
    }

    #[test]
    fn restricted_and_nesting_are_permanent() {
        assert_eq!(
            AbortCause::RestrictedInstruction.condition(),
            AbortCc::Permanent
        );
        assert_eq!(AbortCause::RestrictedInstruction.abort_code(), 11);
        assert_eq!(
            AbortCause::NestingDepthExceeded.condition(),
            AbortCc::Permanent
        );
        assert_eq!(AbortCause::NestingDepthExceeded.abort_code(), 13);
    }

    #[test]
    fn tabort_low_bit_selects_cc() {
        assert_eq!(AbortCause::Tabort(256).condition(), AbortCc::Transient);
        assert_eq!(AbortCause::Tabort(257).condition(), AbortCc::Permanent);
        // Codes below 256 are reserved and forced up.
        assert_eq!(AbortCause::Tabort(10).abort_code(), 256);
    }

    #[test]
    fn filtering_classes() {
        assert_eq!(
            ProgramException::PageFault { address: 0 }.class(),
            ExceptionClass::Access
        );
        assert_eq!(
            ProgramException::FixedPointDivide.class(),
            ExceptionClass::Data
        );
        assert_eq!(ProgramException::Operation.class(), ExceptionClass::Error);
        assert_eq!(
            ProgramException::ConstraintViolation.class(),
            ExceptionClass::Error
        );
    }

    #[test]
    fn footprint_conversion_keeps_token() {
        let ev = FootprintEvent::Conflict {
            line: LineAddr::new(3),
            from: Some(CpuId(1)),
            store: true,
        };
        let cause = AbortCause::from_footprint(ev);
        assert_eq!(cause.conflict_token(), Some(LineAddr::new(3)));
        assert_eq!(cause.abort_code(), 10);
    }

    #[test]
    fn os_interruption_only_for_unfiltered() {
        assert!(
            AbortCause::UnfilteredProgramException(ProgramException::FixedPointDivide)
                .interrupts_os()
        );
        assert!(
            !AbortCause::FilteredProgramException(ProgramException::FixedPointDivide)
                .interrupts_os()
        );
        assert!(AbortCause::AsynchronousInterruption.interrupts_os());
        assert!(!AbortCause::Diagnostic.interrupts_os());
    }

    #[test]
    fn display_is_informative() {
        let c = AbortCause::Conflict {
            line: LineAddr::new(4),
            from: Some(CpuId(2)),
            store: true,
        };
        assert_eq!(c.to_string(), "store conflict on line:0x4 with cpu2");
        assert_eq!(AbortCause::Tabort(258).to_string(), "TABORT code 258");
        assert!(
            AbortCause::FilteredProgramException(ProgramException::FixedPointDivide)
                .to_string()
                .contains("0x0009")
        );
        assert!(!AbortCause::Diagnostic.to_string().is_empty());
    }

    #[test]
    fn overflow_is_permanent() {
        // Retrying an oversized footprint cannot help; the program should
        // take its fallback path (paper §IV discusses practical size limits).
        assert_eq!(AbortCause::FetchOverflow.condition(), AbortCc::Permanent);
        assert_eq!(AbortCause::StoreOverflow.condition(), AbortCc::Permanent);
    }
}
