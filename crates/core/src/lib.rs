//! The zEC12 Transactional Execution facility — the paper's primary
//! contribution, implemented as a library over the `ztm-cache` substrate.
//!
//! This crate owns the *architectural* transaction machinery of
//! *"Transactional Memory Architecture and Implementation for IBM System z"*
//! (MICRO-45, 2012):
//!
//! * [`TxEngine`] — the per-CPU transaction state machine: nesting (up to
//!   depth 16, flattened on abort), the transaction-backup register file,
//!   effective AR/FPR/PIFC controls, and millicode abort processing
//!   (§II.A/§II.B, §III.B/§III.E).
//! * [`TbeginParams`]/[`GrSaveMask`]/[`Pifc`] — the TBEGIN operand fields
//!   (§II.B, Figure 2) and interruption filtering (§II.C).
//! * [`ConstraintTracker`] — the constrained-transaction programming
//!   constraints: ≤ 32 instructions, 256-byte text span, forward relative
//!   branches only, ≤ 4 octowords of data (§II.D).
//! * [`Tdb`] — the 256-byte Transaction Diagnostic Block (§II.E.1).
//! * [`DiagnosticControl`] — forced random aborts for testing abort and
//!   fallback paths (§II.E.3).
//! * [`ConstrainedRetry`]/[`MillicodeCosts`] — the millicode retry
//!   escalation ladder that makes constrained transactions eventually
//!   succeed, and the PPA random-backoff assist (§III.E).
//! * [`AbortCause`]/[`AbortCc`] — abort reasons, architected abort codes,
//!   and the transient/permanent condition-code split (§II.A).
//!
//! The engine owns no memory or cache state; the `ztm-sim` system simulator
//! coordinates it with [`ztm_cache::PrivateCache`] and delivers
//! [`ztm_cache::FootprintEvent`]s into [`TxEngine::note_footprint_event`].

mod abort;
mod constraints;
mod controls;
mod diag;
mod engine;
mod millicode;
mod stats;
mod tdb;

pub use abort::{AbortCause, AbortCc, ExceptionClass, ProgramException};
pub use constraints::{
    ConstraintTracker, ConstraintViolation, InstrClass, MAX_CONSTRAINED_INSTRUCTIONS,
    MAX_CONSTRAINED_OCTOWORDS, MAX_CONSTRAINED_TEXT_SPAN,
};
pub use controls::{EffectiveControls, GrSaveMask, Pifc, TbeginParams};
pub use diag::DiagnosticControl;
pub use engine::{
    AbortOutcome, BeginOutcome, TendOutcome, TxEngine, TxEngineConfig, MAX_NESTING_DEPTH,
};
pub use millicode::{ConstrainedRetry, MillicodeCosts, RetryAction, RetryLadderConfig};
pub use stats::TxStats;
pub use tdb::{Tdb, TDB_SIZE};
