//! The per-CPU transaction state machine (§II.A/§II.D, §III.B/§III.E).

use crate::abort::{AbortCause, ExceptionClass, ProgramException};
use crate::constraints::{ConstraintTracker, InstrClass};
use crate::controls::{EffectiveControls, GrSaveMask, TbeginParams};
use crate::diag::DiagnosticControl;
use crate::millicode::{ConstrainedRetry, MillicodeCosts, RetryAction, RetryLadderConfig};
use crate::stats::TxStats;
use crate::tdb::Tdb;
use rand::Rng;
use ztm_cache::FootprintEvent;
use ztm_mem::Address;
use ztm_trace::{Event, Tracer};

/// Maximum supported transaction nesting depth (§II.A).
pub const MAX_NESTING_DEPTH: usize = 16;

/// Configuration of a [`TxEngine`].
#[derive(Debug, Clone, Default)]
pub struct TxEngineConfig {
    /// OS-set diagnostic control (forced random aborts, §II.E.3).
    pub diagnostic: DiagnosticControl,
    /// Constrained-retry escalation ladder configuration.
    pub retry_ladder: RetryLadderConfig,
    /// Millicode cycle costs.
    pub costs: MillicodeCosts,
}

/// State captured at the outermost TBEGIN, needed for abort processing.
#[derive(Debug, Clone)]
struct OuterState {
    grsm: GrSaveMask,
    backup_grs: [u64; 16],
    resume_ia: u64,
    tdb_addr: Option<Address>,
    constrained: bool,
    tracker: Option<ConstraintTracker>,
}

/// Outcome of a transaction-begin instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeginOutcome {
    /// An outermost transaction started; `cycles` models the cracked
    /// micro-ops saving GR pairs into the backup register file (§III.B).
    Outermost {
        /// Execution cost of the begin.
        cycles: u64,
    },
    /// A nested level was opened.
    Nested,
}

/// Outcome of a TEND instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TendOutcome {
    /// TEND executed outside transactional-execution mode (no effect beyond
    /// setting the condition code).
    NotInTx,
    /// An inner nesting level closed; the transaction continues.
    Inner,
    /// The outermost transaction committed; `cycles` is the commit cost.
    Commit {
        /// Execution cost of the commit.
        cycles: u64,
    },
}

/// Everything the CPU model needs to apply a transaction abort (§III.E).
#[derive(Debug, Clone)]
pub struct AbortOutcome {
    /// Why the transaction aborted.
    pub cause: AbortCause,
    /// The architected abort code.
    pub abort_code: u64,
    /// The condition code to present (2 or 3).
    pub cc: u8,
    /// Where execution resumes: after the outermost TBEGIN, or *at* the
    /// TBEGINC for constrained transactions (§II.D).
    pub resume_ia: u64,
    /// `(register, value)` pairs to restore from the backup register file.
    pub gr_restores: Vec<(usize, u64)>,
    /// TDB image to store at the program-specified address, if any.
    pub tdb: Option<(Address, Tdb)>,
    /// TDB copy for the CPU prefix area (stored on program-interruption
    /// aborts, §II.E.1).
    pub prefix_tdb: Option<Tdb>,
    /// Whether an interruption into the OS is presented.
    pub os_interruption: bool,
    /// Whether the aborted transaction was constrained.
    pub constrained: bool,
    /// Millicode retry escalation for constrained transactions.
    pub retry: Option<RetryAction>,
    /// Millicode abort-processing cost in cycles.
    pub cycles: u64,
}

/// The per-CPU Transactional Execution engine.
///
/// Owns the architectural transaction state: nesting depth, effective
/// controls, the transaction-backup register file contents, the constraint
/// tracker for constrained transactions, pending asynchronous abort causes,
/// the diagnostic control, and the millicode retry ladder. It owns *no*
/// memory or cache state — the system simulator coordinates this engine with
/// the [`ztm_cache::PrivateCache`].
///
/// # Examples
///
/// ```
/// use ztm_core::{TbeginParams, TendOutcome, TxEngine};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut tx = TxEngine::default();
/// let grs = [0u64; 16];
/// tx.begin(TbeginParams::new(), false, &grs, 0x100, 0x106, &mut rng)
///     .expect("outermost begin");
/// assert_eq!(tx.depth(), 1);
/// assert!(matches!(tx.tend(), TendOutcome::Commit { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct TxEngine {
    level_params: Vec<TbeginParams>,
    effective: EffectiveControls,
    outer: Option<OuterState>,
    pending: Option<AbortCause>,
    tdc: DiagnosticControl,
    tdc_countdown: Option<u32>,
    retry: ConstrainedRetry,
    costs: MillicodeCosts,
    stats: TxStats,
    speculation_disabled: bool,
    /// Consecutive aborts of the current transaction site (reset on commit);
    /// recorded into the TDB as CPU-specific diagnostic information.
    abort_streak: u64,
    /// Abort code of the most recently processed abort (0 before any).
    /// The STM fallback path reads this through `Machine::stm_note` to
    /// attribute fallback engagements to their cause without the emitted
    /// program having to parse the TDB.
    last_abort_code: u16,
    tracer: Tracer,
}

impl TxEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: TxEngineConfig) -> Self {
        TxEngine {
            level_params: Vec::new(),
            effective: EffectiveControls::from_params(&TbeginParams::new()),
            outer: None,
            pending: None,
            tdc: config.diagnostic,
            tdc_countdown: None,
            retry: ConstrainedRetry::new(config.retry_ladder),
            costs: config.costs,
            stats: TxStats::new(),
            speculation_disabled: false,
            abort_streak: 0,
            last_abort_code: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer (also cloned into the millicode retry ladder).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.retry.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Current nesting depth (0 = not in transactional-execution mode).
    pub fn depth(&self) -> usize {
        self.level_params.len()
    }

    /// Whether the CPU is in transactional-execution mode.
    pub fn in_tx(&self) -> bool {
        !self.level_params.is_empty()
    }

    /// Whether the current transaction is constrained.
    pub fn constrained(&self) -> bool {
        self.outer.as_ref().map(|o| o.constrained).unwrap_or(false)
    }

    /// The TDB address the outermost TBEGIN registered, if any. Abort
    /// processing stores the 256-byte diagnostic block there; the sharded
    /// simulator's classifier uses this to bound which CPUs an abort step
    /// can touch through memory.
    pub fn tdb_addr(&self) -> Option<Address> {
        self.outer.as_ref().and_then(|o| o.tdb_addr)
    }

    /// Whether the millicode retry ladder has disabled speculative fetching
    /// for the current retry (§III.E).
    pub fn speculation_disabled(&self) -> bool {
        self.speculation_disabled
    }

    /// The effective AR/FPR/PIFC controls of the nest.
    pub fn effective_controls(&self) -> EffectiveControls {
        self.effective
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TxStats {
        &self.stats
    }

    /// Mutable statistics (the simulator records broadcast stops here).
    pub fn stats_mut(&mut self) -> &mut TxStats {
        &mut self.stats
    }

    /// Changes the diagnostic control (an OS action, §II.E.3).
    pub fn set_diagnostic_control(&mut self, dc: DiagnosticControl) {
        self.tdc = dc;
    }

    /// Consecutive aborts of the pending constrained transaction.
    pub fn constrained_abort_count(&self) -> u32 {
        self.retry.abort_count()
    }

    /// Abort code of the most recently processed abort (0 before any).
    pub fn last_abort_code(&self) -> u16 {
        self.last_abort_code
    }

    // ------------------------------------------------------------------
    // Begin / end
    // ------------------------------------------------------------------

    /// Executes a transaction-begin (TBEGIN or, with `constrained`,
    /// TBEGINC). `tbegin_ia` is the instruction's address; `next_ia` the
    /// address of the following instruction.
    ///
    /// # Errors
    ///
    /// Returns the abort cause if beginning is itself an abort condition:
    /// exceeding the maximum nesting depth, or any transaction-begin decoded
    /// inside a constrained transaction (§II.D, §III.B).
    pub fn begin(
        &mut self,
        params: TbeginParams,
        constrained: bool,
        grs: &[u64; 16],
        tbegin_ia: u64,
        next_ia: u64,
        rng: &mut impl Rng,
    ) -> Result<BeginOutcome, AbortCause> {
        if self.constrained() {
            return Err(AbortCause::RestrictedInstruction);
        }
        if self.depth() == MAX_NESTING_DEPTH {
            return Err(AbortCause::NestingDepthExceeded);
        }
        if self.depth() > 0 {
            // A TBEGINC inside a non-constrained transaction opens a normal
            // nesting level (§II.D).
            let p = if constrained {
                TbeginParams::constrained(params.grsm)
            } else {
                params
            };
            self.effective = self.effective.merge(&p);
            self.level_params.push(p);
            self.stats.nested_begins += 1;
            let depth = self.depth() as u16;
            self.tracer.emit(|| Event::TxBegin {
                constrained: false,
                depth,
            });
            return Ok(BeginOutcome::Nested);
        }

        // Outermost begin.
        self.effective = EffectiveControls::from_params(&params);
        self.level_params.push(params);
        self.outer = Some(OuterState {
            grsm: params.grsm,
            backup_grs: *grs,
            resume_ia: if constrained { tbegin_ia } else { next_ia },
            tdb_addr: params.tdb,
            constrained,
            tracker: constrained.then(|| ConstraintTracker::new(tbegin_ia)),
        });
        self.pending = None;
        self.tdc_countdown = self.tdc.draw_countdown(constrained, rng);
        if constrained {
            self.stats.tbegincs += 1;
        } else {
            self.stats.tbegins += 1;
        }
        self.tracer.emit(|| Event::TxBegin {
            constrained,
            depth: 1,
        });
        // TBEGIN is cracked into micro-ops: the two FXUs save two GR pairs
        // per cycle into the backup register file (§III.B), plus a TDB
        // accessibility test when one is specified.
        let cycles = 3
            + u64::from(params.grsm.pair_count().div_ceil(2))
            + if params.tdb.is_some() { 2 } else { 0 };
        Ok(BeginOutcome::Outermost { cycles })
    }

    /// Executes TEND.
    pub fn tend(&mut self) -> TendOutcome {
        if self.level_params.pop().is_none() {
            return TendOutcome::NotInTx;
        }
        if self.level_params.is_empty() {
            self.stats.commits += 1;
            self.outer = None;
            self.pending = None;
            self.tdc_countdown = None;
            self.speculation_disabled = false;
            self.abort_streak = 0;
            self.retry.on_commit();
            self.effective = EffectiveControls::from_params(&TbeginParams::new());
            self.tracer.emit(|| Event::TxCommit);
            TendOutcome::Commit { cycles: 2 }
        } else {
            // Recompute effective controls for the remaining nest.
            let mut eff = EffectiveControls::from_params(&self.level_params[0]);
            for p in &self.level_params[1..] {
                eff = eff.merge(p);
            }
            self.effective = eff;
            TendOutcome::Inner
        }
    }

    // ------------------------------------------------------------------
    // Per-instruction checks
    // ------------------------------------------------------------------

    /// Checks an instruction about to execute against the transactional
    /// rules: restricted instructions (§II.A), AR/FPR modification controls
    /// (§II.B), and the constrained-transaction constraints (§II.D).
    ///
    /// # Errors
    ///
    /// Returns the abort cause the instruction triggers.
    pub fn check_instruction(
        &mut self,
        class: InstrClass,
        ia: u64,
        len: u64,
    ) -> Result<(), AbortCause> {
        if !self.in_tx() {
            return Ok(());
        }
        if let Some(tracker) = self.outer.as_mut().and_then(|o| o.tracker.as_mut()) {
            if tracker.note_instruction(ia, len, class).is_err() {
                // Constraint violations are a non-filterable program
                // interruption (§II.D).
                return Err(AbortCause::UnfilteredProgramException(
                    ProgramException::ConstraintViolation,
                ));
            }
        }
        match class {
            InstrClass::RestrictedInTx => Err(AbortCause::RestrictedInstruction),
            InstrClass::ArModifying if !self.effective.allow_ar_mod => {
                Err(AbortCause::RestrictedInstruction)
            }
            InstrClass::FprModifying if !self.effective.allow_fp_mod => {
                Err(AbortCause::RestrictedInstruction)
            }
            _ => Ok(()),
        }
    }

    /// Records an operand access for the constrained footprint budget.
    ///
    /// # Errors
    ///
    /// Returns a constraint-violation abort cause when the 4-octoword budget
    /// is exceeded.
    pub fn note_data_access(&mut self, addr: Address, len: u64) -> Result<(), AbortCause> {
        if let Some(tracker) = self.outer.as_mut().and_then(|o| o.tracker.as_mut()) {
            if tracker.note_data_access(addr, len).is_err() {
                return Err(AbortCause::UnfilteredProgramException(
                    ProgramException::ConstraintViolation,
                ));
            }
        }
        Ok(())
    }

    /// Records a footprint event delivered by the cache layer (XI conflict,
    /// overflow). The first cause wins; later ones are ignored.
    pub fn note_footprint_event(&mut self, ev: FootprintEvent) {
        if self.in_tx() && self.pending.is_none() {
            self.pending = Some(AbortCause::from_footprint(ev));
        }
    }

    /// Raises an asynchronous interruption (timer/I/O), which aborts any
    /// pending transaction.
    pub fn raise_async_interruption(&mut self) {
        if self.in_tx() && self.pending.is_none() {
            self.pending = Some(AbortCause::AsynchronousInterruption);
        }
    }

    /// Records an arbitrary pending abort cause (TABORT, restricted
    /// instruction, diagnostic abort, program exception). The first pending
    /// cause wins; calls outside a transaction are ignored.
    pub fn set_pending(&mut self, cause: AbortCause) {
        if self.in_tx() && self.pending.is_none() {
            self.pending = Some(cause);
        }
    }

    /// The pending asynchronous abort cause, if any. The CPU model checks
    /// this at instruction boundaries (completion stalls against XIs,
    /// §III.C).
    pub fn pending_abort(&self) -> Option<AbortCause> {
        self.pending
    }

    /// Decides filtering for a program-exception condition detected inside
    /// the transaction. `instruction_fetch` exceptions are never filtered
    /// (§II.C).
    pub fn classify_exception(&self, pe: ProgramException, instruction_fetch: bool) -> AbortCause {
        let filtered = !instruction_fetch
            && pe.class() != ExceptionClass::Error
            && self.effective.pifc.filters(pe.class());
        if filtered {
            AbortCause::FilteredProgramException(pe)
        } else {
            AbortCause::UnfilteredProgramException(pe)
        }
    }

    /// Per-instruction diagnostic-control tick: returns a forced random
    /// abort cause when the TDC fires (§II.E.3).
    pub fn tdc_tick(&mut self, rng: &mut impl Rng) -> Option<AbortCause> {
        if !self.in_tx() {
            return None;
        }
        if let Some(cd) = self.tdc_countdown.as_mut() {
            *cd = cd.saturating_sub(1);
            if *cd == 0 {
                return Some(AbortCause::Diagnostic);
            }
        }
        if self.tdc.instruction_fires(rng) && !self.constrained() {
            return Some(AbortCause::Diagnostic);
        }
        None
    }

    /// Whether the diagnostic control could draw from the RNG or force an
    /// abort on upcoming instructions. With the control off and no armed
    /// countdown, `tdc_tick` is a pure no-op — the predicate the shard
    /// classifier needs before letting in-transaction steps run inside a
    /// parallel epoch window (where an unexpected RNG draw or forced abort
    /// would diverge from the serial schedule).
    pub fn tdc_active(&self) -> bool {
        !matches!(self.tdc, DiagnosticControl::Off) || self.tdc_countdown.is_some()
    }

    /// Whether the diagnostic control demands an abort *instead of* the
    /// outermost TEND ("at latest before the outermost TEND", §II.E.3).
    pub fn tdc_forces_abort_at_tend(&self) -> bool {
        self.depth() == 1 && self.tdc_countdown.is_some() && !self.constrained()
    }

    /// The PPA (Perform Processor Assist) transaction-abort assist: the
    /// machine-owned random backoff delay for the given abort count (§II.A).
    pub fn ppa_tx_assist(&self, abort_count: u64, rng: &mut impl Rng) -> u64 {
        self.costs.ppa_delay(abort_count, rng)
    }

    // ------------------------------------------------------------------
    // Abort processing (millicode, §III.E)
    // ------------------------------------------------------------------

    /// Processes a transaction abort: restores architectural state, builds
    /// TDB images, selects the resume address and condition code, and runs
    /// the constrained-retry ladder.
    ///
    /// `grs` are the register contents *at the time of abort* (stored into
    /// the TDB); `atia` is the aborted-transaction instruction address.
    ///
    /// # Panics
    ///
    /// Panics if the CPU is not in transactional-execution mode.
    pub fn process_abort(
        &mut self,
        cause: AbortCause,
        grs: &[u64; 16],
        atia: u64,
        rng: &mut impl Rng,
    ) -> AbortOutcome {
        let outer = self
            .outer
            .take()
            .expect("abort processed outside a transaction");
        self.level_params.clear();
        self.pending = None;
        self.tdc_countdown = None;
        self.effective = EffectiveControls::from_params(&TbeginParams::new());

        self.abort_streak += 1;
        self.last_abort_code = cause.abort_code() as u16;
        self.stats.record_abort(cause);
        self.tracer.emit(|| Event::TxAbort {
            code: cause.abort_code() as u16,
            cc: cause.condition().value(),
            constrained: outer.constrained,
        });

        let gr_restores: Vec<(usize, u64)> = outer
            .grsm
            .pairs()
            .flat_map(|p| [2 * p, 2 * p + 1])
            .map(|r| (r, outer.backup_grs[r]))
            .collect();

        let translation = match cause {
            AbortCause::FilteredProgramException(ProgramException::PageFault { address })
            | AbortCause::UnfilteredProgramException(ProgramException::PageFault { address }) => {
                Some(address)
            }
            _ => None,
        };
        let tdb_image = Tdb::build(cause, atia, grs, self.abort_streak, translation);
        let os_interruption = cause.interrupts_os();

        let retry = if outer.constrained {
            if os_interruption {
                self.retry.on_os_interruption();
                None
            } else {
                let action = self.retry.on_abort(rng);
                if action.disable_speculation {
                    self.speculation_disabled = true;
                }
                if action.broadcast_stop {
                    self.stats.broadcast_stops += 1;
                }
                Some(action)
            }
        } else {
            None
        };

        let mut cycles = self.costs.abort_base
            + u64::from(outer.grsm.pair_count()) * self.costs.per_gr_pair_restore;
        if outer.tdb_addr.is_some() {
            cycles += self.costs.tdb_store;
        }

        AbortOutcome {
            cause,
            abort_code: cause.abort_code(),
            cc: cause.condition().value(),
            resume_ia: outer.resume_ia,
            gr_restores,
            tdb: outer.tdb_addr.map(|a| (a, tdb_image)),
            prefix_tdb: os_interruption.then_some(tdb_image),
            os_interruption,
            constrained: outer.constrained,
            retry,
            cycles,
        }
    }
}

impl Default for TxEngine {
    fn default() -> Self {
        TxEngine::new(TxEngineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ztm_cache::CpuId;
    use ztm_mem::LineAddr;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn begin(tx: &mut TxEngine, rng: &mut SmallRng) {
        tx.begin(TbeginParams::new(), false, &[0; 16], 0x100, 0x106, rng)
            .unwrap();
    }

    #[test]
    fn begin_tend_round_trip() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        assert!(!tx.in_tx());
        begin(&mut tx, &mut r);
        assert!(tx.in_tx());
        assert_eq!(tx.depth(), 1);
        assert!(matches!(tx.tend(), TendOutcome::Commit { .. }));
        assert!(!tx.in_tx());
        assert_eq!(tx.stats().commits, 1);
    }

    #[test]
    fn tend_outside_tx() {
        let mut tx = TxEngine::default();
        assert_eq!(tx.tend(), TendOutcome::NotInTx);
    }

    #[test]
    fn nesting_flattens_on_abort() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        begin(&mut tx, &mut r);
        for _ in 0..3 {
            tx.begin(TbeginParams::new(), false, &[0; 16], 0x200, 0x206, &mut r)
                .unwrap();
        }
        assert_eq!(tx.depth(), 4);
        let out = tx.process_abort(AbortCause::FetchOverflow, &[0; 16], 0x210, &mut r);
        assert_eq!(tx.depth(), 0, "flattened nesting: entire nest aborts");
        assert_eq!(out.resume_ia, 0x106, "resumes after the outermost TBEGIN");
    }

    #[test]
    fn max_nesting_depth_aborts() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        begin(&mut tx, &mut r);
        for _ in 1..MAX_NESTING_DEPTH {
            tx.begin(TbeginParams::new(), false, &[0; 16], 0, 6, &mut r)
                .unwrap();
        }
        assert_eq!(tx.depth(), 16);
        let err = tx
            .begin(TbeginParams::new(), false, &[0; 16], 0, 6, &mut r)
            .unwrap_err();
        assert_eq!(err, AbortCause::NestingDepthExceeded);
    }

    #[test]
    fn tbegin_inside_constrained_is_restricted() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        tx.begin(
            TbeginParams::constrained(GrSaveMask::ALL),
            true,
            &[0; 16],
            0x100,
            0x106,
            &mut r,
        )
        .unwrap();
        assert!(tx.constrained());
        let err = tx
            .begin(TbeginParams::new(), false, &[0; 16], 0x110, 0x116, &mut r)
            .unwrap_err();
        assert_eq!(err, AbortCause::RestrictedInstruction);
    }

    #[test]
    fn tbeginc_nested_in_tbegin_is_normal_level() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        begin(&mut tx, &mut r);
        let out = tx
            .begin(
                TbeginParams::constrained(GrSaveMask::ALL),
                true,
                &[0; 16],
                0x200,
                0x206,
                &mut r,
            )
            .unwrap();
        assert_eq!(out, BeginOutcome::Nested);
        assert!(!tx.constrained(), "nest stays non-constrained");
        assert_eq!(tx.stats().nested_begins, 1);
    }

    #[test]
    fn constrained_resumes_at_tbeginc() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        tx.begin(
            TbeginParams::constrained(GrSaveMask::ALL),
            true,
            &[0; 16],
            0x100,
            0x106,
            &mut r,
        )
        .unwrap();
        let out = tx.process_abort(
            AbortCause::Conflict {
                line: LineAddr::new(1),
                from: Some(CpuId(1)),
                store: false,
            },
            &[0; 16],
            0x110,
            &mut r,
        );
        assert_eq!(out.resume_ia, 0x100, "retry at the TBEGINC itself");
        assert!(out.constrained);
        assert!(out.retry.is_some());
    }

    #[test]
    fn gr_restore_respects_mask() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        let mut grs = [0u64; 16];
        for (i, g) in grs.iter_mut().enumerate() {
            *g = i as u64;
        }
        let params = TbeginParams {
            grsm: GrSaveMask::new(0b0000_0011), // pairs 0 and 1 → GRs 0..=3
            ..TbeginParams::new()
        };
        tx.begin(params, false, &grs, 0x100, 0x106, &mut r).unwrap();
        let out = tx.process_abort(AbortCause::Tabort(256), &[99; 16], 0x120, &mut r);
        assert_eq!(out.gr_restores.len(), 4);
        assert!(out.gr_restores.contains(&(3, 3)));
        assert!(!out.gr_restores.iter().any(|&(reg, _)| reg > 3));
    }

    #[test]
    fn tdb_stored_when_address_given() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        let params = TbeginParams {
            tdb: Some(Address::new(0x8000)),
            ..TbeginParams::new()
        };
        tx.begin(params, false, &[0; 16], 0x100, 0x106, &mut r)
            .unwrap();
        let out = tx.process_abort(
            AbortCause::Conflict {
                line: LineAddr::new(2),
                from: None,
                store: true,
            },
            &[5; 16],
            0x140,
            &mut r,
        );
        let (addr, tdb) = out.tdb.expect("TDB requested");
        assert_eq!(addr, Address::new(0x8000));
        assert_eq!(tdb.abort_code(), 10);
        assert_eq!(tdb.atia(), 0x140);
        assert_eq!(tdb.gr(4), 5);
        assert!(out.cycles > MillicodeCosts::zec12().abort_base);
    }

    #[test]
    fn prefix_tdb_only_on_os_interruption() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        begin(&mut tx, &mut r);
        let out = tx.process_abort(AbortCause::Tabort(258), &[0; 16], 0, &mut r);
        assert!(out.prefix_tdb.is_none());

        begin(&mut tx, &mut r);
        let out = tx.process_abort(
            AbortCause::UnfilteredProgramException(ProgramException::PageFault { address: 0x9000 }),
            &[0; 16],
            0,
            &mut r,
        );
        assert!(out.prefix_tdb.is_some());
        assert!(out.os_interruption);
        assert_eq!(out.prefix_tdb.unwrap().translation_address(), 0x9000);
    }

    #[test]
    fn restricted_instruction_checks() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        // Outside a transaction everything is allowed.
        assert!(tx
            .check_instruction(InstrClass::RestrictedInTx, 0, 4)
            .is_ok());
        begin(&mut tx, &mut r);
        assert!(tx.check_instruction(InstrClass::General, 0, 4).is_ok());
        assert_eq!(
            tx.check_instruction(InstrClass::RestrictedInTx, 0, 4),
            Err(AbortCause::RestrictedInstruction)
        );
        // Default controls forbid AR/FPR modification.
        assert_eq!(
            tx.check_instruction(InstrClass::FprModifying, 0, 4),
            Err(AbortCause::RestrictedInstruction)
        );
    }

    #[test]
    fn ar_mod_allowed_when_control_set() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        let params = TbeginParams {
            allow_ar_mod: true,
            ..TbeginParams::new()
        };
        tx.begin(params, false, &[0; 16], 0, 6, &mut r).unwrap();
        assert!(tx.check_instruction(InstrClass::ArModifying, 0, 4).is_ok());
        // Nested level with the control off makes the effective control off.
        tx.begin(TbeginParams::new(), false, &[0; 16], 0, 6, &mut r)
            .unwrap();
        assert_eq!(
            tx.check_instruction(InstrClass::ArModifying, 0, 4),
            Err(AbortCause::RestrictedInstruction)
        );
        // Closing the inner level restores the outer effective control.
        assert_eq!(tx.tend(), TendOutcome::Inner);
        assert!(tx.check_instruction(InstrClass::ArModifying, 0, 4).is_ok());
    }

    #[test]
    fn constrained_constraint_violation_is_unfiltered_exception() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        tx.begin(
            TbeginParams::constrained(GrSaveMask::ALL),
            true,
            &[0; 16],
            0x100,
            0x106,
            &mut r,
        )
        .unwrap();
        let mut err = None;
        for i in 0..40 {
            if let Err(e) = tx.check_instruction(InstrClass::General, 0x106 + 4 * i, 4) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(
            err,
            Some(AbortCause::UnfilteredProgramException(
                ProgramException::ConstraintViolation
            ))
        );
    }

    #[test]
    fn footprint_event_sets_pending_once() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        begin(&mut tx, &mut r);
        tx.note_footprint_event(FootprintEvent::Conflict {
            line: LineAddr::new(1),
            from: None,
            store: false,
        });
        tx.note_footprint_event(FootprintEvent::StoreOverflow { line: None });
        match tx.pending_abort() {
            Some(AbortCause::Conflict { line, .. }) => assert_eq!(line, LineAddr::new(1)),
            other => panic!("first cause should win, got {other:?}"),
        }
    }

    #[test]
    fn footprint_event_ignored_outside_tx() {
        let mut tx = TxEngine::default();
        tx.note_footprint_event(FootprintEvent::FetchOverflow {
            line: LineAddr::new(0),
        });
        assert_eq!(tx.pending_abort(), None);
    }

    #[test]
    fn exception_filtering_honors_pifc() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        let params = TbeginParams {
            pifc: crate::controls::Pifc::DataAndAccess,
            ..TbeginParams::new()
        };
        tx.begin(params, false, &[0; 16], 0, 6, &mut r).unwrap();
        let pf = ProgramException::PageFault { address: 0x1000 };
        assert!(matches!(
            tx.classify_exception(pf, false),
            AbortCause::FilteredProgramException(_)
        ));
        // Instruction-fetch exceptions are never filtered (§II.C).
        assert!(matches!(
            tx.classify_exception(pf, true),
            AbortCause::UnfilteredProgramException(_)
        ));
        // Programming errors are never filtered.
        assert!(matches!(
            tx.classify_exception(ProgramException::Operation, false),
            AbortCause::UnfilteredProgramException(_)
        ));
    }

    #[test]
    fn tdc_always_abort_fires_before_tend() {
        let mut r = rng();
        let mut tx = TxEngine::new(TxEngineConfig {
            diagnostic: DiagnosticControl::AlwaysAbort { max_point: 1000 },
            ..TxEngineConfig::default()
        });
        begin(&mut tx, &mut r);
        // Either a tick fires first, or the TEND-time check forces it.
        let mut fired = tx.tdc_tick(&mut r).is_some();
        fired |= tx.tdc_forces_abort_at_tend();
        assert!(fired);
    }

    #[test]
    fn abort_streak_recorded_in_tdb() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        let params = TbeginParams {
            tdb: Some(Address::new(0x8000)),
            ..TbeginParams::new()
        };
        for expected in 1..=3u64 {
            tx.begin(params, false, &[0; 16], 0, 6, &mut r).unwrap();
            let out = tx.process_abort(AbortCause::FetchOverflow, &[0; 16], 0, &mut r);
            assert_eq!(out.tdb.unwrap().1.abort_count(), expected);
        }
        tx.begin(params, false, &[0; 16], 0, 6, &mut r).unwrap();
        tx.tend();
        tx.begin(params, false, &[0; 16], 0, 6, &mut r).unwrap();
        let out = tx.process_abort(AbortCause::FetchOverflow, &[0; 16], 0, &mut r);
        assert_eq!(out.tdb.unwrap().1.abort_count(), 1, "commit resets streak");
    }

    #[test]
    fn speculation_disabled_persists_until_commit() {
        let mut r = rng();
        let mut tx = TxEngine::default();
        for _ in 0..5 {
            tx.begin(
                TbeginParams::constrained(GrSaveMask::ALL),
                true,
                &[0; 16],
                0x100,
                0x106,
                &mut r,
            )
            .unwrap();
            tx.process_abort(
                AbortCause::Conflict {
                    line: LineAddr::new(1),
                    from: None,
                    store: false,
                },
                &[0; 16],
                0x110,
                &mut r,
            );
        }
        assert!(tx.speculation_disabled());
        tx.begin(
            TbeginParams::constrained(GrSaveMask::ALL),
            true,
            &[0; 16],
            0x100,
            0x106,
            &mut r,
        )
        .unwrap();
        tx.tend();
        assert!(!tx.speculation_disabled(), "commit re-enables speculation");
    }
}
