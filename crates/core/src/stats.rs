//! Per-CPU transactional-execution statistics.

use crate::abort::AbortCause;
use std::collections::BTreeMap;

/// Counters describing one CPU's transactional activity. Benchmarks
/// aggregate these to compute abort rates and abort-reason histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Outermost TBEGIN executions.
    pub tbegins: u64,
    /// Outermost TBEGINC executions.
    pub tbegincs: u64,
    /// Nested (inner) transaction begins.
    pub nested_begins: u64,
    /// Successful outermost commits.
    pub commits: u64,
    /// Aborts, total.
    pub aborts: u64,
    /// Aborts by architected abort code.
    pub aborts_by_code: BTreeMap<u64, u64>,
    /// Aborts whose program-exception condition was filtered.
    pub filtered_exceptions: u64,
    /// Aborts that interrupted into the OS.
    pub os_interruptions: u64,
    /// Broadcast-stop quiesce events requested by constrained retries.
    pub broadcast_stops: u64,
}

impl TxStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an abort.
    pub fn record_abort(&mut self, cause: AbortCause) {
        self.aborts += 1;
        *self.aborts_by_code.entry(cause.abort_code()).or_default() += 1;
        if matches!(cause, AbortCause::FilteredProgramException(_)) {
            self.filtered_exceptions += 1;
        }
        if cause.interrupts_os() {
            self.os_interruptions += 1;
        }
    }

    /// Fraction of started outermost transactions that aborted at least
    /// once: `aborts / (commits + aborts)`. Returns 0 for no activity.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Merges another CPU's counters into this one.
    pub fn merge(&mut self, other: &TxStats) {
        self.tbegins += other.tbegins;
        self.tbegincs += other.tbegincs;
        self.nested_begins += other.nested_begins;
        self.commits += other.commits;
        self.aborts += other.aborts;
        for (code, n) in &other.aborts_by_code {
            *self.aborts_by_code.entry(*code).or_default() += n;
        }
        self.filtered_exceptions += other.filtered_exceptions;
        self.os_interruptions += other.os_interruptions;
        self.broadcast_stops += other.broadcast_stops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ztm_mem::LineAddr;

    #[test]
    fn abort_rate_math() {
        let mut s = TxStats::new();
        assert_eq!(s.abort_rate(), 0.0);
        s.commits = 3;
        s.record_abort(AbortCause::FetchOverflow);
        assert!((s.abort_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_by_code() {
        let mut s = TxStats::new();
        s.record_abort(AbortCause::Conflict {
            line: LineAddr::new(0),
            from: None,
            store: false,
        });
        s.record_abort(AbortCause::Conflict {
            line: LineAddr::new(1),
            from: None,
            store: false,
        });
        s.record_abort(AbortCause::StoreOverflow);
        assert_eq!(s.aborts_by_code.get(&9), Some(&2));
        assert_eq!(s.aborts_by_code.get(&8), Some(&1));
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = TxStats::new();
        a.commits = 1;
        a.record_abort(AbortCause::Diagnostic);
        let mut b = TxStats::new();
        b.commits = 2;
        b.record_abort(AbortCause::Diagnostic);
        a.merge(&b);
        assert_eq!(a.commits, 3);
        assert_eq!(a.aborts, 2);
        assert_eq!(a.aborts_by_code.get(&255), Some(&2));
    }
}
