//! The Transaction Diagnostic Control: forced random aborts (§II.E.3).

use rand::Rng;

/// Operating-system controlled forcing of random transaction aborts, used to
/// stress-test abort and fallback paths (§II.E.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiagnosticControl {
    /// Normal operation: no forced aborts.
    #[default]
    Off,
    /// "Often, randomly abort transactions at a random point": each
    /// instruction inside a transaction aborts with probability
    /// `1/denominator`.
    Random {
        /// One forced abort per this many instructions, on average.
        denominator: u32,
    },
    /// "Abort every transaction at a random point but at latest before the
    /// outermost TEND" — used to stress the retry threshold and force the
    /// fallback path. Treated like [`DiagnosticControl::Random`] for
    /// constrained transactions (§II.E.3).
    AlwaysAbort {
        /// Upper bound for the randomly chosen abort point (instructions).
        max_point: u32,
    },
}

impl DiagnosticControl {
    /// Draws the per-transaction abort countdown at transaction begin.
    /// `None` means no pre-planned abort point.
    pub fn draw_countdown(self, constrained: bool, rng: &mut impl Rng) -> Option<u32> {
        match self {
            DiagnosticControl::Off | DiagnosticControl::Random { .. } => None,
            DiagnosticControl::AlwaysAbort { max_point } => {
                if constrained {
                    // The aggressive setting is treated like the less
                    // aggressive one for constrained transactions, which
                    // must eventually succeed.
                    None
                } else {
                    Some(rng.gen_range(1..=max_point.max(1)))
                }
            }
        }
    }

    /// Per-instruction random abort decision (both random modes).
    pub fn instruction_fires(self, rng: &mut impl Rng) -> bool {
        match self {
            DiagnosticControl::Off => false,
            DiagnosticControl::Random { denominator } => rng.gen_ratio(1, denominator.max(1)),
            // AlwaysAbort relies on the countdown, plus the same background
            // randomness as the lighter setting.
            DiagnosticControl::AlwaysAbort { .. } => rng.gen_ratio(1, 16),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn off_never_fires() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = DiagnosticControl::Off;
        assert_eq!(d.draw_countdown(false, &mut rng), None);
        assert!((0..1000).all(|_| !d.instruction_fires(&mut rng)));
    }

    #[test]
    fn random_fires_at_roughly_the_requested_rate() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = DiagnosticControl::Random { denominator: 4 };
        let fires = (0..10_000)
            .filter(|_| d.instruction_fires(&mut rng))
            .count();
        assert!((2000..3000).contains(&fires), "got {fires}");
    }

    #[test]
    fn always_abort_draws_bounded_countdown() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = DiagnosticControl::AlwaysAbort { max_point: 8 };
        for _ in 0..100 {
            let c = d.draw_countdown(false, &mut rng).unwrap();
            assert!((1..=8).contains(&c));
        }
        // Constrained transactions are exempt from the planned abort.
        assert_eq!(d.draw_countdown(true, &mut rng), None);
    }
}
