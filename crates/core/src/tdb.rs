//! The Transaction Diagnostic Block (§II.E.1).

use crate::abort::AbortCause;
use ztm_mem::{Address, MainMemory};

/// Size of a TDB in bytes.
pub const TDB_SIZE: usize = 256;

/// The Transaction Diagnostic Block: 256 bytes of abort diagnostics stored
/// when a transaction with a TDB address aborts (§II.E.1), and also stored
/// into the CPU's prefix area on every abort caused by a program
/// interruption.
///
/// Layout used by this simulator (offsets in bytes):
///
/// | Offset | Field |
/// |---|---|
/// | 0 | format (1) |
/// | 1 | flags — bit 7 (0x80): conflict token valid |
/// | 8..16 | transaction abort code |
/// | 16..24 | conflict token (byte address of the conflicting line) |
/// | 24..32 | aborted-transaction instruction address (ATIA) |
/// | 36..38 | program interruption code (when applicable) |
/// | 40..48 | translation-exception address (page faults) |
/// | 48..56 | abort count at the time of this abort (CPU-specific info) |
/// | 128..256 | general registers 0–15 at the time of abort |
///
/// # Examples
///
/// ```
/// use ztm_core::{AbortCause, Tdb};
///
/// let tdb = Tdb::build(AbortCause::FetchOverflow, 0x100, &[0; 16], 3, None);
/// assert_eq!(tdb.abort_code(), 7);
/// assert_eq!(tdb.atia(), 0x100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tdb {
    bytes: [u8; TDB_SIZE],
}

impl Tdb {
    /// Builds a TDB image for an abort.
    ///
    /// * `atia` — instruction address at which the abort was detected.
    /// * `grs` — general-register contents at the time of abort.
    /// * `abort_count` — CPU-specific diagnostic: how many aborts this
    ///   transaction has taken.
    /// * `translation_address` — faulting address for access exceptions.
    pub fn build(
        cause: AbortCause,
        atia: u64,
        grs: &[u64; 16],
        abort_count: u64,
        translation_address: Option<u64>,
    ) -> Self {
        let mut b = [0u8; TDB_SIZE];
        b[0] = 1; // format
        if let Some(line) = cause.conflict_token() {
            b[1] |= 0x80;
            b[16..24].copy_from_slice(&line.base().raw().to_be_bytes());
        }
        b[8..16].copy_from_slice(&cause.abort_code().to_be_bytes());
        b[24..32].copy_from_slice(&atia.to_be_bytes());
        if let crate::abort::AbortCause::FilteredProgramException(pe)
        | crate::abort::AbortCause::UnfilteredProgramException(pe) = cause
        {
            b[36..38].copy_from_slice(&pe.interruption_code().to_be_bytes());
        }
        if let Some(ta) = translation_address {
            b[40..48].copy_from_slice(&ta.to_be_bytes());
        }
        b[48..56].copy_from_slice(&abort_count.to_be_bytes());
        for (i, gr) in grs.iter().enumerate() {
            b[128 + 8 * i..128 + 8 * (i + 1)].copy_from_slice(&gr.to_be_bytes());
        }
        Tdb { bytes: b }
    }

    /// Parses a TDB image from raw bytes (e.g. read back from memory).
    pub fn from_bytes(bytes: [u8; TDB_SIZE]) -> Self {
        Tdb { bytes }
    }

    /// The raw 256-byte image.
    pub fn as_bytes(&self) -> &[u8; TDB_SIZE] {
        &self.bytes
    }

    /// Stores the TDB image to memory at `addr`.
    pub fn store_to(&self, mem: &mut MainMemory, addr: Address) {
        mem.store_bytes(addr, &self.bytes);
    }

    /// Loads a TDB image from memory at `addr`.
    pub fn load_from(mem: &MainMemory, addr: Address) -> Self {
        let mut b = [0u8; TDB_SIZE];
        mem.load_bytes(addr, &mut b);
        Tdb { bytes: b }
    }

    fn u64_at(&self, off: usize) -> u64 {
        u64::from_be_bytes(self.bytes[off..off + 8].try_into().expect("8 bytes"))
    }

    /// The transaction abort code.
    pub fn abort_code(&self) -> u64 {
        self.u64_at(8)
    }

    /// Whether the conflict token field is valid.
    pub fn conflict_token_valid(&self) -> bool {
        self.bytes[1] & 0x80 != 0
    }

    /// The conflict token (address of the conflicting line), if valid.
    pub fn conflict_token(&self) -> Option<u64> {
        self.conflict_token_valid().then(|| self.u64_at(16))
    }

    /// The aborted-transaction instruction address.
    pub fn atia(&self) -> u64 {
        self.u64_at(24)
    }

    /// The program interruption code, if any.
    pub fn program_interruption_code(&self) -> u16 {
        u16::from_be_bytes(self.bytes[36..38].try_into().expect("2 bytes"))
    }

    /// The translation-exception address field.
    pub fn translation_address(&self) -> u64 {
        self.u64_at(40)
    }

    /// The abort count recorded as CPU-specific diagnostic information.
    pub fn abort_count(&self) -> u64 {
        self.u64_at(48)
    }

    /// A general register value at the time of abort.
    ///
    /// # Panics
    ///
    /// Panics if `r > 15`.
    pub fn gr(&self, r: usize) -> u64 {
        assert!(r < 16, "GR index out of range");
        self.u64_at(128 + 8 * r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abort::ProgramException;
    use ztm_cache::CpuId;
    use ztm_mem::LineAddr;

    #[test]
    fn conflict_tdb_round_trip() {
        let mut grs = [0u64; 16];
        grs[5] = 0x55;
        let cause = AbortCause::Conflict {
            line: LineAddr::new(4),
            from: Some(CpuId(2)),
            store: true,
        };
        let tdb = Tdb::build(cause, 0x1234, &grs, 7, None);
        assert_eq!(tdb.abort_code(), 10);
        assert!(tdb.conflict_token_valid());
        assert_eq!(tdb.conflict_token(), Some(4 * 256));
        assert_eq!(tdb.atia(), 0x1234);
        assert_eq!(tdb.gr(5), 0x55);
        assert_eq!(tdb.abort_count(), 7);
    }

    #[test]
    fn non_conflict_has_no_token() {
        let tdb = Tdb::build(AbortCause::StoreOverflow, 0, &[0; 16], 0, None);
        assert!(!tdb.conflict_token_valid());
        assert_eq!(tdb.conflict_token(), None);
        assert_eq!(tdb.abort_code(), 8);
    }

    #[test]
    fn page_fault_fields() {
        let cause =
            AbortCause::UnfilteredProgramException(ProgramException::PageFault { address: 0x9000 });
        let tdb = Tdb::build(cause, 0x40, &[0; 16], 1, Some(0x9000));
        assert_eq!(tdb.program_interruption_code(), 0x0011);
        assert_eq!(tdb.translation_address(), 0x9000);
    }

    #[test]
    fn memory_round_trip() {
        let mut mem = MainMemory::new();
        let tdb = Tdb::build(AbortCause::Tabort(300), 0x10, &[9; 16], 2, None);
        tdb.store_to(&mut mem, Address::new(0x2000));
        let back = Tdb::load_from(&mem, Address::new(0x2000));
        assert_eq!(back, tdb);
        assert_eq!(back.abort_code(), 300);
        assert_eq!(back.gr(0), 9);
    }
}
