//! Millicode-implemented functions: abort processing costs, the PPA backoff
//! assist, and the constrained-transaction retry ladder (§III.E).

use rand::Rng;
use ztm_trace::{Event, Tracer};

/// Cycle costs of millicode routines (§III.E: "Every transaction abort
/// invokes a dedicated millicode sub-routine").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MillicodeCosts {
    /// Base cost of the abort sub-routine (SPR reads, PSW setup).
    pub abort_base: u64,
    /// Additional cost to extract and store a 256-byte TDB.
    pub tdb_store: u64,
    /// Cost per GR pair restored from the backup register file.
    pub per_gr_pair_restore: u64,
    /// Base unit of the PPA random delay.
    pub ppa_base: u64,
    /// Cap on the PPA delay exponent (delays stop doubling here).
    pub ppa_max_shift: u32,
}

impl MillicodeCosts {
    /// Plausible zEC12-flavored defaults (the paper only says TDB storing
    /// "takes a number of CPU cycles").
    pub fn zec12() -> Self {
        MillicodeCosts {
            abort_base: 250,
            tdb_store: 150,
            per_gr_pair_restore: 2,
            ppa_base: 64,
            ppa_max_shift: 6,
        }
    }

    /// The Perform Processor Assist delay for a given software-reported
    /// abort count: random exponential backoff whose distribution is owned
    /// by the machine, not the program (§II.A).
    pub fn ppa_delay(&self, abort_count: u64, rng: &mut impl Rng) -> u64 {
        let shift = (abort_count.min(self.ppa_max_shift as u64)) as u32;
        let ceiling = self.ppa_base << shift;
        rng.gen_range(0..=ceiling)
    }
}

impl Default for MillicodeCosts {
    fn default() -> Self {
        MillicodeCosts::zec12()
    }
}

/// Configuration of the constrained-transaction retry escalation ladder
/// (§III.E): increasing random delays, then reduced speculation, then — as a
/// last resort — broadcasting to other CPUs to stop conflicting work.
/// The booleans are ablation knobs (DESIGN.md E4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryLadderConfig {
    /// Base unit of the inter-retry random delay.
    pub delay_base: u64,
    /// Cap on the delay exponent.
    pub delay_max_shift: u32,
    /// Aborts after which speculative fetching is disabled (0 = immediately).
    pub disable_speculation_after: u32,
    /// Aborts after which other CPUs are quiesced for one retry.
    pub broadcast_stop_after: u32,
    /// Ablation: allow the speculation-disable stage.
    pub enable_speculation_stage: bool,
    /// Ablation: allow the broadcast-stop stage.
    pub enable_broadcast_stage: bool,
}

impl RetryLadderConfig {
    /// The default ladder used by the zEC12 model: delays grow first,
    /// speculation is reduced early, and the broadcast-stop quiesce remains
    /// a genuine last resort (§III.E).
    pub fn zec12() -> Self {
        RetryLadderConfig {
            delay_base: 64,
            delay_max_shift: 5,
            disable_speculation_after: 3,
            broadcast_stop_after: 6,
            enable_speculation_stage: true,
            enable_broadcast_stage: true,
        }
    }
}

impl Default for RetryLadderConfig {
    fn default() -> Self {
        RetryLadderConfig::zec12()
    }
}

/// What millicode does before the next retry of an aborted constrained
/// transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryAction {
    /// Random delay (cycles) before the retry.
    pub delay: u64,
    /// Whether speculative fetching is disabled for the retry.
    pub disable_speculation: bool,
    /// Whether all other CPUs are quiesced for the retry (last resort; this
    /// is what ultimately guarantees forward progress).
    pub broadcast_stop: bool,
}

/// Millicode state tracking consecutive aborts of a constrained transaction
/// (§III.E: "millicode keeps track of the number of aborts. The counter is
/// reset to 0 on successful TEND completion, or if an interruption into the
/// OS occurs").
#[derive(Debug, Clone, Default)]
pub struct ConstrainedRetry {
    config: RetryLadderConfig,
    count: u32,
    tracer: Tracer,
}

impl ConstrainedRetry {
    /// Creates the ladder with the given configuration.
    pub fn new(config: RetryLadderConfig) -> Self {
        ConstrainedRetry {
            config,
            count: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer for ladder-stage transitions.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Consecutive aborts seen so far.
    pub fn abort_count(&self) -> u32 {
        self.count
    }

    /// Called on each constrained-transaction abort; returns the escalation
    /// action for the next retry.
    pub fn on_abort(&mut self, rng: &mut impl Rng) -> RetryAction {
        self.count += 1;
        let shift = self.count.min(self.config.delay_max_shift);
        let ceiling = self.config.delay_base << shift;
        let action = RetryAction {
            delay: rng.gen_range(0..=ceiling),
            disable_speculation: self.config.enable_speculation_stage
                && self.count >= self.config.disable_speculation_after,
            broadcast_stop: self.config.enable_broadcast_stage
                && self.count >= self.config.broadcast_stop_after,
        };
        self.tracer.emit(|| Event::LadderStage {
            attempt: self.count,
            delay: action.delay,
            disable_spec: action.disable_speculation,
            broadcast_stop: action.broadcast_stop,
        });
        action
    }

    /// Called when the constrained transaction commits.
    pub fn on_commit(&mut self) {
        self.count = 0;
    }

    /// Called when an interruption into the OS occurs (millicode cannot know
    /// if or when the OS returns, §III.E).
    pub fn on_os_interruption(&mut self) {
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ppa_delay_grows_with_abort_count() {
        let mut rng = SmallRng::seed_from_u64(7);
        let costs = MillicodeCosts::zec12();
        let avg = |count: u64, rng: &mut SmallRng| -> u64 {
            (0..200).map(|_| costs.ppa_delay(count, rng)).sum::<u64>() / 200
        };
        let early = avg(0, &mut rng);
        let late = avg(6, &mut rng);
        assert!(
            late > early * 8,
            "expected exponential growth: {early} vs {late}"
        );
        // Exponent caps: counts beyond the shift cap give the same ceiling.
        let capped = avg(60, &mut rng);
        assert!(capped < late * 3);
    }

    #[test]
    fn ladder_escalates_in_stages() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut r = ConstrainedRetry::new(RetryLadderConfig::zec12());
        let a1 = r.on_abort(&mut rng);
        assert!(!a1.disable_speculation && !a1.broadcast_stop);
        r.on_abort(&mut rng);
        let a3 = r.on_abort(&mut rng); // 3rd abort reaches the no-spec stage
        assert!(a3.disable_speculation && !a3.broadcast_stop);
        for _ in 0..12 {
            r.on_abort(&mut rng);
        }
        let a16 = r.on_abort(&mut rng); // 16th abort: last resort
        assert!(a16.disable_speculation && a16.broadcast_stop);
    }

    #[test]
    fn commit_and_os_interruption_reset() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut r = ConstrainedRetry::new(RetryLadderConfig::zec12());
        for _ in 0..10 {
            r.on_abort(&mut rng);
        }
        assert_eq!(r.abort_count(), 10);
        r.on_commit();
        assert_eq!(r.abort_count(), 0);
        r.on_abort(&mut rng);
        r.on_os_interruption();
        assert_eq!(r.abort_count(), 0);
    }

    #[test]
    fn ablation_knobs_disable_stages() {
        let mut rng = SmallRng::seed_from_u64(10);
        let mut r = ConstrainedRetry::new(RetryLadderConfig {
            enable_speculation_stage: false,
            enable_broadcast_stage: false,
            ..RetryLadderConfig::zec12()
        });
        for _ in 0..20 {
            let a = r.on_abort(&mut rng);
            assert!(!a.disable_speculation && !a.broadcast_stop);
        }
    }
}
