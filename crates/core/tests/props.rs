//! Property tests for the transaction engine: TDB round trips, save-mask
//! algebra, constraint accounting, nesting discipline, and abort-code
//! classification.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ztm_cache::CpuId;
use ztm_core::{
    AbortCause, ConstraintTracker, GrSaveMask, InstrClass, TbeginParams, Tdb, TendOutcome,
    TxEngine, MAX_NESTING_DEPTH,
};
use ztm_mem::{Address, LineAddr, MainMemory};

fn arb_cause() -> impl Strategy<Value = AbortCause> {
    prop_oneof![
        (any::<u64>(), any::<bool>(), prop::option::of(0usize..144)).prop_map(
            |(line, store, from)| AbortCause::Conflict {
                line: LineAddr::new(line % 1_000_000),
                from: from.map(CpuId),
                store,
            }
        ),
        Just(AbortCause::FetchOverflow),
        Just(AbortCause::StoreOverflow),
        (0u64..1_000_000).prop_map(|l| AbortCause::RejectHang {
            line: LineAddr::new(l)
        }),
        Just(AbortCause::RestrictedInstruction),
        Just(AbortCause::NestingDepthExceeded),
        (256u64..1u64 << 40).prop_map(AbortCause::Tabort),
        Just(AbortCause::Diagnostic),
        Just(AbortCause::AsynchronousInterruption),
    ]
}

proptest! {
    /// Every abort cause maps to a valid architected code and a CC of 2/3,
    /// and TABORT's low bit selects the CC.
    #[test]
    fn abort_codes_are_total_and_classified(cause in arb_cause()) {
        let code = cause.abort_code();
        prop_assert!(code >= 2);
        let cc = cause.condition().value();
        prop_assert!(cc == 2 || cc == 3);
        if let AbortCause::Tabort(c) = cause {
            prop_assert_eq!(cc == 3, c & 1 == 1);
            prop_assert!(code >= 256);
        }
    }

    /// The TDB round-trips through memory for any cause, registers, and
    /// abort count.
    #[test]
    fn tdb_memory_round_trip(
        cause in arb_cause(),
        atia in any::<u64>(),
        grs in prop::array::uniform16(any::<u64>()),
        count in any::<u64>(),
        addr in (0u64..1_000_000).prop_map(|a| a & !0xff),
    ) {
        let tdb = Tdb::build(cause, atia, &grs, count, None);
        let mut mem = MainMemory::new();
        tdb.store_to(&mut mem, Address::new(addr));
        let back = Tdb::load_from(&mem, Address::new(addr));
        prop_assert_eq!(back.abort_code(), cause.abort_code());
        prop_assert_eq!(back.atia(), atia);
        prop_assert_eq!(back.abort_count(), count);
        for (i, g) in grs.iter().enumerate() {
            prop_assert_eq!(back.gr(i), *g);
        }
        prop_assert_eq!(
            back.conflict_token().is_some(),
            cause.conflict_token().is_some()
        );
    }

    /// GrSaveMask: a register is covered iff its pair bit is set, and the
    /// pair count equals the popcount.
    #[test]
    fn save_mask_algebra(mask in any::<u8>()) {
        let m = GrSaveMask::new(mask);
        prop_assert_eq!(m.pair_count(), mask.count_ones());
        for r in 0..16usize {
            prop_assert_eq!(m.covers_gr(r), mask >> (r / 2) & 1 == 1);
        }
        prop_assert_eq!(m.pairs().count() as u32, m.pair_count());
    }

    /// The constraint tracker counts distinct octowords exactly like a
    /// naive reference set, for arbitrary aligned accesses.
    #[test]
    fn octoword_accounting_matches_reference(
        accesses in prop::collection::vec((0u64..100u64, 1u64..9), 1..20),
    ) {
        let mut tracker = ConstraintTracker::new(0);
        let mut reference = std::collections::BTreeSet::new();
        for (i, (slot, len)) in accesses.iter().enumerate() {
            let addr = slot * 8; // doubleword-aligned accesses
            let first = addr / 32;
            let last = (addr + len - 1) / 32;
            let mut r = reference.clone();
            for ow in first..=last {
                r.insert(ow);
            }
            let res = tracker.note_data_access(Address::new(addr), *len);
            if r.len() <= 4 {
                prop_assert!(res.is_ok(), "access {} should fit", i);
                reference = r;
            } else {
                prop_assert!(res.is_err());
                break;
            }
        }
        prop_assert_eq!(tracker.octowords(), reference.len());
    }

    /// Retried instructions (same address) never consume extra budget; 32
    /// distinct addresses always fit, the 33rd never does.
    #[test]
    fn instruction_budget_dedupes_retries(retries in prop::collection::vec(0usize..32, 0..40)) {
        let mut t = ConstraintTracker::new(0);
        for i in 0..32u64 {
            t.note_instruction(i * 4, 4, InstrClass::General).unwrap();
            prop_assert_eq!(t.instructions(), (i + 1) as u32);
        }
        for r in retries {
            prop_assert!(t.note_instruction(r as u64 * 4, 4, InstrClass::General).is_ok());
            prop_assert_eq!(t.instructions(), 32);
        }
        prop_assert!(t.note_instruction(32 * 4, 4, InstrClass::General).is_err());
    }

    /// Nesting discipline: for any sequence of begins and ends, the depth
    /// follows push/pop semantics, caps at 16, and a commit only happens
    /// when the last level pops.
    #[test]
    fn nesting_depth_follows_begin_end(ops in prop::collection::vec(any::<bool>(), 1..64)) {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut tx = TxEngine::default();
        let mut depth = 0usize;
        for begin in ops {
            if begin {
                let res = tx.begin(TbeginParams::new(), false, &[0; 16], 0, 6, &mut rng);
                if depth == MAX_NESTING_DEPTH {
                    prop_assert!(res.is_err());
                    // The abort flattens the nest.
                    tx.process_abort(res.unwrap_err(), &[0; 16], 0, &mut rng);
                    depth = 0;
                } else {
                    prop_assert!(res.is_ok());
                    depth += 1;
                }
            } else {
                let out = tx.tend();
                match out {
                    TendOutcome::NotInTx => prop_assert_eq!(depth, 0),
                    TendOutcome::Inner => {
                        prop_assert!(depth > 1);
                        depth -= 1;
                    }
                    TendOutcome::Commit { .. } => {
                        prop_assert_eq!(depth, 1);
                        depth = 0;
                    }
                }
            }
            prop_assert_eq!(tx.depth(), depth);
            prop_assert_eq!(tx.in_tx(), depth > 0);
        }
    }

    /// GR restoration honors the mask exactly for arbitrary masks and
    /// register contents.
    #[test]
    fn gr_restore_matches_mask(
        mask in any::<u8>(),
        before in prop::array::uniform16(any::<u64>()),
    ) {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut tx = TxEngine::default();
        let params = TbeginParams {
            grsm: GrSaveMask::new(mask),
            ..TbeginParams::new()
        };
        tx.begin(params, false, &before, 0x100, 0x106, &mut rng).unwrap();
        let out = tx.process_abort(AbortCause::FetchOverflow, &[0; 16], 0x110, &mut rng);
        prop_assert_eq!(out.gr_restores.len() as u32, 2 * mask.count_ones());
        for (r, v) in out.gr_restores {
            prop_assert!(GrSaveMask::new(mask).covers_gr(r));
            prop_assert_eq!(v, before[r]);
        }
    }
}
