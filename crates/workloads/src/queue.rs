//! A concurrent FIFO queue: global lock vs constrained transactions.
//!
//! Models the IBM Java team's `ConcurrentLinkedQueue` experiment (§IV):
//! implemented with constrained transactions, throughput exceeded locks by
//! a factor of about 2.

use crate::harness::{convention, emit_tx_with_fallback, WorkloadReport};
use ztm_core::GrSaveMask;
use ztm_isa::{gr::*, Assembler, MemOperand, Program, RegOrImm};
use ztm_mem::Address;
use ztm_sim::System;
use ztm_stm::{HtmBody, Stm, TxBody};

/// Queue synchronization method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueMethod {
    /// A single lock around enqueue and dequeue.
    Lock,
    /// Each enqueue/dequeue is one constrained transaction (§II.D: short,
    /// few octowords, straight-line — exactly the intended use).
    Tbeginc,
    /// Figure 1 lock elision around the enqueue+dequeue pair, with the
    /// global lock as fallback.
    Elision,
    /// Enqueue and dequeue are each a TL2 software transaction
    /// ([`ztm_stm`]).
    PureStm,
    /// TBEGIN fast paths subscribing to the TL2 stripe locks, falling back
    /// to the software path after the retry budget.
    HtmStmFallback,
}

/// A Michael–Scott-style linked queue with a sentinel node, head and tail
/// pointers on separate cache lines, and 32-byte nodes `{value, next}`.
///
/// Each benchmark operation enqueues a value and then dequeues one, so the
/// queue length stays at its seeded size.
#[derive(Debug, Clone)]
pub struct ConcurrentQueue {
    method: QueueMethod,
    head_ptr: u64,
    tail_ptr: u64,
    lock: u64,
    seed_arena: u64,
    arena_base: u64,
    arena_size: u64,
    stm: Stm,
}

impl ConcurrentQueue {
    /// Creates a queue description.
    pub fn new(method: QueueMethod) -> Self {
        ConcurrentQueue {
            method,
            head_ptr: 0x3000_0000,
            tail_ptr: 0x3000_0100,
            lock: 0x3000_0200,
            seed_arena: 0x3100_0000,
            arena_base: 0x3200_0000,
            arena_size: 0x10_0000,
            stm: Stm::new(),
        }
    }

    /// Seeds the queue host-side with a sentinel plus `n` elements.
    pub fn seed(&self, sys: &mut System, n: u64) {
        let mem = sys.mem_mut();
        let sentinel = self.seed_arena;
        mem.store_u64(Address::new(sentinel), 0);
        mem.store_u64(Address::new(sentinel + 8), 0);
        let mut tail = sentinel;
        for i in 0..n {
            let node = self.seed_arena + 32 * (i + 1);
            mem.store_u64(Address::new(node), i + 1); // value
            mem.store_u64(Address::new(node + 8), 0); // next
            mem.store_u64(Address::new(tail + 8), node);
            tail = node;
        }
        mem.store_u64(Address::new(self.head_ptr), sentinel);
        mem.store_u64(Address::new(self.tail_ptr), tail);
    }

    /// Host-side queue length (excluding the sentinel).
    pub fn len(&self, sys: &System) -> u64 {
        let mut node = sys.mem().load_u64(Address::new(self.head_ptr));
        let mut n = 0;
        loop {
            node = sys.mem().load_u64(Address::new(node + 8));
            if node == 0 {
                return n;
            }
            n += 1;
        }
    }

    /// Whether the queue holds no elements.
    pub fn is_empty(&self, sys: &System) -> bool {
        self.len(sys) == 0
    }

    /// Emits enqueue (node pre-initialized at R7) + dequeue with label
    /// prefix `p`. Constrained variants wrap each in its own TBEGINC.
    fn emit_ops(&self, a: &mut Assembler, p: &str, constrained: bool) {
        // Enqueue: link the node at R7 after the current tail.
        if constrained {
            a.tbeginc(GrSaveMask::ALL);
        }
        a.lg(R3, MemOperand::absolute(self.tail_ptr));
        a.stg(R7, MemOperand::based(R3, 8)); // tail.next = node
        a.stg(R7, MemOperand::absolute(self.tail_ptr)); // tail = node
        if constrained {
            a.tend();
        }
        a.aghi(R7, 32); // bump allocator (outside the tx: commit is certain)
                        // Dequeue.
        if constrained {
            a.tbeginc(GrSaveMask::ALL);
        }
        a.lg(R3, MemOperand::absolute(self.head_ptr));
        a.lg(R2, MemOperand::based(R3, 8)); // next = head.next
        a.cghi(R2, 0);
        a.jz(&format!("{p}_empty")); // forward branch: constrained-legal
        a.stg(R2, MemOperand::absolute(self.head_ptr)); // head = next
        a.lg(R1, MemOperand::based(R2, 0)); // value
        a.label(&format!("{p}_empty"));
        if constrained {
            a.tend();
        }
    }

    /// Enqueue as a TL2 software-transaction body (node pre-initialized at
    /// R7, which the STM spills so an abort un-allocates nothing — the bump
    /// happens after commit).
    fn emit_enqueue_stm(&self, tx: &mut TxBody) {
        tx.asm().lghi(R2, self.tail_ptr as i64);
        tx.read(R3, R2); // tail
        tx.asm().la(R4, MemOperand::based(R3, 8));
        tx.write(R7, R4); // tail.next = node
        tx.write(R7, R2); // tail = node
    }

    /// Dequeue as a TL2 software-transaction body.
    fn emit_dequeue_stm(&self, tx: &mut TxBody, p: &str) {
        tx.asm().lghi(R2, self.head_ptr as i64);
        tx.read(R3, R2); // head
        tx.asm().la(R4, MemOperand::based(R3, 8));
        tx.read(R5, R4); // next = head.next
        tx.asm().cghi(R5, 0);
        tx.asm().jz(&format!("{p}_empty"));
        tx.write(R5, R2); // head = next
        tx.read(R3, R5); // value
        tx.asm().label(&format!("{p}_empty"));
    }

    /// Enqueue on the hybrid hardware fast path.
    fn emit_enqueue_htm(&self, h: &mut HtmBody) {
        h.asm().lghi(R2, self.tail_ptr as i64);
        h.read(R3, R2);
        h.asm().la(R4, MemOperand::based(R3, 8));
        h.write(R7, R4);
        h.write(R7, R2);
    }

    /// Dequeue on the hybrid hardware fast path.
    fn emit_dequeue_htm(&self, h: &mut HtmBody, p: &str) {
        h.asm().lghi(R2, self.head_ptr as i64);
        h.read(R3, R2);
        h.asm().la(R4, MemOperand::based(R3, 8));
        h.read(R5, R4);
        h.asm().cghi(R5, 0);
        h.asm().jz(&format!("{p}_empty"));
        h.write(R5, R2);
        h.read(R3, R5);
        h.asm().label(&format!("{p}_empty"));
    }

    fn emit_locked(&self, a: &mut Assembler, p: &str) {
        a.label(&format!("{p}_acq"));
        a.ltg(R1, MemOperand::absolute(self.lock));
        a.jz(&format!("{p}_try"));
        a.delay(24);
        a.j(&format!("{p}_acq"));
        a.label(&format!("{p}_try"));
        a.lghi(R2, 0);
        a.lghi(R3, 1);
        a.csg(R2, R3, MemOperand::absolute(self.lock));
        a.jnz(&format!("{p}_acq"));
        self.emit_ops(a, &format!("{p}_ops"), false);
        a.lghi(R2, 0);
        a.stg(R2, MemOperand::absolute(self.lock));
    }

    /// Builds the benchmark program.
    pub fn program(&self, ops_per_cpu: u64) -> Program {
        let mut a = Assembler::new(0);
        a.lghi(convention::OPS_LEFT, ops_per_cpu as i64);
        a.lghi(convention::OP_CYCLES, 0);
        a.lghi(convention::OPS_DONE, 0);
        a.label("op_loop");
        // Pre-initialize the node to enqueue (private memory, outside the
        // timed section and the transaction).
        a.rand_mod(R8, RegOrImm::Imm(1_000_000));
        a.stg(R8, MemOperand::based(R7, 0)); // value
        a.lghi(R2, 0);
        a.stg(R2, MemOperand::based(R7, 8)); // next = 0
        a.rdclk(convention::T_START);
        match self.method {
            QueueMethod::Lock => self.emit_locked(&mut a, "q"),
            QueueMethod::Tbeginc => self.emit_ops(&mut a, "q", true),
            QueueMethod::Elision => emit_tx_with_fallback(
                &mut a,
                "q",
                self.lock,
                6,
                |a| self.emit_ops(a, "q_ops", false),
                |a| self.emit_locked(a, "qfb"),
            ),
            QueueMethod::PureStm => {
                self.stm
                    .emit_tx(&mut a, "qe", &[], |tx| self.emit_enqueue_stm(tx));
                a.aghi(R7, 32); // bump allocator (after commit: it is certain)
                self.stm
                    .emit_tx(&mut a, "qd", &[], |tx| self.emit_dequeue_stm(tx, "qd_op"));
            }
            QueueMethod::HtmStmFallback => {
                self.stm.emit_hybrid_tx(
                    &mut a,
                    "he",
                    R9,
                    6,
                    &[],
                    |h| self.emit_enqueue_htm(h),
                    |tx| self.emit_enqueue_stm(tx),
                );
                a.aghi(R7, 32);
                self.stm.emit_hybrid_tx(
                    &mut a,
                    "hd",
                    R9,
                    6,
                    &[],
                    |h| self.emit_dequeue_htm(h, "hd_op"),
                    |tx| self.emit_dequeue_stm(tx, "hd_sop"),
                );
            }
        }
        a.rdclk(convention::T_END);
        a.sgr(convention::T_END, convention::T_START);
        a.agr(convention::OP_CYCLES, convention::T_END);
        a.aghi(convention::OPS_DONE, 1);
        a.brctg(convention::OPS_LEFT, "op_loop");
        a.halt();
        a.assemble().expect("queue workload assembles")
    }

    /// Seeds per-CPU arenas and runs the workload.
    pub fn run(&self, sys: &mut System, ops_per_cpu: u64) -> WorkloadReport {
        let prog = self.program(ops_per_cpu);
        sys.load_program_all(&prog);
        if matches!(
            self.method,
            QueueMethod::PureStm | QueueMethod::HtmStmFallback
        ) {
            self.stm.layout.install(sys);
        }
        for i in 0..sys.cpus() {
            let arena = self.arena_base + i as u64 * self.arena_size;
            sys.core_mut(i).set_gr(R7, arena);
        }
        sys.run_until_halt(2_000_000_000);
        WorkloadReport::collect(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ztm_sim::SystemConfig;

    #[test]
    fn seed_and_len() {
        let q = ConcurrentQueue::new(QueueMethod::Lock);
        let mut sys = System::new(SystemConfig::with_cpus(1));
        q.seed(&mut sys, 5);
        assert_eq!(q.len(&sys), 5);
        assert!(!q.is_empty(&sys));
    }

    #[test]
    fn locked_queue_preserves_length() {
        let q = ConcurrentQueue::new(QueueMethod::Lock);
        let mut sys = System::new(SystemConfig::with_cpus(4));
        q.seed(&mut sys, 16);
        let rep = q.run(&mut sys, 30);
        assert_eq!(rep.committed_ops(), 120);
        assert_eq!(q.len(&sys), 16, "enqueue+dequeue pairs keep length");
    }

    #[test]
    fn constrained_queue_preserves_length() {
        let q = ConcurrentQueue::new(QueueMethod::Tbeginc);
        let mut sys = System::new(SystemConfig::with_cpus(4));
        q.seed(&mut sys, 16);
        let rep = q.run(&mut sys, 30);
        assert_eq!(rep.committed_ops(), 120);
        assert_eq!(q.len(&sys), 16);
        assert_eq!(rep.system.tx.commits, 2 * 120, "two transactions per op");
    }

    #[test]
    fn elided_queue_preserves_length() {
        let q = ConcurrentQueue::new(QueueMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(4));
        q.seed(&mut sys, 16);
        let rep = q.run(&mut sys, 30);
        assert_eq!(rep.committed_ops(), 120);
        assert_eq!(q.len(&sys), 16);
        assert!(rep.system.tx.commits > 0, "most ops elide the lock");
    }

    #[test]
    fn purestm_queue_preserves_length() {
        let q = ConcurrentQueue::new(QueueMethod::PureStm);
        let mut sys = System::new(SystemConfig::with_cpus(4));
        q.seed(&mut sys, 16);
        let rep = q.run(&mut sys, 30);
        assert_eq!(rep.committed_ops(), 120);
        assert_eq!(q.len(&sys), 16);
        assert_eq!(
            rep.system.stm.commits,
            2 * 120,
            "two software transactions per op"
        );
    }

    #[test]
    fn hybrid_queue_preserves_length() {
        let q = ConcurrentQueue::new(QueueMethod::HtmStmFallback);
        let mut sys = System::new(SystemConfig::with_cpus(4));
        q.seed(&mut sys, 16);
        let rep = q.run(&mut sys, 30);
        assert_eq!(rep.committed_ops(), 120);
        assert_eq!(q.len(&sys), 16);
        assert_eq!(
            rep.system.tx.commits + rep.system.stm.commits,
            2 * 120,
            "each enqueue/dequeue commits once, in hardware or software"
        );
    }

    #[test]
    fn constrained_queue_beats_lock() {
        // The paper's E2 claim: ~2× over locks under contention.
        let run = |method| {
            let q = ConcurrentQueue::new(method);
            let mut sys = System::new(SystemConfig::with_cpus(8));
            q.seed(&mut sys, 64);
            q.run(&mut sys, 25).throughput()
        };
        let lock = run(QueueMethod::Lock);
        let tx = run(QueueMethod::Tbeginc);
        assert!(tx > lock, "tx {tx} vs lock {lock}");
    }
}
