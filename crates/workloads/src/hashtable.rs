//! The lock-elided hashtable of Fig 5(e).
//!
//! Models the IBM Testarossa JIT experiment: a `java/util/Hashtable`-style
//! chained hashtable whose single global lock ("synchronized") is elided
//! with transactions. Under the global lock, throughput is flat no matter
//! how many threads run; with elision it scales almost linearly (§IV).

use crate::harness::{convention, emit_tx_with_fallback, WorkloadReport};
use ztm_isa::{gr::*, Assembler, MemOperand, Program, RegOrImm};
use ztm_mem::Address;
use ztm_sim::System;
use ztm_stm::{HtmBody, Stm, StmLayout, TxBody};

/// Synchronization of the hashtable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableMethod {
    /// One global lock around every operation (`synchronized`).
    GlobalLock,
    /// Figure 1 lock elision: transactions that test the global lock, with
    /// the lock as fallback.
    Elision,
    /// Every operation is a TL2 software transaction ([`ztm_stm`]).
    PureStm,
    /// TBEGIN fast path subscribing to the TL2 stripe locks, falling back
    /// to the software path (not a global lock) after the retry budget.
    HtmStmFallback,
    /// No synchronization (upper bound; loses updates under contention).
    /// Also the purest view of raw instruction throughput — the measured-IPC
    /// headline comes from this row.
    Unsync,
}

/// A chained hashtable in simulated memory, operated on by generated
/// programs.
///
/// Layout: `buckets` head pointers (8 bytes each, packed 32 per cache
/// line) at `table_base`; nodes are 32-byte aligned records
/// `{key, value, next}`; each CPU allocates from its own arena with a bump
/// pointer in **R7** (transaction rollback automatically un-allocates, since
/// R7 is restored on abort).
#[derive(Debug, Clone)]
pub struct HashTable {
    /// Number of buckets (power of two).
    pub buckets: u64,
    /// Key space for random keys.
    pub key_space: u64,
    /// Percent of operations that are puts (rest are gets).
    pub put_percent: u64,
    method: TableMethod,
    table_base: u64,
    lock: u64,
    arena_base: u64,
    arena_size: u64,
    stm: Stm,
}

impl HashTable {
    /// Creates a table description.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two.
    pub fn new(buckets: u64, key_space: u64, put_percent: u64, method: TableMethod) -> Self {
        assert!(buckets.is_power_of_two(), "buckets must be a power of two");
        HashTable {
            buckets,
            key_space,
            put_percent,
            method,
            table_base: 0x1000_0000,
            lock: 0x0FFF_0000,
            arena_base: 0x2000_0000,
            arena_size: 0x10_0000,
            stm: Stm::new(),
        }
    }

    fn bucket_addr(&self, b: u64) -> u64 {
        self.table_base + b * 8
    }

    /// The STM layout behind the software-TM modes, for callers that drive
    /// `program()` manually and must `install` the layout themselves.
    pub fn stm_layout(&self) -> &StmLayout {
        &self.stm.layout
    }

    /// Pre-populates the table host-side with `keys.len()` entries (key →
    /// key*10), using a dedicated init arena.
    pub fn populate(&self, sys: &mut System, keys: &[u64]) {
        let mut node = self.arena_base - self.arena_size; // init arena below CPU 0's
        for &key in keys {
            let b = key & (self.buckets - 1);
            let head_addr = Address::new(self.bucket_addr(b));
            let old_head = sys.mem().load_u64(head_addr);
            let mem = sys.mem_mut();
            mem.store_u64(Address::new(node), key);
            mem.store_u64(Address::new(node + 8), key * 10);
            mem.store_u64(Address::new(node + 16), old_head);
            mem.store_u64(head_addr, node);
            node += 32;
        }
    }

    /// Host-side lookup (for verification).
    pub fn lookup(&self, sys: &System, key: u64) -> Option<u64> {
        let b = key & (self.buckets - 1);
        let mut node = sys.mem().load_u64(Address::new(self.bucket_addr(b)));
        while node != 0 {
            if sys.mem().load_u64(Address::new(node)) == key {
                return Some(sys.mem().load_u64(Address::new(node + 8)));
            }
            node = sys.mem().load_u64(Address::new(node + 16));
        }
        None
    }

    /// Total entries reachable from the buckets (host-side).
    pub fn len(&self, sys: &System) -> u64 {
        let mut n = 0;
        for b in 0..self.buckets {
            let mut node = sys.mem().load_u64(Address::new(self.bucket_addr(b)));
            while node != 0 {
                n += 1;
                node = sys.mem().load_u64(Address::new(node + 16));
            }
        }
        n
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self, sys: &System) -> bool {
        self.len(sys) == 0
    }

    /// Emits the hashtable operation (get or put based on R9) with a unique
    /// label `p`refix. Expects the key in R8, the put-value in R9's low
    /// bits reused, and the per-CPU bump pointer in R7.
    fn emit_op(&self, a: &mut Assembler, p: &str) {
        // R5 = &bucket_head
        a.lgr(R5, R8);
        a.lghi(R4, (self.buckets - 1) as i64);
        a.ngr(R5, R4);
        a.sllg(R5, R5, 3);
        a.aghi(R5, self.table_base as i64);
        a.lg(R3, MemOperand::based(R5, 0)); // head
        a.label(&format!("{p}_walk"));
        a.cghi(R3, 0);
        a.jz(&format!("{p}_miss"));
        a.lg(R2, MemOperand::based(R3, 0)); // node.key
        a.cgr(R2, R8);
        a.jz(&format!("{p}_hit"));
        a.lg(R3, MemOperand::based(R3, 16)); // next
        a.j(&format!("{p}_walk"));
        a.label(&format!("{p}_hit"));
        // Put updates in place; get loads the value.
        a.cghi(R9, 0);
        a.jnz(&format!("{p}_hit_put"));
        a.lg(R2, MemOperand::based(R3, 8));
        a.j(&format!("{p}_done"));
        a.label(&format!("{p}_hit_put"));
        a.stg(R8, MemOperand::based(R3, 8)); // value := key (arbitrary)
        a.j(&format!("{p}_done"));
        a.label(&format!("{p}_miss"));
        a.cghi(R9, 0);
        a.jz(&format!("{p}_done")); // get miss: nothing to do
                                    // Put miss: allocate node from the bump arena and link at head.
        a.stg(R8, MemOperand::based(R7, 0)); // key
        a.stg(R8, MemOperand::based(R7, 8)); // value
        a.lg(R2, MemOperand::based(R5, 0)); // old head
        a.stg(R2, MemOperand::based(R7, 16)); // next
        a.stg(R7, MemOperand::based(R5, 0)); // head = node
        a.aghi(R7, 32);
        a.label(&format!("{p}_done"));
    }

    /// The hashtable operation as a TL2 software-transaction body: shared
    /// reads and writes go through the STM's read/write sets; node-field
    /// initialization in the private arena stays plain (the head link that
    /// publishes the node is transactional, so un-published fields are
    /// invisible; R7 is spilled, so an abort un-allocates).
    fn emit_op_stm(&self, tx: &mut TxBody, p: &str) {
        {
            let a = tx.asm();
            a.lgr(R5, R8); // R5 = &bucket_head
            a.lghi(R4, (self.buckets - 1) as i64);
            a.ngr(R5, R4);
            a.sllg(R5, R5, 3);
            a.aghi(R5, self.table_base as i64);
        }
        tx.read(R3, R5); // head
        tx.asm().label(&format!("{p}_walk"));
        tx.asm().cghi(R3, 0);
        tx.asm().jz(&format!("{p}_miss"));
        tx.read(R2, R3); // node.key
        tx.asm().cgr(R2, R8);
        tx.asm().jz(&format!("{p}_hit"));
        tx.asm().la(R4, MemOperand::based(R3, 16));
        tx.read(R3, R4); // next
        tx.asm().j(&format!("{p}_walk"));
        tx.asm().label(&format!("{p}_hit"));
        tx.asm().cghi(R9, 0);
        tx.asm().jnz(&format!("{p}_hit_put"));
        tx.asm().la(R4, MemOperand::based(R3, 8));
        tx.read(R2, R4); // value
        tx.asm().j(&format!("{p}_done"));
        tx.asm().label(&format!("{p}_hit_put"));
        tx.asm().la(R4, MemOperand::based(R3, 8));
        tx.write(R8, R4); // value := key (arbitrary)
        tx.asm().j(&format!("{p}_done"));
        tx.asm().label(&format!("{p}_miss"));
        tx.asm().cghi(R9, 0);
        tx.asm().jz(&format!("{p}_done")); // get miss: nothing to do
        tx.asm().stg(R8, MemOperand::based(R7, 0)); // key (private)
        tx.asm().stg(R8, MemOperand::based(R7, 8)); // value (private)
        tx.read(R2, R5); // old head
        tx.asm().stg(R2, MemOperand::based(R7, 16)); // next (private)
        tx.write(R7, R5); // head = node
        tx.asm().aghi(R7, 32);
        tx.asm().label(&format!("{p}_done"));
    }

    /// The same operation for the hybrid hardware fast path: every shared
    /// access subscribes to its stripe, writes publish stripe versions.
    fn emit_op_htm(&self, h: &mut HtmBody, p: &str) {
        {
            let a = h.asm();
            a.lgr(R5, R8);
            a.lghi(R4, (self.buckets - 1) as i64);
            a.ngr(R5, R4);
            a.sllg(R5, R5, 3);
            a.aghi(R5, self.table_base as i64);
        }
        h.read(R3, R5); // head
        h.asm().label(&format!("{p}_walk"));
        h.asm().cghi(R3, 0);
        h.asm().jz(&format!("{p}_miss"));
        h.read(R2, R3); // node.key
        h.asm().cgr(R2, R8);
        h.asm().jz(&format!("{p}_hit"));
        h.asm().la(R4, MemOperand::based(R3, 16));
        h.read(R3, R4); // next
        h.asm().j(&format!("{p}_walk"));
        h.asm().label(&format!("{p}_hit"));
        h.asm().cghi(R9, 0);
        h.asm().jnz(&format!("{p}_hit_put"));
        h.asm().la(R4, MemOperand::based(R3, 8));
        h.read(R2, R4);
        h.asm().j(&format!("{p}_done"));
        h.asm().label(&format!("{p}_hit_put"));
        h.asm().la(R4, MemOperand::based(R3, 8));
        h.write(R8, R4);
        h.asm().j(&format!("{p}_done"));
        h.asm().label(&format!("{p}_miss"));
        h.asm().cghi(R9, 0);
        h.asm().jz(&format!("{p}_done"));
        h.asm().stg(R8, MemOperand::based(R7, 0));
        h.asm().stg(R8, MemOperand::based(R7, 8));
        h.read(R2, R5);
        h.asm().stg(R2, MemOperand::based(R7, 16));
        h.write(R7, R5);
        h.asm().aghi(R7, 32);
        h.asm().label(&format!("{p}_done"));
    }

    fn emit_locked(&self, a: &mut Assembler, p: &str) {
        a.label(&format!("{p}_acq"));
        a.ltg(R1, MemOperand::absolute(self.lock));
        a.jz(&format!("{p}_try"));
        a.delay(24);
        a.j(&format!("{p}_acq"));
        a.label(&format!("{p}_try"));
        a.lghi(R2, 0);
        a.lghi(R3, 1);
        a.csg(R2, R3, MemOperand::absolute(self.lock));
        a.jnz(&format!("{p}_acq"));
        self.emit_op(a, &format!("{p}_op"));
        a.lghi(R2, 0);
        a.stg(R2, MemOperand::absolute(self.lock));
    }

    /// Builds the benchmark program.
    pub fn program(&self, ops_per_cpu: u64) -> Program {
        let mut a = Assembler::new(0);
        a.lghi(convention::OPS_LEFT, ops_per_cpu as i64);
        a.lghi(convention::OP_CYCLES, 0);
        a.lghi(convention::OPS_DONE, 0);
        a.label("op_loop");
        a.rand_mod(R8, RegOrImm::Imm(self.key_space)); // key
        a.rand_mod(R9, RegOrImm::Imm(100)); // op selector
        a.cgij_lt(R9, self.put_percent as i64, "is_put");
        a.lghi(R9, 0); // get
        a.j("selected");
        a.label("is_put");
        a.lghi(R9, 1);
        a.label("selected");
        a.rdclk(convention::T_START);
        match self.method {
            TableMethod::GlobalLock => self.emit_locked(&mut a, "gl"),
            TableMethod::Unsync => self.emit_op(&mut a, "un"),
            TableMethod::Elision => emit_tx_with_fallback(
                &mut a,
                "tx",
                self.lock,
                6,
                |a| self.emit_op(a, "tx_op"),
                |a| self.emit_locked(a, "fb"),
            ),
            TableMethod::PureStm => {
                self.stm
                    .emit_tx(&mut a, "st", &[R7], |tx| self.emit_op_stm(tx, "st_op"));
            }
            TableMethod::HtmStmFallback => {
                self.stm.emit_hybrid_tx(
                    &mut a,
                    "hy",
                    R10,
                    6,
                    &[R7],
                    |h| self.emit_op_htm(h, "hy_op"),
                    |tx| self.emit_op_stm(tx, "hy_sop"),
                );
            }
        }
        a.rdclk(convention::T_END);
        a.sgr(convention::T_END, convention::T_START);
        a.agr(convention::OP_CYCLES, convention::T_END);
        a.aghi(convention::OPS_DONE, 1);
        a.brctg(convention::OPS_LEFT, "op_loop");
        a.halt();
        a.assemble().expect("hashtable workload assembles")
    }

    /// Loads programs, seeds the per-CPU arenas (bump pointer in R7), runs,
    /// and collects measurements.
    pub fn run(&self, sys: &mut System, ops_per_cpu: u64) -> WorkloadReport {
        let prog = self.program(ops_per_cpu);
        sys.load_program_all(&prog);
        if matches!(
            self.method,
            TableMethod::PureStm | TableMethod::HtmStmFallback
        ) {
            self.stm.layout.install(sys);
        }
        for i in 0..sys.cpus() {
            let arena = self.arena_base + i as u64 * self.arena_size;
            sys.core_mut(i).set_gr(R7, arena);
        }
        sys.run_until_halt(2_000_000_000);
        WorkloadReport::collect(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ztm_sim::SystemConfig;

    fn table(method: TableMethod) -> HashTable {
        HashTable::new(256, 1024, 20, method)
    }

    #[test]
    fn populate_and_host_lookup() {
        let t = table(TableMethod::GlobalLock);
        let mut sys = System::new(SystemConfig::with_cpus(1));
        t.populate(&mut sys, &[1, 2, 257]); // 1 and 257 collide (256 buckets)
        assert_eq!(t.lookup(&sys, 1), Some(10));
        assert_eq!(t.lookup(&sys, 257), Some(2570));
        assert_eq!(t.lookup(&sys, 3), None);
        assert_eq!(t.len(&sys), 3);
        assert!(!t.is_empty(&sys));
    }

    #[test]
    fn locked_table_stays_consistent() {
        let t = table(TableMethod::GlobalLock);
        let mut sys = System::new(SystemConfig::with_cpus(4));
        t.populate(&mut sys, &(0..128).collect::<Vec<_>>());
        let rep = t.run(&mut sys, 40);
        assert_eq!(rep.committed_ops(), 160);
        // Every key reachable exactly once: walk finds no duplicates.
        let len = t.len(&sys);
        assert!(len >= 128, "puts only add");
        assert!(len <= 128 + 160);
    }

    #[test]
    fn unsync_table_works_single_threaded() {
        // With one CPU there is nothing to race with; the unsynchronized
        // upper-bound row must behave exactly like a plain hashtable.
        let t = table(TableMethod::Unsync);
        let mut sys = System::new(SystemConfig::with_cpus(1));
        t.populate(&mut sys, &(0..128).collect::<Vec<_>>());
        let rep = t.run(&mut sys, 40);
        assert_eq!(rep.committed_ops(), 40);
        assert!((128..=128 + 40).contains(&t.len(&sys)));
    }

    fn assert_no_duplicate_keys(t: &HashTable, sys: &System) {
        for key in 0..64 {
            let b = key & (t.buckets - 1);
            let mut node = sys.mem().load_u64(Address::new(t.bucket_addr(b)));
            let mut seen = 0;
            while node != 0 {
                if sys.mem().load_u64(Address::new(node)) == key {
                    seen += 1;
                }
                node = sys.mem().load_u64(Address::new(node + 16));
            }
            assert!(seen <= 1, "key {key} inserted {seen} times");
        }
    }

    #[test]
    fn purestm_table_stays_consistent() {
        let t = table(TableMethod::PureStm);
        let mut sys = System::new(SystemConfig::with_cpus(4));
        t.populate(&mut sys, &(0..128).collect::<Vec<_>>());
        let rep = t.run(&mut sys, 40);
        assert_eq!(rep.committed_ops(), 160);
        assert!((128..=128 + 160).contains(&t.len(&sys)));
        assert_eq!(rep.system.stm.commits, 160, "every op is a software tx");
        assert_no_duplicate_keys(&t, &sys);
        // The stripe table is fully released after the run.
        for s in 0..t.stm.layout.stripes {
            let lw = sys
                .mem()
                .load_u64(Address::new(t.stm.layout.stripe_lock_addr(s * 8)));
            assert_eq!(lw >> 63, 0, "stripe {s} left locked");
        }
    }

    #[test]
    fn hybrid_table_stays_consistent() {
        let t = table(TableMethod::HtmStmFallback);
        let mut sys = System::new(SystemConfig::with_cpus(4));
        t.populate(&mut sys, &(0..128).collect::<Vec<_>>());
        let rep = t.run(&mut sys, 40);
        assert_eq!(rep.committed_ops(), 160);
        assert!((128..=128 + 160).contains(&t.len(&sys)));
        assert!(rep.system.tx.commits > 0, "fast path engages");
        assert_eq!(
            rep.system.tx.commits + rep.system.stm.commits,
            160,
            "each op commits exactly once, in hardware or software"
        );
        assert_no_duplicate_keys(&t, &sys);
    }

    #[test]
    fn elided_table_stays_consistent() {
        let t = table(TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(4));
        t.populate(&mut sys, &(0..128).collect::<Vec<_>>());
        let rep = t.run(&mut sys, 40);
        assert_eq!(rep.committed_ops(), 160);
        let len = t.len(&sys);
        assert!((128..=128 + 160).contains(&len));
        assert!(rep.system.tx.commits > 0, "most ops elide the lock");
        // No duplicate keys: a put that saw a concurrent insert must have
        // been serialized by the transaction.
        assert_no_duplicate_keys(&t, &sys);
    }
}
