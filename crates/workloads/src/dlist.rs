//! Doubly-linked-list insert/delete under constrained transactions.
//!
//! §II.D motivates the constrained-transaction limits with exactly this
//! operation: "the constraints are chosen such that many common operations
//! like double-linked list-insert/delete operations can be performed".
//! An insert touches the new node and its two neighbors; a delete touches
//! the node and its two neighbors — at most 3–4 aligned octowords, within
//! the 4-octoword budget, in ≤ 32 straight-line instructions.

use crate::harness::{convention, WorkloadReport};
use ztm_core::GrSaveMask;
use ztm_isa::{gr::*, Assembler, MemOperand, Program};
use ztm_mem::Address;
use ztm_sim::System;

/// Synchronization for the list operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ListMethod {
    /// One global lock around each insert/delete pair.
    Lock,
    /// Each insert and each delete is one constrained transaction.
    Tbeginc,
}

/// A circular doubly-linked list with a fixed anchor node. Nodes are
/// 32-byte aligned records `{prev, next, value}` (one octoword each), so
/// every insert/delete fits the constrained footprint budget.
///
/// Each benchmark operation inserts a fresh node right after the anchor and
/// then deletes the node right after the anchor — under contention these
/// are different nodes, exercising real neighbor updates.
#[derive(Debug, Clone)]
pub struct DoublyLinkedList {
    method: ListMethod,
    anchor: u64,
    lock: u64,
    arena_base: u64,
    arena_size: u64,
}

impl DoublyLinkedList {
    /// Creates the list description.
    pub fn new(method: ListMethod) -> Self {
        DoublyLinkedList {
            method,
            anchor: 0x4000_0000,
            lock: 0x4000_0100,
            arena_base: 0x4100_0000,
            arena_size: 0x10_0000,
        }
    }

    /// Seeds the circular list host-side with `n` nodes after the anchor.
    pub fn seed(&self, sys: &mut System, n: u64) {
        let mem = sys.mem_mut();
        // The anchor is its own node; start self-linked.
        mem.store_u64(Address::new(self.anchor), self.anchor); // prev
        mem.store_u64(Address::new(self.anchor + 8), self.anchor); // next
        let mut pred = self.anchor;
        for i in 0..n {
            let node = self.arena_base - self.arena_size + 32 * i;
            mem.store_u64(Address::new(node), pred); // prev
            mem.store_u64(Address::new(node + 8), self.anchor); // next
            mem.store_u64(Address::new(node + 16), i); // value
            mem.store_u64(Address::new(pred + 8), node);
            mem.store_u64(Address::new(self.anchor), node);
            pred = node;
        }
    }

    /// Walks the list host-side, checking both directions agree; returns
    /// the element count (excluding the anchor).
    ///
    /// # Panics
    ///
    /// Panics if the forward and backward links disagree (corruption).
    pub fn len_checked(&self, sys: &System) -> u64 {
        let mut n = 0;
        let mut node = sys.mem().load_u64(Address::new(self.anchor + 8));
        let mut prev = self.anchor;
        while node != self.anchor {
            assert_eq!(
                sys.mem().load_u64(Address::new(node)),
                prev,
                "prev link of {node:#x} is broken"
            );
            prev = node;
            node = sys.mem().load_u64(Address::new(node + 8));
            n += 1;
            assert!(n < 1_000_000, "list does not cycle back to the anchor");
        }
        assert_eq!(
            sys.mem().load_u64(Address::new(self.anchor)),
            prev,
            "anchor prev must point at the tail"
        );
        n
    }

    /// Emits insert-after-anchor of the node at R7. Constrained: touches
    /// the anchor, the old first node, and the new node = 3 octowords.
    fn emit_insert(&self, a: &mut Assembler, constrained: bool) {
        if constrained {
            a.tbeginc(GrSaveMask::ALL);
        }
        a.lg(R3, MemOperand::absolute(self.anchor + 8)); // succ = anchor.next
        a.stg(R3, MemOperand::based(R7, 8)); // node.next = succ
        a.lghi(R2, self.anchor as i64);
        a.stg(R2, MemOperand::based(R7, 0)); // node.prev = anchor
        a.stg(R7, MemOperand::absolute(self.anchor + 8)); // anchor.next = node
        a.stg(R7, MemOperand::based(R3, 0)); // succ.prev = node
        if constrained {
            a.tend();
        }
    }

    /// Emits delete of the node right after the anchor (if non-empty).
    /// Touches the anchor, the victim, and its successor = 3 octowords.
    fn emit_delete(&self, a: &mut Assembler, constrained: bool, p: &str) {
        if constrained {
            a.tbeginc(GrSaveMask::ALL);
        }
        a.lg(R3, MemOperand::absolute(self.anchor + 8)); // victim
        a.cghi(R3, self.anchor as i64);
        a.jz(&format!("{p}_empty")); // forward branch
        a.lg(R4, MemOperand::based(R3, 8)); // succ = victim.next
        a.stg(R4, MemOperand::absolute(self.anchor + 8)); // anchor.next = succ
        a.lghi(R2, self.anchor as i64);
        a.stg(R2, MemOperand::based(R4, 0)); // succ.prev = anchor
        a.label(&format!("{p}_empty"));
        if constrained {
            a.tend();
        }
    }

    fn emit_locked(&self, a: &mut Assembler) {
        a.label("dl_acq");
        a.ltg(R1, MemOperand::absolute(self.lock));
        a.jz("dl_try");
        a.delay(24);
        a.j("dl_acq");
        a.label("dl_try");
        a.lghi(R2, 0);
        a.lghi(R3, 1);
        a.csg(R2, R3, MemOperand::absolute(self.lock));
        a.jnz("dl_acq");
        self.emit_insert(a, false);
        self.emit_delete(a, false, "dl_ops");
        a.lghi(R2, 0);
        a.stg(R2, MemOperand::absolute(self.lock));
    }

    /// Builds the benchmark program (one insert + one delete per op).
    pub fn program(&self, ops_per_cpu: u64) -> Program {
        let mut a = Assembler::new(0);
        a.lghi(convention::OPS_LEFT, ops_per_cpu as i64);
        a.lghi(convention::OP_CYCLES, 0);
        a.lghi(convention::OPS_DONE, 0);
        a.label("op_loop");
        // Pre-initialize the node to insert (private memory).
        a.lghi(R2, 0x77);
        a.stg(R2, MemOperand::based(R7, 16)); // value
        a.rdclk(convention::T_START);
        match self.method {
            ListMethod::Lock => self.emit_locked(&mut a),
            ListMethod::Tbeginc => {
                self.emit_insert(&mut a, true);
                self.emit_delete(&mut a, true, "c_ops");
            }
        }
        a.rdclk(convention::T_END);
        a.sgr(convention::T_END, convention::T_START);
        a.agr(convention::OP_CYCLES, convention::T_END);
        a.aghi(R7, 32); // bump allocator (node is now owned by the list)
        a.aghi(convention::OPS_DONE, 1);
        a.brctg(convention::OPS_LEFT, "op_loop");
        a.halt();
        a.assemble().expect("dlist workload assembles")
    }

    /// Seeds per-CPU arenas and runs the workload.
    pub fn run(&self, sys: &mut System, ops_per_cpu: u64) -> WorkloadReport {
        let prog = self.program(ops_per_cpu);
        sys.load_program_all(&prog);
        for i in 0..sys.cpus() {
            let arena = self.arena_base + i as u64 * self.arena_size;
            sys.core_mut(i).set_gr(R7, arena);
        }
        sys.run_until_halt(2_000_000_000);
        WorkloadReport::collect(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ztm_sim::SystemConfig;

    #[test]
    fn seed_and_walk() {
        let l = DoublyLinkedList::new(ListMethod::Lock);
        let mut sys = System::new(SystemConfig::with_cpus(1));
        l.seed(&mut sys, 5);
        assert_eq!(l.len_checked(&sys), 5);
    }

    #[test]
    fn locked_list_stays_linked() {
        let l = DoublyLinkedList::new(ListMethod::Lock);
        let mut sys = System::new(SystemConfig::with_cpus(4));
        l.seed(&mut sys, 8);
        let rep = l.run(&mut sys, 30);
        assert_eq!(rep.committed_ops(), 120);
        assert_eq!(l.len_checked(&sys), 8, "insert+delete pairs keep length");
    }

    #[test]
    fn constrained_list_stays_linked_under_contention() {
        let l = DoublyLinkedList::new(ListMethod::Tbeginc);
        let mut sys = System::new(SystemConfig::with_cpus(6));
        l.seed(&mut sys, 8);
        let rep = l.run(&mut sys, 30);
        assert_eq!(rep.committed_ops(), 180);
        assert_eq!(l.len_checked(&sys), 8);
        assert_eq!(
            rep.system.tx.commits,
            2 * 180,
            "one constrained transaction per insert and per delete"
        );
    }

    #[test]
    fn constrained_list_never_violates_constraints() {
        // The whole point of §II.D's budget: these operations must fit.
        let l = DoublyLinkedList::new(ListMethod::Tbeginc);
        let mut sys = System::new(SystemConfig::with_cpus(2));
        l.seed(&mut sys, 4);
        let rep = l.run(&mut sys, 50);
        assert!(
            !rep.system.tx.aborts_by_code.contains_key(&4),
            "no constraint-violation interruptions: {:?}",
            rep.system.tx.aborts_by_code
        );
        for cpu in 0..2 {
            assert!(sys.core(cpu).is_running() || sys.core(cpu).instructions > 0);
        }
        assert_eq!(l.len_checked(&sys), 4);
    }
}
