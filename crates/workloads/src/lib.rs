//! The §IV microbenchmark workloads and lock implementations of the paper,
//! as generated programs for the ztm simulator.
//!
//! * [`pool`] — the variable-pool update benchmark behind Fig 5(a)–(c) and
//!   the uncontended comparison: coarse/fine locks, Figure 1 TBEGIN with
//!   fallback, Figure 3 TBEGINC, and unsynchronized.
//! * [`rwlock`] — the read-dominated workload of Fig 5(d): counting
//!   read-write lock vs constrained transactions.
//! * [`hashtable`] — the lock-elided hashtable of Fig 5(e).
//! * [`queue`] — the `ConcurrentLinkedQueue`-style experiment (constrained
//!   transactions ≈ 2× locks).
//! * [`dlist`] — doubly-linked-list insert/delete, §II.D's canonical
//!   constrained operation (3 octowords per op).
//! * [`bank`] — bank transfers with a money-conservation invariant (the
//!   classic TM consistency stress).
//! * [`harness`] — measurement conventions (per-op timing with RDCLK,
//!   throughput = CPUs / avg-time-per-update, normalization).

pub mod bank;
pub mod dlist;
pub mod harness;
pub mod hashtable;
pub mod pool;
pub mod queue;
pub mod rwlock;

pub use bank::{Bank, BankMethod};
pub use dlist::{DoublyLinkedList, ListMethod};
pub use harness::{CpuMeasurement, WorkloadReport};
pub use hashtable::{HashTable, TableMethod};
pub use pool::{PoolLayout, PoolWorkload, SyncMethod};
pub use queue::{ConcurrentQueue, QueueMethod};
pub use rwlock::{ReadMethod, ReadWorkload};
