//! The paper's §IV variable-pool microbenchmark.
//!
//! Each CPU repeatedly picks 1 or 4 random variables from a pool (each
//! variable on its own 256-byte cache line) and increments them, protected
//! by one of the [`SyncMethod`]s: a single coarse lock, per-variable fine
//! locks, non-constrained transactions with the Figure 1 retry/fallback
//! structure, constrained transactions (Figure 3), or nothing at all.

use crate::harness::{convention, emit_tx_with_fallback, WorkloadReport};
use ztm_core::GrSaveMask;
use ztm_isa::{gr::*, Assembler, MemOperand, Program, Reg, RegOrImm};
use ztm_sim::System;

/// Memory layout of the pool benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolLayout {
    /// Number of variables in the pool (1 … 10_000 in the paper).
    pub pool_size: u64,
    /// Variables updated per operation (1 or 4 in the paper).
    pub vars_per_op: usize,
    /// Base address of the pool (one variable per 256-byte line).
    pub pool_base: u64,
    /// Address of the single coarse-grained lock.
    pub coarse_lock: u64,
    /// Base address of the per-variable fine-grained locks (each on its own
    /// line, as in §IV).
    pub fine_locks_base: u64,
}

impl PoolLayout {
    /// A standard layout for the given pool size and variables per op.
    ///
    /// # Panics
    ///
    /// Panics if `pool_size` is 0 or `vars_per_op` is not 1–4.
    pub fn new(pool_size: u64, vars_per_op: usize) -> Self {
        assert!(pool_size > 0, "pool must have at least one variable");
        assert!((1..=4).contains(&vars_per_op), "1 to 4 variables per op");
        PoolLayout {
            pool_size,
            vars_per_op,
            pool_base: 0x0100_0000,
            coarse_lock: 0x0080_0000,
            fine_locks_base: 0x0800_0000,
        }
    }

    /// Address of pool variable `i`.
    pub fn var_addr(&self, i: u64) -> u64 {
        self.pool_base + i * 256
    }

    /// Address of the fine-grained lock guarding variable `i`.
    pub fn fine_lock_addr(&self, i: u64) -> u64 {
        self.fine_locks_base + i * 256
    }
}

/// The concurrency-control method under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncMethod {
    /// One lock for the whole pool.
    CoarseLock,
    /// One lock per variable (single-variable operations only — the paper
    /// uses fine locks only in Fig 5(b), sidestepping lock ordering).
    FineLock,
    /// Figure 1: TBEGIN with lock test, retry threshold 6, PPA back-off,
    /// and a coarse-lock fallback path.
    Tbegin,
    /// Figure 3: TBEGINC, no fallback path needed.
    Tbeginc,
    /// No synchronization (upper bound; loses updates under contention).
    None,
}

/// Registers holding the (scaled) variable addresses for one operation.
const ADDR_REGS: [Reg; 4] = [R8, R9, R10, R11];

/// The pool-update workload generator.
#[derive(Debug, Clone)]
pub struct PoolWorkload {
    layout: PoolLayout,
    method: SyncMethod,
    /// Whether operations read the variables instead of incrementing them
    /// (Fig 5(d) read workload).
    read_only: bool,
}

impl PoolWorkload {
    /// Creates a workload. `_seed` is reserved for layout randomization and
    /// currently unused (per-CPU randomness comes from the system's seeded
    /// RNG streams).
    pub fn new(layout: PoolLayout, method: SyncMethod, _seed: u64) -> Self {
        PoolWorkload {
            layout,
            method,
            read_only: false,
        }
    }

    /// Switches the operation from increment to read-only (Fig 5(d)).
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    /// The layout in use.
    pub fn layout(&self) -> &PoolLayout {
        &self.layout
    }

    /// Emits the per-variable update (or read) body given address registers.
    fn emit_body(&self, a: &mut Assembler) {
        for &r in &ADDR_REGS[..self.layout.vars_per_op] {
            if self.read_only {
                a.lg(R2, MemOperand::based(r, 0));
            } else {
                a.lg(R2, MemOperand::based(r, 0));
                a.aghi(R2, 1);
                a.stg(R2, MemOperand::based(r, 0));
            }
        }
    }

    /// Emits a coarse-lock acquire/critical-section/release with unique
    /// label `prefix`.
    fn emit_locked_section(&self, a: &mut Assembler, lock: u64, prefix: &str) {
        let acquire = format!("{prefix}_acquire");
        let try_ = format!("{prefix}_try");
        a.label(&acquire);
        a.ltg(R1, MemOperand::absolute(lock));
        a.jz(&try_);
        // Bounded pause before re-probing (cuts coherence traffic).
        a.delay(24);
        a.j(&acquire);
        a.label(&try_);
        a.lghi(R2, 0);
        a.lghi(R3, 1);
        a.csg(R2, R3, MemOperand::absolute(lock));
        a.jnz(&acquire);
        self.emit_body(a);
        a.lghi(R2, 0);
        a.stg(R2, MemOperand::absolute(lock));
    }

    /// Builds the benchmark program executing `ops_per_cpu` operations.
    pub fn program(&self, ops_per_cpu: u64) -> Program {
        let l = &self.layout;
        let mut a = Assembler::new(0);
        a.lghi(convention::OPS_LEFT, ops_per_cpu as i64);
        a.lghi(convention::OP_CYCLES, 0);
        a.lghi(convention::OPS_DONE, 0);
        a.label("op_loop");

        // Pick random distinct-ish variables and compute their addresses.
        // With a pool of 1 variable and 4 vars per op, the paper uses 4
        // consecutive cache lines.
        for (k, &r) in ADDR_REGS[..l.vars_per_op].iter().enumerate() {
            if l.pool_size == 1 {
                a.lghi(r, (l.var_addr(0) + k as u64 * 256) as i64);
            } else {
                a.rand_mod(r, RegOrImm::Imm(l.pool_size));
                if self.method == SyncMethod::FineLock {
                    // Keep the raw index for the lock address.
                    a.lgr(R5, r);
                }
                a.sllg(r, r, 8);
                a.aghi(r, l.pool_base as i64);
            }
        }

        a.rdclk(convention::T_START);
        match self.method {
            SyncMethod::None => self.emit_body(&mut a),
            SyncMethod::CoarseLock => {
                self.emit_locked_section(&mut a, l.coarse_lock, "c");
            }
            SyncMethod::FineLock => {
                assert_eq!(
                    l.vars_per_op, 1,
                    "fine-grained locking is defined for single-variable ops"
                );
                // Lock address = fine_locks_base + idx*256 (idx in R5; for
                // pool of 1 the index is 0).
                if l.pool_size == 1 {
                    a.lghi(R5, 0);
                }
                a.sllg(R5, R5, 8);
                a.aghi(R5, l.fine_locks_base as i64);
                a.label("f_acquire");
                a.ltg(R1, MemOperand::based(R5, 0));
                a.jz("f_try");
                a.delay(24);
                a.j("f_acquire");
                a.label("f_try");
                a.lghi(R2, 0);
                a.lghi(R3, 1);
                a.csg(R2, R3, MemOperand::based(R5, 0));
                a.jnz("f_acquire");
                self.emit_body(&mut a);
                a.lghi(R2, 0);
                a.stg(R2, MemOperand::based(R5, 0));
            }
            SyncMethod::Tbegin => {
                // Figure 1 (see `emit_tx_with_fallback`).
                emit_tx_with_fallback(
                    &mut a,
                    "tx",
                    l.coarse_lock,
                    6,
                    |a| self.emit_body(a),
                    |a| self.emit_locked_section(a, l.coarse_lock, "fb"),
                );
            }
            SyncMethod::Tbeginc => {
                // Figure 3: no lock test, no fallback path (assuming no
                // lock-based code is mixed in, as the paper notes).
                a.tbeginc(GrSaveMask::ALL);
                self.emit_body(&mut a);
                a.tend();
            }
        }
        a.rdclk(convention::T_END);
        a.sgr(convention::T_END, convention::T_START);
        a.agr(convention::OP_CYCLES, convention::T_END);
        a.aghi(convention::OPS_DONE, 1);
        a.brctg(convention::OPS_LEFT, "op_loop");
        a.halt();
        a.assemble().expect("pool workload assembles")
    }

    /// Loads the program onto every CPU of `sys`, runs to completion, and
    /// collects the measurements.
    pub fn run(&self, sys: &mut System, ops_per_cpu: u64) -> WorkloadReport {
        let prog = self.program(ops_per_cpu);
        sys.load_program_all(&prog);
        // Generous step bound: contention can stretch runs by orders of
        // magnitude.
        let bound = 2_000_000_000;
        sys.run_until_halt(bound);
        WorkloadReport::collect(sys)
    }

    /// Sum of all pool variables (to check update counts).
    pub fn pool_sum(&self, sys: &System) -> u64 {
        (0..self.layout.pool_size)
            .map(|i| {
                sys.mem()
                    .load_u64(ztm_mem::Address::new(self.layout.var_addr(i)))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ztm_sim::SystemConfig;

    fn run(
        method: SyncMethod,
        cpus: usize,
        pool: u64,
        vars: usize,
        ops: u64,
    ) -> (WorkloadReport, u64) {
        let wl = PoolWorkload::new(PoolLayout::new(pool, vars), method, 0);
        let mut sys = System::new(SystemConfig::with_cpus(cpus));
        let rep = wl.run(&mut sys, ops);
        let sum = wl.pool_sum(&sys);
        (rep, sum)
    }

    #[test]
    fn coarse_lock_never_loses_updates() {
        let (rep, sum) = run(SyncMethod::CoarseLock, 4, 8, 1, 25);
        assert_eq!(sum, 4 * 25);
        assert_eq!(rep.committed_ops(), 100);
        assert!(rep.avg_op_cycles() > 0.0);
    }

    #[test]
    fn fine_lock_never_loses_updates() {
        let (_, sum) = run(SyncMethod::FineLock, 4, 8, 1, 25);
        assert_eq!(sum, 4 * 25);
    }

    #[test]
    fn tbegin_never_loses_updates() {
        let (rep, sum) = run(SyncMethod::Tbegin, 4, 4, 1, 25);
        assert_eq!(sum, 4 * 25, "transactions + fallback must not lose updates");
        assert_eq!(rep.committed_ops(), 100);
    }

    #[test]
    fn tbegin_four_vars_pool() {
        let (rep, sum) = run(SyncMethod::Tbegin, 3, 16, 4, 20);
        assert_eq!(sum, 3 * 20 * 4);
        assert!(rep.system.tx.commits + rep.system.tx.aborts >= 60);
    }

    #[test]
    fn tbeginc_never_loses_updates() {
        let (_, sum) = run(SyncMethod::Tbeginc, 4, 4, 1, 25);
        assert_eq!(sum, 4 * 25);
    }

    #[test]
    fn tbeginc_four_vars_respects_constraints() {
        // 4 lines = 4 octowords: exactly the constrained limit (§II.D).
        let (rep, sum) = run(SyncMethod::Tbeginc, 2, 8, 4, 20);
        assert_eq!(sum, 2 * 20 * 4);
        assert_eq!(rep.system.tx.commits, 40);
    }

    #[test]
    fn unsynchronized_loses_updates_under_contention() {
        let (_, sum) = run(SyncMethod::None, 6, 1, 1, 50);
        assert!(sum <= 6 * 50);
        // With one variable and six CPUs hammering it, losses are certain.
        assert!(sum < 6 * 50, "unsynchronized updates must race");
    }

    #[test]
    fn single_cpu_tx_beats_lock() {
        // The paper's uncontended comparison: ~30% advantage for
        // transactions from the shorter lock/release path (§IV).
        let (lock, _) = run(SyncMethod::CoarseLock, 1, 1, 1, 200);
        let (tx, _) = run(SyncMethod::Tbeginc, 1, 1, 1, 200);
        assert!(
            tx.avg_op_cycles() < lock.avg_op_cycles(),
            "tx {} vs lock {}",
            tx.avg_op_cycles(),
            lock.avg_op_cycles()
        );
    }
}
