//! Measurement conventions shared by all workloads.
//!
//! Every workload program follows the paper's §IV methodology:
//!
//! * the time of each operation is measured "between each lock/tbegin and
//!   unlock/tend" with the clock (our `RDCLK` stands in for Store Clock
//!   Fast), accumulated in **R14**;
//! * completed operations are counted in **R15**;
//! * random-number generation is excluded from the measurement (the `RAND`
//!   pseudo-instruction costs zero cycles and executes before the timed
//!   section);
//! * throughput is `CPUs / average-time-per-update`, normalized to 100 for
//!   a reference run (2 CPUs updating a single variable from a pool of 1).

use ztm_core::TbeginParams;
use ztm_isa::gr::{R0, R1};
use ztm_isa::{Assembler, MemOperand};
use ztm_sim::{System, SystemReport};

/// Register conventions of the workload programs.
pub mod convention {
    use ztm_isa::gr::*;
    use ztm_isa::Reg;

    /// Loop counter: operations remaining.
    pub const OPS_LEFT: Reg = R6;
    /// Accumulated in-section cycles.
    pub const OP_CYCLES: Reg = R14;
    /// Completed operations.
    pub const OPS_DONE: Reg = R15;
    /// Timestamp scratch (start).
    pub const T_START: Reg = R12;
    /// Timestamp scratch (end).
    pub const T_END: Reg = R13;
}

/// Emits the Figure 1 lock-elision ladder shared by every TBEGIN workload:
/// a transaction that tests the elided `lock` (aborting with code 256 while
/// it is held), a retry loop with `PPA` backoff that gives up after
/// `retry_limit` transient aborts (immediately on a persistent CC3 abort),
/// a wait-for-lock-free loop before each retry, and the `fallback` path.
///
/// `body` emits the critical section (runs inside the transaction, after
/// the lock test); `fallback` emits the lock-based path. Labels are
/// prefixed with `p`. R0 (retry count) and R1 (lock probe) are clobbered.
pub fn emit_tx_with_fallback<B, F>(
    a: &mut Assembler,
    p: &str,
    lock: u64,
    retry_limit: i64,
    body: B,
    fallback: F,
) where
    B: FnOnce(&mut Assembler),
    F: FnOnce(&mut Assembler),
{
    a.lghi(R0, 0);
    a.label(&format!("{p}_retry"));
    a.tbegin(TbeginParams::new());
    a.jnz(&format!("{p}_abort"));
    a.ltg(R1, MemOperand::absolute(lock));
    a.jnz(&format!("{p}_busy"));
    body(a);
    a.tend();
    a.j(&format!("{p}_done"));
    a.label(&format!("{p}_busy"));
    a.tabort(256); // transient: retry once the lock is free
    a.label(&format!("{p}_abort"));
    a.jo(&format!("{p}_fallback")); // CC3: no retry
    a.aghi(R0, 1);
    a.cgij_ge(R0, retry_limit, &format!("{p}_fallback"));
    a.ppa(R0); // machine-tuned random delay
               // Figure 1: "potentially wait for lock to become free" before
               // jumping back, so retries don't burn attempts while a
               // fallback holder is in its critical section.
    a.label(&format!("{p}_wait"));
    a.ltg(R1, MemOperand::absolute(lock));
    a.jz(&format!("{p}_retry"));
    a.delay(24);
    a.j(&format!("{p}_wait"));
    a.label(&format!("{p}_fallback"));
    fallback(a);
    a.label(&format!("{p}_done"));
}

/// Per-CPU measurement extracted after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuMeasurement {
    /// Operations completed by this CPU.
    pub ops: u64,
    /// Cycles spent inside timed sections.
    pub op_cycles: u64,
}

/// Results of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Per-CPU measurements.
    pub per_cpu: Vec<CpuMeasurement>,
    /// System-wide counters (aborts, XIs, stalls).
    pub system: SystemReport,
}

impl WorkloadReport {
    /// Reads the measurement registers of every CPU after a run.
    pub fn collect(sys: &System) -> Self {
        let per_cpu = (0..sys.cpus())
            .map(|i| CpuMeasurement {
                ops: sys.core(i).gr(convention::OPS_DONE),
                op_cycles: sys.core(i).gr(convention::OP_CYCLES),
            })
            .collect();
        WorkloadReport {
            per_cpu,
            system: sys.report(),
        }
    }

    /// Total committed operations.
    pub fn committed_ops(&self) -> u64 {
        self.per_cpu.iter().map(|c| c.ops).sum()
    }

    /// Average cycles per operation across CPUs (the paper's
    /// "average time per update").
    pub fn avg_op_cycles(&self) -> f64 {
        let (ops, cyc) = self
            .per_cpu
            .iter()
            .fold((0u64, 0u64), |(o, c), m| (o + m.ops, c + m.op_cycles));
        if ops == 0 {
            f64::INFINITY
        } else {
            cyc as f64 / ops as f64
        }
    }

    /// The paper's throughput metric: `CPUs / average time per update`
    /// (higher is better; unitless until normalized).
    pub fn throughput(&self) -> f64 {
        let avg = self.avg_op_cycles();
        if avg.is_finite() && avg > 0.0 {
            self.per_cpu.len() as f64 / avg
        } else {
            0.0
        }
    }

    /// Throughput normalized so that `reference` becomes 100.
    pub fn normalized_throughput(&self, reference: f64) -> f64 {
        100.0 * self.throughput() / reference
    }

    /// System-wide abort rate.
    pub fn abort_rate(&self) -> f64 {
        self.system.abort_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(per_cpu: Vec<CpuMeasurement>) -> WorkloadReport {
        WorkloadReport {
            per_cpu,
            system: SystemReport::default(),
        }
    }

    #[test]
    fn throughput_math() {
        let r = report(vec![
            CpuMeasurement {
                ops: 10,
                op_cycles: 1000,
            },
            CpuMeasurement {
                ops: 10,
                op_cycles: 3000,
            },
        ]);
        assert!((r.avg_op_cycles() - 200.0).abs() < 1e-9);
        assert!((r.throughput() - 2.0 / 200.0).abs() < 1e-12);
        assert!((r.normalized_throughput(2.0 / 200.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_has_zero_throughput() {
        let r = report(vec![CpuMeasurement {
            ops: 0,
            op_cycles: 0,
        }]);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.committed_ops(), 0);
    }
}
