//! The read-dominated workload of Fig 5(d): read-write lock vs constrained
//! transactions.
//!
//! Typical read-write locks update a shared read-count on every section
//! entry/exit; that cache line ping-pongs between CPUs and caps throughput.
//! Transactions only *read* shared state, so all readers stay in read-only
//! (shared) cache state and scale almost linearly (§IV).

use crate::harness::{convention, WorkloadReport};
use crate::pool::PoolLayout;
use ztm_core::GrSaveMask;
use ztm_isa::{gr::*, Assembler, MemOperand, Program, Reg, RegOrImm};
use ztm_sim::System;

/// Address registers for the four variables read per operation.
const ADDR_REGS: [Reg; 4] = [R8, R9, R10, R11];

/// The reader's concurrency control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadMethod {
    /// A counting read-write lock: wait for no writer, atomically increment
    /// the reader count, read, atomically decrement.
    RwLock,
    /// A constrained transaction that just reads the variables. (The paper
    /// also checks the write-count inside the transaction; with no writers
    /// in the Fig 5(d) workload the check is dropped here to stay within
    /// the 4-octoword constrained footprint — see EXPERIMENTS.md.)
    Tbeginc,
}

/// The Fig 5(d) workload: each CPU reads 4 random variables from a pool.
#[derive(Debug, Clone)]
pub struct ReadWorkload {
    layout: PoolLayout,
    method: ReadMethod,
    /// Address of the reader count (the write flag lives 8 bytes above, on
    /// the same line — "all CPUs can share the read/write count cache
    /// line", §IV).
    pub rw_word: u64,
}

impl ReadWorkload {
    /// Creates the workload over `pool_size` variables.
    pub fn new(pool_size: u64, method: ReadMethod) -> Self {
        ReadWorkload {
            layout: PoolLayout::new(pool_size, 4),
            method,
            rw_word: 0x0040_0000,
        }
    }

    /// Builds the program executing `ops_per_cpu` read operations.
    pub fn program(&self, ops_per_cpu: u64) -> Program {
        let l = &self.layout;
        let rc = self.rw_word;
        let wflag = self.rw_word + 8;
        let mut a = Assembler::new(0);
        a.lghi(convention::OPS_LEFT, ops_per_cpu as i64);
        a.lghi(convention::OP_CYCLES, 0);
        a.lghi(convention::OPS_DONE, 0);
        a.label("op_loop");
        for r in ADDR_REGS {
            a.rand_mod(r, RegOrImm::Imm(l.pool_size));
            a.sllg(r, r, 8);
            a.aghi(r, l.pool_base as i64);
        }
        a.rdclk(convention::T_START);
        match self.method {
            ReadMethod::RwLock => {
                // Enter: no writer, then atomically bump the reader count.
                a.label("rd_enter");
                a.lg(R1, MemOperand::absolute(wflag));
                a.cghi(R1, 0);
                a.jnz("rd_enter");
                a.lg(R2, MemOperand::absolute(rc));
                a.label("rc_inc");
                a.lgr(R3, R2);
                a.aghi(R3, 1);
                a.csg(R2, R3, MemOperand::absolute(rc));
                a.jnz("rc_inc");
                for r in ADDR_REGS {
                    a.lg(R2, MemOperand::based(r, 0));
                }
                // Leave: atomically drop the reader count.
                a.lg(R2, MemOperand::absolute(rc));
                a.label("rc_dec");
                a.lgr(R3, R2);
                a.aghi(R3, -1);
                a.csg(R2, R3, MemOperand::absolute(rc));
                a.jnz("rc_dec");
            }
            ReadMethod::Tbeginc => {
                a.tbeginc(GrSaveMask::ALL);
                for r in ADDR_REGS {
                    a.lg(R2, MemOperand::based(r, 0));
                }
                a.tend();
            }
        }
        a.rdclk(convention::T_END);
        a.sgr(convention::T_END, convention::T_START);
        a.agr(convention::OP_CYCLES, convention::T_END);
        a.aghi(convention::OPS_DONE, 1);
        a.brctg(convention::OPS_LEFT, "op_loop");
        a.halt();
        a.assemble().expect("read workload assembles")
    }

    /// Runs the workload on every CPU of `sys`.
    pub fn run(&self, sys: &mut System, ops_per_cpu: u64) -> WorkloadReport {
        let prog = self.program(ops_per_cpu);
        sys.load_program_all(&prog);
        sys.run_until_halt(2_000_000_000);
        WorkloadReport::collect(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ztm_mem::Address;
    use ztm_sim::{System, SystemConfig};

    #[test]
    fn rwlock_readers_complete_and_balance_count() {
        let wl = ReadWorkload::new(64, ReadMethod::RwLock);
        let mut sys = System::new(SystemConfig::with_cpus(4));
        let rep = wl.run(&mut sys, 25);
        assert_eq!(rep.committed_ops(), 100);
        assert_eq!(
            sys.mem().load_u64(Address::new(wl.rw_word)),
            0,
            "every reader decremented the count"
        );
    }

    #[test]
    fn tbeginc_readers_complete_without_aborts_from_each_other() {
        let wl = ReadWorkload::new(64, ReadMethod::Tbeginc);
        let mut cfg = SystemConfig::with_cpus(4);
        cfg.speculative_prefetch = false;
        let mut sys = System::new(cfg);
        let rep = wl.run(&mut sys, 25);
        assert_eq!(rep.committed_ops(), 100);
        assert_eq!(rep.system.tx.aborts, 0, "read sharing never conflicts");
    }

    #[test]
    fn transactional_readers_outscale_rwlock() {
        // The essence of Fig 5(d): at 8 CPUs the rwlock's read-count
        // ping-pong already costs a lot.
        let run = |method| {
            let wl = ReadWorkload::new(256, method);
            let mut sys = System::new(SystemConfig::with_cpus(8));
            wl.run(&mut sys, 30).throughput()
        };
        let lock = run(ReadMethod::RwLock);
        let tx = run(ReadMethod::Tbeginc);
        assert!(tx > lock, "tx {tx} should beat rwlock {lock}");
    }
}
